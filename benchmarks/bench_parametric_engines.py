"""A5 (ablation/scalability): the two parametric-checking engines.

The paper's Proposition 2 reduction needs a closed-form rational
function; this bench compares the classic Daws state-elimination engine
against the fraction-free Bareiss/Cramer engine on chains of growing
size, and shows both agree exactly with the concrete checker at sample
points.
"""

import time

import pytest

from conftest import report
from repro.checking import DTMCModelChecker, ParametricDTMC
from repro.logic.pctl import AtomicProposition, Eventually
from repro.symbolic import Polynomial

P = Polynomial.variable("p")


def ladder(n: int) -> ParametricDTMC:
    """An n-rung ladder: forward with p-perturbed probability, slip back."""
    states = list(range(n + 1))
    transitions = {}
    for i in range(n):
        forward = 0.6 + (P if i == 0 else 0)
        transitions[i] = {
            i + 1: forward,
            max(0, i - 1): 0.3 - (P if i == 0 else 0),
            i: 0.1,
        }
        if max(0, i - 1) == i:  # state 0 folds the back-edge into a loop
            transitions[i] = {1: 0.6 + P, 0: 0.4 - P}
    transitions[n] = {n: 1}
    return ParametricDTMC(
        states=states,
        transitions=transitions,
        initial_state=0,
        labels={n: {"top"}},
    )


@pytest.mark.parametrize("size", [4, 8, 12, 16])
def test_gauss_engine_scaling(benchmark, size):
    model = ladder(size)
    function = benchmark(
        lambda: model.reachability_probability({size}, method="gauss")
    )
    # Exactness check at a sample point.
    point = {"p": 0.05}
    concrete = DTMCModelChecker(model.instantiate(point)).path_probabilities(
        Eventually(AtomicProposition("top"))
    )[0]
    assert float(function.evaluate(point)) == pytest.approx(concrete, abs=1e-9)
    report(
        benchmark,
        {
            "states": size + 1,
            "num_terms": len(function.numerator),
            "den_terms": len(function.denominator),
        },
    )


@pytest.mark.parametrize("size", [4, 8])
def test_engines_agree(benchmark, size):
    model = ladder(size)

    def run_both():
        gauss = model.reachability_probability({size}, method="gauss")
        eliminate = model.reachability_probability({size}, method="eliminate")
        return gauss, eliminate

    gauss, eliminate = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert gauss == eliminate
    report(benchmark, {"states": size + 1, "agree": True})


def test_engine_speed_comparison(benchmark):
    """Head-to-head timing on the 8-rung ladder."""
    model = ladder(8)

    def timed():
        t0 = time.perf_counter()
        model.reachability_probability({8}, method="gauss")
        gauss_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        model.reachability_probability({8}, method="eliminate")
        eliminate_time = time.perf_counter() - t0
        return gauss_time, eliminate_time

    gauss_time, eliminate_time = benchmark.pedantic(timed, rounds=1, iterations=1)
    report(
        benchmark,
        {
            "gauss_seconds": round(gauss_time, 4),
            "eliminate_seconds": round(eliminate_time, 4),
        },
    )
