"""A6 (extension): constrained EM for HMMs.

The paper's conclusion proposes folding temporal constraints into the
E-step for hidden-state models.  This bench quantifies the trade-off on
a synthetic two-state HMM: as the constraint weight grows the forbidden
transition's learned probability decays toward 0, at a measured (small)
log-likelihood cost.
"""

import numpy as np
import pytest

from conftest import report
from repro.hmm import HMM, baum_welch, constrained_baum_welch, forbid_transition


@pytest.fixture(scope="module")
def training_data():
    truth = HMM(
        states=["calm", "storm"],
        symbols=["low", "high"],
        initial={"calm": 0.8, "storm": 0.2},
        transitions={
            "calm": {"calm": 0.85, "storm": 0.15},
            "storm": {"calm": 0.4, "storm": 0.6},
        },
        emissions={
            "calm": {"low": 0.9, "high": 0.1},
            "storm": {"low": 0.25, "high": 0.75},
        },
    )
    rng = np.random.default_rng(23)
    return [truth.sample(80, rng)[1] for _ in range(15)]


def test_constraint_weight_sweep(benchmark, training_data):
    """Forbidden-transition probability decays monotonically in λ."""

    def sweep():
        rows = {}
        for weight in (0.0, 1.0, 3.0, 6.0, 10.0):
            constraints = (
                [forbid_transition("h0", "h1", weight=weight)] if weight else []
            )
            model, trace = constrained_baum_welch(
                training_data,
                states=["h0", "h1"],
                constraints=constraints,
                iterations=25,
                seed=5,
            )
            rows[weight] = (float(model.A[0, 1]), trace[-1])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    probabilities = [rows[w][0] for w in sorted(rows)]
    assert probabilities == sorted(probabilities, reverse=True)
    assert rows[10.0][0] < rows[0.0][0] / 3
    report(
        benchmark,
        {
            f"lambda={w:g}": f"A[h0,h1]={p:.4f}, loglik={ll:.1f}"
            for w, (p, ll) in sorted(rows.items())
        },
    )


def test_likelihood_cost_is_bounded(benchmark, training_data):
    """The constraint trades only a modest likelihood amount."""

    def run_both():
        free, free_trace = baum_welch(
            training_data, states=["h0", "h1"], iterations=25, seed=5
        )
        constrained, constrained_trace = constrained_baum_welch(
            training_data,
            states=["h0", "h1"],
            constraints=[forbid_transition("h0", "h1", weight=6.0)],
            iterations=25,
            seed=5,
        )
        return free_trace[-1], constrained_trace[-1]

    free_ll, constrained_ll = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert constrained_ll <= free_ll + 1e-6
    # ...but within 10% of the unconstrained likelihood.
    assert constrained_ll >= free_ll * 1.10  # log-likelihoods are negative
    report(
        benchmark,
        {
            "free_loglik": round(free_ll, 1),
            "constrained_loglik": round(constrained_ll, 1),
            "relative_cost": f"{(constrained_ll - free_ll) / abs(free_ll):.2%}",
        },
    )
