"""E7 (Section IV-C, Proposition 4): posterior-regularised projection.

Shape criteria: on the car MDP with the rule ``G ¬collision``,

* the projected distribution ``Q`` zeroes the probability mass on
  collision trajectories as λ grows (exponentially in λ), and
* satisfying trajectories keep their relative probabilities exactly.
"""

import math

import pytest

from conftest import report
from repro.casestudies import car
from repro.learning.posterior_regularization import project_distribution
from repro.learning.trajectory_distribution import TrajectoryDistribution
from repro.logic.ltl import LGlobally, state_atom
from repro.logic.rules import LtlRule


@pytest.fixture(scope="module")
def base_distribution():
    mdp = car.build_car_mdp()
    features = car.car_features()
    rewards = {
        s: float(features(s) @ car.PAPER_LEARNED_THETA) for s in mdp.states
    }
    return TrajectoryDistribution.from_maxent(
        mdp, rewards, horizon=6, stop_states={"End"}
    )


def collision_mass(distribution) -> float:
    return distribution.event_probability(lambda u: u.visits("S2"))


def test_projection_suppresses_collisions(benchmark, base_distribution):
    """E7: violation mass decays exponentially in the rule weight λ."""

    def sweep():
        masses = {}
        for weight in (0.0, 2.0, 5.0, 10.0, 50.0):
            rule = LtlRule(LGlobally(~state_atom("S2")), weight=weight)
            projected = project_distribution(base_distribution, [rule])
            masses[weight] = collision_mass(projected)
        return masses

    masses = benchmark.pedantic(sweep, rounds=1, iterations=1)
    values = [masses[w] for w in sorted(masses)]
    assert values == sorted(values, reverse=True)  # monotone decay
    assert masses[0.0] == pytest.approx(collision_mass(base_distribution))
    assert masses[50.0] < 1e-12
    report(
        benchmark,
        {f"lambda={w:g}": f"{m:.3e}" for w, m in sorted(masses.items())},
    )


def test_satisfying_ratios_preserved(benchmark, base_distribution):
    """E7: Q equals P (up to one normaliser) on satisfying trajectories."""
    rule = LtlRule(LGlobally(~state_atom("S2")), weight=8.0)
    projected = benchmark(
        lambda: project_distribution(base_distribution, [rule])
    )
    ratios = [
        projected.probability(u) / base_distribution.probability(u)
        for u in base_distribution.support()
        if not u.visits("S2")
    ]
    spread = max(ratios) / min(ratios)
    assert spread == pytest.approx(1.0, abs=1e-9)
    report(
        benchmark,
        {
            "satisfying_trajectories": len(ratios),
            "ratio_spread": f"{spread:.12f}",
            "common_ratio": f"{ratios[0]:.6f}",
        },
    )


def test_projection_factor_is_exp_lambda(benchmark, base_distribution):
    """E7: each violating trajectory is damped by exactly exp(-λ·viol)."""
    weight = 3.0
    rule = LtlRule(LGlobally(~state_atom("S2")), weight=weight)
    projected = benchmark(
        lambda: project_distribution(base_distribution, [rule])
    )
    satisfying_ratio = next(
        projected.probability(u) / base_distribution.probability(u)
        for u in base_distribution.support()
        if not u.visits("S2")
    )
    for trajectory in base_distribution.support():
        if trajectory.visits("S2"):
            ratio = projected.probability(trajectory) / base_distribution.probability(
                trajectory
            )
            assert ratio / satisfying_ratio == pytest.approx(
                math.exp(-weight), rel=1e-9
            )
    report(benchmark, {"lambda": weight, "damping": f"exp(-{weight}) verified"})
