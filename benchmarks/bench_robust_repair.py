"""Robust repair vs nominal repair on the WSN case study.

The headline scenario is the ISSUE acceptance case: at X = 50 the
learned WSN chain satisfies the attempts bound *nominally* but not over
the ±0.01 interval ball, so nominal Model Repair declares
``already_satisfied`` and ships a fragile model while
:class:`~repro.repair.robust.RobustRepair` must actually move the chain
and then certify the worst case over the full interval set.  The bench
records both arms' cost, wall time and the certificate margin.

A second section pins the degenerate case: at ε = 0 the robust flavour
must reproduce the nominal verdicts exactly (X = 100 already satisfied,
X = 40 repaired, X = 19 infeasible).

Results are written to ``BENCH_robust_repair.json`` next to this file.
"""

import json
import time
from pathlib import Path

from conftest import report
from repro.casestudies import wsn
from repro.repair.robust import RobustRepair, robust_verify

RESULTS_PATH = Path(__file__).with_name("BENCH_robust_repair.json")

EPSILON = 0.01
FRAGILE_BOUND = 50.0


def save_results(section: str, rows: dict) -> None:
    data = json.loads(RESULTS_PATH.read_text()) if RESULTS_PATH.exists() else {}
    data[section] = rows
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def test_robust_vs_nominal_wsn(benchmark, quick_bench):
    """Robust repair pays for its certificate; nominal repair cannot see
    the fragility at all."""
    extra_starts = 2 if quick_bench else 8

    nominal_seconds, nominal = timed(
        lambda: wsn.model_repair_problem(FRAGILE_BOUND).repair(
            extra_starts=extra_starts
        )
    )
    # Nominal repair is blind to the fragility: X=50 already holds.
    assert nominal.status == "already_satisfied"
    assert nominal.objective_value == 0.0

    def run_robust():
        return RobustRepair(
            wsn.model_repair_problem(FRAGILE_BOUND), epsilon=EPSILON
        ).repair(extra_starts=extra_starts)

    robust = benchmark.pedantic(run_robust, rounds=1, iterations=1)
    robust_seconds = benchmark.stats["mean"]
    assert robust.status == "repaired"
    assert robust.robust and robust.verified
    assert robust.certificate.margin > 0
    assert robust.vi_iterations > 0

    # Independent re-verification of the shipped artifact.
    recheck = robust_verify(
        robust.repaired_model,
        wsn.attempts_property(FRAGILE_BOUND),
        EPSILON,
    )
    assert recheck.robust and recheck.holds

    rows = {
        "bound_X": FRAGILE_BOUND,
        "epsilon": EPSILON,
        "nominal_status": nominal.status,
        "nominal_cost": nominal.objective_value,
        "nominal_seconds": round(nominal_seconds, 4),
        "robust_status": robust.status,
        "robust_cost": round(robust.objective_value, 6),
        "robust_seconds": round(robust_seconds, 4),
        "certificate_margin": round(robust.certificate.margin, 6),
        "outer_rounds": robust.outer_iterations,
        "robust_vi_iterations": robust.vi_iterations,
        "solver_iterations": robust.solver_stats.get("iterations", 0),
    }
    save_results("robust_vs_nominal_wsn_x50", rows)
    report(benchmark, rows)


def test_zero_epsilon_preserves_verdicts(benchmark, quick_bench):
    """ε = 0 degenerates to nominal repair: identical verdicts."""
    extra_starts = 2 if quick_bench else 8
    scenarios = {
        "X=100": (100.0, "already_satisfied"),
        "X=40": (40.0, "repaired"),
        "X=19": (19.0, "infeasible"),
    }

    def sweep():
        results = {}
        for name, (bound, _expected) in scenarios.items():
            nominal = wsn.model_repair_problem(bound).repair(
                extra_starts=extra_starts
            )
            robust = RobustRepair(
                wsn.model_repair_problem(bound), epsilon=0.0
            ).repair(extra_starts=extra_starts)
            results[name] = (nominal, robust)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = {}
    for name, (bound, expected) in scenarios.items():
        nominal, robust = results[name]
        assert nominal.status == expected, name
        assert robust.status == expected, name
        assert robust.feasible == nominal.feasible, name
        rows[f"{name}_nominal"] = nominal.status
        rows[f"{name}_robust"] = robust.status
    save_results("zero_epsilon_verdicts", rows)
    report(benchmark, rows)
