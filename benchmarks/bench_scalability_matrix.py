"""The standing scalability matrix: every repair flavour × the corpus.

Runs the fused (stacked-kernel) and unfused (per-constraint dispatch)
repair pipelines over every :mod:`repro.corpus` family at several sizes
and records, per matrix point: model size, NLP variable count, wall
clock for both paths, their kernel dispatch ratios, and verdict
identity.  Results go to ``BENCH_scalability_matrix.json`` next to this
file so every future speed PR reports against the same matrix.

Headline (the previously dispatch-bound regime): the paper's WSN
``X = 40`` Model Repair must no longer be dispatch-bound — the fused
path's dispatch ratio collapses (one python call serves all starts ×
constraints), and full-sweep runs additionally assert the ≥ 3×
wall-clock improvement recorded in the JSON.  ``--quick-bench`` keeps
only the smallest size per family and asserts the (deterministic)
dispatch-ratio collapse rather than wall clock, so the CI smoke job
stays robust on noisy shared runners.
"""

import json
import statistics
import time
from pathlib import Path

from conftest import report
from repro.casestudies import wsn
from repro.corpus import FAMILIES
from repro.repair.engine import solve_repair
from repro.symbolic.compile import kernel_stats

RESULTS_PATH = Path(__file__).with_name("BENCH_scalability_matrix.json")

#: Acceptance gate for the previously dispatch-bound WSN X=40 repair.
MIN_WSN_SPEEDUP = 3.0
#: A path counts as dispatch-bound when most evaluated kernel rows paid
#: their own python call (ratio near 1.0 = one dispatch per row).
DISPATCH_BOUND_RATIO = 0.5


def save_results(section: str, rows) -> None:
    data = json.loads(RESULTS_PATH.read_text()) if RESULTS_PATH.exists() else {}
    data[section] = rows
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def timed_solve(make_problem, fused: bool, repeats: int):
    """Median wall clock + dispatch ratio for ``solve_repair`` runs.

    The problem is rebuilt per run (cheap) while the CheckCache stays
    warm (the elimination is priced outside the timing, as in the other
    NLP benchmarks); the kernel-counter delta around the run yields the
    dispatch ratio.
    """
    outcome = solve_repair(make_problem(), fused=fused)  # warm the cache
    times = []
    before = dict(kernel_stats())
    for _ in range(repeats):
        problem = make_problem()
        start = time.perf_counter()
        outcome = solve_repair(problem, fused=fused)
        times.append(time.perf_counter() - start)
    after = kernel_stats()
    dispatches = after["dispatches"] - before["dispatches"]
    evaluations = after["evaluations"] - before["evaluations"]
    ratio = dispatches / max(evaluations, 1)
    return statistics.median(times), ratio, outcome


def matrix_points(quick: bool):
    for name in sorted(FAMILIES):
        family = FAMILIES[name]
        sizes = family.sizes[:1] if quick else family.sizes[:3]
        for size in sizes:
            yield family, size


def test_scalability_matrix(benchmark, quick_bench):
    """Fused vs unfused repair over the corpus; verdicts must agree."""
    repeats = 2 if quick_bench else 5
    rows = []
    for family, size in matrix_points(quick_bench):
        def make_problem(f=family, s=size):
            return f.repair(s).problem()

        fused_s, fused_ratio, fused = timed_solve(make_problem, True, repeats)
        unfused_s, unfused_ratio, unfused = timed_solve(
            make_problem, False, repeats
        )
        assert fused.status == unfused.status, (
            f"{family.name} size {size}: fused verdict {fused.status!r} "
            f"!= unfused {unfused.status!r}"
        )
        if fused.status == "repaired":
            assert fused.verified and unfused.verified
            scale = max(1.0, abs(unfused.objective_value))
            assert (
                abs(fused.objective_value - unfused.objective_value) / scale
                < 1e-6
            )
        rows.append(
            {
                "family": family.name,
                "size": int(size),
                "states": family.model(size).num_states,
                "variables": family.variable_count(size),
                "verdict": fused.status,
                "fused_ms": round(fused_s * 1e3, 2),
                "unfused_ms": round(unfused_s * 1e3, 2),
                "speedup": round(unfused_s / fused_s, 2),
                "fused_dispatch_ratio": round(fused_ratio, 3),
                "unfused_dispatch_ratio": round(unfused_ratio, 3),
            }
        )
    benchmark.pedantic(
        lambda: solve_repair(FAMILIES["refuel"].repair(8).problem()),
        rounds=max(3, repeats),
        iterations=1,
    )
    if not quick_bench:
        save_results("matrix", rows)
    summary = {
        "points": len(rows),
        "families": len({row["family"] for row in rows}),
        "median_speedup": round(
            statistics.median(row["speedup"] for row in rows), 2
        ),
        "verdicts_identical": True,
    }
    if not quick_bench:
        save_results("matrix_summary", summary)
    report(benchmark, summary)
    # Every fused point must have shed the one-dispatch-per-row regime.
    for row in rows:
        assert row["fused_dispatch_ratio"] < row["unfused_dispatch_ratio"]


def test_wsn_x40_headline(benchmark, quick_bench):
    """The previously dispatch-bound case: fused ≥ 3× and unfused-identical."""
    repeats = 3 if quick_bench else 9

    def make_problem():
        return wsn.model_repair_problem(40).problem()

    fused_s, fused_ratio, fused = timed_solve(make_problem, True, repeats)
    unfused_s, unfused_ratio, unfused = timed_solve(
        make_problem, False, repeats
    )
    benchmark.pedantic(
        lambda: solve_repair(make_problem()),
        rounds=max(3, repeats),
        iterations=1,
    )

    assert fused.status == unfused.status == "repaired"
    assert fused.verified and unfused.verified
    assert abs(fused.objective_value - unfused.objective_value) < 1e-8
    speedup = unfused_s / fused_s
    rows = {
        "variables": 2,
        "fused_ms": round(fused_s * 1e3, 2),
        "unfused_ms": round(unfused_s * 1e3, 2),
        "speedup": round(speedup, 2),
        "fused_dispatch_ratio": round(fused_ratio, 3),
        "unfused_dispatch_ratio": round(unfused_ratio, 3),
        "objective": round(fused.objective_value, 9),
    }
    if not quick_bench:
        save_results("wsn_x40_headline", rows)
    report(benchmark, rows)
    # Deterministic in any environment: the fused path no longer pays a
    # python dispatch per evaluated constraint row.
    assert fused_ratio < DISPATCH_BOUND_RATIO, (
        f"WSN X=40 fused path is still dispatch-bound "
        f"(ratio {fused_ratio:.3f})"
    )
    assert unfused_ratio > DISPATCH_BOUND_RATIO
    if not quick_bench:
        assert speedup >= MIN_WSN_SPEEDUP, (
            f"fused WSN X=40 repair gave {speedup:.2f}x, "
            f"need >= {MIN_WSN_SPEEDUP}x"
        )


def test_paper_verdicts_unchanged_fused(benchmark):
    """Fused path reproduces the paper's X=100/40/19 verdict triple."""
    def verdicts():
        return {
            bound: solve_repair(
                wsn.model_repair_problem(bound).problem()
            ).status
            for bound in (100, 40, 19)
        }

    measured = benchmark.pedantic(verdicts, rounds=1, iterations=1)
    assert measured == {
        100: "already_satisfied",
        40: "repaired",
        19: "infeasible",
    }
