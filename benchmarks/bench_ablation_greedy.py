"""A2 (ablation): parametric-NLP repair vs greedy coordinate stepping.

Without the paper's Proposition 2 reduction one would nudge parameters
and re-check concretely.  This ablation compares the two on the WSN
X=40 repair: the NLP route should find a repair of no-worse cost, and
the greedy route's model-checker call count shows what the reduction
saves.
"""

import pytest

from conftest import report
from repro.baselines import greedy_model_repair
from repro.casestudies import wsn
from repro.optimize import Variable


BOUND = 40
VARIABLES = [
    Variable("p", 0.0, wsn.DEFAULT_MAX_CORRECTION, initial=0.0),
    Variable("q", 0.0, wsn.DEFAULT_MAX_CORRECTION, initial=0.0),
]


def test_nlp_repair(benchmark):
    result = benchmark(lambda: wsn.model_repair_problem(BOUND).repair())
    assert result.status == "repaired"
    report(
        benchmark,
        {
            "method": "parametric check + NLP (the paper's route)",
            "cost": round(result.objective_value, 6),
            "assignment": {k: round(v, 4) for k, v in result.assignment.items()},
        },
    )


def test_greedy_repair(benchmark):
    result = benchmark.pedantic(
        lambda: greedy_model_repair(
            wsn.build_wsn_parametric(),
            wsn.attempts_property(BOUND),
            VARIABLES,
            step=0.005,
        ),
        rounds=1,
        iterations=1,
    )
    assert result.feasible
    report(
        benchmark,
        {
            "method": "greedy coordinate stepping (baseline)",
            "cost": round(result.cost, 6),
            "model_checker_calls": result.checks,
            "assignment": {k: round(v, 4) for k, v in result.assignment.items()},
        },
    )


def test_nlp_cost_no_worse_than_greedy(benchmark):
    """Quality comparison: the NLP's local optimum beats greedy's endpoint."""

    def run_both():
        nlp = wsn.model_repair_problem(BOUND).repair()
        greedy = greedy_model_repair(
            wsn.build_wsn_parametric(),
            wsn.attempts_property(BOUND),
            VARIABLES,
            step=0.005,
        )
        return nlp, greedy

    nlp, greedy = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert nlp.status == "repaired" and greedy.feasible
    assert nlp.objective_value <= greedy.cost + 1e-6
    report(
        benchmark,
        {
            "nlp_cost": round(nlp.objective_value, 6),
            "greedy_cost": round(greedy.cost, 6),
            "greedy_checker_calls": greedy.checks,
        },
    )
