"""E1-E3 (Section V-A.1): the three WSN Model Repair cases.

Paper rows reproduced:

=====  ==========================  =============================
case   paper                       shape criterion
=====  ==========================  =============================
E1     X=100 satisfied unmodified  status == already_satisfied
E2     X=40 repaired, p=.045,      status == repaired, both
       q=.03 (ignore probs drop)   corrections >= 0, verified
E3     X=19 infeasible             status == infeasible
=====  ==========================  =============================
"""

import pytest

from conftest import report
from repro.casestudies import wsn
from repro.checking import DTMCModelChecker


def test_case_satisfied_x100(benchmark):
    """E1: the learned model already satisfies R{attempts}<=100."""
    result = benchmark(lambda: wsn.model_repair_problem(100).repair())
    assert result.status == "already_satisfied"
    value = DTMCModelChecker(wsn.build_wsn_chain()).check(
        wsn.attempts_property(1)
    ).value
    report(
        benchmark,
        {
            "paper": "X=100 satisfied without modification",
            "measured_status": result.status,
            "expected_attempts": round(value, 2),
        },
    )


def test_case_feasible_x40(benchmark):
    """E2: X=40 is repairable by lowering ignore probabilities."""
    result = benchmark(lambda: wsn.model_repair_problem(40).repair())
    assert result.status == "repaired"
    assert result.verified
    assert all(v >= 0 for v in result.assignment.values())
    repaired_value = DTMCModelChecker(result.repaired_model).check(
        wsn.attempts_property(1)
    ).value
    report(
        benchmark,
        {
            "paper": "X=40 repaired with p=0.045, q=0.03",
            "measured_status": result.status,
            "correction_p": round(result.assignment["p"], 4),
            "correction_q": round(result.assignment["q"], 4),
            "epsilon_prop1": round(result.epsilon, 4),
            "attempts_after_repair": round(repaired_value, 2),
        },
    )


def test_case_infeasible_x19(benchmark):
    """E3: X=19 cannot be met within the perturbation bounds."""
    result = benchmark(lambda: wsn.model_repair_problem(19).repair())
    assert result.status == "infeasible"
    report(
        benchmark,
        {
            "paper": "X=19 infeasible",
            "measured_status": result.status,
        },
    )


def test_feasibility_frontier(benchmark):
    """Sweep the bound X to locate the feasibility crossover.

    The paper's three cases imply a frontier between 19 and 40; this
    sweep pins it down for our calibration.
    """

    def sweep():
        verdicts = {}
        for bound in (25, 30, 35, 40, 45, 50):
            verdicts[bound] = wsn.model_repair_problem(bound).repair().status
        return verdicts

    verdicts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Monotone: once repairable/satisfied, stays so as X grows.
    order = {"infeasible": 0, "repaired": 1, "already_satisfied": 2}
    ranks = [order[verdicts[b]] for b in sorted(verdicts)]
    assert ranks == sorted(ranks)
    report(benchmark, {f"X={b}": v for b, v in sorted(verdicts.items())})
