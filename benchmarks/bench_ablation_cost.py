"""A1 (ablation): how the choice of repair cost ``g(Z)`` shapes the fix.

DESIGN.md calls out the paper's remark that the "typical" cost is the
squared Frobenius norm but other costs are possible.  This ablation runs
the WSN X=40 repair under Frobenius / L1 / max costs and compares the
corrections: L1 concentrates the repair on the cheapest parameter, max
spreads it evenly, Frobenius sits between.
"""

import pytest

from conftest import report
from repro.casestudies import wsn
from repro.checking import DTMCModelChecker


def run_with_cost(cost_name):
    from repro.core.costs import resolve_cost

    problem = wsn.model_repair_problem(40)
    problem.cost = resolve_cost(cost_name)
    return problem.repair()


@pytest.mark.parametrize("cost_name", ["frobenius", "l1", "max"])
def test_cost_choice_still_repairs(benchmark, cost_name):
    """Every cost choice finds a verified repair (feasibility is about
    the constraint set, not the objective)."""
    result = benchmark.pedantic(
        lambda: run_with_cost(cost_name), rounds=1, iterations=1
    )
    assert result.status == "repaired"
    assert result.verified
    attempts = DTMCModelChecker(result.repaired_model).check(
        wsn.attempts_property(1)
    ).value
    report(
        benchmark,
        {
            "cost": cost_name,
            "correction_p": round(result.assignment["p"], 4),
            "correction_q": round(result.assignment["q"], 4),
            "epsilon": round(result.epsilon, 4),
            "attempts_after": round(attempts, 2),
        },
    )


def test_max_cost_minimises_largest_correction(benchmark):
    """The `max` cost minimises the largest single correction parameter,
    so its worst-case parameter is no larger than under Frobenius (which
    trades a big cheap parameter against small expensive ones)."""

    def run_both():
        return run_with_cost("max"), run_with_cost("frobenius")

    max_result, frob_result = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    assert max_result.status == frob_result.status == "repaired"
    worst = lambda r: max(abs(v) for v in r.assignment.values())
    assert worst(max_result) <= worst(frob_result) + 1e-6
    report(
        benchmark,
        {
            "largest_correction_max_cost": round(worst(max_result), 4),
            "largest_correction_frobenius": round(worst(frob_result), 4),
            "epsilon_max_cost": round(max_result.epsilon, 4),
            "epsilon_frobenius_cost": round(frob_result.epsilon, 4),
        },
    )
