"""E5-E6 (Section V-B, Figure 1): car controller Reward Repair.

Paper rows reproduced:

* E5 — MaxEnt IRL reward (paper: θ = (0.38, 0.34, 0.53)) makes the
  optimal policy take action 0 (forward) at S1, driving into the van.
* E6 — the repaired reward (paper: θ2 raised 0.34 → 0.44 by
  ``min ‖Δθ‖ s.t. Q(S1,1) > Q(S1,0)``) makes the optimal policy change
  lane at S1 and avoid all unsafe states.
"""

import numpy as np
import pytest

from conftest import report
from repro.casestudies import car
from repro.core import QValueConstraint, RewardRepair
from repro.learning import MaxEntIRL


@pytest.fixture(scope="module")
def mdp():
    return car.build_car_mdp()


@pytest.fixture(scope="module")
def repairer(mdp):
    return RewardRepair(mdp, car.car_features(), discount=car.DISCOUNT)


def test_learned_reward_unsafe(benchmark, mdp, repairer):
    """E5: the paper's learned θ yields the unsafe forward at S1."""
    policy = benchmark(
        lambda: repairer.optimal_policy(car.PAPER_LEARNED_THETA)
    )
    assert policy["S1"] == car.FORWARD
    assert not car.policy_is_safe(mdp, policy)
    report(
        benchmark,
        {
            "paper_theta": list(car.PAPER_LEARNED_THETA),
            "action_at_S1": policy["S1"],
            "paper_action_at_S1": car.FORWARD,
            "unsafe_from": car.states_leading_to_unsafe(mdp, policy),
        },
    )


def test_irl_reproduces_unsafe_learning(benchmark, mdp):
    """E5 (our own learning): MaxEnt IRL from the expert demo also lands
    in the unsafe regime, confirming the paper's failure mode."""

    def learn():
        irl = MaxEntIRL(
            mdp, car.car_features(), horizon=7, learning_rate=0.2,
            max_iterations=250,
        )
        return irl.fit([car.expert_demonstration()])

    fit = benchmark.pedantic(learn, rounds=1, iterations=1)
    repairer = RewardRepair(mdp, car.car_features(), discount=car.DISCOUNT)
    policy = repairer.optimal_policy(fit.theta)
    assert policy["S1"] == car.FORWARD
    report(
        benchmark,
        {
            "irl_theta": [round(t, 3) for t in fit.theta],
            "paper_theta": list(car.PAPER_LEARNED_THETA),
            "action_at_S1": policy["S1"],
        },
    )


def test_repaired_reward_safe(benchmark, mdp, repairer):
    """E6: minimal-norm Q-constrained repair flips S1 to the lane change."""
    result = benchmark.pedantic(
        lambda: repairer.q_constrained(
            car.PAPER_LEARNED_THETA,
            [QValueConstraint("S1", car.LEFT, car.FORWARD)],
        ),
        rounds=1,
        iterations=1,
    )
    assert result.feasible
    assert result.policy_after["S1"] == car.LEFT
    assert car.policy_is_safe(mdp, result.policy_after)
    delta = result.theta_delta()
    # The distance-to-unsafe weight must carry the repair (paper: +0.10).
    assert delta[1] > 0
    assert abs(delta[1]) == pytest.approx(max(abs(delta)), abs=1e-9)
    report(
        benchmark,
        {
            "paper_repaired_theta": list(car.PAPER_REPAIRED_THETA),
            "measured_theta_after": [round(t, 3) for t in result.theta_after],
            "theta_delta": [round(d, 3) for d in delta],
            "action_at_S1": result.policy_after["S1"],
            "policy_safe": car.policy_is_safe(mdp, result.policy_after),
        },
    )


def test_paper_repaired_theta_matches_paper_policy(benchmark, mdp, repairer):
    """E6 cross-check: the paper's θ' reproduces the paper's policy rows."""
    policy = benchmark(
        lambda: repairer.optimal_policy(car.PAPER_REPAIRED_THETA)
    )
    paper_policy = {"S1": 1, "S5": 0, "S6": 0, "S7": 0, "S8": 2, "S9": 2, "S3": 0}
    matches = {s: policy[s] for s in paper_policy}
    assert matches == paper_policy
    report(
        benchmark,
        {
            "paper_policy_rows": paper_policy,
            "measured_policy_rows": matches,
        },
    )
