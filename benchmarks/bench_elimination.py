"""Elimination ordering and incremental corridor re-elimination.

Two claims of the speed layer, measured on the PRISM scenario corpus:

- **Ordering**: min-degree elimination (pick the state with the fewest
  predecessors×successors next, lazy heap) keeps fill-in — and with it
  the intermediate rational-function sizes — far below insertion order
  on irregularly-structured chains.  The headline gate: ≥2× wall-clock
  speedup on at least one corpus family at its largest size.
- **Incremental corridors**: when a CEGIS corridor widens, resuming
  from the previous round's :class:`EliminationSnapshot` re-eliminates
  only the newly admitted states plus their fill-in neighbourhood, so
  the per-round elimination no longer pays for the full corridor.

Each arm clears the symbolic memo tables first so warm-cache spill-over
cannot flatter whichever arm runs second.  Verdict identity (≤ 1e-12 at
the problem's initial assignment) is asserted at every measured point.

Sections written to ``BENCH_elimination.json``:

- ``order_matrix``: per family×size rows — insertion vs min-degree
  seconds and fill-in, plus corridor scratch-vs-resume seconds.
- ``cegis_resume``: per-round rows of the monitored-WSN CEGIS corridor
  replay — corridor size, states re-eliminated and seconds for the
  scratch and the snapshot-resumed arm.
"""

import json
import time
from fractions import Fraction
from pathlib import Path

import pytest
from conftest import report

from repro.casestudies import wsn
from repro.checking.cache import CheckCache, set_global_cache
from repro.checking.parametric import (
    corridor_elimination,
    parametric_constraint,
)
from repro.core.api import check_model
from repro.corpus import FAMILIES
from repro.logic import parse_pctl
from repro.repair.cegis import CegisRepair
from repro.symbolic import polynomial as _polynomial
from repro.symbolic import rational as _rational

RESULTS_PATH = Path(__file__).with_name("BENCH_elimination.json")

TOLERANCE = 1e-12

#: family → sizes measured in the full sweep (the largest size of each
#: family is always included — the ≥2× gate is evaluated there).
FULL_MATRIX = {
    "grid": (3, 6),
    "network": (3,),
    "refuel": (8, 20),
    "drone": (8, 20),
    "random": (12, 16, 24, 32),
}
QUICK_MATRIX = {
    "grid": (3,),
    "network": (3,),
    "refuel": (8,),
    "drone": (8,),
    "random": (12, 16),
}


def save_results(section: str, rows) -> None:
    data = json.loads(RESULTS_PATH.read_text()) if RESULTS_PATH.exists() else {}
    data[section] = rows
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def clear_symbolic_caches() -> None:
    """Flush the symbolic memo tables so each arm starts cold."""
    _polynomial._MONO_INTERN.clear()
    _polynomial._MONO_MUL_CACHE.clear()
    _polynomial._DIV_CACHE.clear()
    _polynomial._GCD_CACHE.clear()
    _rational._NORMALISE_CACHE.clear()


def exact_point(assignment) -> dict:
    return {
        name: Fraction(value).limit_denominator(10**9)
        for name, value in assignment.items()
    }


def family_spec(name: str, size: int):
    problem = FAMILIES[name].repair(size).problem()
    spec = problem.parametric[0]
    return (
        spec.resolve_model(),
        spec.formula,
        exact_point(problem.initial_assignment()),
    )


def corridor_formula(name: str, formula):
    """An upper-bound variant the corridor path accepts (see tests)."""
    if formula.comparison in ("<", "<="):
        return formula
    return parse_pctl(f'P<=0.99 [F "{FAMILIES[name].goal_atom}"]')


def growing_corridors(model, formula):
    from collections import deque

    from repro.checking.parametric import label_satisfaction_set

    targets = set(
        label_satisfaction_set(model.states, model.labels, formula.path.right)
    )
    parent = {model.initial_state: None}
    order = [model.initial_state]
    queue = deque([model.initial_state])
    hit = model.initial_state if model.initial_state in targets else None
    while queue and hit is None:
        state = queue.popleft()
        for successor in model.transitions.get(state, {}):
            if successor in parent:
                continue
            parent[successor] = state
            order.append(successor)
            if successor in targets:
                hit = successor
                break
            queue.append(successor)
    path = set()
    walk = hit
    while walk is not None:
        path.add(walk)
        walk = parent[walk]
    small = path | set(order[: max(2, len(order) // 3)]) | targets
    large = small | set(order[: max(3, (2 * len(order)) // 3)])
    if large == small:
        large = small | set(order)
    return small, large


def timed_elimination(model, formula, order: str):
    clear_symbolic_caches()
    stats = {}
    start = time.perf_counter()
    constraint = parametric_constraint(
        model, formula, method="eliminate", order=order, stats=stats
    )
    return time.perf_counter() - start, stats, constraint


def test_order_matrix(benchmark, quick_bench):
    """Insertion vs min-degree vs corridor resume on the corpus matrix."""
    matrix = QUICK_MATRIX if quick_bench else FULL_MATRIX
    rows = []

    def run():
        for name, sizes in matrix.items():
            for size in sizes:
                model, formula, point = family_spec(name, size)
                ins_seconds, ins_stats, ins = timed_elimination(
                    model, formula, "insertion"
                )
                md_seconds, md_stats, md = timed_elimination(
                    model, formula, "min-degree"
                )
                assert float(ins.function.evaluate(point)) == pytest.approx(
                    float(md.function.evaluate(point)), abs=TOLERANCE
                )
                corridor = corridor_formula(name, formula)
                small, large = growing_corridors(model, corridor)
                clear_symbolic_caches()
                _, snapshot = corridor_elimination(model, corridor, small)
                resumed_stats = {}
                resume_start = time.perf_counter()
                resumed, _ = corridor_elimination(
                    model,
                    corridor,
                    large,
                    snapshot=snapshot,
                    stats=resumed_stats,
                )
                resume_seconds = time.perf_counter() - resume_start
                clear_symbolic_caches()
                scratch_start = time.perf_counter()
                scratch_large, _ = corridor_elimination(model, corridor, large)
                scratch_seconds = time.perf_counter() - scratch_start
                assert float(
                    resumed.function.evaluate(point)
                ) == pytest.approx(
                    float(scratch_large.function.evaluate(point)),
                    abs=TOLERANCE,
                )
                rows.append(
                    {
                        "family": name,
                        "size": size,
                        "states": len(model.states),
                        "insertion_seconds": round(ins_seconds, 4),
                        "insertion_fill_in": ins_stats.get("fill_in", 0),
                        "min_degree_seconds": round(md_seconds, 4),
                        "min_degree_fill_in": md_stats.get("fill_in", 0),
                        "order_speedup": round(
                            ins_seconds / md_seconds, 2
                        )
                        if md_seconds
                        else None,
                        "corridor_scratch_seconds": round(scratch_seconds, 4),
                        "corridor_resume_seconds": round(resume_seconds, 4),
                        "corridor_resumed": resumed_stats.get("resumed", 0),
                    }
                )

    benchmark.pedantic(run, rounds=1, iterations=1)

    # Verdict identity already asserted per row.  The ordering gate:
    # quick mode checks the deterministic proxy (fill-in no worse on
    # every family, strictly better somewhere); the full sweep demands
    # the ≥2× wall-clock speedup on a family at its largest size.
    assert any(
        row["min_degree_fill_in"] < row["insertion_fill_in"] for row in rows
    )
    if not quick_bench:
        largest = {
            name: max(sizes) for name, sizes in matrix.items()
        }
        headline = [
            row["order_speedup"]
            for row in rows
            if row["size"] == largest[row["family"]]
            and row["order_speedup"] is not None
        ]
        assert max(headline) >= 2.0
    save_results("order_matrix", rows)
    best = max(
        (row for row in rows if row["order_speedup"] is not None),
        key=lambda row: row["order_speedup"],
    )
    report(
        benchmark,
        {
            "rows": len(rows),
            "best_order_speedup": f"{best['order_speedup']}x "
            f"({best['family']}@{best['size']})",
        },
    )


def test_cegis_resume_vs_scratch(benchmark, quick_bench):
    """Per-round corridor replay: resume stops paying the full corridor."""
    size = 6 if quick_bench else 8
    chain = wsn.build_monitored_chain(size=size)
    nominal = check_model(
        chain, wsn.clean_delivery_property(1.0), engine="sparse"
    ).value
    bound = round(0.2 * nominal, 6)

    def capture_corridors():
        """One incremental CEGIS run, recording each round's corridor."""
        import repro.repair.cegis as cegis_module

        corridors = []
        original = cegis_module.restricted_constraint

        def spy(model, formula, restriction, **kwargs):
            corridors.append(set(restriction))
            return original(model, formula, restriction, **kwargs)

        cegis_module.restricted_constraint = spy
        try:
            set_global_cache(CheckCache())
            base = wsn.monitored_repair_problem(bound=bound, size=size)
            result = CegisRepair(base).repair(seed=0)
        finally:
            cegis_module.restricted_constraint = original
            set_global_cache(CheckCache())
        assert result.status == "repaired"
        spec = base.problem().parametric[0]
        return spec.resolve_model(), spec.formula, corridors

    model, formula, corridors = benchmark.pedantic(
        capture_corridors, rounds=1, iterations=1
    )
    assert len(corridors) >= 2, "scenario must widen the corridor"

    rows = []
    snapshot = None
    for index, corridor in enumerate(corridors, start=1):
        clear_symbolic_caches()
        scratch_stats = {}
        start = time.perf_counter()
        corridor_elimination(model, formula, corridor, stats=scratch_stats)
        scratch_seconds = time.perf_counter() - start
        clear_symbolic_caches()
        resume_stats = {}
        start = time.perf_counter()
        _, snapshot = corridor_elimination(
            model, formula, corridor, snapshot=snapshot, stats=resume_stats
        )
        resume_seconds = time.perf_counter() - start
        rows.append(
            {
                "round": index,
                "corridor_states": len(corridor),
                "scratch_seconds": round(scratch_seconds, 4),
                "scratch_eliminated": scratch_stats.get("eliminated", 0),
                "resume_seconds": round(resume_seconds, 4),
                "resume_eliminated": resume_stats.get("eliminated", 0),
                "resumed": resume_stats.get("resumed", 0),
            }
        )

    # Later rounds must stop paying the full corridor: the resumed arm
    # re-eliminates strictly fewer states than scratch while corridors
    # grow — the replayed elimination effort is sub-linear in corridor
    # size (flat incremental batches vs the scratch arm's full sweep).
    later = rows[1:]
    assert all(row["resumed"] == 1 for row in later)
    assert all(
        row["resume_eliminated"] < row["scratch_eliminated"] for row in later
    )
    growth = rows[-1]["corridor_states"] / rows[0]["corridor_states"]
    effort = max(
        rows[-1]["resume_eliminated"] / max(rows[0]["resume_eliminated"], 1),
        1e-9,
    )
    assert effort < growth, "re-elimination effort must grow sub-linearly"
    if not quick_bench:
        assert (
            rows[-1]["resume_seconds"] < rows[-1]["scratch_seconds"]
        ), "final-round resume must beat scratch wall-clock"
    save_results("cegis_resume", rows)
    report(
        benchmark,
        {
            "rounds": len(rows),
            "final_corridor": rows[-1]["corridor_states"],
            "final_scratch_s": rows[-1]["scratch_seconds"],
            "final_resume_s": rows[-1]["resume_seconds"],
            "final_resume_states": rows[-1]["resume_eliminated"],
        },
    )
