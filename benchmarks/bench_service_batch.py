"""Batch-service throughput: pool speedup and warm-store elimination.

Acceptance criteria exercised here:

* an 8-job repair batch on 4 workers beats sequential (inline) execution
  by >= 2x wall-clock — asserted only on hosts with >= 4 CPUs, since the
  speedup cannot physically exist on fewer cores;
* a warm re-run of the same batch against the same result store performs
  **zero** new parametric eliminations, observed through telemetry
  counters (not timings), on any host.
"""

import os
import time

import pytest

from conftest import report
from repro.casestudies import car, wsn
from repro.mdp import chain_dtmc
from repro.service import (
    BatchRunner,
    CheckJob,
    ModelRepairJob,
    RewardRepairJob,
    Telemetry,
)

pytestmark = pytest.mark.service

JOB_COUNT = 8
POOL_WORKERS = 4


def build_jobs():
    """8 independent WSN/car check+repair jobs (distinct content, no dedup)."""
    mdp = car.build_car_mdp()
    jobs = [
        CheckJob.for_model(
            "wsn-check-100", wsn.build_wsn_chain(), 'R<=100 [ F "delivered" ]'
        ),
        CheckJob.for_model(
            "wsn-check-degraded",
            wsn.build_wsn_chain(forward_probability=0.85),
            'R<=100 [ F "delivered" ]',
        ),
    ]
    for i in range(4):
        chain = chain_dtmc(5 + (i % 3), forward_probability=0.45 + 0.01 * i)
        jobs.append(
            ModelRepairJob.for_model(
                f"chain-repair-{i}", chain, 'R<=6 [ F "goal" ]', seed=i
            )
        )
    for seed in (0, 1):
        jobs.append(
            RewardRepairJob.for_mdp(
                f"car-reward-{seed}",
                mdp,
                car.car_features().table,
                car.PAPER_LEARNED_THETA,
                [{"state": "S1", "preferred": car.LEFT,
                  "dispreferred": car.FORWARD}],
                discount=car.DISCOUNT,
                seed=seed,
            )
        )
    assert len(jobs) == JOB_COUNT
    return jobs


def run_batch_timed(jobs, workers, store_dir):
    telemetry = Telemetry()
    runner = BatchRunner(
        max_workers=workers, store_dir=store_dir, telemetry=telemetry
    )
    start = time.monotonic()
    batch = runner.run(jobs)
    return batch, time.monotonic() - start, telemetry


@pytest.mark.slow
@pytest.mark.skipif(
    (os.cpu_count() or 1) < POOL_WORKERS,
    reason=f"pool speedup needs >= {POOL_WORKERS} CPUs",
)
def test_pool_beats_sequential(benchmark, tmp_path):
    """>= 2x wall-clock speedup for 8 jobs on 4 workers vs inline."""
    jobs = build_jobs()
    _, sequential_seconds, _ = run_batch_timed(
        jobs, workers=0, store_dir=str(tmp_path / "seq-store")
    )

    def pooled():
        batch, seconds, _ = run_batch_timed(
            jobs, workers=POOL_WORKERS, store_dir=str(tmp_path / f"pool-{time.monotonic_ns()}")
        )
        assert batch.all_ok
        return seconds

    pooled_seconds = benchmark.pedantic(pooled, rounds=1, iterations=1)
    speedup = sequential_seconds / pooled_seconds
    report(
        benchmark,
        {
            "jobs": JOB_COUNT,
            "workers": POOL_WORKERS,
            "sequential_seconds": round(sequential_seconds, 3),
            "pooled_seconds": round(pooled_seconds, 3),
            "speedup": round(speedup, 2),
        },
    )
    assert speedup >= 2.0


@pytest.mark.slow
def test_warm_rerun_eliminates_nothing(benchmark, tmp_path):
    """Second identical batch: zero parametric eliminations (telemetry)."""
    jobs = build_jobs()
    store = str(tmp_path / "store")
    cold_batch, cold_seconds, cold_telemetry = run_batch_timed(
        jobs, workers=0, store_dir=store
    )
    assert cold_batch.all_ok
    cold_eliminations = cold_telemetry.counters()["parametric_eliminations"]
    assert cold_eliminations >= 1

    def warm():
        batch, _, telemetry = run_batch_timed(jobs, workers=0, store_dir=store)
        assert batch.all_ok
        assert all(outcome.cached for outcome in batch)
        return telemetry

    warm_telemetry = benchmark(warm)
    warm_eliminations = warm_telemetry.counters().get(
        "parametric_eliminations", 0
    )
    report(
        benchmark,
        {
            "jobs": JOB_COUNT,
            "cold_seconds": round(cold_seconds, 3),
            "cold_eliminations": cold_eliminations,
            "warm_eliminations": warm_eliminations,
        },
    )
    assert warm_eliminations == 0
