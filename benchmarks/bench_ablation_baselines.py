"""A3 (ablation): Reward Repair vs the related-work baselines.

Section VI contrasts Reward Repair with (a) potential-based reward
shaping — which by the Ng-Harada-Russell theorem *cannot* change the
optimal policy, so it cannot make the car controller safe — and
(b) CMDP-style expectation constraints (Constrained Policy
Optimization), which bound an expected cost rather than enforcing a
logical rule.  This benchmark runs all three on the car case study.
"""

import pytest

from conftest import report
from repro.baselines import lagrangian_constrained_policy, shaped_mdp
from repro.casestudies import car
from repro.core import QValueConstraint, RewardRepair
from repro.mdp import value_iteration


@pytest.fixture(scope="module")
def mdp():
    return car.build_car_mdp()


@pytest.fixture(scope="module")
def unsafe_mdp(mdp):
    repairer = RewardRepair(mdp, car.car_features(), discount=car.DISCOUNT)
    return repairer.mdp_with(car.PAPER_LEARNED_THETA)


def test_reward_repair_makes_policy_safe(benchmark, mdp):
    """The paper's method: safe policy, small reward change."""
    repairer = RewardRepair(mdp, car.car_features(), discount=car.DISCOUNT)
    result = benchmark.pedantic(
        lambda: repairer.q_constrained(
            car.PAPER_LEARNED_THETA,
            [QValueConstraint("S1", car.LEFT, car.FORWARD)],
        ),
        rounds=1,
        iterations=1,
    )
    assert car.policy_is_safe(mdp, result.policy_after)
    report(
        benchmark,
        {
            "method": "Reward Repair (paper)",
            "safe": True,
            "theta_delta_norm": round(
                float((result.theta_delta() ** 2).sum()) ** 0.5, 4
            ),
        },
    )


def test_reward_shaping_cannot_fix_safety(benchmark, mdp, unsafe_mdp):
    """Shaping baseline: policy invariance means S1 stays unsafe."""

    def run():
        potential = {s: car.distance_to_unsafe(s) for s in mdp.states}
        shaped = shaped_mdp(unsafe_mdp, potential.__getitem__, car.DISCOUNT)
        _, policy = value_iteration(shaped, discount=car.DISCOUNT)
        return policy

    policy = benchmark.pedantic(run, rounds=1, iterations=1)
    assert policy["S1"] == car.FORWARD  # invariance: still unsafe
    report(
        benchmark,
        {
            "method": "potential-based reward shaping (Ng et al.)",
            "safe": car.policy_is_safe(mdp, policy),
            "action_at_S1": policy["S1"],
            "note": "policy invariance: shaping cannot repair safety",
        },
    )


def test_lagrangian_cmdp_baseline(benchmark, mdp, unsafe_mdp):
    """CMDP baseline: a hard-enough expected-cost bound also avoids S2,
    but via policy search rather than reward repair — the learned reward
    itself stays untrusted."""

    def run():
        return lagrangian_constrained_policy(
            unsafe_mdp,
            cost=lambda s: 1.0 if s in ("S2", "S10") else 0.0,
            cost_bound=1e-4,
            discount=car.DISCOUNT,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.feasible
    # The constrained policy itself avoids unsafe states from S0.
    chain = unsafe_mdp.induced_dtmc(result.policy)
    current = "S0"
    visited = []
    for _ in range(len(mdp.states)):
        visited.append(current)
        (current,) = chain.successors(current)
        if current == "End":
            break
    assert "S2" not in visited and "S10" not in visited
    report(
        benchmark,
        {
            "method": "Lagrangian CMDP (Achiam et al. setting)",
            "multiplier": round(result.multiplier, 2),
            "expected_cost": f"{result.expected_cost:.2e}",
            "trajectory_from_S0": visited,
        },
    )
