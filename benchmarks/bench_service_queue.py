"""Load harness for the async job-queue front door.

Two sections, both against a live ``ServiceServer`` on an ephemeral
port, flooded by concurrent submitter threads speaking real HTTP:

* **sustained load** — a generous queue absorbs every submission;
  measures end-to-end throughput, p50/p99 enqueue-to-result latency
  (submission ``202`` to terminal poll) and the cache-hit ratio from
  content-fingerprint dedup (each distinct job content is computed
  once; every duplicate is served from the store);
* **backpressure flood** — a tiny queue behind one worker takes a
  burst far past capacity; the acceptance criteria are that *every*
  request receives an HTTP answer (``202`` or ``503`` +
  ``Retry-After`` — never a dropped connection), rejection accounting
  is exact, and a malformed submission still answers a structured 400.

Results are written to ``BENCH_service_queue.json`` next to this file.
"""

import json
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from conftest import report
from repro.mdp import chain_dtmc
from repro.service.jobs import CheckJob
from repro.service.server import build_server
from repro.service.telemetry import Telemetry

pytestmark = pytest.mark.service

RESULTS_PATH = Path(__file__).with_name("BENCH_service_queue.json")


def save_results(section: str, rows: dict) -> None:
    data = json.loads(RESULTS_PATH.read_text()) if RESULTS_PATH.exists() else {}
    data[section] = rows
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
def start_server(**kwargs):
    telemetry = Telemetry()
    server = build_server(port=0, telemetry=telemetry, **kwargs)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread, f"http://{host}:{port}", telemetry


def stop_server(server, thread):
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def post_collect(url, payload):
    """POST and return (status, body, headers); never raises for HTTP."""
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read()), dict(
                response.headers
            )
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def poll_until_terminal(base, ticket, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with urllib.request.urlopen(f"{base}/jobs/{ticket}", timeout=30) as r:
            record = json.loads(r.read())
        if record["status"] not in ("queued", "running"):
            return record
        time.sleep(0.01)
    raise AssertionError(f"ticket {ticket} never terminated")


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


def submission_payload(index: int, distinct: int) -> dict:
    """Distinct job_id, content drawn from ``distinct`` templates.

    Content repeats across submissions, so the store's fingerprint
    dedup turns every repeat into a cached outcome — the cache-hit
    ratio the bench reports.
    """
    content = index % distinct
    job = CheckJob.for_model(
        f"load-{index}",
        chain_dtmc(4 + content, forward_probability=0.45 + 0.01 * content),
        'P>=0.2 [ F "goal" ]',
    )
    return {"jobs": [job.to_dict()]}


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_sustained_load_throughput(benchmark, quick_bench, tmp_path):
    """Concurrent submitters against a generous queue: latency + dedup."""
    submitters = 4 if quick_bench else 8
    per_submitter = 10 if quick_bench else 25
    distinct = 6
    total = submitters * per_submitter

    server, thread, base, telemetry = start_server(
        queue_size=max(64, total),
        queue_workers=2,
        store_dir=str(tmp_path / "store"),
    )
    try:
        latencies, errors = [], []
        cached_flags = []
        lock = threading.Lock()

        def submitter(worker_index):
            for i in range(per_submitter):
                index = worker_index * per_submitter + i
                submitted = time.monotonic()
                status, body, _ = post_collect(
                    base + "/jobs", submission_payload(index, distinct)
                )
                if status != 202:
                    with lock:
                        errors.append((index, status, body))
                    continue
                ticket = body["accepted"][0]["ticket"]
                record = poll_until_terminal(base, ticket)
                latency = time.monotonic() - submitted
                with lock:
                    latencies.append(latency)
                    cached_flags.append(
                        bool(record["outcome"].get("cached", False))
                    )
                    if record["status"] != "succeeded":
                        errors.append((index, record["status"], record))

        def flood():
            threads = [
                threading.Thread(target=submitter, args=(w,))
                for w in range(submitters)
            ]
            start = time.monotonic()
            for worker in threads:
                worker.start()
            for worker in threads:
                worker.join(timeout=300)
            return time.monotonic() - start

        wall = benchmark.pedantic(flood, rounds=1, iterations=1)
        assert not errors, errors[:3]
        assert len(latencies) == total

        latencies.sort()
        cache_hits = sum(cached_flags)
        counters = telemetry.counters()
        rows = {
            "submitters": submitters,
            "jobs_submitted": total,
            "distinct_contents": distinct,
            "wall_seconds": round(wall, 3),
            "throughput_jobs_per_s": round(total / wall, 2),
            "p50_latency_s": round(percentile(latencies, 0.50), 4),
            "p99_latency_s": round(percentile(latencies, 0.99), 4),
            "rejection_rate": 0.0,
            "cache_hit_ratio": round(cache_hits / total, 3),
            "mean_queue_depth": round(
                counters.get("queue_depth", 0)
                / max(1, counters.get("job_enqueued", 1)),
                2,
            ),
            "queue_wait_ms_total": counters.get("queue_wait", 0),
        }
        save_results("sustained_load", rows)
        report(benchmark, rows)
        # Dedup must kick in: identical-content jobs racing on the two
        # workers can each compute once before either stores, so allow
        # up to workers x distinct computations; everything else must
        # be served from the store.
        assert cache_hits >= total - 2 * distinct
    finally:
        stop_server(server, thread)


@pytest.mark.slow
def test_backpressure_flood_rejects_cleanly(benchmark, quick_bench, tmp_path):
    """A burst past capacity: 503 + Retry-After, zero dropped connections."""
    burst = 16 if quick_bench else 48
    capacity = 2

    server, thread, base, telemetry = start_server(
        queue_size=capacity,
        queue_workers=1,
        store_dir=str(tmp_path / "store"),
    )
    try:
        results, dropped = [], []
        lock = threading.Lock()

        def submit(index):
            try:
                outcome = post_collect(
                    base + "/jobs", submission_payload(index, 4)
                )
                with lock:
                    results.append(outcome)
            except Exception as exc:  # noqa: BLE001 — a dropped connection
                with lock:
                    dropped.append((index, repr(exc)))

        def flood():
            threads = [
                threading.Thread(target=submit, args=(i,))
                for i in range(burst)
            ]
            start = time.monotonic()
            for worker in threads:
                worker.start()
            for worker in threads:
                worker.join(timeout=300)
            return time.monotonic() - start

        wall = benchmark.pedantic(flood, rounds=1, iterations=1)

        # Acceptance: every request answered, never dropped.
        assert not dropped, dropped[:3]
        assert len(results) == burst
        accepted = [r for r in results if r[0] == 202]
        rejected = [r for r in results if r[0] == 503]
        assert len(accepted) + len(rejected) == burst
        assert rejected, "flood past capacity must observe 503s"
        for _status, body, headers in rejected:
            assert body["error"]["code"] == "queue-full"
            assert int(headers["Retry-After"]) >= 1

        # Accepted jobs all complete; queue accounting is exact.
        for _status, body, _headers in accepted:
            for entry in body["accepted"]:
                record = poll_until_terminal(base, entry["ticket"])
                assert record["status"] == "succeeded"
        stats = server.queue.stats()
        assert stats["submitted"] == stats["completed"] == len(accepted)
        assert stats["rejected_total"] == len(rejected)
        assert telemetry.counters()["jobs_rejected"] == len(rejected)

        # Malformed submissions answer structured 400s even mid-flood.
        status, body, _ = post_collect(
            base + "/jobs", {"jobs": [{"kind": "nope", "job_id": "x"}]}
        )
        assert status == 400 and "error" in body
        status, body, _ = post_collect(
            base + "/jobs",
            {"jobs": [submission_payload(0, 4)["jobs"][0]],
             "max_retries": "abc"},
        )
        assert status == 400
        assert body["error"]["code"] == "invalid-override"

        rows = {
            "burst": burst,
            "queue_capacity": capacity,
            "wall_seconds": round(wall, 3),
            "accepted": len(accepted),
            "rejected_503": len(rejected),
            "rejection_rate": round(len(rejected) / burst, 3),
            "dropped_connections": len(dropped),
            "min_retry_after_s": min(
                int(h["Retry-After"]) for _s, _b, h in rejected
            ),
        }
        save_results("backpressure_flood", rows)
        report(benchmark, rows)
    finally:
        stop_server(server, thread)
