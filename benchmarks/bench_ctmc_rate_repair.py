"""A7 (extension): continuous-time rate repair.

The paper's other-dynamical-models direction: the same parametric-
checking + NLP pipeline repairs a CTMC's rates against an expected-
hitting-time bound.  Benchmarked on a three-stage service pipeline.
"""

import pytest

from conftest import report
from repro.ctmc import CTMC, expected_time_repair


@pytest.fixture(scope="module")
def service_pipeline():
    return CTMC(
        states=["queue", "triage", "work", "done"],
        rates={
            "queue": {"triage": 2.0},
            "triage": {"work": 1.0, "queue": 0.2},
            "work": {"done": 0.4},
        },
        initial_state="queue",
        labels={"done": {"done"}},
    )


def test_rate_repair_meets_bound(benchmark, service_pipeline):
    original = service_pipeline.expected_time_to({"done"})["queue"]
    result = benchmark(
        lambda: expected_time_repair(
            service_pipeline, {"done"}, bound=3.0, max_speedup=3.0
        )
    )
    assert result.status == "repaired"
    assert result.expected_time <= 3.0 + 1e-6
    # The slowest stage (work, rate 0.4) gets the biggest speed-up.
    assert result.scales["work"] == max(result.scales.values())
    report(
        benchmark,
        {
            "expected_time_before": round(original, 3),
            "bound": 3.0,
            "expected_time_after": round(result.expected_time, 3),
            **{f"speedup[{s}]": round(v, 3) for s, v in result.scales.items()},
        },
    )


def test_bound_sweep_monotone_effort(benchmark, service_pipeline):
    """Tighter time bounds need larger total speed-ups until infeasible."""

    def sweep():
        rows = {}
        for bound in (4.0, 3.0, 2.5, 2.0, 1.0):
            result = expected_time_repair(
                service_pipeline, {"done"}, bound=bound, max_speedup=3.0
            )
            total = sum(result.scales.values()) if result.feasible else None
            rows[bound] = (result.status, total)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    efforts = [
        total
        for _, (status, total) in sorted(rows.items(), reverse=True)
        if status == "repaired"
    ]
    assert efforts == sorted(efforts)
    assert rows[1.0][0] == "infeasible"
    report(benchmark, {f"bound={b:g}": v for b, v in sorted(rows.items())})
