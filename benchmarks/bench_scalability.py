"""A8 (scalability): grid size vs exact parametric checking cost.

The exact rational-function engine is meant for laptop-scale case
studies (repro band: the paper's models are 9–12 states).  This bench
records where exactness stops being interactive: the 3×3 grid closes in
well under a second, the 4×4 grid (17 states, 2 parameters) in seconds;
a 5×5 grid is beyond interactive use — the documented boundary where
one switches to the statistical checker.
"""

import time

import pytest

from conftest import report
from repro.casestudies.wsn import (
    attempts_property,
    build_wsn_chain,
    build_wsn_parametric,
)
from repro.checking import DTMCModelChecker


@pytest.mark.parametrize("size", [3, 4])
def test_parametric_reward_by_grid_size(benchmark, size):
    parametric = build_wsn_parametric(size=size)
    function = benchmark.pedantic(
        lambda: parametric.expected_reward({"n11"}), rounds=1, iterations=1
    )
    concrete = DTMCModelChecker(build_wsn_chain(size=size)).check(
        attempts_property(1)
    ).value
    assert float(function.evaluate({"p": 0.0, "q": 0.0})) == pytest.approx(
        concrete, rel=1e-9
    )
    report(
        benchmark,
        {
            "grid": f"{size}x{size}",
            "states": size * size,
            "numerator_terms": len(function.numerator),
            "denominator_terms": len(function.denominator),
            "expected_attempts": round(concrete, 2),
        },
    )


def test_concrete_checking_scales_further(benchmark):
    """The concrete checker handles grids the exact parametric engine
    cannot — quantifying the exact/numeric trade."""

    def sweep():
        values = {}
        for size in (3, 4, 5, 6, 8):
            chain = build_wsn_chain(size=size)
            values[size] = DTMCModelChecker(chain).check(
                attempts_property(1)
            ).value
        return values

    values = benchmark.pedantic(sweep, rounds=1, iterations=1)
    sizes = sorted(values)
    # Bigger grids need more attempts (longer routes).
    assert [values[s] for s in sizes] == sorted(values[s] for s in sizes)
    report(
        benchmark,
        {f"{s}x{s}": round(v, 1) for s, v in sorted(values.items())},
    )


@pytest.mark.slow
def test_sparse_vs_dense_speedup(benchmark, quick_bench):
    """The vectorised CSR engine vs the dictionary reference on n×n WSN.

    Both engines compute the same expected-attempts reward (checked to
    1e-8 relative); the sparse engine must be at least 3× faster on the
    largest grid the sweep runs.
    """
    sizes = (16, 32) if quick_bench else (8, 16, 24, 32)
    repeats = 1 if quick_bench else 3

    def timed(make_checker, chain, prop):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            result = make_checker(chain).check(prop)
            best = min(best, time.perf_counter() - start)
        return best, result.value

    prop = attempts_property(1)
    rows = {}
    speedups = {}

    def sweep():
        for size in sizes:
            chain = build_wsn_chain(size=size)
            dense_time, dense_value = timed(
                lambda c: DTMCModelChecker(c, engine="dense"), chain, prop
            )
            sparse_time, sparse_value = timed(
                lambda c: DTMCModelChecker(c, engine="sparse"), chain, prop
            )
            assert sparse_value == pytest.approx(dense_value, rel=1e-8)
            speedups[size] = dense_time / sparse_time
            rows[f"{size}x{size}"] = (
                f"dense {dense_time * 1e3:.1f} ms, "
                f"sparse {sparse_time * 1e3:.1f} ms, "
                f"{speedups[size]:.1f}x"
            )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    largest = max(sizes)
    assert speedups[largest] >= 3.0, (
        f"sparse engine only {speedups[largest]:.1f}x faster on "
        f"{largest}x{largest}"
    )
    report(benchmark, rows)


@pytest.mark.slow
def test_statistical_checker_at_scale(benchmark):
    """SMC estimates the 6×6 grid's attempt count within a few percent."""
    from repro.checking import StatisticalModelChecker
    from repro.logic import parse_pctl

    chain = build_wsn_chain(size=6)
    exact = DTMCModelChecker(chain).check(attempts_property(1)).value

    def estimate():
        smc = StatisticalModelChecker(chain, seed=3)
        return smc.estimate_reward(
            parse_pctl('R<=1 [ F "delivered" ]'), samples=2000
        ).estimate

    measured = benchmark.pedantic(estimate, rounds=1, iterations=1)
    assert measured == pytest.approx(exact, rel=0.1)
    report(
        benchmark,
        {"exact": round(exact, 1), "smc_estimate": round(measured, 1)},
    )
