"""A4 (extension): robustness certificates for repairs.

Proposition 1 bounds how far a repair moved the model (ε-bisimilarity);
the interval-chain certificate answers the converse question — how much
*further* drift the repaired model tolerates before the property can
break.  This bench repairs the WSN model for X = 45 and sweeps the
certified drift radius ε'.
"""

import pytest

from conftest import report
from repro.casestudies import wsn
from repro.mdp.interval import robustness_certificate


@pytest.fixture(scope="module")
def repaired_chain():
    result = wsn.model_repair_problem(45).repair()
    assert result.status == "repaired"
    return result.repaired_model


def test_certificate_radius_sweep(benchmark, repaired_chain):
    """The certified verdict is monotone in the drift radius.

    A minimal repair lands *on* the bound, so the exact bound certifies
    only at radius 0; certifying against a slacker operating bound
    (X = 48) shows how much drift the slack buys.
    """
    formula = wsn.attempts_property(48)

    def sweep():
        return {
            epsilon: robustness_certificate(repaired_chain, formula, epsilon)
            for epsilon in (0.0, 0.001, 0.002, 0.005, 0.01, 0.02)
        }

    verdicts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert verdicts[0.0] is True  # the repair itself verifies
    ordered = [verdicts[e] for e in sorted(verdicts)]
    # Once broken, stays broken as the radius grows.
    assert ordered == sorted(ordered, reverse=True)
    report(benchmark, {f"eps={e:g}": v for e, v in sorted(verdicts.items())})


def test_certificate_cost(benchmark, repaired_chain):
    """Timing of a single certificate call (robust value iteration)."""
    formula = wsn.attempts_property(48)
    verdict = benchmark(
        lambda: robustness_certificate(repaired_chain, formula, 0.002)
    )
    assert verdict is True
    report(benchmark, {"certified_radius": 0.002, "verdict": verdict})


def test_boundary_repair_has_no_slack(benchmark, repaired_chain):
    """Against the exact repair bound, only radius 0 certifies —
    quantifying why production deployments should repair with margin."""
    formula = wsn.attempts_property(45)

    def sweep():
        return {
            epsilon: robustness_certificate(repaired_chain, formula, epsilon)
            for epsilon in (0.0, 0.0005, 0.001)
        }

    verdicts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert verdicts[0.0] is True
    assert verdicts[0.001] is False
    report(benchmark, {f"eps={e:g}": v for e, v in sorted(verdicts.items())})
