"""E4 (Section V-A.2): WSN Data Repair.

Paper row: with drop parameters on the failure-observation groups
(global failures, ignores at n11, ignores at n32) the model re-learned
from the repaired data meets the attempts bound; all solved drop
probabilities are small (paper: p=0.0127, q=0.0253, r=0.0064 at its
calibration).  Shape criteria: repair succeeds where the learned model
violated the bound, drop probabilities stay below 0.5, and the
re-learned model verifies.
"""

import pytest

from conftest import report
from repro.casestudies import wsn
from repro.checking import DTMCModelChecker


@pytest.fixture(scope="module")
def dataset():
    return wsn.generate_observation_dataset(episodes=400, seed=7)


def test_data_repair_reaches_bound(benchmark, dataset):
    """E4: small per-group drops repair the learned model."""
    bound = wsn.DEFAULT_DATA_REPAIR_BOUND
    repair = wsn.data_repair_problem(dataset, bound)
    before = DTMCModelChecker(repair.learned_model()).check(
        wsn.attempts_property(1)
    ).value
    assert before > bound

    result = benchmark(lambda: wsn.data_repair_problem(dataset, bound).repair())
    assert result.status == "repaired"
    assert result.verified
    assert all(0 <= v < 0.5 for v in result.drop_probabilities.values())
    after = DTMCModelChecker(result.repaired_model).check(
        wsn.attempts_property(1)
    ).value
    report(
        benchmark,
        {
            "paper": "small drop probabilities (p,q,r) meet the bound",
            "attempts_before": round(before, 2),
            "bound": bound,
            "attempts_after": round(after, 2),
            **{
                f"drop[{name}]": round(value, 4)
                for name, value in result.drop_probabilities.items()
            },
            "expected_dropped_traces": round(result.expected_dropped, 1),
            "total_traces": dataset.total_traces(),
        },
    )


def test_drop_probability_vs_bound_series(benchmark, dataset):
    """Series: tighter bounds need larger drops (monotone effort curve)."""

    def sweep():
        efforts = {}
        for bound in (28, 27.5, 27, 26.5, 26):
            result = wsn.data_repair_problem(dataset, bound).repair()
            efforts[bound] = (
                result.status,
                round(result.effort, 6) if result.feasible else None,
            )
        return efforts

    efforts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    feasible_efforts = [
        effort for status, effort in efforts.values() if status == "repaired"
    ]
    # Effort grows as the bound tightens.
    assert feasible_efforts == sorted(feasible_efforts)
    report(
        benchmark,
        {f"bound={b}": v for b, v in sorted(efforts.items(), reverse=True)},
    )
