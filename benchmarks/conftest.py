"""Shared helpers for the benchmark harness.

Every benchmark regenerates one row/series of the paper's evaluation
(Section V) or one ablation from DESIGN.md.  Timings come from
pytest-benchmark; the reproduced quantities are attached to each
benchmark's ``extra_info`` so they appear in ``--benchmark-json``
exports, and printed so a plain run shows the paper-vs-measured rows.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--quick-bench",
        action="store_true",
        default=False,
        help="shrink benchmark sweeps (fewer sizes/repeats) for a fast "
        "smoke pass; headline assertions still run",
    )


@pytest.fixture
def quick_bench(request) -> bool:
    """Whether the run asked for the reduced benchmark sweep."""
    return request.config.getoption("--quick-bench")


def report(benchmark, rows: dict) -> None:
    """Attach reproduced quantities to the benchmark and print them."""
    for key, value in rows.items():
        benchmark.extra_info[key] = value
    width = max(len(k) for k in rows)
    print()
    for key, value in rows.items():
        print(f"    {key:<{width}} : {value}")
