"""Compiled constraint kernels: before/after for the repair NLP.

Two regimes, reported honestly:

- **Jacobian-bound** problems (many variables): SLSQP finite-differences
  ``n+1`` eliminations per iteration without analytic gradients, so the
  compiled kernels + analytic jacobians win big.  A 17-variable ladder
  chain repaired edge-wise is the headline case; the ≥5× assertion lives
  there.
- **Dispatch-bound** problems (the paper's 2-parameter WSN chain):
  scipy's per-iteration Python machinery dominates, so the ceiling is
  ~2×.  Reported, not asserted.

Results (per-evaluation microbenchmarks plus both NLP arms) are written
to ``BENCH_repair_nlp.json`` next to this file.
"""

import json
import time
from fractions import Fraction
from pathlib import Path

from conftest import report
from repro.casestudies import wsn
from repro.core.model_repair import ModelRepair
from repro.logic.pctl import (
    AtomicProposition,
    ProbabilisticOperator,
    TrueFormula,
    Until,
)
from repro.mdp.model import DTMC
from repro.optimize.nlp import Constraint, NonlinearProgram
from repro.repair.engine import solve_repair

RESULTS_PATH = Path(__file__).with_name("BENCH_repair_nlp.json")

#: Headline requirement from the issue: NLP solve wall time on the
#: jacobian-bound case must improve at least this much.
MIN_SPEEDUP = 5.0


def ladder_chain(rungs: int) -> DTMC:
    """A chain that climbs toward ``goal`` with skip/fail/restart edges.

    Every interior state has four successors, so edge-wise repair gets
    three free variables per row — ``rungs=6`` yields a 17-variable NLP
    whose reachability function has ~170 monomials.
    """
    states = list(range(rungs + 1)) + ["fail"]
    transitions = {}
    for state in range(rungs):
        row = {}
        for target, probability in (
            (state + 1, Fraction(6, 10)),
            (min(state + 2, rungs), Fraction(2, 10)),
            ("fail", Fraction(1, 10)),
            (0, Fraction(1, 10)),
        ):
            row[target] = row.get(target, 0) + probability
        transitions[state] = row
    transitions[rungs] = {rungs: 1}
    transitions["fail"] = {"fail": 1}
    return DTMC(
        states=states,
        transitions=transitions,
        initial_state=0,
        labels={rungs: {"goal"}},
    )


def ladder_property() -> ProbabilisticOperator:
    return ProbabilisticOperator(
        ">=", 0.72, Until(TrueFormula(), AtomicProposition("goal"))
    )


def ladder_repair(rungs: int = 6) -> ModelRepair:
    return ModelRepair.for_chain(
        ladder_chain(rungs), ladder_property(), max_perturbation=0.08
    )


def legacy_program(problem) -> NonlinearProgram:
    """The pre-kernel solver setup: symbolic margins, no jacobians.

    Parametric constraints go through the pure-symbolic margin
    (``compiled=False``) and the analytic hooks on the extra row
    constraints are stripped, so SLSQP finite-differences everything —
    exactly the seed behaviour this PR replaces.
    """
    constraints = [
        Constraint(c.margin, c.name, c.strict, c.shift)
        for c in problem.solver_constraints(compiled=False)
    ]
    return NonlinearProgram(
        variables=problem.variables,
        objective=problem.cost,
        constraints=constraints,
    )


def compiled_program(problem) -> NonlinearProgram:
    """The solver setup the engine now builds (kernels + jacobians)."""
    return NonlinearProgram(
        variables=problem.variables,
        objective=problem.cost,
        objective_gradient=problem.cost_gradient,
        constraints=problem.solver_constraints(),
    )


def wall_time(fn, repeats: int):
    """Best-of-``repeats`` wall time in seconds, plus the last result."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def save_results(section: str, rows: dict) -> None:
    data = json.loads(RESULTS_PATH.read_text()) if RESULTS_PATH.exists() else {}
    data[section] = rows
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_per_evaluation_micro(benchmark):
    """Compiled kernel vs symbolic evaluation of the WSN margin."""
    problem = wsn.model_repair_problem(40).problem()
    parametric = problem.parametric_constraints()[0]
    point = {v.name: float(v.initial) + 0.01 for v in problem.variables}

    def timed(fn, repeats=2000):
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        return (time.perf_counter() - start) / repeats

    benchmark(lambda: parametric.fast_margin(point))
    symbolic_us = timed(lambda: parametric.margin(point)) * 1e6
    compiled_us = timed(lambda: parametric.fast_margin(point)) * 1e6
    gradient_us = timed(lambda: parametric.margin_gradient(point)) * 1e6
    assert abs(
        float(parametric.margin(point)) - parametric.fast_margin(point)
    ) < 1e-9
    rows = {
        "symbolic_margin_us": round(symbolic_us, 2),
        "compiled_margin_us": round(compiled_us, 2),
        "compiled_gradient_us": round(gradient_us, 2),
        "margin_speedup": round(symbolic_us / compiled_us, 2),
    }
    save_results("per_evaluation_wsn_x40", rows)
    report(benchmark, rows)


def test_nlp_solve_jacobian_bound(benchmark, quick_bench):
    """Headline: ≥5× on the 17-variable ladder repair NLP."""
    repair = ladder_repair(rungs=6)
    problem = repair.problem()
    problem.parametric_constraints()  # elimination priced outside the timing
    extra_starts, seed = 2, 0
    repeats = 1 if quick_bench else 2

    legacy_s, legacy = wall_time(
        lambda: legacy_program(problem).solve(
            extra_starts=extra_starts, seed=seed
        ),
        repeats,
    )
    compiled = benchmark.pedantic(
        lambda: compiled_program(problem).solve(
            extra_starts=extra_starts, seed=seed
        ),
        rounds=max(3, repeats),
        iterations=1,
    )
    compiled_s, _ = wall_time(
        lambda: compiled_program(problem).solve(
            extra_starts=extra_starts, seed=seed
        ),
        repeats,
    )

    assert legacy.feasible and compiled.feasible
    assert abs(legacy.objective_value - compiled.objective_value) < 1e-6
    speedup = legacy_s / compiled_s
    rows = {
        "variables": len(problem.variables),
        "legacy_solve_ms": round(legacy_s * 1e3, 1),
        "compiled_solve_ms": round(compiled_s * 1e3, 1),
        "speedup": round(speedup, 1),
        "objective": round(compiled.objective_value, 6),
    }
    save_results("nlp_solve_ladder_17var", rows)
    report(benchmark, rows)
    assert speedup >= MIN_SPEEDUP, (
        f"compiled kernels gave {speedup:.1f}x on the jacobian-bound NLP, "
        f"need >= {MIN_SPEEDUP}x"
    )


def test_nlp_solve_wsn_before_after(benchmark, quick_bench):
    """The paper's E2 case (X=40): reported, dispatch-bound (~2x)."""
    problem = wsn.model_repair_problem(40).problem()
    problem.parametric_constraints()
    repeats = 2 if quick_bench else 5

    legacy_s, legacy = wall_time(
        lambda: legacy_program(problem).solve(extra_starts=8, seed=0), repeats
    )
    compiled_s, compiled = wall_time(
        lambda: compiled_program(problem).solve(extra_starts=8, seed=0),
        repeats,
    )
    benchmark.pedantic(
        lambda: compiled_program(problem).solve(extra_starts=8, seed=0),
        rounds=max(3, repeats),
        iterations=1,
    )

    assert legacy.feasible and compiled.feasible
    assert abs(legacy.objective_value - compiled.objective_value) < 1e-6
    rows = {
        "variables": len(problem.variables),
        "legacy_solve_ms": round(legacy_s * 1e3, 2),
        "compiled_solve_ms": round(compiled_s * 1e3, 2),
        "speedup": round(legacy_s / compiled_s, 2),
    }
    save_results("nlp_solve_wsn_x40", rows)
    report(benchmark, rows)


def test_end_to_end_verdicts_unchanged(benchmark):
    """The full pipeline still returns the paper's three verdicts."""
    def verdicts():
        return {
            bound: wsn.model_repair_problem(bound).repair().status
            for bound in (100, 40, 19)
        }

    measured = benchmark.pedantic(verdicts, rounds=1, iterations=1)
    expected = {100: "already_satisfied", 40: "repaired", 19: "infeasible"}
    assert measured == expected
    ladder = solve_repair(ladder_repair(rungs=6).problem(), extra_starts=2)
    assert ladder.status == "repaired"
    rows = {f"X={b}": s for b, s in measured.items()}
    rows["ladder"] = ladder.status
    save_results("verdicts", rows)
    report(benchmark, rows)
