"""CEGIS repair vs one global elimination on the monitored-delivery WSN.

The scaling scenario (``wsn.monitored_repair_problem``) grows the
repair dimension with the grid area — one interference knob per
mains-powered node — while the violating evidence stays a thin corridor
through the monitor gap.  The global path must eliminate the full
parametric chain before it can solve anything, so its wall clock
explodes with the variable count; the CEGIS loop only ever eliminates
the corridor and keeps going at least one size class beyond the largest
instance the global elimination can finish inside its budget.

Sections written to ``BENCH_cegis_repair.json``:

- ``variables_vs_wallclock``: the headline curve — per-size rows for
  both arms (variables, seconds, status, objective), the global-probe
  row at the largest CEGIS size, and the objective agreement on every
  common size.
- ``paper_scale_verdicts``: CEGIS must reproduce the global verdicts on
  the paper's 3×3 attempts-bound instances (X = 100 / 40 / 19).
"""

import json
import subprocess
import sys
import time
from pathlib import Path

import pytest
from conftest import report

from repro.casestudies import wsn
from repro.core.api import check_model
from repro.repair.cegis import CegisRepair

RESULTS_PATH = Path(__file__).with_name("BENCH_cegis_repair.json")

#: Tighten clean deliveries to a fifth of the nominal value.
BOUND_RATIO = 0.2
#: Evidence budget for the larger grids (paths stay cheap on the DAG).
MAX_EXPANSIONS = 400_000
#: Wall-clock budget for the global-elimination probe at the largest
#: CEGIS size; past it the probe is recorded as a timeout.
GLOBAL_PROBE_BUDGET = 120.0


def save_results(section: str, rows) -> None:
    data = json.loads(RESULTS_PATH.read_text()) if RESULTS_PATH.exists() else {}
    data[section] = rows
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def monitored_bound(size: int) -> float:
    chain = wsn.build_monitored_chain(size=size)
    nominal = check_model(
        chain, wsn.clean_delivery_property(1.0), engine="sparse"
    ).value
    return round(BOUND_RATIO * nominal, 6)


def global_probe(size: int, bound: float, budget: float) -> dict:
    """Run the global elimination in a subprocess with a hard timeout."""
    script = (
        "import time\n"
        "from repro.casestudies import wsn\n"
        f"base = wsn.monitored_repair_problem(bound={bound!r}, size={size})\n"
        "start = time.perf_counter()\n"
        "result = base.repair(seed=0)\n"
        "print(f'{result.status} {time.perf_counter() - start:.3f}')\n"
    )
    try:
        probe = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=budget,
        )
    except subprocess.TimeoutExpired:
        return {"status": f"timeout(>{budget:.0f}s)", "seconds": budget}
    status, seconds = probe.stdout.split()
    return {"status": status, "seconds": float(seconds)}


def test_variables_vs_wallclock(benchmark, quick_bench):
    """The headline curve: elimination cost vs corridor cost."""
    global_sizes = [3, 4, 5] if quick_bench else [3, 4, 5, 6, 7]
    cegis_sizes = [3, 4, 5, 6] if quick_bench else [3, 4, 5, 6, 7, 8]
    extra_starts = 2 if quick_bench else 8
    bounds = {size: monitored_bound(size) for size in cegis_sizes}

    def sweep():
        curve = {"global": [], "cegis": []}
        for size in global_sizes:
            base = wsn.monitored_repair_problem(bound=bounds[size], size=size)
            seconds, result = timed(
                lambda: base.repair(extra_starts=extra_starts, seed=0)
            )
            curve["global"].append(
                {
                    "size": size,
                    "variables": len(base.variables),
                    "status": result.status,
                    "verified": result.verified,
                    "objective": result.objective_value,
                    "seconds": round(seconds, 4),
                }
            )
        for size in cegis_sizes:
            base = wsn.monitored_repair_problem(bound=bounds[size], size=size)
            loop = CegisRepair(base, max_expansions=MAX_EXPANSIONS)
            seconds, result = timed(
                lambda: loop.repair(extra_starts=extra_starts, seed=0)
            )
            curve["cegis"].append(
                {
                    "size": size,
                    "variables": len(base.variables),
                    "status": result.status,
                    "verified": result.verified,
                    "objective": result.objective_value,
                    "seconds": round(seconds, 4),
                    "iterations": result.iterations,
                    "constraints_added": result.constraints_added,
                    "fallbacks": result.fallbacks,
                    "counterexample_states": result.counterexample_states,
                }
            )
        return curve

    curve = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Every instance on both arms repairs and re-verifies concretely.
    for arm in ("global", "cegis"):
        for row in curve[arm]:
            assert row["status"] == "repaired", (arm, row)
            assert row["verified"], (arm, row)
    # The loop localizes on this scenario — no global fallbacks.
    assert all(row["fallbacks"] == 0 for row in curve["cegis"])

    # Identical verdicts and matching objectives on every common size.
    global_by_size = {row["size"]: row for row in curve["global"]}
    for row in curve["cegis"]:
        twin = global_by_size.get(row["size"])
        if twin is None:
            continue
        assert row["objective"] == pytest.approx(
            twin["objective"], rel=1e-4
        ), row["size"]

    # CEGIS extends the ladder at least one size class beyond the
    # largest instance the global arm runs at.
    assert max(r["size"] for r in curve["cegis"]) > max(
        r["size"] for r in curve["global"]
    )

    largest = curve["cegis"][-1]
    probe = None
    if not quick_bench:
        # The control at the largest CEGIS size: the global elimination
        # either times out or loses outright.
        probe = global_probe(
            largest["size"], bounds[largest["size"]], GLOBAL_PROBE_BUDGET
        )
        assert largest["seconds"] < probe["seconds"], (largest, probe)

    section = {
        "bound_ratio": BOUND_RATIO,
        "curve": curve,
        "largest_cegis": largest,
        "global_probe_at_largest": probe,
    }
    save_results("variables_vs_wallclock", section)
    report(
        benchmark,
        {
            "global_sizes": [r["size"] for r in curve["global"]],
            "cegis_sizes": [r["size"] for r in curve["cegis"]],
            "global_seconds": [r["seconds"] for r in curve["global"]],
            "cegis_seconds": [r["seconds"] for r in curve["cegis"]],
            "variables": [r["variables"] for r in curve["cegis"]],
            "largest_cegis_seconds": largest["seconds"],
            "global_probe": probe["status"] if probe else "skipped(quick)",
        },
    )


def test_paper_scale_verdicts(benchmark, quick_bench):
    """CEGIS agrees with the global path on the paper's 3×3 cases."""
    extra_starts = 2 if quick_bench else 8
    scenarios = {
        "X=100": (100.0, "already_satisfied"),
        "X=40": (40.0, "repaired"),
        "X=19": (19.0, "infeasible"),
    }

    def sweep():
        results = {}
        for name, (bound, _expected) in scenarios.items():
            nominal = wsn.model_repair_problem(bound).repair(
                extra_starts=extra_starts, seed=0
            )
            cegis = CegisRepair(wsn.model_repair_problem(bound)).repair(
                extra_starts=extra_starts, seed=0
            )
            results[name] = (nominal, cegis)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = {}
    for name, (bound, expected) in scenarios.items():
        nominal, cegis = results[name]
        assert nominal.status == expected, name
        assert cegis.status == expected, name
        assert cegis.feasible == nominal.feasible, name
        if expected == "repaired":
            assert cegis.verified
        rows[f"{name}_global"] = nominal.status
        rows[f"{name}_cegis"] = cegis.status
    save_results("paper_scale_verdicts", rows)
    report(benchmark, rows)
