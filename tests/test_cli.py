"""Tests for the command-line interface."""

import pytest

from repro.cli.main import main
from repro.io import save_model
from repro.mdp import chain_dtmc


@pytest.fixture
def chain_file(tmp_path):
    path = tmp_path / "chain.json"
    save_model(chain_dtmc(5, forward_probability=0.5), path)
    return str(path)


class TestCheck:
    def test_satisfied_returns_zero(self, chain_file, capsys):
        code = main(["check", chain_file, 'P>=0.9 [ F "goal" ]'])
        assert code == 0
        out = capsys.readouterr().out
        assert "satisfied" in out
        assert "value at initial state" in out

    def test_violated_returns_one(self, chain_file, capsys):
        code = main(["check", chain_file, 'R<=6 [ F "goal" ]'])
        assert code == 1
        assert "violated" in capsys.readouterr().out


class TestEngineAndSeedFlags:
    def test_check_dense_engine_matches_sparse(self, chain_file, capsys):
        assert main(["check", chain_file, 'P>=0.9 [ F "goal" ]']) == 0
        sparse_out = capsys.readouterr().out
        assert (
            main(
                ["check", chain_file, 'P>=0.9 [ F "goal" ]',
                 "--engine", "dense", "--seed", "3"]
            )
            == 0
        )
        assert capsys.readouterr().out == sparse_out

    def test_check_rejects_unknown_engine(self, chain_file):
        with pytest.raises(SystemExit):
            main(["check", chain_file, 'P>=0.9 [ F "goal" ]',
                  "--engine", "cursed"])

    def test_model_repair_seed_is_reproducible(self, chain_file, capsys):
        args = ["model-repair", chain_file, 'R<=6 [ F "goal" ]',
                "--engine", "dense", "--seed", "5"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first
        assert "status: repaired" in first

    def test_counterexample_engine_flag(self, chain_file, capsys):
        code = main(
            ["counterexample", chain_file, 'P<=0.999 [ F "missing" ]',
             "--engine", "dense", "--seed", "1"]
        )
        assert code == 0
        assert "no counterexample" in capsys.readouterr().out


class TestBatch:
    @pytest.fixture
    def jobs_file(self, tmp_path):
        from repro.service.jobs import CheckJob, ModelRepairJob, save_jobs

        chain = chain_dtmc(5, forward_probability=0.5)
        jobs = [
            CheckJob.for_model("check-ok", chain, 'P>=0.2 [ F "goal" ]'),
            CheckJob.for_model("check-tight", chain, 'P>=0.99 [ F "goal" ]'),
            ModelRepairJob.for_model("repair", chain, 'R<=6 [ F "goal" ]'),
        ]
        path = tmp_path / "jobs.json"
        save_jobs(jobs, path)
        return str(path)

    def test_batch_end_to_end(self, jobs_file, tmp_path, capsys):
        report_file = tmp_path / "report.json"
        telemetry_file = tmp_path / "telemetry.jsonl"
        code = main(
            ["batch", jobs_file, "--workers", "0",
             "--store", str(tmp_path / "store"),
             "--telemetry", str(telemetry_file),
             "-o", str(report_file)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "succeeded=3" in out
        assert "telemetry counters" in out

        import json

        report = json.loads(report_file.read_text())
        assert report["statuses"] == {"succeeded": 3}
        assert {entry["job_id"] for entry in report["outcomes"]} == {
            "check-ok", "check-tight", "repair",
        }

        from repro.service.telemetry import aggregate_events, read_events

        counters = aggregate_events(read_events(telemetry_file))
        assert counters["job_end"] == 3
        assert counters["batch_end"] == 1

    def test_batch_failing_job_sets_exit_code(self, tmp_path, capsys):
        from repro.service.jobs import CheckJob, save_jobs

        chain = chain_dtmc(4, forward_probability=0.5)
        jobs = [CheckJob.for_model("bad", chain, "not a formula")]
        path = tmp_path / "jobs.json"
        save_jobs(jobs, path)
        code = main(
            ["batch", str(path), "--workers", "0", "--max-retries", "0"]
        )
        assert code == 1
        assert "failed-after-retries" in capsys.readouterr().out


class TestModelRepair:
    def test_repair_writes_output(self, chain_file, tmp_path, capsys):
        out_file = tmp_path / "repaired.json"
        code = main(
            [
                "model-repair",
                chain_file,
                'R<=6 [ F "goal" ]',
                "-o",
                str(out_file),
            ]
        )
        assert code == 0
        assert out_file.exists()
        out = capsys.readouterr().out
        assert "status: repaired" in out
        assert "epsilon" in out
        # The written model satisfies the property.
        assert main(["check", str(out_file), 'R<=6 [ F "goal" ]']) == 0

    def test_infeasible_returns_nonzero(self, chain_file, capsys):
        code = main(
            [
                "model-repair",
                chain_file,
                'R<=6 [ F "goal" ]',
                "--max-perturbation",
                "0.001",
            ]
        )
        assert code == 1
        assert "infeasible" in capsys.readouterr().out

    def test_json_output_is_canonical_payload(self, chain_file, capsys):
        import json

        from repro.repair import RepairResult

        code = main(["model-repair", chain_file, 'R<=6 [ F "goal" ]', "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["flavor"] == "model"
        assert payload["status"] == "repaired"
        rebuilt = RepairResult.from_dict(payload)
        assert rebuilt.to_dict() == payload


class TestRobustRepair:
    @pytest.fixture
    def coin_file(self, tmp_path):
        from repro.mdp import DTMC

        path = tmp_path / "coin.json"
        save_model(
            DTMC(
                states=["s0", "good", "bad"],
                transitions={
                    "s0": {"good": 0.5, "bad": 0.5},
                    "good": {"good": 1.0},
                    "bad": {"bad": 1.0},
                },
                initial_state="s0",
                labels={"good": {"good"}},
            ),
            path,
        )
        return str(path)

    def test_repair_writes_output(self, coin_file, tmp_path, capsys):
        out_file = tmp_path / "repaired.json"
        code = main(
            [
                "robust-repair",
                coin_file,
                'P<=0.3 [ F "good" ]',
                "--epsilon",
                "0.01",
                "-o",
                str(out_file),
            ]
        )
        assert code == 0
        assert out_file.exists()
        out = capsys.readouterr().out
        assert "robust: True" in out
        assert "worst-case margin" in out
        assert "robustly verified" in out

    def test_infeasible_returns_nonzero(self, coin_file, capsys):
        code = main(
            [
                "robust-repair",
                coin_file,
                'P<=0.3 [ F "good" ]',
                "--max-perturbation",
                "0.01",
            ]
        )
        assert code == 1
        assert "infeasible" in capsys.readouterr().out

    def test_json_output_is_canonical_payload(self, coin_file, capsys):
        import json

        from repro.repair import RepairResult

        code = main(
            ["robust-repair", coin_file, 'P<=0.3 [ F "good" ]', "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["flavor"] == "robust"
        assert payload["robust"] is True
        rebuilt = RepairResult.from_dict(payload)
        assert rebuilt.to_dict() == payload

    def test_rejects_non_dtmc(self, capsys, tmp_path):
        from repro.ctmc import CTMC

        path = tmp_path / "ctmc.json"
        save_model(
            CTMC(
                states=["a", "b"],
                rates={"a": {"b": 1.0}},
                initial_state="a",
            ),
            path,
        )
        code = main(["robust-repair", str(path), 'P<=0.3 [ F "good" ]'])
        assert code == 2


class TestRateRepair:
    @pytest.fixture
    def ctmc_file(self, tmp_path):
        from repro.ctmc import CTMC

        path = tmp_path / "ctmc.json"
        save_model(
            CTMC(
                states=["s0", "s1", "done"],
                rates={"s0": {"s1": 1.0}, "s1": {"done": 0.5}},
                initial_state="s0",
                labels={"done": {"done"}},
            ),
            path,
        )
        return str(path)

    def test_repair_writes_output(self, ctmc_file, tmp_path, capsys):
        out_file = tmp_path / "repaired.json"
        code = main(
            ["rate-repair", ctmc_file, "--targets", "done",
             "--bound", "2.0", "--max-speedup", "4.0", "-o", str(out_file)]
        )
        assert code == 0
        assert out_file.exists()
        out = capsys.readouterr().out
        assert "status: repaired" in out
        assert "rate scales" in out

    def test_json_output(self, ctmc_file, capsys):
        import json

        code = main(
            ["rate-repair", ctmc_file, "--targets", "done",
             "--bound", "5.0", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["flavor"] == "rate"
        assert payload["status"] == "already_satisfied"

    def test_rejects_dtmc_input(self, chain_file, capsys):
        code = main(
            ["rate-repair", chain_file, "--targets", "goal", "--bound", "1"]
        )
        assert code == 2


class TestExportPrism:
    def test_export_to_stdout(self, chain_file, capsys):
        assert main(["export-prism", chain_file]) == 0
        assert "dtmc" in capsys.readouterr().out

    def test_export_to_file(self, chain_file, tmp_path, capsys):
        out_file = tmp_path / "model.pm"
        assert main(["export-prism", chain_file, "-o", str(out_file)]) == 0
        assert out_file.read_text().startswith("dtmc")


class TestDemos:
    def test_car_demo(self, capsys):
        assert main(["car-demo"]) == 0
        out = capsys.readouterr().out
        assert "repaired theta" in out
        assert "policy safe    : True" in out

    def test_wsn_demo(self, capsys):
        assert main(["wsn-demo", "--bound", "40"]) == 0
        out = capsys.readouterr().out
        assert "status: repaired" in out


class TestCounterexample:
    def test_violated_bound_lists_paths(self, tmp_path, capsys):
        from repro.io import save_model
        from repro.mdp import DTMC

        chain = DTMC(
            states=["s", "bad", "safe"],
            transitions={
                "s": {"bad": 0.6, "safe": 0.4},
                "bad": {"bad": 1.0},
                "safe": {"safe": 1.0},
            },
            initial_state="s",
            labels={"bad": {"bad"}},
        )
        path = tmp_path / "chain.json"
        save_model(chain, path)
        code = main(["counterexample", str(path), 'P<=0.5 [ F "bad" ]'])
        assert code == 1
        out = capsys.readouterr().out
        assert "violated" in out
        assert "s -> bad" in out

    def test_holding_property_reports_none(self, chain_file, capsys):
        code = main(["counterexample", chain_file, 'P<=0.999 [ F "missing" ]'])
        assert code == 0
        assert "no counterexample" in capsys.readouterr().out

    def test_json_output_is_canonical_payload(self, tmp_path, capsys):
        import json

        from repro.checking import Counterexample
        from repro.io import save_model
        from repro.mdp import DTMC

        chain = DTMC(
            states=["s", "bad", "safe"],
            transitions={
                "s": {"bad": 0.6, "safe": 0.4},
                "bad": {"bad": 1.0},
                "safe": {"safe": 1.0},
            },
            initial_state="s",
            labels={"bad": {"bad"}},
        )
        path = tmp_path / "chain.json"
        save_model(chain, path)
        code = main(
            ["counterexample", str(path), 'P<=0.5 [ F "bad" ]', "--json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["holds"] is False
        assert payload["value"] == pytest.approx(0.6)
        evidence = Counterexample.from_dict(payload["counterexample"])
        assert evidence.paths == [("s", "bad")]
        assert evidence.complete

    def test_json_when_property_holds(self, chain_file, capsys):
        import json

        code = main(
            ["counterexample", chain_file, 'P<=0.999 [ F "missing" ]',
             "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"holds": True, "counterexample": None}


class TestCegisRepair:
    @pytest.fixture
    def bad_chain_file(self, tmp_path):
        from repro.io import save_model
        from repro.mdp import DTMC

        chain = DTMC(
            states=["s", "a", "bad", "safe"],
            transitions={
                "s": {"bad": 0.5, "a": 0.5},
                "a": {"bad": 0.4, "safe": 0.6},
                "bad": {"bad": 1.0},
                "safe": {"safe": 1.0},
            },
            initial_state="s",
            labels={"bad": {"bad"}},
        )
        path = tmp_path / "bad.json"
        save_model(chain, path)
        return str(path)

    def test_repair_writes_output(self, bad_chain_file, tmp_path, capsys):
        from repro.core.api import check_model
        from repro.io import load_model

        out_file = tmp_path / "fixed.json"
        code = main(
            ["cegis-repair", bad_chain_file, 'P<=0.3 [ F "bad" ]',
             "--seed", "0", "-o", str(out_file)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "status: repaired" in out
        assert "verified: True" in out
        assert "iterations:" in out
        repaired = load_model(out_file)
        assert check_model(repaired, 'P<=0.3 [ F "bad" ]').holds

    def test_json_output_is_canonical_payload(self, bad_chain_file, capsys):
        import json

        from repro.repair import CegisRepairResult
        from repro.repair.results import RepairResult

        code = main(
            ["cegis-repair", bad_chain_file, 'P<=0.3 [ F "bad" ]',
             "--seed", "0", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["flavor"] == "cegis"
        clone = RepairResult.from_dict(payload)
        assert isinstance(clone, CegisRepairResult)
        assert clone.status == "repaired"
        assert clone.iterations >= 1

    def test_max_iterations_flag_caps_the_loop(self, bad_chain_file, capsys):
        import json

        main(
            ["cegis-repair", bad_chain_file, 'P<=0.3 [ F "bad" ]',
             "--seed", "0", "--max-iterations", "1", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["iterations"] <= 1

    def test_rejects_non_dtmc(self, tmp_path, capsys):
        from repro.casestudies import car
        from repro.io import save_model

        path = tmp_path / "mdp.json"
        save_model(car.build_car_mdp(), path)
        code = main(["cegis-repair", str(path), 'P<=0.3 [ F "unsafe" ]'])
        assert code == 2
        assert "DTMC" in capsys.readouterr().err


class TestCorpus:
    def test_list_names_every_family(self, capsys):
        from repro.corpus import FAMILIES

        assert main(["corpus", "list"]) == 0
        out = capsys.readouterr().out
        for name in FAMILIES:
            assert name in out

    def test_list_json_is_machine_readable(self, capsys):
        import json

        assert main(["corpus", "list", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert {e["name"] for e in entries} >= {"grid", "network", "refuel"}
        for entry in entries:
            assert entry["kind"] in {"probability", "reward"}
            assert entry["sizes"]

    def test_generate_prints_parseable_prism(self, capsys):
        from repro.io.prism_parser import parse_prism

        assert main(["corpus", "generate", "--family", "refuel"]) == 0
        model = parse_prism(capsys.readouterr().out)
        assert model.num_states == 9  # smallest refuel size

    def test_generate_json_payload(self, capsys):
        import json

        code = main(
            ["corpus", "generate", "--family", "random",
             "--size", "12", "--seed", "7", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["family"] == "random"
        assert payload["size"] == 12
        assert payload["seed"] == 7
        assert "module random" in payload["prism"]

    def test_generate_writes_output_file(self, tmp_path, capsys):
        from repro.io.prism_parser import parse_prism

        target = tmp_path / "drone.prism"
        code = main(
            ["corpus", "generate", "--family", "drone", "-o", str(target)]
        )
        assert code == 0
        assert "written to" in capsys.readouterr().out
        assert parse_prism(target.read_text()).num_states == 9

    def test_unknown_family_exits_two(self, capsys):
        code = main(["corpus", "generate", "--family", "nonesuch"])
        assert code == 2
        err = capsys.readouterr().err
        assert "nonesuch" in err and "grid" in err

    def test_undersized_family_exits_two(self, capsys):
        code = main(
            ["corpus", "generate", "--family", "grid", "--size", "1"]
        )
        assert code == 2
        assert "smallest" in capsys.readouterr().err

    def test_seed_changes_random_family_only(self, capsys):
        assert main(
            ["corpus", "generate", "--family", "random", "--seed", "1"]
        ) == 0
        first = capsys.readouterr().out
        assert main(
            ["corpus", "generate", "--family", "random", "--seed", "2"]
        ) == 0
        assert capsys.readouterr().out != first
        assert main(
            ["corpus", "generate", "--family", "grid", "--seed", "1"]
        ) == 0
        grid_first = capsys.readouterr().out
        assert main(
            ["corpus", "generate", "--family", "grid", "--seed", "2"]
        ) == 0
        assert capsys.readouterr().out == grid_first
