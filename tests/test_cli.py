"""Tests for the command-line interface."""

import pytest

from repro.cli.main import main
from repro.io import save_model
from repro.mdp import chain_dtmc


@pytest.fixture
def chain_file(tmp_path):
    path = tmp_path / "chain.json"
    save_model(chain_dtmc(5, forward_probability=0.5), path)
    return str(path)


class TestCheck:
    def test_satisfied_returns_zero(self, chain_file, capsys):
        code = main(["check", chain_file, 'P>=0.9 [ F "goal" ]'])
        assert code == 0
        out = capsys.readouterr().out
        assert "satisfied" in out
        assert "value at initial state" in out

    def test_violated_returns_one(self, chain_file, capsys):
        code = main(["check", chain_file, 'R<=6 [ F "goal" ]'])
        assert code == 1
        assert "violated" in capsys.readouterr().out


class TestModelRepair:
    def test_repair_writes_output(self, chain_file, tmp_path, capsys):
        out_file = tmp_path / "repaired.json"
        code = main(
            [
                "model-repair",
                chain_file,
                'R<=6 [ F "goal" ]',
                "-o",
                str(out_file),
            ]
        )
        assert code == 0
        assert out_file.exists()
        out = capsys.readouterr().out
        assert "status: repaired" in out
        assert "epsilon" in out
        # The written model satisfies the property.
        assert main(["check", str(out_file), 'R<=6 [ F "goal" ]']) == 0

    def test_infeasible_returns_nonzero(self, chain_file, capsys):
        code = main(
            [
                "model-repair",
                chain_file,
                'R<=6 [ F "goal" ]',
                "--max-perturbation",
                "0.001",
            ]
        )
        assert code == 1
        assert "infeasible" in capsys.readouterr().out


class TestExportPrism:
    def test_export_to_stdout(self, chain_file, capsys):
        assert main(["export-prism", chain_file]) == 0
        assert "dtmc" in capsys.readouterr().out

    def test_export_to_file(self, chain_file, tmp_path, capsys):
        out_file = tmp_path / "model.pm"
        assert main(["export-prism", chain_file, "-o", str(out_file)]) == 0
        assert out_file.read_text().startswith("dtmc")


class TestDemos:
    def test_car_demo(self, capsys):
        assert main(["car-demo"]) == 0
        out = capsys.readouterr().out
        assert "repaired theta" in out
        assert "policy safe    : True" in out

    def test_wsn_demo(self, capsys):
        assert main(["wsn-demo", "--bound", "40"]) == 0
        out = capsys.readouterr().out
        assert "status: repaired" in out


class TestCounterexample:
    def test_violated_bound_lists_paths(self, tmp_path, capsys):
        from repro.io import save_model
        from repro.mdp import DTMC

        chain = DTMC(
            states=["s", "bad", "safe"],
            transitions={
                "s": {"bad": 0.6, "safe": 0.4},
                "bad": {"bad": 1.0},
                "safe": {"safe": 1.0},
            },
            initial_state="s",
            labels={"bad": {"bad"}},
        )
        path = tmp_path / "chain.json"
        save_model(chain, path)
        code = main(["counterexample", str(path), 'P<=0.5 [ F "bad" ]'])
        assert code == 1
        out = capsys.readouterr().out
        assert "violated" in out
        assert "s -> bad" in out

    def test_holding_property_reports_none(self, chain_file, capsys):
        code = main(["counterexample", chain_file, 'P<=0.999 [ F "missing" ]'])
        assert code == 0
        assert "no counterexample" in capsys.readouterr().out
