"""Unit and property tests for the dynamic-programming solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mdp import (
    MDP,
    chain_dtmc,
    expected_total_reward,
    policy_evaluation,
    policy_iteration,
    q_values,
    random_mdp,
    value_iteration,
)
from repro.mdp.policy import DeterministicPolicy


@pytest.fixture
def bandit_mdp() -> MDP:
    """One-state MDP whose best action is obvious from action rewards."""
    return MDP(
        states=["s"],
        transitions={"s": {"good": {"s": 1.0}, "bad": {"s": 1.0}}},
        initial_state="s",
        action_rewards={("s", "good"): 1.0, ("s", "bad"): 0.0},
    )


class TestValueIteration:
    def test_geometric_value_closed_form(self, bandit_mdp):
        values, policy = value_iteration(bandit_mdp, discount=0.5)
        # V = 1 + 0.5 V  =>  V = 2
        assert values["s"] == pytest.approx(2.0, abs=1e-8)
        assert policy["s"] == "good"

    def test_discount_validation(self, bandit_mdp):
        with pytest.raises(ValueError):
            value_iteration(bandit_mdp, discount=1.5)

    def test_prefers_safer_action(self, two_action_mdp):
        mdp = two_action_mdp.with_rewards(state_rewards={"goal": 1.0})
        _, policy = value_iteration(mdp, discount=0.9)
        assert policy["s"] == "a"

    def test_tie_break_deterministic(self, two_action_mdp):
        _, policy_1 = value_iteration(two_action_mdp, discount=0.9)
        _, policy_2 = value_iteration(two_action_mdp, discount=0.9)
        assert policy_1 == policy_2


class TestQValues:
    def test_q_consistent_with_values(self, two_action_mdp):
        mdp = two_action_mdp.with_rewards(state_rewards={"goal": 1.0})
        values, policy = value_iteration(mdp, discount=0.9)
        q = q_values(mdp, values, discount=0.9)
        # The optimal action's Q equals V.
        assert q[("s", policy["s"])] == pytest.approx(values["s"], abs=1e-6)
        assert q[("s", "a")] > q[("s", "b")]


class TestPolicyEvaluation:
    def test_matches_hand_solution(self, two_action_mdp):
        mdp = two_action_mdp.with_rewards(state_rewards={"goal": 1.0})
        policy = DeterministicPolicy({"s": "b", "goal": "a", "trap": "a"})
        values = policy_evaluation(mdp, policy, discount=0.5)
        # V(goal) = 1 / (1 - 0.5) = 2;  V(s) = 0.5·(0.2·2) = 0.2
        assert values["goal"] == pytest.approx(2.0)
        assert values["s"] == pytest.approx(0.2)

    def test_iterative_fallback_for_discount_one(self, two_action_mdp):
        policy = DeterministicPolicy({"s": "a", "goal": "a", "trap": "a"})
        values = policy_evaluation(two_action_mdp, policy, discount=1.0)
        assert values["s"] == pytest.approx(0.0)


class TestPolicyIteration:
    def test_agrees_with_value_iteration(self, two_action_mdp):
        mdp = two_action_mdp.with_rewards(state_rewards={"goal": 1.0})
        vi_values, vi_policy = value_iteration(mdp, discount=0.9, tolerance=1e-12)
        pi_values, pi_policy = policy_iteration(mdp, discount=0.9)
        assert pi_policy == vi_policy
        for state in mdp.states:
            assert pi_values[state] == pytest.approx(vi_values[state], abs=1e-6)

    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_agreement_on_random_mdps(self, seed):
        mdp = random_mdp(5, num_actions=2, seed=seed)
        vi_values, _ = value_iteration(mdp, discount=0.9, tolerance=1e-12)
        pi_values, _ = policy_iteration(mdp, discount=0.9)
        for state in mdp.states:
            assert pi_values[state] == pytest.approx(vi_values[state], abs=1e-6)


class TestExpectedTotalReward:
    def test_chain_closed_form(self):
        # Each of the 4 transient states needs 1/0.8 visits on average.
        chain = chain_dtmc(5, forward_probability=0.8)
        values = expected_total_reward(chain, {4})
        assert values[0] == pytest.approx(4 / 0.8)

    def test_target_state_is_zero(self):
        chain = chain_dtmc(3, forward_probability=0.5)
        values = expected_total_reward(chain, {2})
        assert values[2] == 0.0

    def test_unreachable_target_is_infinite(self, two_path_chain):
        values = expected_total_reward(two_path_chain, {"good"})
        assert values["bad"] == np.inf
        # start reaches good only with probability 2/3 => infinite.
        assert values["start"] == np.inf

    def test_reward_scales_linearly(self):
        chain = chain_dtmc(4, forward_probability=0.5, reward_per_state=2.0)
        values = expected_total_reward(chain, {3})
        assert values[0] == pytest.approx(2.0 * 3 / 0.5)
