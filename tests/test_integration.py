"""Cross-module integration tests: the full TML stories."""

import numpy as np
import pytest

from repro.casestudies import car, wsn
from repro.checking import DTMCModelChecker, ParametricDTMC, parametric_constraint
from repro.core import (
    DataRepair,
    ModelRepair,
    QValueConstraint,
    RewardRepair,
    TrustedLearningPipeline,
)
from repro.data import TraceDataset, TraceGroup
from repro.learning import MaxEntIRL, learn_dtmc
from repro.logic import parse_pctl
from repro.mdp import Simulator, chain_dtmc
from repro.mdp.bisimulation import is_epsilon_bisimilar


class TestLearnCheckRepairStory:
    """Simulate → learn (MLE) → check → Model Repair → verify."""

    def test_full_loop(self):
        truth = chain_dtmc(5, forward_probability=0.55)
        sim = Simulator(seed=21)
        traces = sim.sample_chain_many(truth, 300, stop_states={4})
        learned = learn_dtmc(
            traces,
            initial_state=0,
            states=truth.states,
            labels={4: {"goal"}},
            state_rewards={s: 1.0 for s in range(4)},
        )
        formula = parse_pctl('R<=6 [ F "goal" ]')
        assert not DTMCModelChecker(learned).check(formula).holds
        result = ModelRepair.for_chain(learned, formula).repair()
        assert result.status == "repaired"
        assert result.verified
        assert is_epsilon_bisimilar(learned, result.repaired_model, result.epsilon)


class TestParametricAgainstConcreteAtSolution:
    """The symbolic constraint and concrete checker agree at the optimum."""

    def test_wsn_solution_point(self):
        problem = wsn.model_repair_problem(40)
        constraint = problem.problem().parametric_constraints()[0]
        result = problem.repair()
        assert result.status == "repaired"
        symbolic_value = float(
            constraint.function.evaluate(result.assignment)
        )
        concrete_value = DTMCModelChecker(result.repaired_model).check(
            wsn.attempts_property(1)
        ).value
        assert symbolic_value == pytest.approx(concrete_value, abs=1e-6)


class TestPipelineOnWsnData:
    """Section II procedure run on WSN observation data."""

    def test_data_repair_stage_fires(self):
        dataset = wsn.generate_observation_dataset(episodes=300, seed=11)
        bound = wsn.DEFAULT_DATA_REPAIR_BOUND
        formula = wsn.attempts_property(bound)
        nodes = wsn.grid_nodes()

        pipeline = TrustedLearningPipeline(
            dataset=dataset,
            formula=formula,
            data_repair_factory=lambda ds: wsn.data_repair_problem(ds, bound),
            model_repair_factory=None,
        )
        report = pipeline.run()
        assert report.succeeded
        assert report.satisfied_by in ("learned", "data_repair")
        assert DTMCModelChecker(report.model).check(formula).holds


class TestCarRewardStory:
    """IRL → unsafe policy → both repair routes → safe policy."""

    def test_q_constrained_route(self):
        mdp = car.build_car_mdp()
        features = car.car_features()
        repairer = RewardRepair(mdp, features, discount=car.DISCOUNT)
        result = repairer.q_constrained(
            car.PAPER_LEARNED_THETA,
            [QValueConstraint("S1", car.LEFT, car.FORWARD)],
        )
        assert car.policy_is_safe(mdp, result.policy_after)

    def test_projection_route(self):
        from repro.logic.ltl import LGlobally, state_atom
        from repro.logic.rules import LtlRule

        mdp = car.build_car_mdp()
        features = car.car_features()
        repairer = RewardRepair(mdp, features, discount=car.DISCOUNT)
        rule = LtlRule(LGlobally(~state_atom("S2")), weight=25.0)
        result = repairer.project(
            car.PAPER_LEARNED_THETA,
            [rule],
            horizon=6,
            stop_states={"End"},
            learning_rate=0.15,
            max_iterations=120,
        )
        d = result.diagnostics
        assert d["violation_probability_projected"] < d[
            "violation_probability_before"
        ]
        assert d["violation_probability_after"] <= d[
            "violation_probability_before"
        ]


class TestSerialisationInterop:
    """Models survive a save/load cycle and still check identically."""

    def test_wsn_chain_round_trip(self, tmp_path):
        from repro.io import load_model, save_model

        chain = wsn.build_wsn_chain()
        path = tmp_path / "wsn.json"
        save_model(chain, path)
        loaded = load_model(path)
        original_value = DTMCModelChecker(chain).check(
            wsn.attempts_property(1)
        ).value
        loaded_value = DTMCModelChecker(loaded).check(
            wsn.attempts_property(1)
        ).value
        assert loaded_value == pytest.approx(original_value)
