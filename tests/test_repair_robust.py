"""Tests for the interval-certified robust repair flavour."""

import pytest

from repro.checking import DTMCModelChecker
from repro.logic import parse_pctl
from repro.mdp import DTMC, IntervalDTMC
from repro.repair import (
    RepairResult,
    RobustCertificate,
    RobustRepair,
    RobustRepairResult,
    robust_verify,
)


def coin_chain(heads: float = 0.5) -> DTMC:
    return DTMC(
        states=["s0", "good", "bad"],
        transitions={
            "s0": {"good": heads, "bad": 1.0 - heads},
            "good": {"good": 1.0},
            "bad": {"bad": 1.0},
        },
        initial_state="s0",
        labels={"good": {"good"}},
    )


class TestRobustVerify:
    def test_holds_with_positive_margin(self):
        certificate = robust_verify(
            coin_chain(), parse_pctl('P<=0.6 [ F "good" ]'), epsilon=0.01
        )
        assert certificate.robust and certificate.holds
        assert certificate.margin == pytest.approx(0.09, abs=1e-6)
        assert certificate.vi_iterations > 0
        assert certificate.converged
        assert certificate.witness is None

    def test_failure_carries_attaining_witness(self):
        certificate = robust_verify(
            coin_chain(), parse_pctl('P<=0.505 [ F "good" ]'), epsilon=0.01
        )
        assert not certificate.holds
        assert certificate.margin < 0
        witness = certificate.witness
        assert isinstance(witness, DTMC)
        # The witness is a member of the ε-ball and attains the
        # worst-case value the certificate reports.
        ball = IntervalDTMC.from_dtmc(coin_chain(), 0.01)
        assert ball.contains(witness)
        from repro.logic.pctl import AtomicProposition, Eventually

        attained = DTMCModelChecker(witness).path_probabilities(
            Eventually(AtomicProposition("good"))
        )[witness.initial_state]
        assert attained == pytest.approx(certificate.value, abs=1e-6)

    def test_vi_cap_degrades_to_nominal(self):
        certificate = robust_verify(
            coin_chain(),
            parse_pctl('P<=0.6 [ F "good" ]'),
            epsilon=0.01,
            vi_max_iterations=1,
        )
        assert not certificate.robust
        assert certificate.fallback_reason == "vi-iteration-cap"
        # Nominal verdict still reported — never a silent pass.
        assert certificate.holds

    def test_unsupported_formula_falls_back(self):
        certificate = robust_verify(
            coin_chain(),
            parse_pctl('P<=0.6 [ X "good" ]'),
            epsilon=0.01,
        )
        assert not certificate.robust
        assert certificate.fallback_reason == "unsupported-formula"

    def test_certificate_round_trips(self):
        certificate = robust_verify(
            coin_chain(), parse_pctl('P<=0.6 [ F "good" ]'), epsilon=0.01
        )
        payload = certificate.to_dict()
        rebuilt = RobustCertificate.from_dict(payload)
        assert rebuilt.to_dict() == payload


class TestRobustRepair:
    def test_already_robust_short_circuits(self):
        result = RobustRepair.for_chain(
            coin_chain(), parse_pctl('P<=0.6 [ F "good" ]'), epsilon=0.01
        ).repair()
        assert result.status == "already_satisfied"
        assert result.robust and result.verified
        assert result.certificate.margin > 0
        assert result.solver_stats == {}
        assert result.vi_iterations > 0

    def test_repair_tightens_until_robust(self):
        result = RobustRepair.for_chain(
            coin_chain(), parse_pctl('P<=0.3 [ F "good" ]'), epsilon=0.01
        ).repair()
        assert result.status == "repaired"
        assert result.robust and result.verified
        assert result.outer_iterations >= 2  # round 1 lands on the bound
        # The certificate quantifies over the full ε-ball: even nature's
        # worst member of the repaired chain's ball meets the bound.
        worst = IntervalDTMC.from_dtmc(
            result.repaired_model, 0.01
        ).reachability_probability({"good"}, maximise=True)
        assert worst <= 0.3 + 1e-6
        assert result.certificate.margin >= 0
        assert result.solver_stats["iterations"] > 0
        assert result.witness is None

    def test_bounded_budget_fails_gracefully_with_witness(self):
        result = RobustRepair.for_chain(
            coin_chain(),
            parse_pctl('P<=0.3 [ F "good" ]'),
            epsilon=0.01,
            max_outer_iterations=1,
        ).repair()
        assert result.status == "repaired"
        assert result.robust and not result.verified
        assert "still failing" in result.message
        witness = result.witness
        assert isinstance(witness, DTMC)
        assert IntervalDTMC.from_dtmc(result.repaired_model, 0.01).contains(
            witness
        )

    def test_infeasible_is_not_robust(self):
        result = RobustRepair.for_chain(
            coin_chain(),
            parse_pctl('P<=0.3 [ F "good" ]'),
            epsilon=0.01,
            max_perturbation=0.01,
        ).repair()
        assert result.status == "infeasible"
        assert not result.feasible and not result.robust

    def test_vi_cap_forces_annotated_nominal_fallback(self):
        result = RobustRepair.for_chain(
            coin_chain(),
            parse_pctl('P<=0.3 [ F "good" ]'),
            epsilon=0.01,
            vi_max_iterations=1,
        ).repair()
        assert result.status in ("already_satisfied", "repaired")
        assert not result.robust
        assert result.certificate.fallback_reason == "vi-iteration-cap"
        # The nominal verdict is surfaced, not raised.
        assert result.verified

    def test_zero_epsilon_matches_nominal_verdicts(self):
        from repro.core import ModelRepair

        for bound, perturbation in (
            (0.6, None),
            (0.3, None),
            (0.3, 0.01),
        ):
            formula = parse_pctl(f'P<={bound} [ F "good" ]')
            nominal = ModelRepair.for_chain(
                coin_chain(), formula, max_perturbation=perturbation
            ).repair()
            robust = RobustRepair.for_chain(
                coin_chain(),
                formula,
                epsilon=0.0,
                max_perturbation=perturbation,
            ).repair()
            assert robust.status == nominal.status
            assert robust.feasible == nominal.feasible

    def test_rejects_builders_without_problem(self):
        with pytest.raises(TypeError):
            RobustRepair(object())

    def test_rejects_negative_epsilon(self):
        from repro.core import ModelRepair

        base = ModelRepair.for_chain(
            coin_chain(), parse_pctl('P<=0.5 [ F "good" ]')
        )
        with pytest.raises(ValueError):
            RobustRepair(base, epsilon=-0.1)


class TestSerialisation:
    @pytest.mark.parametrize(
        "bound,kwargs",
        [
            (0.6, {}),
            (0.3, {}),
            (0.3, {"max_perturbation": 0.01}),
            (0.3, {"max_outer_iterations": 1}),
        ],
    )
    def test_round_trip(self, bound, kwargs):
        result = RobustRepair.for_chain(
            coin_chain(),
            parse_pctl(f'P<={bound} [ F "good" ]'),
            epsilon=0.01,
            **kwargs,
        ).repair()
        payload = result.to_dict()
        assert payload["flavor"] == "robust"
        rebuilt = RepairResult.from_dict(payload)
        assert isinstance(rebuilt, RobustRepairResult)
        assert rebuilt.to_dict() == payload


class TestApi:
    def test_repair_robust_entry_point(self):
        from repro.core import repair_robust

        result = repair_robust(
            coin_chain(), 'P<=0.3 [ F "good" ]', epsilon=0.01
        )
        assert isinstance(result, RobustRepairResult)
        assert result.robust and result.verified

    def test_vi_cap_passes_through(self):
        from repro.core import repair_robust

        result = repair_robust(
            coin_chain(),
            'P<=0.6 [ F "good" ]',
            epsilon=0.01,
            vi_max_iterations=1,
        )
        assert not result.robust
        assert result.certificate.fallback_reason == "vi-iteration-cap"


@pytest.mark.slow
class TestWSNAcceptance:
    def test_nominally_satisfied_but_fragile_bound_gets_robustified(self):
        """The ISSUE acceptance scenario: X=50 holds nominally but not
        at ±0.01; robust repair must actually move the chain and then
        certify the worst case over the full interval set."""
        from repro.casestudies import wsn

        base = wsn.model_repair_problem(50.0)
        pre = robust_verify(
            base.problem().original, base.formula, epsilon=0.01
        )
        nominal = DTMCModelChecker(base.problem().original).check(base.formula)
        assert nominal.holds and not pre.holds  # fragile, not broken

        result = RobustRepair(base, epsilon=0.01).repair()
        assert result.status == "repaired"
        assert result.robust and result.verified
        assert result.certificate.margin > 0
        assert result.vi_iterations > 0
        assert result.solver_stats["iterations"] > 0
        assert any(abs(v) > 1e-4 for v in result.assignment.values())
