"""HTTP façade: health, counters, synchronous batch execution."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.mdp import chain_dtmc
from repro.service.jobs import CheckJob, ModelRepairJob
from repro.service.server import build_server
from repro.service.telemetry import Telemetry

pytestmark = pytest.mark.service


@pytest.fixture
def service():
    """A running server on an ephemeral port; yields its base URL."""
    telemetry = Telemetry()
    server = build_server(port=0, telemetry=telemetry)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://{host}:{port}", telemetry
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def get_json(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


def post_json(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.loads(response.read())


class TestEndpoints:
    def test_health(self, service):
        base, _ = service
        status, body = get_json(base + "/health")
        assert status == 200
        assert body["status"] == "ok"

    def test_unknown_path_404(self, service):
        base, _ = service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(base + "/nope")
        assert excinfo.value.code == 404

    def test_batch_executes_jobs(self, service):
        base, telemetry = service
        chain = chain_dtmc(5, forward_probability=0.5)
        jobs = [
            CheckJob.for_model("c1", chain, 'P>=0.2 [ F "goal" ]').to_dict(),
            ModelRepairJob.for_model(
                "m1", chain, 'R<=6 [ F "goal" ]'
            ).to_dict(),
        ]
        status, report = post_json(base + "/batch", {"jobs": jobs})
        assert status == 200
        assert report["statuses"] == {"succeeded": 2}
        by_id = {entry["job_id"]: entry for entry in report["outcomes"]}
        assert by_id["c1"]["result"]["holds"] is True
        assert by_id["m1"]["result"]["status"] == "repaired"
        assert telemetry.counters()["job_end"] == 2

    def test_counters_reflect_served_batches(self, service):
        base, _ = service
        chain = chain_dtmc(4, forward_probability=0.5)
        job = CheckJob.for_model("c", chain, 'P>=0.2 [ F "goal" ]').to_dict()
        post_json(base + "/batch", {"jobs": [job]})
        _, counters = get_json(base + "/counters")
        assert counters["job_end"] >= 1
        _, health = get_json(base + "/health")
        assert health["batches"] == 1

    def test_malformed_batch_400(self, service):
        base, _ = service
        for payload in (
            {"jobs": [{"kind": "nope", "job_id": "x"}]},
            {"jobs": [{"kind": "check"}]},  # missing job_id/model
            {"jobs": ["not-an-object"]},
            {"no_jobs_key": True},
        ):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post_json(base + "/batch", payload)
            assert excinfo.value.code == 400

    def test_non_finite_numbers_400(self, service):
        # json.dumps/loads pass the non-standard NaN token through, so
        # the validator must catch it before it poisons a worker.
        base, _ = service
        chain = chain_dtmc(4, forward_probability=0.5)
        job = CheckJob.for_model("nan", chain, 'P>=0.2 [ F "goal" ]').to_dict()
        job["smc_samples"] = float("nan")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_json(base + "/batch", {"jobs": [job]})
        assert excinfo.value.code == 400

    def test_per_request_retry_override(self, service):
        base, _ = service
        # An unknown-formula job fails deterministically; max_retries=0
        # must terminate it after exactly one attempt.
        chain = chain_dtmc(4, forward_probability=0.5)
        job = CheckJob.for_model("bad", chain, "this is not PCTL").to_dict()
        status, report = post_json(
            base + "/batch", {"jobs": [job], "max_retries": 0}
        )
        assert status == 200
        outcome = report["outcomes"][0]
        assert outcome["status"] == "failed-after-retries"
        assert outcome["attempts"] == 1
