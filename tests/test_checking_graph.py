"""Unit tests for the qualitative graph precomputations."""

from repro.checking import (
    backward_reachable,
    prob0_states,
    prob0A_states,
    prob0E_states,
    prob1_states,
    prob1A_states,
    prob1E_states,
)
from repro.mdp import DTMC, MDP


def diamond_chain() -> DTMC:
    """init splits to left/right; left reaches goal, right reaches trap."""
    return DTMC(
        states=["init", "left", "right", "goal", "trap"],
        transitions={
            "init": {"left": 0.5, "right": 0.5},
            "left": {"goal": 1.0},
            "right": {"trap": 1.0},
            "goal": {"goal": 1.0},
            "trap": {"trap": 1.0},
        },
        initial_state="init",
        labels={"goal": {"goal"}},
    )


class TestBackwardReachable:
    def test_plain(self):
        chain = diamond_chain()
        assert backward_reachable(chain, {"goal"}) == {"goal", "left", "init"}

    def test_through_restriction(self):
        chain = diamond_chain()
        reached = backward_reachable(chain, {"goal"}, through={"goal"})
        assert reached == {"goal"}


class TestDtmcQualitative:
    def test_prob0(self):
        chain = diamond_chain()
        assert prob0_states(chain, {"goal"}) == {"right", "trap"}

    def test_prob1(self):
        chain = diamond_chain()
        assert prob1_states(chain, {"goal"}) == {"goal", "left"}

    def test_prob1_whole_chain_when_certain(self, simple_chain):
        assert prob1_states(simple_chain, {4}) == frozenset(simple_chain.states)

    def test_allowed_restricts_paths(self):
        chain = diamond_chain()
        # goal only reachable through "left"; forbidding it kills init.
        zero = prob0_states(chain, {"goal"}, allowed={"right"})
        assert "init" in zero

    def test_self_loop_state_with_exit_not_prob1(self, two_path_chain):
        # start reaches "good" with probability 2/3 only.
        assert "start" not in prob1_states(two_path_chain, {"good"})
        assert "start" not in prob0_states(two_path_chain, {"good"})


def choice_mdp() -> MDP:
    """One controllable state: action a goes to goal, action b loops."""
    return MDP(
        states=["s", "goal"],
        transitions={
            "s": {"a": {"goal": 1.0}, "b": {"s": 1.0}},
            "goal": {"a": {"goal": 1.0}},
        },
        initial_state="s",
        labels={"goal": {"goal"}},
    )


def coin_mdp() -> MDP:
    """Both actions are coin flips between goal and trap."""
    return MDP(
        states=["s", "goal", "trap"],
        transitions={
            "s": {
                "a": {"goal": 0.5, "trap": 0.5},
                "b": {"goal": 0.5, "trap": 0.5},
            },
            "goal": {"a": {"goal": 1.0}},
            "trap": {"a": {"trap": 1.0}},
        },
        initial_state="s",
        labels={"goal": {"goal"}},
    )


class TestMdpQualitative:
    def test_prob0A_unreachable(self):
        mdp = choice_mdp()
        assert prob0A_states(mdp, {"goal"}) == frozenset()

    def test_prob0E_scheduler_can_avoid(self):
        mdp = choice_mdp()
        # Looping forever with action b avoids the goal.
        assert "s" in prob0E_states(mdp, {"goal"})

    def test_prob0E_cannot_avoid_coin(self):
        mdp = coin_mdp()
        assert "s" not in prob0E_states(mdp, {"goal"})

    def test_prob1E_scheduler_can_force(self):
        mdp = choice_mdp()
        assert "s" in prob1E_states(mdp, {"goal"})

    def test_prob1A_all_schedulers(self):
        mdp = choice_mdp()
        # Scheduler b never reaches the goal.
        assert "s" not in prob1A_states(mdp, {"goal"})

    def test_prob1A_coin_flip_not_certain(self):
        mdp = coin_mdp()
        assert "s" not in prob1A_states(mdp, {"goal"})
        assert "goal" in prob1A_states(mdp, {"goal"})

    def test_single_action_mdp_matches_chain(self, two_path_chain):
        """With one action everywhere, all four sets collapse to prob0/1."""
        mdp = MDP(
            states=two_path_chain.states,
            transitions={
                s: {"a": dict(two_path_chain.transitions[s])}
                for s in two_path_chain.states
            },
            initial_state=two_path_chain.initial_state,
            labels=two_path_chain.labels,
        )
        targets = {"good"}
        assert prob0A_states(mdp, targets) == prob0_states(two_path_chain, targets)
        assert prob0E_states(mdp, targets) == prob0_states(two_path_chain, targets)
        assert prob1E_states(mdp, targets) == prob1_states(two_path_chain, targets)
        assert prob1A_states(mdp, targets) == prob1_states(two_path_chain, targets)
