"""Unit tests for propositional formulas."""

import pytest

from repro.logic.propositional import (
    PConst,
    PNot,
    all_assignments,
    is_tautology,
    models,
    prop_atom,
)


A = prop_atom("a")
B = prop_atom("b")


class TestEvaluation:
    def test_variable_lookup(self):
        assert A.evaluate({"a": True})
        assert not A.evaluate({"a": False})

    def test_constants(self):
        assert PConst(True).evaluate({})
        assert not PConst(False).evaluate({})

    def test_connectives(self):
        env = {"a": True, "b": False}
        assert (A | B).evaluate(env)
        assert not (A & B).evaluate(env)
        assert (~B).evaluate(env)
        assert not A.implies(B).evaluate(env)
        assert B.implies(A).evaluate(env)

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError):
            A.evaluate({})


class TestVariables:
    def test_collects_all(self):
        assert (A & ~B).variables() == {"a", "b"}
        assert PConst(True).variables() == frozenset()


class TestSemanticsHelpers:
    def test_all_assignments_count(self):
        assert len(list(all_assignments(frozenset({"a", "b"})))) == 4

    def test_tautology(self):
        assert is_tautology(A | ~A)
        assert not is_tautology(A)

    def test_models(self):
        satisfying = models(A & B)
        assert satisfying == [{"a": True, "b": True}]

    def test_de_morgan(self):
        assert is_tautology(
            (~(A & B)).implies(~A | ~B) & (~A | ~B).implies(~(A & B))
        )
