"""Unit tests for the seeded simulator."""

import pytest

from repro.mdp import DeterministicPolicy, Simulator, chain_dtmc
from repro.checking import DTMCModelChecker
from repro.logic import parse_pctl


class TestChainSampling:
    def test_same_seed_same_trajectories(self, two_path_chain):
        runs_a = Simulator(seed=5).sample_chain_many(two_path_chain, 20)
        runs_b = Simulator(seed=5).sample_chain_many(two_path_chain, 20)
        assert runs_a == runs_b

    def test_different_seed_differs(self, two_path_chain):
        runs_a = Simulator(seed=1).sample_chain_many(two_path_chain, 20)
        runs_b = Simulator(seed=2).sample_chain_many(two_path_chain, 20)
        assert runs_a != runs_b

    def test_starts_at_initial_state(self, two_path_chain):
        run = Simulator(seed=0).sample_chain(two_path_chain)
        assert run.state_at(0) == "start"

    def test_stop_states_halt(self, two_path_chain):
        run = Simulator(seed=0).sample_chain(
            two_path_chain, stop_states={"good", "bad"}
        )
        final = run.state_at(len(run) - 1)
        assert final in {"good", "bad"}
        # No state after the stop state.
        assert all(s not in {"good", "bad"} for s in run.states()[:-1])

    def test_absorbing_state_ends_run(self):
        chain = chain_dtmc(3, forward_probability=1.0)
        run = Simulator(seed=0).sample_chain(chain, max_steps=100)
        assert run.states() == (0, 1, 2)

    def test_max_steps_respected(self, two_path_chain):
        run = Simulator(seed=0).sample_chain(two_path_chain, max_steps=3)
        assert len(run) <= 4


class TestMdpSampling:
    def test_policy_actions_recorded(self, two_action_mdp):
        policy = DeterministicPolicy({"s": "a", "goal": "a", "trap": "a"})
        run = Simulator(seed=0).sample_mdp(
            two_action_mdp, policy, stop_states={"goal", "trap"}
        )
        assert run.action_at(0) == "a"
        assert run.action_at(len(run) - 1) is None

    def test_start_state_override(self, two_action_mdp):
        policy = DeterministicPolicy({"s": "a", "goal": "a", "trap": "a"})
        run = Simulator(seed=0).sample_mdp(
            two_action_mdp, policy, start_state="goal", stop_states={"goal"}
        )
        assert run.state_at(0) == "goal"


class TestMonteCarloAgreement:
    def test_reachability_estimate_matches_model_checker(self, two_path_chain):
        exact = (
            DTMCModelChecker(two_path_chain)
            .check(parse_pctl('P>=0 [ F "safe" ]'))
            .value
        )
        estimate = Simulator(seed=11).estimate_reachability(
            two_path_chain, {"good"}, samples=3000
        )
        assert estimate == pytest.approx(exact, abs=0.03)
