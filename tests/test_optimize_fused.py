"""Fused NLP solve path: stacked kernels vs the per-constraint ladder.

``NonlinearProgram.solve`` must give the same verdicts and (up to solver
tolerance) the same optima whether it runs the fused stacked-kernel path
(the default for compiled parametric constraints), an explicitly
provided kernel, or the legacy per-constraint callbacks
(``stacked=False``) — the fused path is a pure evaluation strategy, not
a different optimisation problem.  The cache/service layers ride on the
same guarantee: a warm store must reuse stacked kernels rather than
recompile, and the dispatch savings must reach telemetry.
"""

import pytest

from repro.checking.cache import CheckCache
from repro.checking.parametric import ParametricConstraint
from repro.corpus import FAMILIES
from repro.mdp import chain_dtmc
from repro.optimize.nlp import (
    NonlinearProgram,
    Variable,
    constraint_from_parametric,
)
from repro.repair.engine import solve_repair
from repro.service import BatchRunner, ModelRepairJob, Telemetry
from repro.service.telemetry import SUMMED_FIELDS
from repro.symbolic import Polynomial, RationalFunction
from repro.symbolic.compile import StackedConstraintKernel, kernel_stats

X = Polynomial.variable("x")
Y = Polynomial.variable("y")


def ring_program():
    """Minimise x²+y² s.t. (x+y)/(xy+2) ≥ 0.5 — joint-eligible shape."""
    function = RationalFunction(X + Y, X * Y + 2)
    return NonlinearProgram(
        variables=[
            Variable("x", -1.0, 1.0, initial=0.9),
            Variable("y", -1.0, 1.0, initial=0.9),
        ],
        objective=lambda v: v["x"] ** 2 + v["y"] ** 2,
        objective_gradient=lambda v: {"x": 2 * v["x"], "y": 2 * v["y"]},
        constraints=[
            constraint_from_parametric(
                ParametricConstraint(function, ">=", 0.5)
            )
        ],
    )


class TestFusedSolveEquivalence:
    def test_fused_matches_legacy_path(self):
        fused = ring_program().solve(seed=1)
        legacy = ring_program().solve(seed=1, stacked=False)
        assert fused.feasible and legacy.feasible
        assert fused.objective_value == pytest.approx(
            legacy.objective_value, rel=1e-6
        )

    def test_joint_path_engages_for_eligible_programs(self):
        result = ring_program().solve(seed=1)
        assert result.solver_stats.get("joint_solves", 0) == 1

    def test_infeasible_agrees_with_legacy(self):
        function = RationalFunction(X, Polynomial.one())

        def build():
            return NonlinearProgram(
                variables=[Variable("x", 0.0, 1.0, initial=0.5)],
                objective=lambda v: v["x"] ** 2,
                objective_gradient=lambda v: {"x": 2 * v["x"]},
                constraints=[
                    constraint_from_parametric(
                        ParametricConstraint(function, ">=", 2.0)
                    )
                ],
            )

        assert not build().solve(seed=0).feasible
        assert not build().solve(seed=0, stacked=False).feasible

    def test_explicit_kernel_size_mismatch_rejected(self):
        program = ring_program()
        wrong = StackedConstraintKernel(
            [
                (RationalFunction(X, Polynomial.one()), 1.0, 0.0),
                (RationalFunction(Y, Polynomial.one()), 1.0, 0.0),
            ]
        )
        with pytest.raises(ValueError):
            program.solve(stacked=wrong)

    def test_foreign_kernel_params_fall_back_gracefully(self):
        z = Polynomial.variable("z")
        foreign = StackedConstraintKernel(
            [(RationalFunction(z, Polynomial.one()), 1.0, -0.5)]
        )
        program = ring_program()
        result = program.solve(stacked=foreign)
        assert result.feasible  # silently solved on the legacy path

    def test_fused_dispatches_fewer_kernel_calls(self):
        before = dict(kernel_stats())
        ring_program().solve(seed=2)
        mid = dict(kernel_stats())
        ring_program().solve(seed=2, stacked=False)
        after = kernel_stats()
        fused_dispatches = mid["dispatches"] - before["dispatches"]
        legacy_dispatches = after["dispatches"] - mid["dispatches"]
        assert fused_dispatches < legacy_dispatches


class TestStackedKernelCache:
    def constraints(self):
        return [
            ParametricConstraint(
                RationalFunction(X + Y, X * Y + 2), ">=", 0.5
            ),
            ParametricConstraint(RationalFunction(X, X + 1), "<=", 0.9),
        ]

    def test_single_constraint_reuses_its_own_kernel(self):
        cache = CheckCache()
        constraint = self.constraints()[0]
        kernel = cache.stacked_kernel([constraint])
        assert kernel is constraint.stacked()

    def test_multi_constraint_kernel_is_content_addressed(self):
        cache = CheckCache()
        first = cache.stacked_kernel(self.constraints())
        before = kernel_stats()["compilations"]
        second = cache.stacked_kernel(self.constraints())
        assert first is second
        assert kernel_stats()["compilations"] == before

    def test_empty_constraint_list_yields_none(self):
        assert CheckCache().stacked_kernel([]) is None

    def test_repair_problem_kernel_is_stable_across_calls(self):
        problem = FAMILIES["refuel"].repair(8).problem()
        first = problem.stacked_kernel()
        before = kernel_stats()["compilations"]
        assert problem.stacked_kernel() is first
        assert kernel_stats()["compilations"] == before


class TestServiceReuse:
    def test_same_fingerprint_jobs_share_kernels(self, tmp_path):
        chain = chain_dtmc(5, forward_probability=0.5)
        telemetry = Telemetry()
        runner = BatchRunner(
            max_workers=1, store_dir=tmp_path, telemetry=telemetry
        )
        jobs = [
            ModelRepairJob.for_model(f"rep-{i}", chain, 'R<=6 [ F "goal" ]')
            for i in range(2)
        ]
        report = runner.run(jobs)
        assert report.by_status() == {"succeeded": 2}
        # The duplicate job is served from the store: no second solve,
        # hence no second round of kernel work.
        assert sum(1 for outcome in report if outcome.cached) == 1

    def test_kernel_dispatches_reach_telemetry(self, tmp_path):
        chain = chain_dtmc(5, forward_probability=0.5)
        telemetry = Telemetry()
        runner = BatchRunner(
            max_workers=1, store_dir=tmp_path, telemetry=telemetry
        )
        report = runner.run(
            [ModelRepairJob.for_model("rep", chain, 'R<=6 [ F "goal" ]')]
        )
        assert report.by_status() == {"succeeded": 1}
        counters = telemetry.counters()
        assert counters.get("kernel_dispatches", 0) > 0
        assert counters.get("kernel_evaluations", 0) >= counters[
            "kernel_dispatches"
        ]

    def test_kernel_dispatches_is_a_summed_field(self):
        assert "kernel_dispatches" in SUMMED_FIELDS
        assert "kernel_evaluations" in SUMMED_FIELDS


class TestSolveRepairFusedFlag:
    def test_default_is_fused_and_verified(self):
        from repro.core.model_repair import ModelRepair
        from repro.logic import parse_pctl

        chain = chain_dtmc(5, forward_probability=0.5)
        outcome = solve_repair(
            ModelRepair.for_chain(
                chain, parse_pctl('R<=6 [ F "goal" ]'), engine="sparse"
            ).problem()
        )
        assert outcome.status == "repaired"
        assert outcome.verified

    def test_fused_false_gives_identical_verdict(self):
        from repro.core.model_repair import ModelRepair
        from repro.logic import parse_pctl

        chain = chain_dtmc(5, forward_probability=0.5)

        def problem():
            return ModelRepair.for_chain(
                chain, parse_pctl('R<=6 [ F "goal" ]'), engine="sparse"
            ).problem()

        fused = solve_repair(problem(), fused=True)
        unfused = solve_repair(problem(), fused=False)
        assert fused.status == unfused.status == "repaired"
        assert fused.objective_value == pytest.approx(
            unfused.objective_value, rel=1e-6
        )
