"""Telemetry: JSON-lines emission, counters, and offline aggregation."""

import json
import threading

from repro.service.telemetry import (
    SUMMED_FIELDS,
    Telemetry,
    aggregate_events,
    read_events,
)


def fixed_clock():
    return 1722945600.0


class TestEmission:
    def test_event_shape(self):
        telemetry = Telemetry(clock=fixed_clock)
        record = telemetry.emit("job_end", job_id="a", status="succeeded")
        assert record == {
            "ts": 1722945600.0,
            "event": "job_end",
            "job_id": "a",
            "status": "succeeded",
        }
        assert telemetry.events == [record]

    def test_written_as_json_lines(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        telemetry = Telemetry(path=path, clock=fixed_clock)
        telemetry.emit("batch_start", jobs=3)
        telemetry.emit("batch_end", wall_clock=1.5)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["event"] == "batch_start"
        assert json.loads(lines[1])["wall_clock"] == 1.5

    def test_unserialisable_fields_stringified(self):
        telemetry = Telemetry(clock=fixed_clock)
        record = telemetry.emit("job_end", obj=object())
        # The line must always be writable; objects degrade to str().
        assert json.dumps(record, default=str)

    def test_thread_safety(self, tmp_path):
        telemetry = Telemetry(path=tmp_path / "t.jsonl")
        threads = [
            threading.Thread(
                target=lambda: [telemetry.emit("tick") for _ in range(50)]
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert telemetry.counters()["tick"] == 200
        assert len(read_events(tmp_path / "t.jsonl")) == 200


class TestCounters:
    def test_event_counts(self):
        telemetry = Telemetry()
        telemetry.emit("job_start")
        telemetry.emit("job_start")
        telemetry.emit("job_end")
        counters = telemetry.counters()
        assert counters["job_start"] == 2
        assert counters["job_end"] == 1

    def test_summed_fields_accumulate(self):
        telemetry = Telemetry()
        telemetry.emit("job_attempt", solver_iterations=10, cache_hits=2)
        telemetry.emit("job_attempt", solver_iterations=5, cache_hits=1)
        counters = telemetry.counters()
        assert counters["solver_iterations"] == 15
        assert counters["cache_hits"] == 3

    def test_non_numeric_summed_field_ignored(self):
        telemetry = Telemetry()
        telemetry.emit("weird", cache_hits="not-a-number")
        assert "cache_hits" not in telemetry.counters()

    def test_summary_lists_all_counters(self):
        telemetry = Telemetry()
        telemetry.emit("job_end", parametric_eliminations=2)
        summary = telemetry.summary()
        assert "job_end" in summary
        assert "parametric_eliminations" in summary

    def test_empty_summary(self):
        assert "no events" in Telemetry().summary()


class TestOfflineAggregation:
    def test_read_events_skips_garbage(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(
            '{"event": "a", "ts": 1}\n'
            "this line was truncated by a cra\n"
            '{"event": "b", "ts": 2, "solver_iterations": 7}\n'
        )
        events = read_events(path)
        assert [event["event"] for event in events] == ["a", "b"]

    def test_aggregate_matches_live_counters(self, tmp_path):
        path = tmp_path / "log.jsonl"
        telemetry = Telemetry(path=path)
        telemetry.emit("job_attempt", cache_misses=3)
        telemetry.emit("job_end", status="succeeded")
        telemetry.emit("job_attempt", cache_misses=1, solver_iterations=4)
        assert aggregate_events(read_events(path)) == telemetry.counters()

    def test_summed_fields_registry(self):
        # The runner relies on these names lining up with job_attempt
        # event fields; a rename must update both sides.
        assert "parametric_eliminations" in SUMMED_FIELDS
        assert "solver_iterations" in SUMMED_FIELDS
