"""Unit tests for Data Repair (Definition 3, Equations 7-15)."""

import pytest

from repro.checking import DTMCModelChecker
from repro.core import DataRepair
from repro.data import TraceDataset, TraceGroup
from repro.logic import parse_pctl
from repro.mdp import Trajectory


def observations(source, target, count):
    return [Trajectory.from_states([source, target]) for _ in range(count)]


@pytest.fixture
def noisy_dataset() -> TraceDataset:
    """40% forward successes, 60% failures (the paper's proportions)."""
    return TraceDataset(
        [
            TraceGroup("success", observations("a", "b", 40), droppable=False),
            TraceGroup("failure", observations("a", "a", 60)),
        ]
    )


def goal_property(bound):
    return parse_pctl(f'R<={bound} [ F "goal" ]')


def make_repair(dataset, bound, **kwargs):
    return DataRepair(
        dataset=dataset,
        formula=goal_property(bound),
        initial_state="a",
        states=["a", "b"],
        labels={"b": {"goal"}},
        state_rewards={"a": 1.0},
        **kwargs,
    )


class TestLearnedModel:
    def test_mle_from_dataset(self, noisy_dataset):
        chain = make_repair(noisy_dataset, 2).learned_model()
        assert chain.probability("a", "b") == pytest.approx(0.4)

    def test_parametric_model_matches_at_zero(self, noisy_dataset):
        repair = make_repair(noisy_dataset, 2)
        parametric = repair.parametric_model()
        chain = parametric.instantiate({"drop_failure": 0.0})
        assert chain.probability("a", "b") == pytest.approx(0.4)


class TestRepair:
    def test_repair_reaches_bound(self, noisy_dataset):
        # E[attempts] = 1/0.4 = 2.5; require <= 2 -> need p(a->b) >= 0.5.
        result = make_repair(noisy_dataset, 2).repair()
        assert result.status == "repaired"
        assert result.verified
        drop = result.drop_probabilities["failure"]
        # 40/(40+60(1-p)) >= 0.5  =>  p >= 1/3.
        assert drop == pytest.approx(1 / 3, abs=0.02)
        checked = DTMCModelChecker(result.repaired_model).check(goal_property(2))
        assert checked.holds

    def test_pinned_groups_get_no_parameter(self, noisy_dataset):
        result = make_repair(noisy_dataset, 2).repair()
        assert "success" not in result.drop_probabilities

    def test_expected_dropped_counts_traces(self, noisy_dataset):
        result = make_repair(noisy_dataset, 2).repair()
        assert result.expected_dropped == pytest.approx(
            60 * result.drop_probabilities["failure"], abs=1e-6
        )

    def test_already_satisfied(self, noisy_dataset):
        result = make_repair(noisy_dataset, 10).repair()
        assert result.status == "already_satisfied"
        assert result.drop_probabilities == {}
        assert result.expected_dropped == 0.0

    def test_infeasible_when_nothing_droppable(self):
        dataset = TraceDataset(
            [TraceGroup("all", observations("a", "a", 10) +
                        observations("a", "b", 1), droppable=False)]
        )
        result = DataRepair(
            dataset=dataset,
            formula=goal_property(2),
            initial_state="a",
            states=["a", "b"],
            labels={"b": {"goal"}},
            state_rewards={"a": 1.0},
        ).repair()
        assert result.status == "infeasible"

    def test_infeasible_when_max_drop_too_small(self, noisy_dataset):
        result = make_repair(noisy_dataset, 2, max_drop=0.1).repair()
        assert result.status == "infeasible"

    def test_max_drop_validation(self, noisy_dataset):
        with pytest.raises(ValueError):
            make_repair(noisy_dataset, 2, max_drop=1.5)

    def test_custom_effort_function(self, noisy_dataset):
        weighted = make_repair(
            noisy_dataset,
            2,
            effort=lambda v: sum(10.0 * value for value in v.values()),
        ).repair()
        assert weighted.status == "repaired"


class TestDatasetUtilities:
    def test_duplicate_group_rejected(self):
        with pytest.raises(ValueError):
            TraceDataset(
                [TraceGroup("g", []), TraceGroup("g", [])]
            )

    def test_subsampled_respects_probabilities(self, noisy_dataset):
        repaired = noisy_dataset.subsampled({"failure": 1.0 - 1e-12}, seed=0)
        assert len(repaired.group("failure")) == 0
        assert len(repaired.group("success")) == 40

    def test_states_collects_all(self, noisy_dataset):
        assert noisy_dataset.states() == ["a", "b"]

    def test_group_names_order(self, noisy_dataset):
        assert noisy_dataset.group_names() == ["success", "failure"]
        assert noisy_dataset.droppable_groups() == ["failure"]
