"""Unit and property tests for parametric model checking.

The key correctness property (Propositions 2 and 3 rest on it): the
rational function returned by the parametric engine, evaluated at any
well-formed parameter point, equals what the concrete checker computes
on the instantiated chain.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checking import DTMCModelChecker, ParametricDTMC, parametric_constraint
from repro.checking.parametric import label_satisfaction_set
from repro.logic import parse_pctl
from repro.logic.pctl import AtomicProposition, Eventually
from repro.mdp import random_dtmc
from repro.symbolic import Polynomial, RationalFunction

P = Polynomial.variable("p")
Q = Polynomial.variable("q")


@pytest.fixture
def parametric_two_path():
    """start -> good with prob p, bad with prob q, stays otherwise."""
    return ParametricDTMC(
        states=["start", "good", "bad"],
        transitions={
            "start": {"good": P, "bad": Q, "start": 1 - P - Q},
            "good": {"good": 1},
            "bad": {"bad": 1},
        },
        initial_state="start",
        labels={"good": {"safe"}, "bad": {"unsafe"}},
        state_rewards={"start": 1.0},
    )


class TestConstruction:
    def test_unknown_initial_rejected(self):
        with pytest.raises(ValueError):
            ParametricDTMC(states=["a"], transitions={}, initial_state="b")

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            ParametricDTMC(
                states=["a"], transitions={"a": {"ghost": 1}}, initial_state="a"
            )

    def test_parameters_collected(self, parametric_two_path):
        assert parametric_two_path.parameters() == {"p", "q"}

    def test_from_dtmc_round_trip(self, two_path_chain):
        lifted = ParametricDTMC.from_dtmc(two_path_chain)
        assert lifted.parameters() == frozenset()
        rebuilt = lifted.instantiate({})
        for state in two_path_chain.states:
            for target in two_path_chain.successors(state):
                assert rebuilt.probability(state, target) == pytest.approx(
                    two_path_chain.probability(state, target)
                )

    def test_instantiate_validates(self, parametric_two_path):
        from repro.mdp import ModelValidationError

        with pytest.raises(ModelValidationError):
            parametric_two_path.instantiate({"p": 0.9, "q": 0.9})


class TestReachability:
    def test_closed_form(self, parametric_two_path):
        f = parametric_two_path.reachability_probability({"good"})
        # Pr(F good) = p / (p + q)
        assert f == RationalFunction(P, P + Q)

    def test_initial_in_target(self, parametric_two_path):
        f = parametric_two_path.reachability_probability({"start"})
        assert f == RationalFunction.one()

    def test_unreachable_target_is_zero(self):
        model = ParametricDTMC(
            states=["a", "b"],
            transitions={"a": {"a": 1}, "b": {"b": 1}},
            initial_state="a",
        )
        assert model.reachability_probability({"b"}).is_zero()

    def test_until_with_allowed_restriction(self):
        model = ParametricDTMC(
            states=["s", "via", "target"],
            transitions={
                "s": {"via": P, "target": 1 - P},
                "via": {"target": 1},
                "target": {"target": 1},
            },
            initial_state="s",
            labels={"target": {"t"}, "s": {"a"}},
        )
        # "a" U "t": paths through `via` leave Sat(a) before the target.
        f = model.reachability_probability({"target"}, allowed={"s"})
        assert f == RationalFunction(1 - P)

    def test_methods_agree(self, parametric_two_path):
        gauss = parametric_two_path.reachability_probability(
            {"good"}, method="gauss"
        )
        eliminate = parametric_two_path.reachability_probability(
            {"good"}, method="eliminate"
        )
        assert gauss == eliminate

    def test_unknown_method_rejected(self, parametric_two_path):
        with pytest.raises(ValueError):
            parametric_two_path.reachability_probability({"good"}, method="magic")


class TestExpectedReward:
    def test_geometric_closed_form(self):
        model = ParametricDTMC(
            states=["a", "b"],
            transitions={"a": {"b": P, "a": 1 - P}, "b": {"b": 1}},
            initial_state="a",
            labels={"b": {"done"}},
            state_rewards={"a": 1.0},
        )
        f = model.expected_reward({"b"})
        assert f == RationalFunction(Polynomial.one(), P)

    def test_infinite_reward_rejected(self, parametric_two_path):
        with pytest.raises(ValueError):
            parametric_two_path.expected_reward({"good"})

    def test_methods_agree_on_reward(self):
        model = ParametricDTMC(
            states=["a", "b", "c"],
            transitions={
                "a": {"b": P, "a": 1 - P},
                "b": {"c": Q, "a": 1 - Q},
                "c": {"c": 1},
            },
            initial_state="a",
            labels={"c": {"done"}},
            state_rewards={"a": 1.0, "b": 2.0},
        )
        gauss = model.expected_reward({"c"}, method="gauss")
        eliminate = model.expected_reward({"c"}, method="eliminate")
        point = {"p": 0.3, "q": 0.7}
        assert float(gauss.evaluate(point)) == pytest.approx(
            float(eliminate.evaluate(point))
        )


class TestLabelSatisfaction:
    def test_boolean_combinations(self, parametric_two_path):
        states = parametric_two_path.states
        labels = parametric_two_path.labels
        assert label_satisfaction_set(states, labels, parse_pctl("safe | unsafe")) == {
            "good",
            "bad",
        }
        assert label_satisfaction_set(states, labels, parse_pctl("!safe")) == {
            "start",
            "bad",
        }

    def test_nested_operator_rejected(self, parametric_two_path):
        with pytest.raises(TypeError):
            label_satisfaction_set(
                parametric_two_path.states,
                parametric_two_path.labels,
                parse_pctl("P>=0.5 [ X safe ]"),
            )


class TestParametricConstraint:
    def test_probability_constraint(self, parametric_two_path):
        constraint = parametric_constraint(
            parametric_two_path, parse_pctl('P>=0.6 [ F "safe" ]')
        )
        assert constraint.holds_at({"p": 0.7, "q": 0.1})
        assert not constraint.holds_at({"p": 0.1, "q": 0.7})
        # Margin sign convention.
        assert constraint.margin({"p": 0.7, "q": 0.1}) > 0
        assert constraint.margin({"p": 0.1, "q": 0.7}) < 0

    def test_globally_constraint(self, parametric_two_path):
        constraint = parametric_constraint(
            parametric_two_path, parse_pctl('P>=0.5 [ G !"unsafe" ]')
        )
        # Pr(G !unsafe) = 1 − q/(p+q) = p/(p+q)
        assert constraint.holds_at({"p": 0.6, "q": 0.2})
        assert not constraint.holds_at({"p": 0.2, "q": 0.6})

    def test_reward_constraint(self):
        model = ParametricDTMC(
            states=["a", "b"],
            transitions={"a": {"b": P, "a": 1 - P}, "b": {"b": 1}},
            initial_state="a",
            labels={"b": {"done"}},
            state_rewards={"a": 1.0},
        )
        constraint = parametric_constraint(model, parse_pctl('R<=4 [ F "done" ]'))
        assert constraint.holds_at({"p": 0.5})  # E = 2
        assert not constraint.holds_at({"p": 0.2})  # E = 5

    def test_boolean_top_level_rejected(self, parametric_two_path):
        with pytest.raises(TypeError):
            parametric_constraint(parametric_two_path, parse_pctl("safe"))

    def test_bounded_until_supported(self, parametric_two_path):
        constraint = parametric_constraint(
            parametric_two_path, parse_pctl('P>=0.5 [ F<=3 "safe" ]')
        )
        # Closed form: p + 0.1p + 0.01p... here (1-p-q) self-loop mass:
        # Pr(F<=3 good) = p·(1 + s + s²) with s = 1-p-q.
        point = {"p": 0.6, "q": 0.3}
        s = 1 - point["p"] - point["q"]
        expected = point["p"] * (1 + s + s * s)
        assert float(constraint.function.evaluate(point)) == pytest.approx(
            expected
        )

    def test_bounded_globally_supported(self, parametric_two_path):
        constraint = parametric_constraint(
            parametric_two_path, parse_pctl('P>=0.5 [ G<=2 !"unsafe" ]')
        )
        point = {"p": 0.2, "q": 0.3}
        s = 1 - point["p"] - point["q"]
        # Pr(reach bad within 2) = q(1+s); G-dual complements it.
        assert float(constraint.function.evaluate(point)) == pytest.approx(
            1 - point["q"] * (1 + s)
        )

    def test_bounded_matches_concrete(self, parametric_two_path):
        from repro.logic.pctl import AtomicProposition, Eventually

        f = parametric_two_path.bounded_reachability_probability(
            {"good"}, steps=4
        )
        point = {"p": 0.35, "q": 0.25}
        concrete = parametric_two_path.instantiate(point)
        expected = DTMCModelChecker(concrete).path_probabilities(
            Eventually(AtomicProposition("safe"), 4)
        )[concrete.initial_state]
        assert float(f.evaluate(point)) == pytest.approx(expected)

    def test_bounded_negative_steps_rejected(self, parametric_two_path):
        with pytest.raises(ValueError):
            parametric_two_path.bounded_reachability_probability(
                {"good"}, steps=-1
            )


class TestAgreementWithConcrete:
    @given(st.integers(0, 3000), st.floats(0.05, 0.95))
    @settings(max_examples=25, deadline=None)
    def test_parametric_equals_concrete_on_random_chains(self, seed, value):
        """Lift a random chain, re-parameterise one row, and compare."""
        chain = random_dtmc(5, seed=seed, num_labels=1)
        atoms = sorted(chain.atoms())
        if not atoms:
            return
        atom = atoms[0]
        targets = set(chain.states_with_atom(atom))
        if not targets:
            return
        # Replace one binary row with a parametric split.
        source = next(
            (s for s in chain.states if len(chain.transitions[s]) == 2 and s not in targets),
            None,
        )
        transitions = {s: dict(row) for s, row in chain.transitions.items()}
        if source is not None:
            first, second = sorted(transitions[source], key=str)
            transitions[source] = {first: P, second: 1 - P}
        model = ParametricDTMC(
            states=chain.states,
            transitions=transitions,
            initial_state=chain.initial_state,
            labels=chain.labels,
        )
        f = model.reachability_probability(targets)
        concrete = model.instantiate({"p": value})
        expected = DTMCModelChecker(concrete).path_probabilities(
            Eventually(AtomicProposition(atom))
        )[chain.initial_state]
        assert float(f.evaluate({"p": value})) == pytest.approx(expected, abs=1e-8)


class TestRestrictedElimination:
    """The CEGIS localization primitive.

    Soundness rests on two facts checked here against independent
    references: (1) when the restriction covers every state, the
    restricted elimination *is* the full elimination; (2) on a proper
    counterexample-touched subchain the eliminated function equals a
    direct linear solve of the truncated system and never exceeds the
    full value (sub-stochastic truncation only loses mass).
    """

    @staticmethod
    def truncated_until_reference(model, formula, restriction, assignment):
        """Solve the truncated ``clean U delivered`` system directly."""
        import numpy as np

        from repro.checking.parametric import restricted_model

        truncated = restricted_model(model, restriction)
        left = formula.path.left
        right = formula.path.right
        targets = label_satisfaction_set(
            truncated.states, truncated.labels, right
        )
        allowed = label_satisfaction_set(
            truncated.states, truncated.labels, left
        )

        def value_at(entry):
            return (
                float(entry.evaluate(assignment))
                if hasattr(entry, "evaluate")
                else float(entry)
            )

        # States that can reach a target through allowed states get an
        # equation; everything else is pinned to 0 (matching the
        # elimination's graph precomputation).
        reaching = set(targets)
        frontier = list(targets)
        incoming = {s: [] for s in truncated.states}
        for u in truncated.states:
            for v in truncated.transitions.get(u, {}):
                incoming[v].append(u)
        while frontier:
            v = frontier.pop()
            for u in incoming[v]:
                if u in reaching or u not in allowed or u in targets:
                    continue
                reaching.add(u)
                frontier.append(u)

        order = list(truncated.states)
        index = {s: i for i, s in enumerate(order)}
        n = len(order)
        matrix = np.eye(n)
        rhs = np.zeros(n)
        for u in order:
            i = index[u]
            if u in targets:
                rhs[i] = 1.0
                continue
            if u not in allowed or u not in reaching:
                continue
            for v, entry in truncated.transitions.get(u, {}).items():
                matrix[i, index[v]] -= value_at(entry)
        solution = np.linalg.solve(matrix, rhs)
        return float(solution[index[truncated.initial_state]])

    def test_full_cover_restriction_equals_full_elimination_wsn(self):
        from repro.casestudies import wsn
        from repro.checking import restricted_constraint

        model = wsn.build_wsn_parametric()
        formula = wsn.attempts_property(40)
        full = parametric_constraint(model, formula)
        restricted = restricted_constraint(model, formula, set(model.states))
        for point in ({"p": 0.0, "q": 0.0}, {"p": 0.05, "q": 0.02},
                      {"p": 0.1, "q": 0.1}):
            assert float(restricted.function.evaluate(point)) == pytest.approx(
                float(full.function.evaluate(point)), abs=1e-9
            )

    @given(seed=st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_wsn_corridor_agrees_with_direct_solve(self, seed):
        import numpy as np

        from repro.casestudies import wsn
        from repro.checking import (
            counterexample,
            restricted_constraint,
        )

        size = 4
        chain = wsn.build_monitored_chain(size=size)
        formula = wsn.clean_delivery_property(0.04)
        evidence = counterexample(chain, formula)
        assert evidence.complete
        restriction = evidence.touched_states()
        assert len(restriction) < len(chain.states)
        model = wsn.build_monitored_parametric(size=size)
        constraint = restricted_constraint(model, formula, restriction)
        full = parametric_constraint(model, formula)
        rng = np.random.default_rng(seed)
        assignment = {
            wsn.interference_parameter(node): float(rng.uniform(0.0, 0.9))
            for node in wsn.grid_nodes(size)
            if node != wsn.STATION_NODE
        }
        value = float(constraint.function.evaluate(assignment))
        reference = self.truncated_until_reference(
            model, formula, restriction, assignment
        )
        assert value == pytest.approx(reference, abs=1e-9)
        # Truncation only drops probability mass.
        assert value <= float(full.function.evaluate(assignment)) + 1e-9

    @given(seed=st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_car_corridor_agrees_with_direct_solve(self, seed):
        import numpy as np

        from repro.casestudies import car
        from repro.checking import (
            restricted_constraint,
            strongest_evidence_paths,
        )
        from repro.core.model_repair import ModelRepair
        from repro.mdp import DTMC

        # The uniform-random-policy chain: branching rows, so edge-wise
        # repair has controllable states.
        mdp = car.build_car_mdp()
        transitions = {}
        for state in mdp.states:
            row = {}
            actions = sorted(mdp.actions(state))
            for action in actions:
                for target, prob in mdp.transitions[state][action].items():
                    row[target] = row.get(target, 0.0) + prob / len(actions)
            transitions[state] = row
        chain = DTMC(
            states=mdp.states,
            transitions=transitions,
            initial_state=mdp.initial_state,
            labels=mdp.labels,
        )
        unsafe = set(chain.states_with_atom("unsafe"))
        evidence = strongest_evidence_paths(chain, unsafe, count=2)
        restriction = {s for path, _ in evidence for s in path}
        formula = parse_pctl('P<=0.01 [ F "unsafe" ]')
        base = ModelRepair.for_chain(chain, formula)
        model = base.problem().parametric[0].model
        constraint = restricted_constraint(model, formula, restriction)
        rng = np.random.default_rng(seed)
        names = sorted(
            constraint.function.numerator.variables()
            | constraint.function.denominator.variables()
        )
        assignment = {name: float(rng.uniform(0.0, 0.03)) for name in names}
        value = float(constraint.function.evaluate(assignment))
        reference = self.truncated_until_reference(
            model, formula, restriction, assignment
        )
        assert value == pytest.approx(reference, abs=1e-9)
