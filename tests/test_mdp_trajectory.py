"""Unit tests for the Trajectory value type."""

import pytest

from repro.mdp import Trajectory


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Trajectory([])

    def test_from_states(self):
        u = Trajectory.from_states(["a", "b", "c"])
        assert u.states() == ("a", "b", "c")
        assert u.actions() == (None, None, None)

    def test_length(self):
        assert len(Trajectory.from_states(["a", "b"])) == 2


class TestAccessors:
    def test_state_and_action_at(self):
        u = Trajectory([("s0", "go"), ("s1", None)])
        assert u.state_at(0) == "s0"
        assert u.action_at(0) == "go"
        assert u.action_at(1) is None

    def test_transitions(self):
        u = Trajectory([("a", 1), ("b", 2), ("c", None)])
        assert u.transitions() == [("a", 1, "b"), ("b", 2, "c")]

    def test_visits(self):
        u = Trajectory.from_states(["a", "b"])
        assert u.visits("b")
        assert not u.visits("z")

    def test_prefix(self):
        u = Trajectory.from_states(["a", "b", "c"])
        assert u.prefix(2).states() == ("a", "b")
        with pytest.raises(ValueError):
            u.prefix(0)

    def test_iteration(self):
        u = Trajectory([("a", 1), ("b", None)])
        assert list(u) == [("a", 1), ("b", None)]


class TestValueSemantics:
    def test_equality_and_hash(self):
        a = Trajectory([("s", 1), ("t", None)])
        b = Trajectory([("s", 1), ("t", None)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Trajectory([("s", 2), ("t", None)])

    def test_usable_as_dict_key(self):
        u = Trajectory.from_states(["a"])
        assert {u: 1.0}[Trajectory.from_states(["a"])] == 1.0

    def test_repr_contains_states(self):
        u = Trajectory([("s0", 0), ("s1", None)])
        assert "s0" in repr(u)
