"""Tests for the HMM subpackage (the paper's hidden-state extension)."""

import numpy as np
import pytest

from repro.hmm import (
    HMM,
    baum_welch,
    constrained_baum_welch,
    forbid_state_given_observation,
    forbid_transition,
    hidden_chain,
    repair_hidden_chain,
)
from repro.logic import parse_pctl


@pytest.fixture
def weather_hmm() -> HMM:
    return HMM(
        states=["rain", "sun"],
        symbols=["umbrella", "none"],
        initial={"rain": 0.5, "sun": 0.5},
        transitions={
            "rain": {"rain": 0.7, "sun": 0.3},
            "sun": {"rain": 0.3, "sun": 0.7},
        },
        emissions={
            "rain": {"umbrella": 0.9, "none": 0.1},
            "sun": {"umbrella": 0.2, "none": 0.8},
        },
    )


class TestValidation:
    def test_rows_must_sum_to_one(self):
        with pytest.raises(ValueError):
            HMM(
                states=["a"],
                symbols=["x"],
                initial={"a": 1.0},
                transitions={"a": {"a": 0.5}},
                emissions={"a": {"x": 1.0}},
            )

    def test_initial_must_sum_to_one(self):
        with pytest.raises(ValueError):
            HMM(
                states=["a"],
                symbols=["x"],
                initial={"a": 0.4},
                transitions={"a": {"a": 1.0}},
                emissions={"a": {"x": 1.0}},
            )


class TestInference:
    def test_likelihood_hand_computed(self, weather_hmm):
        # P(umbrella) = 0.5·0.9 + 0.5·0.2 = 0.55
        assert weather_hmm.log_likelihood(["umbrella"]) == pytest.approx(
            np.log(0.55)
        )

    def test_forward_backward_consistent(self, weather_hmm):
        observations = ["umbrella", "none", "umbrella"]
        gamma, xi = weather_hmm.posteriors(observations)
        # Posteriors are distributions.
        assert gamma.sum(axis=1) == pytest.approx(np.ones(3))
        assert xi.sum(axis=(1, 2)) == pytest.approx(np.ones(2))
        # Marginalising xi recovers gamma.
        assert xi[0].sum(axis=1) == pytest.approx(gamma[0])
        assert xi[0].sum(axis=0) == pytest.approx(gamma[1])

    def test_posterior_tracks_evidence(self, weather_hmm):
        gamma, _ = weather_hmm.posteriors(["umbrella", "umbrella"])
        rain = weather_hmm.state_index["rain"]
        assert gamma[0, rain] > 0.5

    def test_viterbi_follows_evidence(self, weather_hmm):
        path = weather_hmm.viterbi(["umbrella", "umbrella", "none"])
        assert path[0] == "rain"
        assert path[-1] == "sun"

    def test_impossible_sequence_raises(self):
        hmm = HMM(
            states=["a"],
            symbols=["x", "y"],
            initial={"a": 1.0},
            transitions={"a": {"a": 1.0}},
            emissions={"a": {"x": 1.0, "y": 0.0}},
        )
        with pytest.raises(ValueError):
            hmm.log_likelihood(["y"])

    def test_long_sequence_no_underflow(self, weather_hmm):
        rng = np.random.default_rng(0)
        _, observations = weather_hmm.sample(2000, rng)
        value = weather_hmm.log_likelihood(observations)
        assert np.isfinite(value)


class TestSampling:
    def test_shapes_and_reproducibility(self, weather_hmm):
        a = weather_hmm.sample(10, np.random.default_rng(3))
        b = weather_hmm.sample(10, np.random.default_rng(3))
        assert a == b
        hidden, observed = a
        assert len(hidden) == len(observed) == 10


class TestBaumWelch:
    def test_likelihood_is_nondecreasing(self, weather_hmm):
        rng = np.random.default_rng(1)
        sequences = [weather_hmm.sample(40, rng)[1] for _ in range(10)]
        _, trace = baum_welch(
            sequences, states=["h0", "h1"], iterations=20, seed=2
        )
        diffs = np.diff(trace)
        assert np.all(diffs > -1e-6)

    def test_fits_better_than_random_init(self, weather_hmm):
        rng = np.random.default_rng(5)
        sequences = [weather_hmm.sample(50, rng)[1] for _ in range(10)]
        model, trace = baum_welch(
            sequences, states=["h0", "h1"], iterations=30, seed=3
        )
        assert trace[-1] > trace[0]

    def test_recovers_emission_structure(self, weather_hmm):
        """Up to state relabelling, one hidden state should strongly emit
        'umbrella' and the other 'none'."""
        rng = np.random.default_rng(7)
        sequences = [weather_hmm.sample(100, rng)[1] for _ in range(20)]
        model, _ = baum_welch(
            sequences, states=["h0", "h1"], iterations=50, seed=4
        )
        umbrella = model.symbol_index["umbrella"]
        emissions = sorted(model.B[:, umbrella])
        assert emissions[0] < 0.45
        assert emissions[1] > 0.65


class TestConstrainedEm:
    def test_forbidden_transition_suppressed(self, weather_hmm):
        rng = np.random.default_rng(11)
        sequences = [weather_hmm.sample(60, rng)[1] for _ in range(10)]
        free_model, _ = baum_welch(
            sequences, states=["h0", "h1"], iterations=30, seed=6
        )
        constrained_model, _ = constrained_baum_welch(
            sequences,
            states=["h0", "h1"],
            constraints=[forbid_transition("h0", "h1", weight=8.0)],
            iterations=30,
            seed=6,
        )
        i, j = 0, 1
        assert constrained_model.A[i, j] < free_model.A[i, j]

    def test_forbidden_emission_suppressed(self, weather_hmm):
        rng = np.random.default_rng(13)
        sequences = [weather_hmm.sample(60, rng)[1] for _ in range(10)]
        constrained_model, _ = constrained_baum_welch(
            sequences,
            states=["h0", "h1"],
            constraints=[
                forbid_state_given_observation("h0", "umbrella", weight=8.0)
            ],
            iterations=30,
            seed=8,
        )
        free_model, _ = baum_welch(
            sequences, states=["h0", "h1"], iterations=30, seed=8
        )
        umbrella = constrained_model.symbol_index["umbrella"]
        assert constrained_model.B[0, umbrella] < free_model.B[0, umbrella]

    def test_zero_constraints_equals_plain_em(self, weather_hmm):
        rng = np.random.default_rng(17)
        sequences = [weather_hmm.sample(30, rng)[1] for _ in range(5)]
        plain, _ = baum_welch(sequences, states=["h0", "h1"],
                              iterations=10, seed=9)
        constrained, _ = constrained_baum_welch(
            sequences, states=["h0", "h1"], constraints=(),
            iterations=10, seed=9,
        )
        assert np.allclose(plain.A, constrained.A)
        assert np.allclose(plain.B, constrained.B)


class TestHiddenChainRepair:
    def test_hidden_chain_structure(self, weather_hmm):
        chain = hidden_chain(weather_hmm, labels={"sun": {"nice"}})
        assert chain.probability("rain", "sun") == pytest.approx(0.3)
        assert chain.states_with_atom("nice") == {"sun"}

    def test_repair_hidden_dynamics(self, weather_hmm):
        """Require quick drying: expected steps to 'sun' <= 2."""
        formula = parse_pctl('R<=2 [ F "nice" ]')
        repaired_hmm, result = repair_hidden_chain(
            weather_hmm,
            formula,
            labels={"sun": {"nice"}},
            initial_state="rain",
            state_rewards={"rain": 1.0},
        )
        assert result.status == "repaired"
        assert result.verified
        # Emissions untouched; transitions changed.
        assert np.allclose(repaired_hmm.B, weather_hmm.B)
        assert not np.allclose(repaired_hmm.A, weather_hmm.A)

    def test_infeasible_repair_returns_original(self, weather_hmm):
        formula = parse_pctl('R<=0.5 [ F "nice" ]')
        repaired_hmm, result = repair_hidden_chain(
            weather_hmm,
            formula,
            labels={"sun": {"nice"}},
            initial_state="rain",
            state_rewards={"rain": 1.0},
            max_perturbation=0.01,
        )
        assert result.status == "infeasible"
        assert repaired_hmm is weather_hmm
