"""Tests for the continuous-time substrate and rate repair."""

import math

import numpy as np
import pytest

from repro.ctmc import CTMC, expected_time_repair
from repro.mdp import ModelValidationError


@pytest.fixture
def two_state_ctmc() -> CTMC:
    """Classic repairable machine: fails at rate 0.1, repairs at 2.0."""
    return CTMC(
        states=["up", "down"],
        rates={"up": {"down": 0.1}, "down": {"up": 2.0}},
        initial_state="up",
        labels={"up": {"working"}},
    )


@pytest.fixture
def pipeline_ctmc() -> CTMC:
    """Three-stage pipeline with an absorbing 'done' state."""
    return CTMC(
        states=["s0", "s1", "done"],
        rates={"s0": {"s1": 1.0}, "s1": {"done": 0.5}},
        initial_state="s0",
        labels={"done": {"done"}},
    )


class TestValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(ModelValidationError):
            CTMC(states=["a", "b"], rates={"a": {"b": -1.0}}, initial_state="a")

    def test_self_rate_rejected(self):
        with pytest.raises(ModelValidationError):
            CTMC(states=["a"], rates={"a": {"a": 1.0}}, initial_state="a")

    def test_unknown_target_rejected(self):
        with pytest.raises(ModelValidationError):
            CTMC(states=["a"], rates={"a": {"ghost": 1.0}}, initial_state="a")


class TestStructure:
    def test_exit_rates(self, two_state_ctmc):
        assert two_state_ctmc.exit_rate("up") == pytest.approx(0.1)
        assert two_state_ctmc.max_exit_rate() == pytest.approx(2.0)

    def test_generator_rows_sum_to_zero(self, two_state_ctmc):
        q = two_state_ctmc.generator_matrix()
        assert q.sum(axis=1) == pytest.approx(np.zeros(2))

    def test_embedded_chain(self, pipeline_ctmc):
        embedded = pipeline_ctmc.embedded_dtmc()
        assert embedded.probability("s0", "s1") == 1.0
        assert embedded.probability("done", "done") == 1.0

    def test_uniformized_chain_stochastic(self, two_state_ctmc):
        uniform = two_state_ctmc.uniformized_dtmc()
        for state in uniform.states:
            assert sum(uniform.transitions[state].values()) == pytest.approx(1.0)
        # up's self-loop = 1 - 0.1/2.0.
        assert uniform.probability("up", "up") == pytest.approx(0.95)

    def test_uniformization_rate_validated(self, two_state_ctmc):
        with pytest.raises(ValueError):
            two_state_ctmc.uniformized_dtmc(rate=0.5)


class TestTransient:
    def test_two_state_closed_form(self, two_state_ctmc):
        """π_down(t) = (λ/(λ+μ))(1 − e^{−(λ+μ)t}) for failure λ, repair μ."""
        lam, mu = 0.1, 2.0
        for t in (0.1, 0.5, 2.0, 10.0):
            expected = lam / (lam + mu) * (1 - math.exp(-(lam + mu) * t))
            distribution = two_state_ctmc.transient_distribution(t)
            assert distribution["down"] == pytest.approx(expected, abs=1e-9)

    def test_distribution_normalised(self, pipeline_ctmc):
        distribution = pipeline_ctmc.transient_distribution(1.7)
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_time_zero_is_initial(self, pipeline_ctmc):
        distribution = pipeline_ctmc.transient_distribution(0.0)
        assert distribution["s0"] == 1.0

    def test_negative_time_rejected(self, pipeline_ctmc):
        with pytest.raises(ValueError):
            pipeline_ctmc.transient_distribution(-1.0)


class TestTimeBoundedReachability:
    def test_single_exponential_closed_form(self):
        ctmc = CTMC(
            states=["a", "b"],
            rates={"a": {"b": 2.0}},
            initial_state="a",
        )
        for t in (0.1, 0.5, 1.0):
            assert ctmc.time_bounded_reachability({"b"}, t) == pytest.approx(
                1 - math.exp(-2.0 * t), abs=1e-9
            )

    def test_monotone_in_time(self, pipeline_ctmc):
        values = [
            pipeline_ctmc.time_bounded_reachability({"done"}, t)
            for t in (0.5, 1.0, 2.0, 5.0)
        ]
        assert values == sorted(values)

    def test_initial_in_targets(self, pipeline_ctmc):
        assert pipeline_ctmc.time_bounded_reachability({"s0"}, 0.0) == 1.0

    def test_absorbing_targets_do_not_leak(self, two_state_ctmc):
        """Making targets absorbing: probability accumulates, not cycles."""
        value = two_state_ctmc.time_bounded_reachability({"down"}, 5.0)
        # First-passage by time 5 with failure rate 0.1: 1 - e^{-0.5}.
        assert value == pytest.approx(1 - math.exp(-0.5), abs=1e-9)


class TestExpectedTimeAndSteadyState:
    def test_expected_time_series_pipeline(self, pipeline_ctmc):
        times = pipeline_ctmc.expected_time_to({"done"})
        # 1/1.0 + 1/0.5 = 3.
        assert times["s0"] == pytest.approx(3.0)
        assert times["done"] == 0.0

    def test_expected_time_infinite_if_unreachable(self):
        ctmc = CTMC(
            states=["a", "b"],
            rates={},
            initial_state="a",
        )
        assert ctmc.expected_time_to({"b"})["a"] == np.inf

    def test_steady_state_birth_death(self, two_state_ctmc):
        pi = two_state_ctmc.steady_state()
        # π_down/π_up = λ/μ.
        assert pi["down"] / pi["up"] == pytest.approx(0.1 / 2.0)
        assert sum(pi.values()) == pytest.approx(1.0)

    def test_steady_state_flow_balance(self):
        ctmc = CTMC(
            states=["a", "b", "c"],
            rates={
                "a": {"b": 1.0},
                "b": {"c": 2.0, "a": 0.5},
                "c": {"a": 1.5},
            },
            initial_state="a",
        )
        pi = ctmc.steady_state()
        q = ctmc.generator_matrix()
        flow = np.array([pi[s] for s in ctmc.states]) @ q
        assert flow == pytest.approx(np.zeros(3), abs=1e-9)


class TestRateRepair:
    def test_already_satisfied(self, pipeline_ctmc):
        result = expected_time_repair(pipeline_ctmc, {"done"}, bound=5.0)
        assert result.status == "already_satisfied"
        assert result.expected_time == pytest.approx(3.0)

    def test_repair_speeds_up_slow_stage(self, pipeline_ctmc):
        result = expected_time_repair(
            pipeline_ctmc, {"done"}, bound=2.0, max_speedup=3.0
        )
        assert result.status == "repaired"
        assert result.expected_time <= 2.0 + 1e-6
        # The slow stage (s1, rate 0.5) gets the bigger speed-up.
        assert result.scales["s1"] > result.scales["s0"]

    def test_infeasible_with_bounded_speedup(self, pipeline_ctmc):
        # Even doubling both rates only reaches 1.5; bound 1.2 needs more.
        result = expected_time_repair(
            pipeline_ctmc, {"done"}, bound=1.2, max_speedup=2.0
        )
        assert result.status == "infeasible"
        assert result.repaired_ctmc is None

    def test_repaired_rates_within_speedup(self, pipeline_ctmc):
        result = expected_time_repair(
            pipeline_ctmc, {"done"}, bound=2.0, max_speedup=3.0
        )
        for state, scale in result.scales.items():
            assert 1.0 - 1e-9 <= scale <= 3.0 + 1e-9
            for target, rate in result.repaired_ctmc.rates[state].items():
                assert rate == pytest.approx(
                    pipeline_ctmc.rates[state][target] * scale
                )

    def test_invalid_speedup_rejected(self, pipeline_ctmc):
        with pytest.raises(ValueError):
            expected_time_repair(
                pipeline_ctmc, {"done"}, bound=0.5, max_speedup=1.0
            )


class TestUniformisationCrossCheck:
    """Uniformisation must agree with the matrix exponential."""

    def test_transient_matches_expm(self, pipeline_ctmc):
        from scipy.linalg import expm

        q = pipeline_ctmc.generator_matrix()
        for t in (0.3, 1.0, 2.5):
            exact = expm(q * t)
            start = pipeline_ctmc.index[pipeline_ctmc.initial_state]
            ours = pipeline_ctmc.transient_distribution(t)
            for state in pipeline_ctmc.states:
                j = pipeline_ctmc.index[state]
                assert ours[state] == pytest.approx(
                    exact[start, j], abs=1e-9
                )

    def test_random_ctmc_matches_expm(self):
        from scipy.linalg import expm

        rng = np.random.default_rng(5)
        states = [f"c{i}" for i in range(5)]
        rates = {}
        for i, source in enumerate(states):
            row = {}
            for j, target in enumerate(states):
                if i != j and rng.random() < 0.6:
                    row[target] = float(rng.random() * 3 + 0.1)
            rates[source] = row
        ctmc = CTMC(states=states, rates=rates, initial_state="c0")
        q = ctmc.generator_matrix()
        exact = expm(q * 0.8)
        ours = ctmc.transient_distribution(0.8)
        for state in states:
            assert ours[state] == pytest.approx(
                exact[0, ctmc.index[state]], abs=1e-8
            )
