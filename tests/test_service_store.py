"""Result store, LRU-capped CheckCache, and cross-process persistence."""

import pytest

from repro.checking.cache import CheckCache, cached_check, set_global_cache
from repro.core import ModelRepair
from repro.logic import parse_pctl
from repro.mdp import chain_dtmc
from repro.service.store import (
    ResultStore,
    install_process_cache,
    key_digest,
    open_disk_cache,
)


@pytest.fixture
def sluggish_chain():
    return chain_dtmc(5, forward_probability=0.5)


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        key = ("parametric", "abc", "sparse")
        assert store.get(key) is None
        store.put(key, {"value": 41})
        assert store.get(key) == {"value": 41}
        assert key in store
        assert len(store) == 1

    def test_counters(self, tmp_path):
        store = ResultStore(tmp_path)
        store.get("missing")
        store.put("k", 1)
        store.get("k")
        assert store.stats() == {"reads": 2, "read_hits": 1, "writes": 1}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", [1, 2, 3])
        path = store._path("k")
        path.write_bytes(b"not a pickle")
        assert store.get("k") is None

    def test_membership_agrees_with_get_on_corrupt_entry(self, tmp_path):
        # A corrupt pickle sits on disk but get() treats it as a miss;
        # `in` must agree (and go through the read counters), or
        # membership probes would promise values get() cannot deliver.
        store = ResultStore(tmp_path)
        store.put("k", [1, 2, 3])
        assert "k" in store
        store._path("k").write_bytes(b"not a pickle")
        reads_before = store.reads
        assert "k" not in store
        assert store.get("k") is None
        assert store.reads == reads_before + 2
        assert store.read_hits == 1  # only the pre-corruption probe hit

    def test_unpicklable_value_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", lambda: None)  # locals cannot pickle
        assert store.get("k") is None
        assert store.writes == 0

    def test_key_digest_stable(self):
        key = ("model", "deadbeef", "P>=0.5")
        assert key_digest(key) == key_digest(("model", "deadbeef", "P>=0.5"))
        assert key_digest(key) != key_digest(("model", "deadbeef", "P>=0.6"))

    def test_two_handles_share_directory(self, tmp_path):
        ResultStore(tmp_path).put("k", "shared")
        assert ResultStore(tmp_path).get("k") == "shared"


class TestLRUCap:
    def test_cap_enforced_with_eviction_counter(self):
        cache = CheckCache(max_entries=2)
        for i in range(4):
            cache.get_or_compute(("k", i), lambda i=i: i)
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 2

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            CheckCache(max_entries=0)

    def test_hit_refreshes_recency(self):
        cache = CheckCache(max_entries=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: 1)  # refresh "a"
        cache.get_or_compute("c", lambda: 3)  # evicts "b", not "a"
        hits_before = cache.stats()["hits"]
        cache.get_or_compute("a", lambda: (_ for _ in ()).throw(AssertionError))
        assert cache.stats()["hits"] == hits_before + 1

    def test_eviction_falls_back_to_backing(self, tmp_path):
        cache = CheckCache(max_entries=1, backing=ResultStore(tmp_path))
        cache.get_or_compute("a", lambda: "va")
        cache.get_or_compute("b", lambda: "vb")  # evicts "a" from memory
        value = cache.get_or_compute(
            "a", lambda: (_ for _ in ()).throw(AssertionError("recompute"))
        )
        assert value == "va"
        assert cache.stats()["backing_hits"] == 1

    def test_repeated_repair_hits_cache_under_small_cap(self, sluggish_chain):
        """The repair cache-hit guarantee survives an LRU cap.

        Repairing the same (model, φ) twice against one capped cache
        must not redo the parametric elimination: one repair touches
        only a handful of keys (concrete check, parametric form,
        re-verification), all of which fit in a small cache.
        """
        formula = parse_pctl('R<=6 [ F "goal" ]')
        cache = CheckCache(max_entries=8)
        first = ModelRepair.for_chain(sluggish_chain, formula)
        first.cache = cache
        assert first.repair().status == "repaired"
        eliminations = cache.stats()["parametric_eliminations"]
        assert eliminations >= 1
        second = ModelRepair.for_chain(sluggish_chain, formula)
        second.cache = cache
        assert second.repair().status == "repaired"
        stats = cache.stats()
        assert stats["parametric_eliminations"] == eliminations
        assert stats["hits"] >= 2


class TestDiskBackedCache:
    def test_write_through_and_reload(self, tmp_path, sluggish_chain):
        formula = parse_pctl('P>=0.2 [ F "goal" ]')
        warm = open_disk_cache(tmp_path)
        cached_check(sluggish_chain, formula, cache=warm)
        assert warm.stats()["misses"] == 1

        # A fresh cache over the same directory: miss in memory, hit on
        # disk — no recomputation (simulates a second worker process).
        cold = open_disk_cache(tmp_path)
        result = cached_check(sluggish_chain, formula, cache=cold)
        assert result.holds
        stats = cold.stats()
        assert stats["backing_hits"] == 1
        assert stats["hits"] == 1

    def test_repair_shares_eliminations_across_caches(
        self, tmp_path, sluggish_chain
    ):
        formula = parse_pctl('R<=6 [ F "goal" ]')
        first = ModelRepair.for_chain(sluggish_chain, formula)
        first.cache = open_disk_cache(tmp_path)
        assert first.repair().status == "repaired"

        second = ModelRepair.for_chain(sluggish_chain, formula)
        second.cache = open_disk_cache(tmp_path)
        assert second.repair().status == "repaired"
        assert second.cache.stats()["parametric_eliminations"] == 0

    def test_install_process_cache_idempotent(self, tmp_path):
        from repro.checking import cache as cache_module

        previous = cache_module.GLOBAL_CACHE
        try:
            installed = install_process_cache(tmp_path)
            assert cache_module.GLOBAL_CACHE is installed
            again = install_process_cache(tmp_path)
            assert again is installed
        finally:
            set_global_cache(previous)
            import repro.service.store as store_module

            store_module._installed_directory = None
