"""Unit tests for trajectory enumeration and distributions (Eq. 16)."""

import math

import pytest

from repro.learning.trajectory_distribution import (
    MetropolisTrajectorySampler,
    TrajectoryDistribution,
    enumerate_trajectories,
    trajectory_log_weight,
    trajectory_probability_unnormalised,
)
from repro.mdp import MDP, Trajectory


@pytest.fixture
def coin_mdp() -> MDP:
    return MDP(
        states=["s", "h", "t"],
        transitions={
            "s": {"flip": {"h": 0.5, "t": 0.5}},
            "h": {"stay": {"h": 1.0}},
            "t": {"stay": {"t": 1.0}},
        },
        initial_state="s",
        state_rewards={"h": 1.0},
    )


class TestEnumeration:
    def test_counts_all_paths(self, coin_mdp):
        paths = enumerate_trajectories(coin_mdp, horizon=1)
        assert len(paths) == 2

    def test_horizon_two(self, coin_mdp):
        paths = enumerate_trajectories(coin_mdp, horizon=2)
        # h then stay / t then stay.
        assert len(paths) == 2
        assert all(len(p) == 3 for p in paths)

    def test_stop_states_truncate(self, coin_mdp):
        paths = enumerate_trajectories(coin_mdp, horizon=5, stop_states={"h", "t"})
        assert len(paths) == 2
        assert all(len(p) == 2 for p in paths)

    def test_enumeration_cap(self):
        from repro.mdp import random_mdp

        bushy = random_mdp(6, num_actions=3, density=0.8, seed=0)
        with pytest.raises(ValueError):
            enumerate_trajectories(bushy, horizon=10, max_count=50)


class TestWeights:
    def test_log_weight_combines_rewards_and_dynamics(self, coin_mdp):
        u = Trajectory([("s", "flip"), ("h", None)])
        expected = 0.0 + 1.0 + math.log(0.5)  # r(s) + r(h) + log P
        assert trajectory_log_weight(
            coin_mdp, u, coin_mdp.state_rewards
        ) == pytest.approx(expected)

    def test_impossible_transition(self, coin_mdp):
        u = Trajectory([("h", "stay"), ("t", None)])
        assert trajectory_log_weight(coin_mdp, u, coin_mdp.state_rewards) == -math.inf

    def test_missing_action_rejected(self, coin_mdp):
        u = Trajectory.from_states(["s", "h"])
        with pytest.raises(ValueError):
            trajectory_probability_unnormalised(coin_mdp, u, coin_mdp.state_rewards)


class TestDistribution:
    def test_normalisation(self, coin_mdp):
        dist = TrajectoryDistribution.from_maxent(
            coin_mdp, coin_mdp.state_rewards, horizon=2
        )
        assert sum(dist.probabilities.values()) == pytest.approx(1.0)

    def test_reward_biases_distribution(self, coin_mdp):
        dist = TrajectoryDistribution.from_maxent(
            coin_mdp, coin_mdp.state_rewards, horizon=2
        )
        heads = dist.event_probability(lambda u: u.visits("h"))
        tails = dist.event_probability(lambda u: u.visits("t"))
        # Heads trajectories carry exp(2·1) reward weight over two steps.
        assert heads > tails
        assert heads == pytest.approx(
            math.exp(2) / (math.exp(2) + 1), abs=1e-9
        )

    def test_expectation_and_visits(self, coin_mdp):
        dist = TrajectoryDistribution.from_maxent(
            coin_mdp, coin_mdp.state_rewards, horizon=1
        )
        visits = dist.expected_state_visits()
        assert visits["s"] == pytest.approx(1.0)
        assert visits["h"] + visits["t"] == pytest.approx(1.0)

    def test_kl_divergence_zero_on_self(self, coin_mdp):
        dist = TrajectoryDistribution.from_maxent(
            coin_mdp, coin_mdp.state_rewards, horizon=2
        )
        assert dist.kl_divergence(dist) == pytest.approx(0.0)

    def test_kl_infinite_on_support_mismatch(self, coin_mdp):
        dist = TrajectoryDistribution.from_maxent(
            coin_mdp, coin_mdp.state_rewards, horizon=1
        )
        heads_only = TrajectoryDistribution(
            {u: 1.0 for u in dist.support() if u.visits("h")}
        )
        assert dist.kl_divergence(heads_only) == math.inf

    def test_reweighted(self, coin_mdp):
        dist = TrajectoryDistribution.from_maxent(
            coin_mdp, coin_mdp.state_rewards, horizon=1
        )
        tilted = dist.reweighted(lambda u: -100.0 if u.visits("h") else 0.0)
        assert tilted.event_probability(lambda u: u.visits("h")) < 1e-20

    def test_zero_mass_rejected(self):
        with pytest.raises(ValueError):
            TrajectoryDistribution({})

    def test_large_rewards_do_not_overflow(self, coin_mdp):
        rewards = {"s": 500.0, "h": 800.0, "t": 0.0}
        dist = TrajectoryDistribution.from_maxent(coin_mdp, rewards, horizon=2)
        assert sum(dist.probabilities.values()) == pytest.approx(1.0)


class TestMetropolisSampler:
    def test_matches_enumeration(self, coin_mdp):
        exact = TrajectoryDistribution.from_maxent(
            coin_mdp, coin_mdp.state_rewards, horizon=2
        )
        sampler = MetropolisTrajectorySampler(
            coin_mdp, coin_mdp.state_rewards, horizon=2, seed=0
        )
        samples = sampler.sample(1500, burn_in=300)
        heads_rate = sum(1 for u in samples if u.visits("h")) / len(samples)
        expected = exact.event_probability(lambda u: u.visits("h"))
        assert heads_rate == pytest.approx(expected, abs=0.07)

    def test_extra_log_factor_shifts_distribution(self, coin_mdp):
        sampler = MetropolisTrajectorySampler(
            coin_mdp,
            coin_mdp.state_rewards,
            horizon=2,
            extra_log_factor=lambda u: -50.0 if u.visits("h") else 0.0,
            seed=1,
        )
        samples = sampler.sample(300, burn_in=200)
        assert all(not u.visits("h") for u in samples)

    def test_seed_reproducibility(self, coin_mdp):
        make = lambda: MetropolisTrajectorySampler(
            coin_mdp, coin_mdp.state_rewards, horizon=2, seed=9
        ).sample(50)
        assert make() == make()
