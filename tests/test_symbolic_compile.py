"""Equivalence tests: compiled kernels vs the exact symbolic layer.

The compiled path (:mod:`repro.symbolic.compile`) must agree with
``Polynomial.evaluate`` / ``RationalFunction.evaluate`` and the symbolic
``derivative`` to tight float tolerance on every entry point — scalar,
batch, gradient, codegen'd and numpy fallback — because the repair NLP
trusts it blindly for thousands of evaluations per solve.
"""

import pickle
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings

from repro.checking.parametric import ParametricConstraint
from repro.symbolic import (
    Polynomial,
    RationalFunction,
    compile_polynomial,
    compile_rational,
)
from repro.symbolic import compile as compile_module
from repro.symbolic.compile import kernel_stats

from conftest import polynomials

X = Polynomial.variable("x")
Y = Polynomial.variable("y")

#: Agreement tolerance between symbolic and compiled evaluation.
TOL = 1e-12


def random_points(variables, count, seed):
    rng = np.random.default_rng(seed)
    names = sorted(variables)
    return [
        {name: float(value) for name, value in zip(names, row)}
        for row in rng.uniform(-2.0, 2.0, size=(count, max(1, len(names))))
    ]


def assert_close(left, right):
    left, right = float(left), float(right)
    assert left == pytest.approx(right, rel=TOL, abs=TOL)


class TestCompiledPolynomial:
    def test_matches_symbolic_on_seeded_points(self):
        poly = 3 * X * X * Y - 2 * X + Y - 7
        kernel = compile_polynomial(poly)
        for point in random_points({"x", "y"}, 25, seed=1):
            expected = poly.evaluate(point)
            got = kernel.evaluate([point[n] for n in kernel.params])
            assert_close(got, expected)

    def test_gradient_matches_symbolic_derivatives(self):
        poly = X ** 3 * Y - 4 * X * Y + 2 * Y - 1
        kernel = compile_polynomial(poly)
        partials = {n: poly.derivative(n) for n in kernel.params}
        for point in random_points({"x", "y"}, 10, seed=2):
            gradient = kernel.gradient([point[n] for n in kernel.params])
            for name, value in zip(kernel.params, gradient):
                assert_close(value, partials[name].evaluate(point))

    def test_batch_matches_scalar(self):
        poly = X * X - 3 * X * Y + 5
        kernel = compile_polynomial(poly)
        points = random_points({"x", "y"}, 40, seed=3)
        matrix = [[p[n] for n in kernel.params] for p in points]
        batch = kernel.evaluate_batch(matrix)
        for row, value in zip(matrix, batch):
            assert_close(value, kernel.evaluate(row))

    def test_constant_polynomial(self):
        kernel = compile_polynomial(Polynomial.constant(Fraction(7, 2)))
        assert kernel.params == ()
        assert kernel.evaluate([]) == 3.5
        assert list(kernel.evaluate_batch(np.zeros((4, 0)))) == [3.5] * 4
        assert kernel.gradient([]).shape == (0,)

    def test_zero_polynomial(self):
        kernel = compile_polynomial(Polynomial.zero())
        assert kernel.evaluate([]) == 0.0

    def test_extra_params_allowed_missing_rejected(self):
        kernel = compile_polynomial(X + 1, params=("x", "unused"))
        assert kernel.evaluate([2.0, 99.0]) == 3.0
        with pytest.raises(ValueError):
            compile_polynomial(X * Y, params=("x",))

    @given(polynomials())
    @settings(max_examples=40, deadline=None)
    def test_random_polynomials_agree(self, poly):
        kernel = compile_polynomial(poly)
        for point in random_points(poly.variables() or {"x"}, 3, seed=4):
            point = {name: point.get(name, 0.5) for name in kernel.params}
            expected = poly.evaluate(point) if kernel.params else (
                poly.constant_value() if not poly.is_zero() else 0
            )
            got = kernel.evaluate([point[n] for n in kernel.params])
            assert_close(got, float(expected))


class TestCompiledRationalFunction:
    def build(self):
        numerator = 2 * X * X * Y - X + 3
        denominator = X * Y + Y * Y + 5
        return RationalFunction(numerator, denominator)

    def test_matches_symbolic(self):
        function = self.build()
        kernel = compile_rational(function)
        for point in random_points({"x", "y"}, 25, seed=5):
            assert_close(
                kernel.evaluate([point[n] for n in kernel.params]),
                function.evaluate(point),
            )

    def test_gradient_matches_symbolic_quotient_rule(self):
        function = self.build()
        kernel = compile_rational(function)
        partials = {n: function.derivative(n) for n in kernel.params}
        for point in random_points({"x", "y"}, 10, seed=6):
            value, gradient = kernel.value_and_gradient(
                [point[n] for n in kernel.params]
            )
            assert_close(value, function.evaluate(point))
            for name, entry in zip(kernel.params, gradient):
                assert_close(entry, partials[name].evaluate(point))

    def test_gradient_assignment_matches_gradient(self):
        function = self.build()
        kernel = compile_rational(function)
        point = {"x": 0.3, "y": -1.2}
        by_name = kernel.gradient_assignment(point)
        vector = kernel.gradient([point[n] for n in kernel.params])
        for name, entry in zip(kernel.params, vector):
            assert_close(by_name[name], entry)

    def test_batch_matches_scalar(self):
        function = self.build()
        kernel = compile_rational(function)
        points = random_points({"x", "y"}, 40, seed=7)
        matrix = [[p[n] for n in kernel.params] for p in points]
        batch = kernel.evaluate_batch(matrix)
        for row, value in zip(matrix, batch):
            assert_close(value, kernel.evaluate(row))

    def test_vanishing_denominator_scalar_raises(self):
        function = RationalFunction(Polynomial.one(), X)
        kernel = compile_rational(function)
        with pytest.raises(ZeroDivisionError):
            kernel.evaluate([0.0])
        with pytest.raises(ZeroDivisionError):
            kernel.value_and_gradient([0.0])
        with pytest.raises(ZeroDivisionError):
            kernel.gradient_assignment({"x": 0.0})

    def test_vanishing_denominator_batch_is_nonfinite(self):
        function = RationalFunction(Polynomial.one(), X)
        kernel = compile_rational(function)
        values = kernel.evaluate_batch([[0.0], [2.0]])
        assert not np.isfinite(values[0])
        assert_close(values[1], 0.5)

    def test_constant_function(self):
        kernel = compile_rational(RationalFunction.constant(Fraction(3, 4)))
        assert kernel.params == ()
        assert kernel.evaluate([]) == 0.75

    def test_numpy_fallback_agrees_with_codegen(self, monkeypatch):
        function = self.build()
        fast = compile_rational(function)
        assert fast._scalar() is not None
        monkeypatch.setattr(compile_module, "_CODEGEN_TERM_LIMIT", 0)
        slow = compile_rational(function)
        assert slow._scalar() is None
        for point in random_points({"x", "y"}, 10, seed=8):
            vector = [point[n] for n in fast.params]
            assert_close(fast.evaluate(vector), slow.evaluate(vector))
            fast_value, fast_grad = fast.value_and_gradient(vector)
            slow_value, slow_grad = slow.value_and_gradient(vector)
            assert_close(fast_value, slow_value)
            np.testing.assert_allclose(fast_grad, slow_grad, rtol=TOL, atol=TOL)

    @given(polynomials(), polynomials())
    @settings(max_examples=30, deadline=None)
    def test_random_rationals_agree(self, numerator, denominator):
        if denominator.is_zero():
            denominator = denominator + 1
        function = RationalFunction(numerator, denominator)
        kernel = compile_rational(function)
        point = {name: 0.37 for name in kernel.params}
        try:
            expected = float(function.evaluate(point)) if kernel.params else (
                float(function.constant_value())
            )
        except ZeroDivisionError:
            with pytest.raises(ZeroDivisionError):
                kernel.evaluate([point[n] for n in kernel.params])
            return
        assert_close(
            kernel.evaluate([point[n] for n in kernel.params]), expected
        )


class TestKernelCaching:
    def test_rational_compiled_is_cached(self):
        function = RationalFunction(X + 1, Y + 2)
        assert function.compiled() is function.compiled()

    def test_explicit_params_bypass_cache(self):
        function = RationalFunction(X + 1, Y + 2)
        ordered = function.compiled(params=("y", "x"))
        assert ordered.params == ("y", "x")
        assert ordered is not function.compiled()

    def test_pickle_roundtrip_drops_and_rebuilds_codegen(self):
        function = RationalFunction(2 * X + 1, X * X + 3)
        kernel = function.compiled()
        assert kernel._scalar() is not None
        clone = pickle.loads(pickle.dumps(kernel))
        assert "_scalar_fns" not in clone.__dict__
        assert_close(clone.evaluate([0.7]), kernel.evaluate([0.7]))

    def test_unpickled_kernel_does_not_count_as_compilation(self):
        kernel = RationalFunction(X + 1, X + 2).compiled()
        blob = pickle.dumps(kernel)
        before = kernel_stats()["compilations"]
        pickle.loads(blob)
        assert kernel_stats()["compilations"] == before

    def test_kernel_stats_counts(self):
        before = kernel_stats()
        kernel = compile_rational(RationalFunction(X, X + 1))
        kernel.evaluate([1.0])
        kernel.evaluate_batch([[1.0], [2.0], [3.0]])
        after = kernel_stats()
        assert after["compilations"] == before["compilations"] + 1
        assert after["evaluations"] == before["evaluations"] + 4


class TestToCallable:
    def test_matches_symbolic_division(self):
        function = RationalFunction(X * X - 1, X + 2)
        call = function.to_callable()
        for point in random_points({"x"}, 10, seed=9):
            assert_close(call(point), float(function.evaluate(point)))

    def test_single_evaluation_per_call(self):
        function = RationalFunction(X + 1, X + 3)
        call = function.to_callable()
        before = kernel_stats()["evaluations"]
        call({"x": 0.5})
        assert kernel_stats()["evaluations"] == before + 1

    def test_fraction_inputs_still_work(self):
        function = RationalFunction(X + 1, X + 3)
        call = function.to_callable()
        assert_close(call({"x": Fraction(1, 2)}), 1.5 / 3.5)


class TestParametricConstraintKernels:
    def build(self):
        function = RationalFunction(X * Y + 1, X + Y + 3)
        return ParametricConstraint(function, ">=", 0.25)

    def test_fast_margin_matches_margin(self):
        constraint = self.build()
        for point in random_points({"x", "y"}, 15, seed=10):
            assert_close(
                constraint.fast_margin(point), constraint.margin(point)
            )

    def test_sign_flips_for_upper_bounds(self):
        function = RationalFunction(X, Polynomial.one())
        upper = ParametricConstraint(function, "<=", 0.5)
        assert upper.fast_margin({"x": 0.2}) == pytest.approx(0.3, rel=TOL)
        assert upper.margin_gradient({"x": 0.2})["x"] == pytest.approx(
            -1.0, rel=TOL
        )

    def test_margin_gradient_matches_finite_difference(self):
        constraint = self.build()
        point = {"x": 0.4, "y": 0.9}
        gradient = constraint.margin_gradient(point)
        step = 1e-7
        for name in gradient:
            bumped = dict(point)
            bumped[name] += step
            numeric = (constraint.margin(bumped) - constraint.margin(point)) / step
            assert gradient[name] == pytest.approx(float(numeric), rel=1e-5)

    def test_margin_batch_matches_scalar(self):
        constraint = self.build()
        names = ["y", "x", "extra"]
        points = [[0.1, 0.2, 9.9], [0.5, -0.3, 9.9], [1.0, 1.0, 9.9]]
        batch = constraint.margin_batch(points, names)
        for row, value in zip(points, batch):
            point = dict(zip(names, row))
            assert_close(value, constraint.margin(point))

    def test_compiled_kernel_is_cached(self):
        constraint = self.build()
        assert constraint.compiled() is constraint.compiled()

    def test_pickle_preserves_kernel_without_recompiling(self):
        constraint = self.build()
        constraint.compiled()
        blob = pickle.dumps(constraint)
        before = kernel_stats()["compilations"]
        clone = pickle.loads(blob)
        clone.fast_margin({"x": 0.3, "y": 0.7})
        assert kernel_stats()["compilations"] == before
