"""Unit tests for the DTMC and MDP model classes."""

import pytest

from repro.mdp import DTMC, MDP, DeterministicPolicy, ModelValidationError
from repro.mdp.policy import StochasticPolicy


class TestDTMCValidation:
    def test_rows_must_be_stochastic(self):
        with pytest.raises(ModelValidationError):
            DTMC(
                states=["a", "b"],
                transitions={"a": {"b": 0.5}, "b": {"b": 1.0}},
                initial_state="a",
            )

    def test_negative_probability_rejected(self):
        with pytest.raises(ModelValidationError):
            DTMC(
                states=["a", "b"],
                transitions={"a": {"b": 1.5, "a": -0.5}, "b": {"b": 1.0}},
                initial_state="a",
            )

    def test_unknown_target_rejected(self):
        with pytest.raises(ModelValidationError):
            DTMC(states=["a"], transitions={"a": {"ghost": 1.0}}, initial_state="a")

    def test_unknown_initial_rejected(self):
        with pytest.raises(ModelValidationError):
            DTMC(states=["a"], transitions={"a": {"a": 1.0}}, initial_state="b")

    def test_duplicate_states_rejected(self):
        with pytest.raises(ModelValidationError):
            DTMC(states=["a", "a"], transitions={"a": {"a": 1.0}}, initial_state="a")

    def test_missing_row_becomes_absorbing(self):
        chain = DTMC(states=["a", "b"], transitions={"a": {"b": 1.0}}, initial_state="a")
        assert chain.probability("b", "b") == 1.0

    def test_unknown_label_state_rejected(self):
        with pytest.raises(ModelValidationError):
            DTMC(
                states=["a"],
                transitions={"a": {"a": 1.0}},
                initial_state="a",
                labels={"ghost": {"x"}},
            )

    def test_zero_probability_edges_dropped(self):
        chain = DTMC(
            states=["a", "b"],
            transitions={"a": {"a": 1.0, "b": 0.0}, "b": {"b": 1.0}},
            initial_state="a",
        )
        assert chain.successors("a") == ["a"]


class TestDTMCStructure:
    def test_transition_matrix_row_stochastic(self, two_path_chain):
        matrix = two_path_chain.transition_matrix()
        assert matrix.shape == (3, 3)
        assert matrix.sum(axis=1) == pytest.approx([1.0, 1.0, 1.0])

    def test_atoms_and_label_lookup(self, two_path_chain):
        assert two_path_chain.atoms() == {"safe", "unsafe"}
        assert two_path_chain.states_with_atom("safe") == {"good"}

    def test_reward_vector(self, two_path_chain):
        assert list(two_path_chain.reward_vector()) == [1.0, 0.0, 0.0]

    def test_with_transitions_replaces_row(self, two_path_chain):
        repaired = two_path_chain.with_transitions(
            {"start": {"good": 0.8, "bad": 0.1, "start": 0.1}}
        )
        assert repaired.probability("start", "good") == 0.8
        # Original untouched.
        assert two_path_chain.probability("start", "good") == 0.6
        # Labels and rewards carried over.
        assert repaired.states_with_atom("safe") == {"good"}
        assert repaired.state_rewards["start"] == 1.0

    def test_with_rewards(self, two_path_chain):
        updated = two_path_chain.with_rewards({"start": 5.0})
        assert updated.state_rewards["start"] == 5.0
        assert two_path_chain.state_rewards["start"] == 1.0

    def test_repr_mentions_size(self, two_path_chain):
        assert "|S|=3" in repr(two_path_chain)


class TestMDPValidation:
    def test_state_without_actions_rejected(self):
        with pytest.raises(ModelValidationError):
            MDP(states=["a"], transitions={"a": {}}, initial_state="a")

    def test_action_row_must_be_stochastic(self):
        with pytest.raises(ModelValidationError):
            MDP(
                states=["a"],
                transitions={"a": {"go": {"a": 0.7}}},
                initial_state="a",
            )

    def test_action_reward_accumulates(self, two_action_mdp):
        mdp = two_action_mdp.with_rewards(
            state_rewards={"s": 1.0}, action_rewards={("s", "a"): 0.5}
        )
        assert mdp.reward("s", "a") == 1.5
        assert mdp.reward("s", "b") == 1.0
        assert mdp.reward("s") == 1.0


class TestMDPStructure:
    def test_actions_and_successors(self, two_action_mdp):
        assert set(two_action_mdp.actions("s")) == {"a", "b"}
        assert set(two_action_mdp.successors("s", "a")) == {"goal", "trap"}

    def test_all_actions_order(self, two_action_mdp):
        assert two_action_mdp.all_actions() == ["a", "b"]

    def test_induced_dtmc_deterministic(self, two_action_mdp):
        policy = DeterministicPolicy({"s": "a", "goal": "a", "trap": "a"})
        chain = two_action_mdp.induced_dtmc(policy)
        assert chain.probability("s", "goal") == 0.9
        assert chain.labels == two_action_mdp.labels

    def test_induced_dtmc_stochastic_policy(self, two_action_mdp):
        policy = StochasticPolicy(
            {"s": {"a": 0.5, "b": 0.5}, "goal": {"a": 1.0}, "trap": {"a": 1.0}}
        )
        chain = two_action_mdp.induced_dtmc(policy)
        assert chain.probability("s", "goal") == pytest.approx(0.55)

    def test_induced_dtmc_rejects_disabled_action(self, two_action_mdp):
        policy = DeterministicPolicy({"s": "z", "goal": "a", "trap": "a"})
        with pytest.raises(ModelValidationError):
            two_action_mdp.induced_dtmc(policy)

    def test_with_transitions_row_replacement(self, two_action_mdp):
        updated = two_action_mdp.with_transitions(
            {"s": {"a": {"goal": 1.0}}}
        )
        assert updated.probability("s", "a", "goal") == 1.0
        assert updated.probability("s", "b", "goal") == 0.2
        assert two_action_mdp.probability("s", "a", "goal") == 0.9

    def test_tuple_states_work(self):
        mdp = MDP(
            states=[(0, 0), (0, 1)],
            transitions={
                (0, 0): {"r": {(0, 1): 1.0}},
                (0, 1): {"r": {(0, 1): 1.0}},
            },
            initial_state=(0, 0),
        )
        assert mdp.successors((0, 0), "r") == [(0, 1)]
