"""Corpus round-trips: every family survives PRISM ⇄ JSON ⇄ PRISM.

The corpus is defined *through* the PRISM importer (the canonical model
is the re-parsed render), so each family must round-trip losslessly:
PRISM source → :func:`parse_prism` → :mod:`repro.io.json_io` payload →
model → PRISM again, with identical transition structure and — the part
the benchmarks rely on — identical verdicts under the sparse engine at
every hop.
"""

import pytest

from repro.checking.dtmc import DTMCModelChecker
from repro.corpus import (
    FAMILIES,
    family_names,
    get_family,
    random_dtmc,
    random_mdp,
)
from repro.io.json_io import dtmc_from_dict, dtmc_to_dict
from repro.io.prism import dtmc_to_prism
from repro.io.prism_parser import parse_prism
from repro.repair.engine import solve_repair

SMALLEST = [(name, FAMILIES[name].sizes[0]) for name in sorted(FAMILIES)]


def round_trip(model):
    """model → json payload → model → PRISM → model."""
    from_json = dtmc_from_dict(dtmc_to_dict(model))
    return parse_prism(dtmc_to_prism(from_json))


class TestGenerators:
    def test_random_dtmc_rows_are_stochastic(self):
        chain = random_dtmc(states=20, seed=3)
        for state in chain.states:
            total = sum(chain.transitions[state].values())
            assert total == pytest.approx(1.0, abs=1e-9)

    def test_random_dtmc_is_seed_deterministic(self):
        assert (
            random_dtmc(states=15, seed=8).transitions
            == random_dtmc(states=15, seed=8).transitions
        )
        assert (
            random_dtmc(states=15, seed=8).transitions
            != random_dtmc(states=15, seed=9).transitions
        )

    def test_random_dtmc_goal_is_reachable(self):
        chain = random_dtmc(states=12, seed=5)
        value = (
            DTMCModelChecker(chain, engine="sparse")
            .check(FAMILIES["random"].formula(12))
            .value
        )
        assert 0.0 < float(value) <= 1.0

    def test_random_mdp_has_actions_everywhere(self):
        mdp = random_mdp(states=10, actions=3, seed=2)
        for state in mdp.states:
            assert mdp.actions(state)


class TestFamilyRoundTrips:
    @pytest.mark.parametrize("name,size", SMALLEST)
    def test_prism_json_prism_preserves_structure(self, name, size):
        family = FAMILIES[name]
        model = family.model(size)
        again = round_trip(model)
        assert again.states == model.states
        assert again.initial_state == model.initial_state
        assert again.labels == model.labels
        for state in model.states:
            for target, probability in model.transitions[state].items():
                assert float(again.transitions[state][target]) == (
                    pytest.approx(float(probability), abs=1e-9)
                )

    @pytest.mark.parametrize("name,size", SMALLEST)
    def test_verdict_identity_under_sparse_engine(self, name, size):
        family = FAMILIES[name]
        formula = family.formula(size)
        model = family.model(size)
        direct = DTMCModelChecker(model, engine="sparse").check(formula)
        replayed = DTMCModelChecker(round_trip(model), engine="sparse").check(
            formula
        )
        assert replayed.holds == direct.holds
        assert float(replayed.value) == pytest.approx(
            float(direct.value), rel=1e-9
        )

    @pytest.mark.parametrize("name,size", SMALLEST)
    def test_formula_is_not_already_satisfied(self, name, size):
        family = FAMILIES[name]
        checker = DTMCModelChecker(family.model(size), engine="sparse")
        assert not checker.check(family.formula(size)).holds

    def test_random_family_seed_changes_model(self):
        family = FAMILIES["random"]
        assert family.seeded
        assert (
            family.model(12, seed=1).transitions
            != family.model(12, seed=2).transitions
        )


class TestFamilyRegistry:
    def test_family_names_sorted_and_complete(self):
        assert family_names() == sorted(FAMILIES)
        assert len(FAMILIES) >= 4

    def test_get_family_round_trips(self):
        for name in family_names():
            assert get_family(name).name == name

    def test_get_family_unknown_lists_options(self):
        with pytest.raises(KeyError) as excinfo:
            get_family("nonesuch")
        assert "grid" in str(excinfo.value)

    def test_size_below_minimum_rejected(self):
        with pytest.raises(ValueError):
            FAMILIES["grid"].prism_source(1)

    def test_describe_with_size_reports_dimensions(self):
        info = FAMILIES["refuel"].describe(8)
        assert info["states"] == 9
        assert info["variables"] >= 2
        assert info["kind"] == "probability"

    @pytest.mark.parametrize("name,size", SMALLEST)
    def test_variable_count_in_dispatch_bound_regime(self, name, size):
        assert 2 <= FAMILIES[name].variable_count(size) <= 9


class TestCorpusRepairs:
    def test_refuel_repair_succeeds_and_verifies(self):
        outcome = solve_repair(FAMILIES["refuel"].repair(8).problem())
        assert outcome.status == "repaired"
        assert outcome.verified

    def test_fused_and_unfused_agree_on_a_family(self):
        problem = FAMILIES["drone"].repair(8).problem()
        fused = solve_repair(problem, fused=True)
        unfused = solve_repair(
            FAMILIES["drone"].repair(8).problem(), fused=False
        )
        assert fused.status == unfused.status == "repaired"
        assert fused.objective_value == pytest.approx(
            unfused.objective_value, rel=1e-6
        )
