"""Tests for the cumulative reward operator ``R ⋈ b [C<=k]``."""

import pytest

from repro.checking import DTMCModelChecker, MDPModelChecker
from repro.logic import CumulativeRewardOperator, parse_pctl
from repro.mdp import MDP, chain_dtmc


class TestParsing:
    def test_parse(self):
        formula = parse_pctl("R<=10 [ C<=5 ]")
        assert isinstance(formula, CumulativeRewardOperator)
        assert formula.steps == 5
        assert formula.bound == 10.0

    def test_round_trip(self):
        formula = parse_pctl("R>=2 [ C<=3 ]")
        assert parse_pctl(repr(formula)) == formula

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            CumulativeRewardOperator("<=", 1.0, -1)


class TestDtmc:
    def test_reward_collected_per_step(self):
        # All states reward 1 except the absorbing goal; k steps from the
        # start collect at most k but goal-arrival stops accumulation.
        chain = chain_dtmc(10, forward_probability=1.0)
        checker = DTMCModelChecker(chain)
        for k in (0, 1, 3, 5):
            values = checker.cumulative_rewards(k)
            assert values[0] == pytest.approx(float(k))

    def test_absorbing_goal_stops_accumulation(self):
        chain = chain_dtmc(3, forward_probability=1.0)  # goal after 2 steps
        checker = DTMCModelChecker(chain)
        values = checker.cumulative_rewards(10)
        assert values[0] == pytest.approx(2.0)

    def test_monotone_in_steps(self, simple_chain):
        checker = DTMCModelChecker(simple_chain)
        previous = -1.0
        for k in range(6):
            current = checker.cumulative_rewards(k)[0]
            assert current >= previous
            previous = current

    def test_converges_to_reachability_reward(self, simple_chain):
        checker = DTMCModelChecker(simple_chain)
        total = checker.check(parse_pctl('R<=100 [ F "goal" ]')).value
        cumulative = checker.cumulative_rewards(300)[0]
        assert cumulative == pytest.approx(total, abs=1e-6)

    def test_check_interface(self, simple_chain):
        result = DTMCModelChecker(simple_chain).check(parse_pctl("R<=3 [ C<=3 ]"))
        assert result.value is not None
        assert result.holds == (result.value <= 3)


class TestMdp:
    @pytest.fixture
    def earning_mdp(self) -> MDP:
        return MDP(
            states=["s"],
            transitions={"s": {"hi": {"s": 1.0}, "lo": {"s": 1.0}}},
            initial_state="s",
            action_rewards={("s", "hi"): 2.0, ("s", "lo"): 1.0},
        )

    def test_max_and_min(self, earning_mdp):
        checker = MDPModelChecker(earning_mdp)
        assert checker.cumulative_rewards(4, maximise=True)["s"] == pytest.approx(
            8.0
        )
        assert checker.cumulative_rewards(4, maximise=False)["s"] == pytest.approx(
            4.0
        )

    def test_formula_semantics(self, earning_mdp):
        checker = MDPModelChecker(earning_mdp)
        # Upper bound must hold for every scheduler: Rmax = 8 > 7.
        assert not checker.check(parse_pctl("R<=7 [ C<=4 ]")).holds
        # Lower bound uses Rmin = 4 >= 3.
        assert checker.check(parse_pctl("R>=3 [ C<=4 ]")).holds
