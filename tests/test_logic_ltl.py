"""Unit tests for finite-trace LTL."""

from repro.logic.ltl import (
    LEventually,
    LGlobally,
    LNext,
    LTrue,
    LUntil,
    action_atom,
    evaluate_ltl,
    ltl_atom,
    state_atom,
)
from repro.mdp import Trajectory


def trace(*states):
    return Trajectory.from_states(list(states))


AT_B = state_atom("b")
AT_A = state_atom("a")


class TestAtoms:
    def test_state_atom(self):
        assert evaluate_ltl(AT_A, trace("a", "b"))
        assert not evaluate_ltl(AT_B, trace("a", "b"))

    def test_action_atom(self):
        u = Trajectory([("s", "go"), ("t", None)])
        assert evaluate_ltl(action_atom("go"), u)
        assert not evaluate_ltl(action_atom("stop"), u)

    def test_custom_predicate(self):
        even = ltl_atom(lambda s, a: s % 2 == 0, name="even")
        assert evaluate_ltl(even, Trajectory.from_states([2, 3]))

    def test_label_atom(self, two_path_chain):
        from repro.logic.ltl import label_atom

        safe = label_atom(two_path_chain, "safe")
        assert evaluate_ltl(safe, trace("good"))
        assert not evaluate_ltl(safe, trace("start"))


class TestTemporalOperators:
    def test_next_strong_semantics(self):
        assert evaluate_ltl(LNext(AT_B), trace("a", "b"))
        # X is false at the last position.
        assert not evaluate_ltl(LNext(LTrue()), trace("a"))

    def test_eventually(self):
        assert evaluate_ltl(LEventually(AT_B), trace("a", "a", "b"))
        assert not evaluate_ltl(LEventually(AT_B), trace("a", "a"))

    def test_globally(self):
        assert evaluate_ltl(LGlobally(AT_A), trace("a", "a"))
        assert not evaluate_ltl(LGlobally(AT_A), trace("a", "b"))

    def test_until(self):
        assert evaluate_ltl(LUntil(AT_A, AT_B), trace("a", "a", "b"))
        assert not evaluate_ltl(LUntil(AT_A, AT_B), trace("a", "c", "b"))
        # Until needs the right side to eventually hold.
        assert not evaluate_ltl(LUntil(AT_A, AT_B), trace("a", "a"))

    def test_until_immediately_satisfied(self):
        assert evaluate_ltl(LUntil(AT_A, AT_B), trace("b"))


class TestBooleanCombinators:
    def test_and_or_not(self):
        u = trace("a", "b")
        assert evaluate_ltl(AT_A & LNext(AT_B), u)
        assert evaluate_ltl(AT_B | AT_A, u)
        assert evaluate_ltl(~AT_B, u)

    def test_duality_f_g(self):
        """¬F φ ≡ G ¬φ on every trace (checked on a family)."""
        traces = [
            trace(*states)
            for states in (["a"], ["a", "b"], ["b", "a"], ["a", "a", "a"],
                           ["b"], ["a", "b", "a"])
        ]
        for u in traces:
            assert evaluate_ltl(~LEventually(AT_B), u) == evaluate_ltl(
                LGlobally(~AT_B), u
            )

    def test_until_unfolds(self):
        """φ U ψ ≡ ψ | (φ & X(φ U ψ)) at position 0."""
        traces = [
            trace(*states)
            for states in (["a", "b"], ["b"], ["a", "a", "b"], ["c", "b"], ["a"])
        ]
        formula = LUntil(AT_A, AT_B)
        unfolded = AT_B | (AT_A & LNext(formula))
        for u in traces:
            assert evaluate_ltl(formula, u) == evaluate_ltl(unfolded, u)

    def test_safety_rule_shape(self):
        """The car case-study rule: G ¬collision."""
        collide = state_atom("S2")
        safe = LGlobally(~collide)
        assert evaluate_ltl(safe, trace("S0", "S1", "S6"))
        assert not evaluate_ltl(safe, trace("S0", "S1", "S2"))
