"""Tests for DOT export."""

import pytest

from repro.io.dot import dtmc_to_dot, mdp_to_dot, repair_diff_to_dot


class TestDtmcDot:
    def test_structure(self, two_path_chain):
        dot = dtmc_to_dot(two_path_chain)
        assert dot.startswith("digraph chain {")
        assert dot.rstrip().endswith("}")
        # One node per state, initial double-circled.
        assert dot.count("shape=doublecircle") == 1
        assert 'label="0.6"' in dot
        assert "{safe}" in dot

    def test_all_edges_present(self, two_path_chain):
        dot = dtmc_to_dot(two_path_chain)
        edge_count = sum(
            len(row) for row in two_path_chain.transitions.values()
        )
        assert dot.count("->") == edge_count


class TestMdpDot:
    def test_action_points(self, two_action_mdp):
        dot = mdp_to_dot(two_action_mdp)
        assert "shape=point" in dot
        assert 'label="a"' in dot
        assert 'label="b"' in dot


class TestRepairDiff:
    def test_changed_edges_highlighted(self, two_path_chain):
        repaired = two_path_chain.with_transitions(
            {"start": {"good": 0.7, "bad": 0.2, "start": 0.1}}
        )
        dot = repair_diff_to_dot(two_path_chain, repaired)
        assert "0.6 → 0.7" in dot
        assert "0.3 → 0.2" in dot
        assert dot.count("penwidth=2") == 2

    def test_identical_chains_have_no_red(self, two_path_chain):
        dot = repair_diff_to_dot(two_path_chain, two_path_chain)
        assert "color=red" not in dot

    def test_state_space_mismatch_rejected(self, two_path_chain, simple_chain):
        with pytest.raises(ValueError):
            repair_diff_to_dot(two_path_chain, simple_chain)

    def test_end_to_end_with_model_repair(self, simple_chain):
        from repro.core import ModelRepair
        from repro.logic import parse_pctl
        from repro.mdp import chain_dtmc

        chain = chain_dtmc(4, forward_probability=0.5)
        result = ModelRepair.for_chain(
            chain, parse_pctl('R<=5 [ F "goal" ]')
        ).repair()
        dot = repair_diff_to_dot(chain, result.repaired_model)
        assert "color=red" in dot
