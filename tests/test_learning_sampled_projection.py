"""Tests for the sampled (Metropolis + importance weighting) projection."""

import numpy as np
import pytest

from repro.learning import (
    TabularFeatureMap,
    fit_reward_to_sampled_projection,
    sampled_projection_feature_expectation,
)
from repro.learning.posterior_regularization import (
    _feature_expectation,
    project_distribution,
)
from repro.learning.trajectory_distribution import TrajectoryDistribution
from repro.logic.ltl import LGlobally, state_atom
from repro.logic.rules import LtlRule
from repro.mdp import MDP


@pytest.fixture
def fork_mdp() -> MDP:
    return MDP(
        states=["s", "bad", "ok"],
        transitions={
            "s": {
                "risky": {"bad": 0.5, "ok": 0.5},
                "safe": {"ok": 1.0},
            },
            "bad": {"stay": {"bad": 1.0}},
            "ok": {"stay": {"ok": 1.0}},
        },
        initial_state="s",
        state_rewards={"bad": 0.5, "ok": 0.2},
    )


@pytest.fixture
def fork_features() -> TabularFeatureMap:
    return TabularFeatureMap(
        {"s": [0.0, 0.0], "bad": [1.0, 0.0], "ok": [0.0, 1.0]}
    )


@pytest.fixture
def avoid_bad() -> LtlRule:
    return LtlRule(LGlobally(~state_atom("bad")), weight=5.0)


class TestSampledExpectation:
    def test_matches_exact_projection(self, fork_mdp, fork_features, avoid_bad):
        exact_base = TrajectoryDistribution.from_maxent(
            fork_mdp, fork_mdp.state_rewards, horizon=2
        )
        exact_q = project_distribution(exact_base, [avoid_bad])
        exact_features = _feature_expectation(exact_q, fork_features)
        sampled, violation = sampled_projection_feature_expectation(
            fork_mdp,
            fork_features,
            fork_mdp.state_rewards,
            [avoid_bad],
            horizon=2,
            samples=4000,
            seed=3,
        )
        assert sampled == pytest.approx(exact_features, abs=0.1)
        exact_violation = exact_q.event_probability(lambda u: u.visits("bad"))
        assert violation == pytest.approx(exact_violation, abs=0.05)

    def test_seed_reproducibility(self, fork_mdp, fork_features, avoid_bad):
        run = lambda: sampled_projection_feature_expectation(
            fork_mdp,
            fork_features,
            fork_mdp.state_rewards,
            [avoid_bad],
            horizon=2,
            samples=500,
            seed=11,
        )[0]
        assert np.allclose(run(), run())


class TestSampledRefit:
    def test_refit_disfavours_bad(self, fork_mdp, fork_features):
        hard_rule = LtlRule(LGlobally(~state_atom("bad")), weight=50.0)
        theta, rewards = fit_reward_to_sampled_projection(
            fork_mdp,
            fork_features,
            fork_mdp.state_rewards,
            [hard_rule],
            horizon=2,
            samples=3000,
            seed=5,
            learning_rate=0.3,
        )
        assert rewards["ok"] > rewards["bad"]

    def test_close_to_exact_refit(self, fork_mdp, fork_features):
        from repro.learning.posterior_regularization import (
            fit_reward_to_distribution,
        )

        rule = LtlRule(LGlobally(~state_atom("bad")), weight=50.0)
        base = TrajectoryDistribution.from_maxent(
            fork_mdp, fork_mdp.state_rewards, horizon=2
        )
        target = project_distribution(base, [rule])
        exact_theta, _ = fit_reward_to_distribution(
            fork_mdp, fork_features, target, horizon=2,
            learning_rate=0.3, max_iterations=300,
        )
        sampled_theta, _ = fit_reward_to_sampled_projection(
            fork_mdp,
            fork_features,
            fork_mdp.state_rewards,
            [rule],
            horizon=2,
            samples=4000,
            seed=7,
            learning_rate=0.3,
            max_iterations=300,
        )
        # Same preference direction; magnitudes within MC noise.
        assert np.sign(sampled_theta[1] - sampled_theta[0]) == np.sign(
            exact_theta[1] - exact_theta[0]
        )
