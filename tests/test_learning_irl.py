"""Unit tests for maximum-entropy IRL."""

import numpy as np
import pytest

from repro.learning.irl import MaxEntIRL, TabularFeatureMap
from repro.mdp import MDP, Trajectory


@pytest.fixture
def corridor_mdp() -> MDP:
    """Two terminal rooms; the expert always goes left."""
    return MDP(
        states=["mid", "left", "right"],
        transitions={
            "mid": {
                "go_left": {"left": 1.0},
                "go_right": {"right": 1.0},
            },
            "left": {"stay": {"left": 1.0}},
            "right": {"stay": {"right": 1.0}},
        },
        initial_state="mid",
        labels={"left": {"left"}, "right": {"right"}},
    )


@pytest.fixture
def corridor_features() -> TabularFeatureMap:
    return TabularFeatureMap(
        {
            "mid": [0.0, 0.0],
            "left": [1.0, 0.0],
            "right": [0.0, 1.0],
        }
    )


class TestFeatureMaps:
    def test_tabular_lookup(self, corridor_features):
        assert list(corridor_features("left")) == [1.0, 0.0]
        assert corridor_features.dimension == 2

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TabularFeatureMap({"a": [1.0], "b": [1.0, 2.0]})

    def test_shape_checked_at_call(self):
        from repro.learning.irl import FeatureMap

        bad = FeatureMap(lambda s: np.zeros(3), dimension=2)
        with pytest.raises(ValueError):
            bad("s")


class TestSoftPolicy:
    def test_distributions_normalised(self, corridor_mdp, corridor_features):
        irl = MaxEntIRL(corridor_mdp, corridor_features)
        policy = irl.soft_policy(np.array([1.0, 0.0]), horizon=4)
        for state, dist in policy.items():
            assert sum(dist.values()) == pytest.approx(1.0)

    def test_higher_reward_action_preferred(self, corridor_mdp, corridor_features):
        irl = MaxEntIRL(corridor_mdp, corridor_features)
        policy = irl.soft_policy(np.array([2.0, 0.0]), horizon=4)
        assert policy["mid"]["go_left"] > policy["mid"]["go_right"]

    def test_zero_reward_is_uniform(self, corridor_mdp, corridor_features):
        irl = MaxEntIRL(corridor_mdp, corridor_features)
        policy = irl.soft_policy(np.zeros(2), horizon=4)
        assert policy["mid"]["go_left"] == pytest.approx(0.5)


class TestVisitation:
    def test_initial_state_counted(self, corridor_mdp, corridor_features):
        irl = MaxEntIRL(corridor_mdp, corridor_features)
        visitation = irl.state_visitation_frequencies(np.zeros(2), horizon=3)
        index = corridor_mdp.index
        # t=0 mass is entirely on mid.
        assert visitation[index["mid"]] == pytest.approx(1.0)
        # Total visitation sums to the horizon.
        assert visitation.sum() == pytest.approx(3.0)


class TestFit:
    def test_recovers_expert_preference(self, corridor_mdp, corridor_features):
        demos = [
            Trajectory([("mid", "go_left"), ("left", None)])
            for _ in range(3)
        ]
        irl = MaxEntIRL(
            corridor_mdp, corridor_features, learning_rate=0.3, max_iterations=200
        )
        result = irl.fit(demos)
        # Left feature weight must dominate the right one.
        assert result.theta[0] > result.theta[1]
        rewards = result.state_rewards
        assert rewards["left"] > rewards["right"]

    def test_unit_ball_projection(self, corridor_mdp, corridor_features):
        demos = [Trajectory([("mid", "go_left"), ("left", None)])]
        irl = MaxEntIRL(
            corridor_mdp,
            corridor_features,
            learning_rate=1.0,
            max_iterations=300,
            project_to_unit_ball=True,
        )
        result = irl.fit(demos)
        assert np.linalg.norm(result.theta) <= 1.0 + 1e-9

    def test_needs_demonstrations(self, corridor_mdp, corridor_features):
        irl = MaxEntIRL(corridor_mdp, corridor_features)
        with pytest.raises(ValueError):
            irl.fit([])

    def test_apply_to_mdp(self, corridor_mdp, corridor_features):
        demos = [Trajectory([("mid", "go_left"), ("left", None)])]
        result = MaxEntIRL(corridor_mdp, corridor_features).fit(demos)
        updated = result.apply_to(corridor_mdp)
        assert updated.state_rewards == result.state_rewards
