"""Tests for the WSN query-routing case study (Section V-A)."""

import pytest

from repro.casestudies import wsn
from repro.checking import DTMCModelChecker


class TestTopology:
    def test_grid_nodes(self):
        nodes = wsn.grid_nodes()
        assert len(nodes) == 9
        assert nodes[0] == "n11"
        assert nodes[-1] == "n33"

    def test_neighbours_corner_edge_centre(self):
        assert set(wsn.neighbours("n11")) == {"n12", "n21"}
        assert set(wsn.neighbours("n12")) == {"n11", "n13", "n22"}
        assert set(wsn.neighbours("n22")) == {"n12", "n21", "n23", "n32"}

    def test_field_station_classification(self):
        assert wsn.is_field_or_station("n11")
        assert wsn.is_field_or_station("n33")
        assert not wsn.is_field_or_station("n22")
        assert not wsn.is_field_or_station("n21")

    def test_ignore_probabilities_by_row(self):
        probs = wsn.ignore_probabilities(0.5, 0.4)
        assert probs["n11"] == 0.5
        assert probs["n32"] == 0.5
        assert probs["n22"] == 0.4


class TestChain:
    def test_station_absorbing_and_labelled(self):
        chain = wsn.build_wsn_chain()
        assert chain.probability("n11", "n11") == 1.0
        assert chain.states_with_atom("delivered") == {"n11"}

    def test_reward_one_per_attempt(self):
        chain = wsn.build_wsn_chain()
        assert chain.state_rewards["n33"] == 1.0
        assert chain.state_rewards["n11"] == 0.0

    def test_rows_stochastic_by_construction(self):
        chain = wsn.build_wsn_chain()
        for state in chain.states:
            assert sum(chain.transitions[state].values()) == pytest.approx(1.0)

    def test_expected_attempts_in_paper_band(self):
        """Between 40 and 100 attempts — the paper's case-1/case-2 setup."""
        chain = wsn.build_wsn_chain()
        value = DTMCModelChecker(chain).check(wsn.attempts_property(1)).value
        assert 40 < value <= 100

    def test_lower_ignore_means_fewer_attempts(self):
        worse = wsn.build_wsn_chain(ignore_field_station=0.6, ignore_interior=0.5)
        better = wsn.build_wsn_chain(ignore_field_station=0.3, ignore_interior=0.2)
        checker = lambda c: DTMCModelChecker(c).check(wsn.attempts_property(1)).value
        assert checker(better) < checker(worse)


class TestParametricModel:
    def test_matches_concrete_at_origin(self):
        parametric = wsn.build_wsn_parametric()
        chain = wsn.build_wsn_chain()
        instantiated = parametric.instantiate({"p": 0.0, "q": 0.0})
        for state in chain.states:
            for target in chain.successors(state):
                assert instantiated.probability(state, target) == pytest.approx(
                    chain.probability(state, target)
                )

    def test_corrections_lower_expected_attempts(self):
        parametric = wsn.build_wsn_parametric()
        f = parametric.expected_reward({"n11"})
        base = float(f.evaluate({"p": 0.0, "q": 0.0}))
        corrected = float(f.evaluate({"p": 0.05, "q": 0.05}))
        assert corrected < base


class TestModelRepairCases:
    """The paper's three cases (Section V-A.1)."""

    def test_case_satisfied_at_100(self):
        result = wsn.model_repair_problem(100).repair()
        assert result.status == "already_satisfied"

    def test_case_feasible_at_40(self):
        result = wsn.model_repair_problem(40).repair()
        assert result.status == "repaired"
        assert result.verified
        # Corrections lower ignore probabilities (both non-negative).
        assert result.assignment["p"] >= 0
        assert result.assignment["q"] >= 0
        assert max(result.assignment.values()) > 0

    def test_case_infeasible_at_19(self):
        result = wsn.model_repair_problem(19).repair()
        assert result.status == "infeasible"


class TestObservationDataset:
    def test_groups_present(self):
        dataset = wsn.generate_observation_dataset(episodes=50, seed=1)
        assert set(dataset.group_names()) == {
            wsn.GROUP_FORWARD_SUCCESS,
            wsn.GROUP_FORWARD_FAIL,
            wsn.GROUP_IGNORE_STATION,
            wsn.GROUP_IGNORE_NEAR_SOURCE,
        }
        assert not dataset.group(wsn.GROUP_FORWARD_SUCCESS).droppable
        assert dataset.group(wsn.GROUP_FORWARD_FAIL).droppable

    def test_observations_are_single_transitions(self):
        dataset = wsn.generate_observation_dataset(episodes=10, seed=2)
        for trace in dataset.all_traces():
            assert len(trace) == 2

    def test_seeded_reproducibility(self):
        a = wsn.generate_observation_dataset(episodes=20, seed=3)
        b = wsn.generate_observation_dataset(episodes=20, seed=3)
        assert a.grouped_counts() == b.grouped_counts()

    def test_failure_groups_are_self_loops(self):
        dataset = wsn.generate_observation_dataset(episodes=20, seed=4)
        for trace in dataset.group(wsn.GROUP_FORWARD_FAIL).traces:
            states = trace.states()
            assert states[0] == states[1]


class TestDataRepairCase:
    def test_repair_with_small_drops(self):
        dataset = wsn.generate_observation_dataset(episodes=400, seed=7)
        repair = wsn.data_repair_problem(
            dataset, bound=wsn.DEFAULT_DATA_REPAIR_BOUND
        )
        learned = repair.learned_model()
        before = DTMCModelChecker(learned).check(wsn.attempts_property(1)).value
        assert before > wsn.DEFAULT_DATA_REPAIR_BOUND  # needs repair
        result = repair.repair()
        assert result.status == "repaired"
        assert result.verified
        # All drop probabilities are genuinely small (paper shape).
        assert all(0 <= v < 0.5 for v in result.drop_probabilities.values())


class TestWsnMdp:
    def test_chain_is_uniform_policy_of_mdp(self):
        """The routing chain equals the MDP under uniform-random routing."""
        from repro.mdp.policy import uniform_policy

        mdp = wsn.build_wsn_mdp()
        chain = wsn.build_wsn_chain()
        induced = mdp.induced_dtmc(uniform_policy(mdp))
        for state in chain.states:
            for target in chain.successors(state):
                assert induced.probability(state, target) == pytest.approx(
                    chain.probability(state, target)
                )

    def test_optimal_routing_beats_uniform(self):
        uniform_attempts = DTMCModelChecker(wsn.build_wsn_chain()).check(
            wsn.attempts_property(1)
        ).value
        best_attempts, policy = wsn.optimal_routing()
        assert best_attempts < uniform_attempts
        # The witness policy achieves the Rmin value on its induced chain.
        mdp = wsn.build_wsn_mdp()
        induced = mdp.induced_dtmc(policy)
        achieved = DTMCModelChecker(induced).check(wsn.attempts_property(1)).value
        assert achieved == pytest.approx(best_attempts, abs=1e-6)

    def test_optimal_policy_routes_toward_station(self):
        _, policy = wsn.optimal_routing()
        # From the source corner, the first hop heads up or left.
        assert policy["n33"] in ("to_n23", "to_n32")

    def test_repair_under_optimal_policy(self):
        """Model Repair of the MDP rows chosen by the optimal router."""
        from repro.core import ModelRepair

        best_attempts, policy = wsn.optimal_routing()
        mdp = wsn.build_wsn_mdp()
        bound = best_attempts - 2.0  # tighter than even optimal routing
        helper = ModelRepair.for_mdp_under_policy(
            mdp, policy, wsn.attempts_property(bound)
        )
        repaired_mdp, result = helper.repair()
        assert result.status == "repaired"
        induced = repaired_mdp.induced_dtmc(policy)
        assert DTMCModelChecker(induced).check(
            wsn.attempts_property(bound)
        ).holds
