"""Cross-engine contract tests for the unified repair core.

Every repair flavour (model, data, reward, rate, robust) now delegates
to ``repro.repair``'s single ``RepairProblem → solve → verify`` driver,
so all five must expose identical result-shape semantics: the same status
vocabulary, the same ``feasible``/``verified``/``solver_stats`` fields,
a canonical ``to_dict()`` that round-trips through
``RepairResult.from_dict``, and a consistent ``__repr__``.

One asymmetry is intentional: Reward Repair always runs the projection
(an already-holding Q-constraint just yields a ~zero-delta ``repaired``
result), so its "already satisfied" scenario expects ``repaired`` with
objective ≈ 0 rather than ``already_satisfied``.
"""

import re

import numpy as np
import pytest

from repro.core import DataRepair, ModelRepair, QValueConstraint, RewardRepair
from repro.ctmc import CTMC, RateRepair
from repro.data import TraceDataset, TraceGroup
from repro.learning.irl import TabularFeatureMap
from repro.logic import parse_pctl
from repro.mdp import MDP, Trajectory
from repro.repair import RepairResult

#: Keys every flavour's ``to_dict()`` must carry.
SHARED_KEYS = {
    "flavor",
    "status",
    "feasible",
    "assignment",
    "objective_value",
    "verified",
    "message",
    "solver_stats",
}


# ----------------------------------------------------------------------
# Scenario builders: each returns a finished result
# ----------------------------------------------------------------------
def coin_chain():
    from repro.mdp import DTMC

    return DTMC(
        states=["s0", "good", "bad"],
        transitions={
            "s0": {"good": 0.5, "bad": 0.5},
            "good": {"good": 1.0},
            "bad": {"bad": 1.0},
        },
        initial_state="s0",
        labels={"good": {"good"}},
    )


def model_result(scenario):
    bound, max_perturbation = {
        "already_satisfied": (0.6, None),
        "repaired": (0.3, None),
        "infeasible": (0.3, 0.01),
    }[scenario]
    return ModelRepair.for_chain(
        coin_chain(),
        parse_pctl(f'P<={bound} [ F "good" ]'),
        max_perturbation=max_perturbation,
    ).repair()


def observations(source, target, count):
    return [Trajectory.from_states([source, target]) for _ in range(count)]


def data_result(scenario):
    if scenario == "infeasible":
        dataset = TraceDataset(
            [
                TraceGroup(
                    "all",
                    observations("a", "a", 10) + observations("a", "b", 1),
                    droppable=False,
                )
            ]
        )
        bound = 2
    else:
        dataset = TraceDataset(
            [
                TraceGroup("success", observations("a", "b", 40), droppable=False),
                TraceGroup("failure", observations("a", "a", 60)),
            ]
        )
        bound = 10 if scenario == "already_satisfied" else 2
    return DataRepair(
        dataset=dataset,
        formula=parse_pctl(f'R<={bound} [ F "goal" ]'),
        initial_state="a",
        states=["a", "b"],
        labels={"b": {"goal"}},
        state_rewards={"a": 1.0},
    ).repair()


def shortcut_mdp():
    return MDP(
        states=["start", "danger", "detour", "goal", "end"],
        transitions={
            "start": {
                "shortcut": {"danger": 1.0},
                "around": {"detour": 1.0},
            },
            "danger": {"go": {"goal": 1.0}},
            "detour": {"go": {"goal": 1.0}},
            "goal": {"go": {"end": 1.0}},
            "end": {"go": {"end": 1.0}},
        },
        initial_state="start",
        labels={"danger": {"unsafe"}, "goal": {"target"}},
    )


def reward_result(scenario):
    features = TabularFeatureMap(
        {
            "start": [0.0, 0.0],
            "danger": [1.0, 0.0],
            "detour": [0.0, 0.0],
            "goal": [0.0, 1.0],
            "end": [0.0, 0.0],
        }
    )
    repair = RewardRepair(shortcut_mdp(), features, discount=0.9)
    theta = np.array([0.5, 1.0])
    if scenario == "already_satisfied":
        # The constraint already holds; the projection stays (near) put.
        constraints = [QValueConstraint("start", "shortcut", "around")]
        return repair.q_constrained(theta, constraints)
    if scenario == "repaired":
        constraints = [
            QValueConstraint("start", "around", "shortcut", margin=1e-3)
        ]
        return repair.q_constrained(theta, constraints)
    constraints = [QValueConstraint("start", "around", "shortcut", margin=0.5)]
    return repair.q_constrained(theta, constraints, delta_bound=1e-4)


def pipeline_ctmc():
    return CTMC(
        states=["s0", "s1", "done"],
        rates={"s0": {"s1": 1.0}, "s1": {"done": 0.5}},
        initial_state="s0",
        labels={"done": {"done"}},
    )


def rate_result(scenario):
    bound, max_speedup = {
        "already_satisfied": (5.0, 2.0),
        "repaired": (2.0, 4.0),
        "infeasible": (0.5, 1.5),
    }[scenario]
    return RateRepair(
        pipeline_ctmc(), {"done"}, bound, max_speedup=max_speedup
    ).repair()


def robust_result(scenario):
    from repro.repair import RobustRepair

    bound, max_perturbation = {
        "already_satisfied": (0.6, None),
        "repaired": (0.3, None),
        "infeasible": (0.3, 0.01),
    }[scenario]
    return RobustRepair.for_chain(
        coin_chain(),
        parse_pctl(f'P<={bound} [ F "good" ]'),
        epsilon=0.01,
        max_perturbation=max_perturbation,
    ).repair()


BUILDERS = {
    "model": model_result,
    "data": data_result,
    "reward": reward_result,
    "rate": rate_result,
    "robust": robust_result,
}

#: Expected status per (flavor, scenario); Reward Repair's asymmetry
#: (always "repaired"/"infeasible") is the only deviation.
EXPECTED_STATUS = {
    (flavor, scenario): scenario
    for flavor in BUILDERS
    for scenario in ("already_satisfied", "repaired", "infeasible")
}
EXPECTED_STATUS[("reward", "already_satisfied")] = "repaired"

CASES = sorted(EXPECTED_STATUS)


@pytest.fixture(scope="module")
def results():
    """Run the whole matrix once; contract checks then only inspect."""
    return {
        (flavor, scenario): BUILDERS[flavor](scenario)
        for flavor, scenario in CASES
    }


@pytest.mark.parametrize("flavor,scenario", CASES)
class TestResultContract:
    def test_status_and_feasibility(self, results, flavor, scenario):
        result = results[(flavor, scenario)]
        assert isinstance(result, RepairResult)
        assert result.flavor == flavor
        assert result.status == EXPECTED_STATUS[(flavor, scenario)]
        assert result.feasible == (result.status != "infeasible")

    def test_shared_payload_shape(self, results, flavor, scenario):
        payload = results[(flavor, scenario)].to_dict()
        assert SHARED_KEYS <= set(payload)
        assert payload["flavor"] == flavor
        assert isinstance(payload["assignment"], dict)
        assert all(
            isinstance(v, float) for v in payload["assignment"].values()
        )
        assert isinstance(payload["solver_stats"], dict)
        assert all(
            isinstance(v, int) for v in payload["solver_stats"].values()
        )

    def test_solver_stats_reflect_work(self, results, flavor, scenario):
        result = results[(flavor, scenario)]
        if result.status == "already_satisfied":
            # Short-circuited before the NLP: no solver accounting.
            assert result.solver_stats == {}
        elif result.solver_stats:
            assert result.solver_stats.get("iterations", 0) > 0
        else:
            # Only a pre-solve short-circuit (e.g. no free variables)
            # may leave the accounting empty on a non-satisfied result.
            assert result.status == "infeasible"
            assert result.assignment == {}

    def test_to_dict_round_trips(self, results, flavor, scenario):
        result = results[(flavor, scenario)]
        payload = result.to_dict()
        rebuilt = RepairResult.from_dict(payload)
        assert type(rebuilt) is type(result)
        assert rebuilt.to_dict() == payload

    def test_repr_is_consistent(self, results, flavor, scenario):
        result = results[(flavor, scenario)]
        pattern = (
            rf"^{type(result).__name__}\(status='{result.status}', "
            r"objective=[-0-9.e+]+, verified=(True|False)"
        )
        assert re.match(pattern, repr(result))


class TestRewardAsymmetry:
    def test_satisfied_constraint_costs_nothing(self, results):
        result = results[("reward", "already_satisfied")]
        assert result.status == "repaired"
        assert result.objective_value == pytest.approx(0.0, abs=1e-4)
        assert float(np.linalg.norm(result.theta_delta())) < 1e-2


class TestRateRepairCaching:
    def test_warm_rerun_reuses_elimination_and_checks(self):
        from repro.checking.cache import CheckCache

        cache = CheckCache()
        first = RateRepair(
            pipeline_ctmc(), {"done"}, 2.0, max_speedup=4.0, cache=cache
        ).repair()
        assert first.status == "repaired"
        eliminations = cache.stats()["parametric_eliminations"]
        assert eliminations == 1
        second = RateRepair(
            pipeline_ctmc(), {"done"}, 2.0, max_speedup=4.0, cache=cache
        ).repair()
        # Content-identical repair: the symbolic closed form and the
        # concrete expected-time checks all come from the cache.
        assert cache.stats()["parametric_eliminations"] == eliminations
        assert cache.stats()["hits"] > 0
        assert second.scales == pytest.approx(first.scales)


class TestGenericFallback:
    def test_generic_payload_round_trips(self):
        base = RepairResult(
            status="repaired",
            assignment={"x": 0.25},
            objective_value=0.0625,
            verified=True,
            message="ok",
            solver_stats={"iterations": 3},
        )
        rebuilt = RepairResult.from_dict(base.to_dict())
        assert type(rebuilt) is RepairResult
        assert rebuilt.to_dict() == base.to_dict()

    def test_unknown_flavor_rejected(self):
        with pytest.raises(ValueError):
            RepairResult.from_dict({"flavor": "nope", "status": "repaired"})
