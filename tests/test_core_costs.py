"""Unit tests for repair cost functions."""

import pytest

from repro.core.costs import (
    frobenius_cost,
    l1_cost,
    max_cost,
    resolve_cost,
    weighted_quadratic_cost,
)


class TestCosts:
    def test_frobenius(self):
        assert frobenius_cost({"a": 3.0, "b": -4.0}) == pytest.approx(25.0)

    def test_l1(self):
        assert l1_cost({"a": 3.0, "b": -4.0}) == pytest.approx(7.0)

    def test_max(self):
        assert max_cost({"a": 3.0, "b": -4.0}) == pytest.approx(4.0)
        assert max_cost({}) == 0.0

    def test_weighted(self):
        cost = weighted_quadratic_cost({"a": 2.0})
        assert cost({"a": 1.0, "b": 1.0}) == pytest.approx(3.0)

    def test_all_zero_at_origin(self):
        origin = {"a": 0.0, "b": 0.0}
        for cost in (frobenius_cost, l1_cost, max_cost):
            assert cost(origin) == 0.0


class TestResolve:
    def test_by_name(self):
        assert resolve_cost("frobenius") is frobenius_cost
        assert resolve_cost("l1") is l1_cost

    def test_callable_passthrough(self):
        cost = lambda v: 1.0
        assert resolve_cost(cost) is cost

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            resolve_cost("manhattan")
