"""Unit and property tests for ε-bisimulation (Proposition 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mdp import DTMC, random_dtmc
from repro.mdp.bisimulation import (
    is_epsilon_bisimilar,
    path_probability,
    path_probability_deviation,
    perturbation_bound,
)


def perturbed(chain: DTMC, state, delta: float) -> DTMC:
    """Shift `delta` of probability between the first two successors."""
    row = dict(chain.transitions[state])
    targets = sorted(row, key=str)
    if len(targets) < 2:
        return chain
    a, b = targets[0], targets[1]
    shift = min(delta, row[a] - 1e-9, 1 - row[b] - 1e-9)
    if shift <= 0:
        return chain
    row[a] -= shift
    row[b] += shift
    return chain.with_transitions({state: row})


class TestPerturbationBound:
    def test_identical_chains_have_zero_bound(self, two_path_chain):
        assert perturbation_bound(two_path_chain, two_path_chain) == 0.0

    def test_bound_equals_max_entry_change(self, two_path_chain):
        repaired = two_path_chain.with_transitions(
            {"start": {"good": 0.65, "bad": 0.25, "start": 0.1}}
        )
        assert perturbation_bound(two_path_chain, repaired) == pytest.approx(0.05)

    def test_requires_same_state_space(self, two_path_chain, simple_chain):
        with pytest.raises(ValueError):
            perturbation_bound(two_path_chain, simple_chain)


class TestEpsilonBisimilarity:
    def test_structure_change_is_not_bisimilar(self, two_path_chain):
        repaired = two_path_chain.with_transitions(
            {"start": {"good": 0.7, "bad": 0.3}}  # drops the self-loop edge
        )
        assert not is_epsilon_bisimilar(two_path_chain, repaired, epsilon=1.0)

    def test_small_perturbation_is_bisimilar(self, two_path_chain):
        repaired = perturbed(two_path_chain, "start", 0.02)
        assert is_epsilon_bisimilar(two_path_chain, repaired, epsilon=0.02)
        assert not is_epsilon_bisimilar(two_path_chain, repaired, epsilon=0.01)


class TestPathProbability:
    def test_known_path(self, two_path_chain):
        assert path_probability(two_path_chain, ["start", "good"]) == 0.6
        assert path_probability(
            two_path_chain, ["start", "start", "bad"]
        ) == pytest.approx(0.03)

    def test_impossible_path_is_zero(self, two_path_chain):
        assert path_probability(two_path_chain, ["good", "bad"]) == 0.0


class TestProposition1Property:
    @given(st.integers(0, 500), st.floats(0.001, 0.05))
    @settings(max_examples=25, deadline=None)
    def test_one_step_path_deviation_bounded_by_epsilon(self, seed, delta):
        """Proposition 1: single-transition path probabilities move ≤ ε."""
        chain = random_dtmc(5, seed=seed)
        state = chain.states[seed % len(chain.states)]
        repaired = perturbed(chain, state, delta)
        epsilon = perturbation_bound(chain, repaired)
        assert epsilon <= delta + 1e-9
        for source in chain.states:
            for target in chain.successors(source):
                deviation = path_probability_deviation(
                    chain, repaired, [source, target]
                )
                assert deviation <= epsilon + 1e-9
