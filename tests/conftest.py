"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import strategies as st

from repro.mdp import DTMC, MDP, chain_dtmc, random_dtmc, random_mdp


# ----------------------------------------------------------------------
# Build guard: the sparse/dense equivalence suite must actually run
# ----------------------------------------------------------------------
# The sparse CSR engine is the default, so a silently-skipped
# equivalence suite (e.g. a missing scipy making someone add a skipif)
# would let the two engines drift apart unnoticed.  Fail the whole run
# if any equivalence test was collected but skipped.
_SPARSE_EQUIVALENCE_SKIPS: list = []


def pytest_runtest_logreport(report):
    if report.skipped and "test_checking_sparse" in report.nodeid:
        _SPARSE_EQUIVALENCE_SKIPS.append(report.nodeid)


def pytest_sessionfinish(session, exitstatus):
    if _SPARSE_EQUIVALENCE_SKIPS and exitstatus == 0:
        reporter = session.config.pluginmanager.get_plugin("terminalreporter")
        if reporter is not None:
            reporter.write_line(
                "ERROR: sparse/dense equivalence tests were skipped "
                f"({len(_SPARSE_EQUIVALENCE_SKIPS)}); the build requires them "
                "to run: " + ", ".join(_SPARSE_EQUIVALENCE_SKIPS[:5]),
                red=True,
            )
        session.exitstatus = 1


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
def small_fractions():
    """Fractions with small numerators/denominators (fast exact math)."""
    return st.fractions(
        min_value=Fraction(-8), max_value=Fraction(8), max_denominator=8
    )


def variable_names():
    """A small pool of variable names so products share variables."""
    return st.sampled_from(["x", "y", "z"])


def polynomials(max_terms: int = 4, max_exponent: int = 3):
    """Random sparse polynomials over x, y, z."""
    from repro.symbolic import Polynomial

    monomial = st.lists(
        st.tuples(variable_names(), st.integers(1, max_exponent)),
        max_size=2,
    ).map(lambda pairs: tuple(sorted(dict(pairs).items())))
    term = st.tuples(monomial, small_fractions())
    return st.lists(term, max_size=max_terms).map(
        lambda terms: sum(
            (
                Polynomial({mono: coeff})
                for mono, coeff in terms
                if coeff != 0
            ),
            Polynomial.zero(),
        )
    )


def seeds():
    """Seeds for random-model strategies."""
    return st.integers(0, 10_000)


# ----------------------------------------------------------------------
# Model fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def simple_chain() -> DTMC:
    """Five-state forward chain with a labelled goal."""
    return chain_dtmc(5, forward_probability=0.8)


@pytest.fixture
def two_path_chain() -> DTMC:
    """A chain with a safe and an unsafe absorbing end.

    From ``start``: 0.6 to ``good`` (absorbing, "safe"), 0.3 to ``bad``
    (absorbing, "unsafe"), 0.1 self-loop.  Closed-form reachability:
    Pr(F safe) = 0.6 / 0.9 = 2/3.
    """
    return DTMC(
        states=["start", "good", "bad"],
        transitions={
            "start": {"good": 0.6, "bad": 0.3, "start": 0.1},
            "good": {"good": 1.0},
            "bad": {"bad": 1.0},
        },
        initial_state="start",
        labels={"good": {"safe"}, "bad": {"unsafe"}},
        state_rewards={"start": 1.0},
    )


@pytest.fixture
def two_action_mdp() -> MDP:
    """A two-action MDP with known Pmax/Pmin for reaching the goal.

    Action "a" reaches ``goal`` with probability 0.9, action "b" with
    probability 0.2 (else ``trap``).
    """
    return MDP(
        states=["s", "goal", "trap"],
        transitions={
            "s": {
                "a": {"goal": 0.9, "trap": 0.1},
                "b": {"goal": 0.2, "trap": 0.8},
            },
            "goal": {"a": {"goal": 1.0}},
            "trap": {"a": {"trap": 1.0}},
        },
        initial_state="s",
        labels={"goal": {"goal"}, "trap": {"trap"}},
    )


@pytest.fixture
def random_chain_factory():
    """Factory for seeded random chains."""
    return lambda n=6, seed=0: random_dtmc(n, seed=seed)


@pytest.fixture
def random_mdp_factory():
    """Factory for seeded random MDPs."""
    return lambda n=5, seed=0: random_mdp(n, seed=seed)
