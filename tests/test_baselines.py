"""Tests for the related-work baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    greedy_data_repair,
    greedy_model_repair,
    lagrangian_constrained_policy,
    shaped_mdp,
)
from repro.checking import ParametricDTMC
from repro.core import DataRepair
from repro.data import TraceDataset, TraceGroup
from repro.logic import parse_pctl
from repro.mdp import Trajectory, random_mdp, value_iteration
from repro.optimize import Variable
from repro.symbolic import Polynomial


class TestRewardShaping:
    def test_shaping_preserves_optimal_policy_on_fixture(self, two_action_mdp):
        mdp = two_action_mdp.with_rewards(state_rewards={"goal": 1.0})
        potential = {"s": 5.0, "goal": -2.0, "trap": 7.0}.__getitem__
        shaped = shaped_mdp(mdp, potential, discount=0.9)
        _, original_policy = value_iteration(mdp, discount=0.9)
        _, shaped_policy = value_iteration(shaped, discount=0.9)
        assert original_policy == shaped_policy

    @given(st.integers(0, 500), st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_ng_harada_russell_invariance(self, seed, potential_seed):
        """Potential-based shaping never changes the optimal policy."""
        import numpy as np

        mdp = random_mdp(5, num_actions=2, seed=seed)
        rng = np.random.default_rng(potential_seed)
        potentials = {s: float(rng.normal() * 3) for s in mdp.states}
        shaped = shaped_mdp(mdp, potentials.__getitem__, discount=0.9)
        original_values, original_policy = value_iteration(
            mdp, discount=0.9, tolerance=1e-12
        )
        shaped_values, shaped_policy = value_iteration(
            shaped, discount=0.9, tolerance=1e-12
        )
        assert shaped_policy == original_policy
        # Values shift by exactly -Φ(s).
        for state in mdp.states:
            assert shaped_values[state] == pytest.approx(
                original_values[state] - potentials[state], abs=1e-6
            )

    def test_shaping_cannot_make_unsafe_policy_safe(self):
        """The motivating contrast with Reward Repair (Section VI)."""
        from repro.casestudies import car
        from repro.core import RewardRepair

        mdp = car.build_car_mdp()
        features = car.car_features()
        repairer = RewardRepair(mdp, features, discount=car.DISCOUNT)
        unsafe_mdp = repairer.mdp_with(car.PAPER_LEARNED_THETA)
        potential = {s: car.distance_to_unsafe(s) for s in mdp.states}
        shaped = shaped_mdp(unsafe_mdp, potential.__getitem__, car.DISCOUNT)
        _, policy = value_iteration(shaped, discount=car.DISCOUNT)
        assert policy["S1"] == car.FORWARD  # still unsafe


class TestLagrangian:
    def test_trades_reward_for_cost_feasibility(self, two_action_mdp):
        # Reward favours the risky action b reaching "trap" often? Give
        # trap high reward but high cost.
        mdp = two_action_mdp.with_rewards(
            state_rewards={"trap": 1.0, "goal": 0.3}
        )
        unconstrained = lagrangian_constrained_policy(
            mdp, cost=lambda s: 0.0, cost_bound=100.0, discount=0.9
        )
        assert unconstrained.policy["s"] == "b"  # chases the trap reward
        constrained = lagrangian_constrained_policy(
            mdp,
            cost=lambda s: 1.0 if s == "trap" else 0.0,
            cost_bound=2.0,
            discount=0.9,
        )
        assert constrained.feasible
        assert constrained.expected_cost <= 2.0 + 1e-6
        assert constrained.policy["s"] == "a"

    def test_already_feasible_keeps_best_reward(self, two_action_mdp):
        mdp = two_action_mdp.with_rewards(state_rewards={"goal": 1.0})
        result = lagrangian_constrained_policy(
            mdp, cost=lambda s: 0.0, cost_bound=1.0, discount=0.9
        )
        assert result.feasible
        assert result.multiplier == 0.0

    def test_infeasible_bound_reported(self, two_action_mdp):
        # Every policy pays some trap cost; bound of 0 is unreachable.
        result = lagrangian_constrained_policy(
            two_action_mdp,
            cost=lambda s: 1.0 if s == "trap" else 0.0,
            cost_bound=0.0,
            discount=0.9,
        )
        assert not result.feasible


def parametric_line():
    p = Polynomial.variable("p")
    return ParametricDTMC(
        states=["a", "b"],
        transitions={"a": {"b": p, "a": 1 - p}, "b": {"b": 1}},
        initial_state="a",
        labels={"b": {"goal"}},
        state_rewards={"a": 1.0},
    )


class TestGreedyModelRepair:
    def test_reaches_feasibility(self):
        result = greedy_model_repair(
            parametric_line(),
            parse_pctl('R<=4 [ F "goal" ]'),
            [Variable("p", 0.05, 0.95, initial=0.2)],  # E = 1/p <= 4 -> p >= .25
            step=0.01,
        )
        assert result.feasible
        assert result.assignment["p"] >= 0.25 - 1e-9
        assert result.repaired_model is not None
        assert result.checks > 1

    def test_already_satisfied(self):
        result = greedy_model_repair(
            parametric_line(),
            parse_pctl('R<=10 [ F "goal" ]'),
            [Variable("p", 0.05, 0.95, initial=0.5)],
            step=0.01,
        )
        assert result.feasible
        assert result.checks == 1

    def test_stuck_at_bounds_reports_infeasible(self):
        result = greedy_model_repair(
            parametric_line(),
            parse_pctl('R<=1.01 [ F "goal" ]'),  # needs p ~ 0.99 > bound
            [Variable("p", 0.05, 0.9, initial=0.5)],
            step=0.05,
        )
        assert not result.feasible
        assert result.repaired_model is None


class TestGreedyDataRepair:
    def test_matches_nlp_direction(self):
        observations = lambda s, t, n: [
            Trajectory.from_states([s, t]) for _ in range(n)
        ]
        dataset = TraceDataset(
            [
                TraceGroup("success", observations("a", "b", 40), droppable=False),
                TraceGroup("failure", observations("a", "a", 60)),
            ]
        )
        build = lambda ds: DataRepair(
            dataset=ds,
            formula=parse_pctl('R<=2 [ F "goal" ]'),
            initial_state="a",
            states=["a", "b"],
            labels={"b": {"goal"}},
            state_rewards={"a": 1.0},
        )
        result = greedy_data_repair(dataset, build, step=0.02)
        assert result.feasible
        assert result.assignment["drop_failure"] >= 1 / 3 - 0.05
