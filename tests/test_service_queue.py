"""Unit tests for the bounded async job queue and rate limiter."""

import threading
import time

import pytest

from repro.mdp import chain_dtmc
from repro.service import (
    BatchRunner,
    CheckJob,
    JobQueue,
    QueueFull,
    RateLimited,
    RateLimiter,
    Telemetry,
    TokenBucket,
)

pytestmark = pytest.mark.service


def check_job(job_id: str, n: int = 4) -> CheckJob:
    return CheckJob.for_model(
        job_id, chain_dtmc(n, forward_probability=0.5), 'P>=0.2 [ F "goal" ]'
    )


def make_queue(telemetry=None, **kwargs):
    telemetry = telemetry if telemetry is not None else Telemetry()
    return JobQueue(
        runner_factory=lambda: BatchRunner(
            max_workers=0, telemetry=telemetry, max_retries=0
        ),
        telemetry=telemetry,
        **kwargs,
    )


class TestTokenBucket:
    def test_burst_then_empty(self):
        times = iter([0.0] * 10)
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=lambda: next(times))
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        wait = bucket.try_acquire()
        assert wait == pytest.approx(1.0)

    def test_refill_over_time(self):
        times = iter([0.0, 0.0, 0.0, 5.0])  # init + three acquires
        bucket = TokenBucket(rate=0.5, burst=1.0, clock=lambda: next(times))
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0
        assert bucket.try_acquire() == 0.0  # 5s later: refilled

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=-1.0)


class TestRateLimiter:
    def test_per_client_buckets_are_independent(self):
        clock = lambda: 0.0  # noqa: E731 — frozen clock
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock)
        limiter.check("alice")
        limiter.check("bob")  # bob has his own bucket
        with pytest.raises(RateLimited) as excinfo:
            limiter.check("alice")
        assert excinfo.value.retry_after >= 1.0

    def test_prunes_idle_clients(self):
        limiter = RateLimiter(rate=100.0, burst=100.0, max_clients=4)
        for i in range(32):
            limiter.check(f"client-{i}")
        assert len(limiter._buckets) <= 4


class TestJobQueue:
    def test_submit_runs_to_completion(self):
        queue = make_queue(capacity=8, workers=2)
        try:
            record = queue.submit(check_job("q1"))
            assert record.ticket.startswith("job-")
            assert queue.join(timeout=30)
            snap = queue.snapshot(record.ticket)
            assert snap["status"] == "succeeded"
            assert snap["outcome"]["result"]["holds"] is True
            assert snap["queue_wait"] >= 0.0
        finally:
            queue.close()

    def test_full_queue_raises_with_retry_after(self):
        # A runner gated on a lock keeps the single worker busy, so the
        # queue cannot drain while we fill it.
        gate = threading.Lock()
        gate.acquire()

        class GatedRunner(BatchRunner):
            def run_one(self, job):
                with gate:
                    pass
                return super().run_one(job)

        telemetry = Telemetry()
        queue = JobQueue(
            runner_factory=lambda: GatedRunner(
                max_workers=0, telemetry=telemetry, max_retries=0
            ),
            capacity=2,
            workers=1,
            telemetry=telemetry,
        )
        try:
            queue.submit(check_job("blocker"))
            # Wait until the worker picked the blocker up.
            deadline = time.monotonic() + 10
            while queue.stats()["in_flight"] == 0:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            queue.submit(check_job("q1"))
            queue.submit(check_job("q2"))
            with pytest.raises(QueueFull) as excinfo:
                queue.submit(check_job("q3"))
            assert excinfo.value.retry_after >= 1.0
            assert queue.stats()["rejected"] == {"queue-full": 1}
            assert telemetry.counters()["jobs_rejected"] == 1
        finally:
            gate.release()
            queue.close()

    def test_submit_many_is_atomic(self):
        queue = make_queue(capacity=3, workers=1)
        try:
            with pytest.raises(QueueFull):
                queue.submit_many([check_job(f"q{i}") for i in range(4)])
            # Nothing admitted: the batch did not fit.
            assert queue.stats()["submitted"] == 0
        finally:
            queue.close()

    def test_close_drains_queued_jobs(self):
        queue = make_queue(capacity=32, workers=1)
        records = queue.submit_many([check_job(f"d{i}") for i in range(8)])
        queue.close(drain=True, timeout=60)
        statuses = {
            queue.snapshot(record.ticket)["status"] for record in records
        }
        assert statuses == {"succeeded"}
        assert queue.stats()["completed"] == 8

    def test_close_without_drain_cancels_queued(self):
        gate = threading.Lock()
        gate.acquire()

        class GatedRunner(BatchRunner):
            def run_one(self, job):
                with gate:
                    pass
                return super().run_one(job)

        telemetry = Telemetry()
        queue = JobQueue(
            runner_factory=lambda: GatedRunner(
                max_workers=0, telemetry=telemetry, max_retries=0
            ),
            capacity=32,
            workers=1,
            telemetry=telemetry,
        )
        queue.submit(check_job("blocker"))
        deadline = time.monotonic() + 10
        while queue.stats()["in_flight"] == 0:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        queued = queue.submit_many([check_job(f"c{i}") for i in range(4)])
        closer = threading.Thread(
            target=lambda: queue.close(drain=False, timeout=30)
        )
        closer.start()
        gate.release()
        closer.join(timeout=30)
        assert not closer.is_alive()
        for record in queued:
            assert queue.snapshot(record.ticket)["status"] == "cancelled"
        assert queue.stats()["cancelled"] == 4

    def test_closed_queue_rejects_submissions(self):
        queue = make_queue(capacity=4, workers=1)
        queue.close()
        with pytest.raises(QueueFull):
            queue.submit(check_job("late"))

    def test_telemetry_queue_counters(self):
        telemetry = Telemetry()
        queue = make_queue(telemetry=telemetry, capacity=16, workers=1)
        try:
            queue.submit_many([check_job(f"t{i}") for i in range(3)])
            assert queue.join(timeout=30)
        finally:
            queue.close()
        counters = telemetry.counters()
        assert counters["job_enqueued"] == 3
        assert counters["job_dequeued"] == 3
        # Depths observed at enqueue time: 1 + 2 + 3 at worst, >= 3.
        assert counters["queue_depth"] >= 3
        assert counters["queue_wait"] >= 0

    def test_registry_eviction_falls_back_to_store(self, tmp_path):
        from repro.service import ResultStore

        store = ResultStore(tmp_path)
        telemetry = Telemetry()
        queue = JobQueue(
            runner_factory=lambda: BatchRunner(
                max_workers=0, telemetry=telemetry, max_retries=0
            ),
            capacity=32,
            workers=1,
            telemetry=telemetry,
            store=store,
            registry_limit=2,
        )
        try:
            records = queue.submit_many([check_job(f"e{i}") for i in range(6)])
            assert queue.join(timeout=60)
            # Every ticket stays pollable even after registry eviction.
            for record in records:
                snap = queue.snapshot(record.ticket)
                assert snap is not None
                assert snap["status"] == "succeeded"
            assert len(queue._jobs) <= 2
        finally:
            queue.close()

    def test_per_job_override_applies(self):
        queue = make_queue(capacity=8, workers=1)
        try:
            bad = CheckJob.for_model(
                "bad",
                chain_dtmc(4, forward_probability=0.5),
                "this is not PCTL",
            )
            record = queue.submit(bad, max_retries=0)
            assert queue.join(timeout=30)
            snap = queue.snapshot(record.ticket)
            assert snap["status"] == "failed-after-retries"
            assert snap["outcome"]["attempts"] == 1
        finally:
            queue.close()
