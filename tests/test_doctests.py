"""Run the doctests embedded in public docstrings.

Keeps the documentation honest: every ``>>>`` example in the library's
docstrings must execute and produce the shown output.
"""

import doctest

import pytest

import repro.checking.cache
import repro.checking.parametric
import repro.checking.statistical
import repro.ctmc.model
import repro.hmm.model
import repro.learning.irl
import repro.mdp.interval
import repro.mdp.lumping
import repro.mdp.model
import repro.mdp.policy
import repro.mdp.simulation
import repro.mdp.trajectory
import repro.optimize.nlp
import repro.service.faults
import repro.service.store
import repro.symbolic.polynomial
import repro.symbolic.rational

MODULES = [
    repro.symbolic.polynomial,
    repro.symbolic.rational,
    repro.mdp.model,
    repro.mdp.policy,
    repro.mdp.trajectory,
    repro.mdp.simulation,
    repro.mdp.interval,
    repro.mdp.lumping,
    repro.checking.cache,
    repro.checking.parametric,
    repro.checking.statistical,
    repro.learning.irl,
    repro.optimize.nlp,
    repro.hmm.model,
    repro.ctmc.model,
    repro.service.faults,
    repro.service.store,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, (
        f"{result.failed} doctest failures in {module.__name__}"
    )
