"""Unit and property tests for multivariate polynomials."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings

from repro.symbolic import Polynomial, bareiss_determinant, poly_gcd
from repro.symbolic.polynomial import _exponent_vector

from conftest import polynomials, small_fractions


X = Polynomial.variable("x")
Y = Polynomial.variable("y")


class TestConstruction:
    def test_constant_zero_is_zero(self):
        assert Polynomial.constant(0).is_zero()

    def test_constant_value(self):
        assert Polynomial.constant(Fraction(3, 4)).constant_value() == Fraction(3, 4)

    def test_variable_requires_name(self):
        with pytest.raises(ValueError):
            Polynomial.variable("")

    def test_float_coefficients_become_exact(self):
        poly = Polynomial.constant(0.5)
        assert poly.constant_value() == Fraction(1, 2)

    def test_non_constant_rejects_constant_value(self):
        with pytest.raises(ValueError):
            X.constant_value()

    def test_zero_terms_are_dropped(self):
        poly = Polynomial({(): Fraction(0), (("x", 1),): Fraction(1)})
        assert len(poly) == 1


class TestArithmetic:
    def test_addition(self):
        assert (X + 1) + (X + 2) == X.scaled(2) + 3

    def test_subtraction_cancels(self):
        assert (X + Y) - (X + Y) == Polynomial.zero()

    def test_multiplication_expands(self):
        assert (X + 1) * (X - 1) == X * X - 1

    def test_power(self):
        assert (X + 1) ** 2 == X * X + X.scaled(2) + 1

    def test_power_zero_is_one(self):
        assert (X + Y) ** 0 == Polynomial.one()

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            X ** (-1)

    def test_scalar_coercion(self):
        assert 2 * X == X + X
        assert X - 1 == -(1 - X)

    def test_hash_equal_for_equal_polynomials(self):
        assert hash((X + 1) * (X + 1)) == hash(X * X + 2 * X + 1)


class TestEvaluation:
    def test_exact_evaluation(self):
        poly = X * X + Y.scaled(2)
        assert poly.evaluate({"x": 3, "y": Fraction(1, 2)}) == Fraction(10)

    def test_float_evaluation(self):
        poly = X + Y
        assert poly.evaluate({"x": 0.25, "y": 0.5}) == pytest.approx(0.75)

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError):
            (X + Y).evaluate({"x": 1})

    def test_partial_substitution(self):
        poly = X * Y + X
        assert poly.substitute({"y": 2}) == X.scaled(3)

    def test_substitute_polynomial(self):
        poly = X * X
        assert poly.substitute({"x": Y + 1}) == Y * Y + 2 * Y + 1

    def test_derivative(self):
        poly = X * X * Y + X.scaled(3)
        assert poly.derivative("x") == 2 * X * Y + 3
        assert poly.derivative("y") == X * X
        assert poly.derivative("z").is_zero()


class TestDegreesAndVariables:
    def test_degree(self):
        poly = X * X * Y + Y
        assert poly.degree("x") == 2
        assert poly.degree("y") == 1
        assert poly.total_degree() == 3

    def test_variables(self):
        assert (X * Y + 1).variables() == frozenset({"x", "y"})

    def test_zero_degrees(self):
        assert Polynomial.zero().total_degree() == 0


class TestDivision:
    def test_exact_division(self):
        product = (X + Y) * (X - Y)
        assert product.exact_div(X + Y) == X - Y

    def test_divmod_remainder(self):
        quotient, remainder = (X * X + 1).divmod(X)
        assert quotient == X
        assert remainder == Polynomial.one()

    def test_inexact_division_raises(self):
        with pytest.raises(ArithmeticError):
            (X + 1).exact_div(Y)

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            X.divmod(Polynomial.zero())

    def test_mixed_support_division(self):
        # Regression: requires a true monomial order (q vs p·q).
        p = Polynomial.variable("p")
        q = Polynomial.variable("q")
        product = (p * q + q + 1) * (p + q)
        assert product.exact_div(p + q) == p * q + q + 1


class TestExponentVector:
    def test_orders_divisible_monomials(self):
        varlist = ["p", "q"]
        pq = (("p", 1), ("q", 1))
        q = (("q", 1),)
        assert _exponent_vector(pq, varlist) > _exponent_vector(q, varlist)


class TestGcd:
    def test_common_factor(self):
        a = (X + 1) * (X + 2)
        b = (X + 1) * (X + 3)
        assert poly_gcd(a, b) == X + 1

    def test_coprime(self):
        assert poly_gcd(X + 1, X + 2).is_constant()

    def test_with_zero(self):
        assert poly_gcd(Polynomial.zero(), X + 1) == X + 1

    def test_multivariate(self):
        common = X * Y + 1
        assert poly_gcd(common * (X + 1), common * (Y + 2)) == common

    def test_content_only(self):
        a = Polynomial.constant(4) * X
        b = Polynomial.constant(6) * Y
        gcd = poly_gcd(a, b)
        assert gcd.is_constant()


class TestBareissDeterminant:
    def test_identity(self):
        identity = [[Polynomial.constant(int(i == j)) for j in range(4)] for i in range(4)]
        assert bareiss_determinant(identity) == Polynomial.one()

    def test_2x2_symbolic(self):
        det = bareiss_determinant([[X, Y], [Y, X]])
        assert det == X * X - Y * Y

    def test_singular(self):
        det = bareiss_determinant([[X, X], [X, X]])
        assert det.is_zero()

    def test_row_swap_sign(self):
        det = bareiss_determinant(
            [[Polynomial.zero(), Polynomial.one()], [Polynomial.one(), Polynomial.zero()]]
        )
        assert det == Polynomial.constant(-1)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            bareiss_determinant([[X, Y]])

    def test_against_numpy(self):
        rng = np.random.default_rng(3)
        values = rng.integers(-5, 6, size=(5, 5))
        rows = [[Polynomial.constant(int(v)) for v in row] for row in values]
        det = bareiss_determinant(rows)
        assert float(det.constant_value()) == pytest.approx(
            np.linalg.det(values.astype(float)), rel=1e-9
        )

    def test_symbolic_matches_pointwise(self):
        rows = [
            [X + 1, Y, Polynomial.constant(2)],
            [Polynomial.constant(1), X * Y, Y + 3],
            [X, Polynomial.constant(0), X + Y],
        ]
        det = bareiss_determinant(rows)
        point = {"x": 0.7, "y": -1.3}
        numeric = np.array(
            [[float(entry.evaluate(point)) for entry in row] for row in rows]
        )
        assert float(det.evaluate(point)) == pytest.approx(
            np.linalg.det(numeric), rel=1e-9
        )


class TestPropertyBased:
    @given(polynomials(), polynomials(), polynomials())
    @settings(max_examples=60, deadline=None)
    def test_ring_axioms(self, a, b, c):
        assert (a + b) * c == a * c + b * c
        assert a * b == b * a
        assert a + b == b + a
        assert (a + b) + c == a + (b + c)

    @given(polynomials(), polynomials(), small_fractions(), small_fractions())
    @settings(max_examples=60, deadline=None)
    def test_evaluation_is_ring_homomorphism(self, a, b, x, y):
        point = {"x": x, "y": y, "z": Fraction(1, 3)}
        assert (a + b).evaluate(point) == a.evaluate(point) + b.evaluate(point)
        assert (a * b).evaluate(point) == a.evaluate(point) * b.evaluate(point)

    @given(polynomials(), polynomials())
    @settings(max_examples=50, deadline=None)
    def test_product_divides_exactly(self, a, b):
        if b.is_zero():
            return
        product = a * b
        assert product.exact_div(b) == a

    @given(polynomials())
    @settings(max_examples=60, deadline=None)
    def test_derivative_of_square(self, a):
        # (a²)' = 2·a·a'
        square = a * a
        assert square.derivative("x") == 2 * a * a.derivative("x")

    @given(polynomials(), polynomials())
    @settings(max_examples=30, deadline=None)
    def test_gcd_divides_both(self, a, b):
        gcd = poly_gcd(a, b)
        if gcd.is_zero():
            assert a.is_zero() and b.is_zero()
            return
        a.divmod(gcd)  # must not raise
        quotient_a, remainder_a = a.divmod(gcd)
        quotient_b, remainder_b = b.divmod(gcd)
        assert remainder_a.is_zero()
        assert remainder_b.is_zero()
