"""Fuzz and robustness tests: malformed inputs must fail cleanly.

Production-quality failure behaviour: parsers raise their documented
error type (never crash with an internal exception), and model
validation rejects garbage instead of silently mis-behaving later.
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import PctlParseError, parse_pctl
from repro.logic.pctl import StateFormula
from repro.mdp import DTMC, ModelValidationError


class TestParserFuzz:
    @given(st.text(max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_text_never_crashes(self, text):
        """Any input either parses to a formula or raises PctlParseError."""
        try:
            formula = parse_pctl(text)
        except PctlParseError:
            return
        except ValueError:
            # Semantic validation (e.g. probability bound range) is fine.
            return
        assert isinstance(formula, StateFormula)

    @given(
        st.text(
            alphabet=string.ascii_letters + string.digits + ' P R F G U X []()<>=.!&|"',
            max_size=40,
        )
    )
    @settings(max_examples=300, deadline=None)
    def test_pctl_alphabet_fuzz(self, text):
        try:
            formula = parse_pctl(text)
        except (PctlParseError, ValueError):
            return
        assert isinstance(formula, StateFormula)

    @given(st.floats(0, 1), st.sampled_from(["<", "<=", ">", ">="]))
    @settings(max_examples=60, deadline=None)
    def test_generated_formulas_round_trip(self, bound, comparison):
        text = f'P{comparison}{bound:.6f} [ F "goal" ]'
        formula = parse_pctl(text)
        assert parse_pctl(repr(formula)) == formula


class TestModelValidationFuzz:
    @given(
        st.lists(
            st.floats(-1, 2, allow_nan=False, allow_infinity=False),
            min_size=2,
            max_size=2,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_rows_validated(self, probabilities):
        row = {"a": probabilities[0], "b": probabilities[1]}
        valid = all(
            -1e-9 <= p <= 1 + 1e-9 for p in probabilities
        ) and abs(sum(probabilities) - 1.0) <= 1e-6
        try:
            DTMC(
                states=["a", "b"],
                transitions={"a": row, "b": {"b": 1.0}},
                initial_state="a",
            )
            constructed = True
        except ModelValidationError:
            constructed = False
        assert constructed == valid

    def test_nan_probability_rejected(self):
        with pytest.raises(ModelValidationError):
            DTMC(
                states=["a", "b"],
                transitions={"a": {"a": float("nan"), "b": 0.5}, "b": {"b": 1.0}},
                initial_state="a",
            )


class TestOptimizerRobustness:
    def test_objective_exception_does_not_crash_solver(self):
        """A pathological objective (pole inside the box) still yields a
        clean result from the remaining start points."""
        from repro.optimize import NonlinearProgram, Variable

        def spiky(v):
            if abs(v["x"] - 0.5) < 1e-12:
                raise ZeroDivisionError("pole")
            return (v["x"] - 0.2) ** 2

        program = NonlinearProgram(
            variables=[Variable("x", 0.0, 1.0, initial=0.9)],
            objective=spiky,
        )
        result = program.solve()
        assert result.feasible
        assert result.assignment["x"] == pytest.approx(0.2, abs=1e-4)
