"""Unit tests for the PCTL abstract syntax."""

import pytest

from repro.logic import (
    And,
    AtomicProposition,
    Eventually,
    Globally,
    Next,
    Not,
    Or,
    ProbabilisticOperator,
    RewardOperator,
    TrueFormula,
    Until,
)
from repro.logic.pctl import check_comparison, negate_comparison


class TestComparisons:
    @pytest.mark.parametrize(
        "op,lhs,rhs,expected",
        [
            ("<", 1, 2, True),
            ("<", 2, 2, False),
            ("<=", 2, 2, True),
            (">", 3, 2, True),
            (">=", 2, 2, True),
            (">=", 1, 2, False),
        ],
    )
    def test_check_comparison(self, op, lhs, rhs, expected):
        assert check_comparison(op, lhs, rhs) is expected

    def test_unknown_comparison_rejected(self):
        with pytest.raises(ValueError):
            check_comparison("==", 1, 1)

    @pytest.mark.parametrize(
        "op,negated", [("<", ">="), ("<=", ">"), (">", "<="), (">=", "<")]
    )
    def test_negate_comparison(self, op, negated):
        assert negate_comparison(op) == negated


class TestValueSemantics:
    def test_atomic_equality(self):
        assert AtomicProposition("a") == AtomicProposition("a")
        assert AtomicProposition("a") != AtomicProposition("b")

    def test_boolean_operator_sugar(self):
        a, b = AtomicProposition("a"), AtomicProposition("b")
        assert (a & b) == And(a, b)
        assert (a | b) == Or(a, b)
        assert (~a) == Not(a)

    def test_until_equality_includes_bound(self):
        a, b = AtomicProposition("a"), AtomicProposition("b")
        assert Until(a, b, 5) != Until(a, b)
        assert Until(a, b, 5) == Until(a, b, 5)

    def test_eventually_is_true_until(self):
        target = AtomicProposition("t")
        eventually = Eventually(target)
        assert isinstance(eventually, Until)
        assert eventually.left == TrueFormula()
        assert eventually.operand == target

    def test_hashability(self):
        formula = ProbabilisticOperator(">=", 0.9, Eventually(AtomicProposition("g")))
        assert {formula: 1}[
            ProbabilisticOperator(">=", 0.9, Eventually(AtomicProposition("g")))
        ] == 1


class TestValidation:
    def test_probability_bound_range(self):
        with pytest.raises(ValueError):
            ProbabilisticOperator(">=", 1.2, Next(TrueFormula()))

    def test_bad_comparison(self):
        with pytest.raises(ValueError):
            ProbabilisticOperator("=", 0.5, Next(TrueFormula()))

    def test_negative_step_bound(self):
        with pytest.raises(ValueError):
            Until(TrueFormula(), TrueFormula(), -1)
        with pytest.raises(ValueError):
            Globally(TrueFormula(), -2)

    def test_reward_requires_eventually_path(self):
        with pytest.raises(ValueError):
            RewardOperator("<=", 10, Next(TrueFormula()))

    def test_atomic_needs_name(self):
        with pytest.raises(ValueError):
            AtomicProposition("")
