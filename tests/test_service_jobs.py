"""Job specs: JSON round-trip, fingerprints, and execution."""

import json

import pytest

from repro.casestudies import car
from repro.data import TraceDataset, TraceGroup
from repro.mdp import Trajectory, chain_dtmc
from repro.service import (
    CegisRepairJob,
    CheckJob,
    DataRepairJob,
    JobValidationError,
    ModelRepairJob,
    RateRepairJob,
    RewardRepairJob,
    RobustRepairJob,
    execute,
    job_from_dict,
    load_jobs,
    save_jobs,
)
from repro.service.jobs import JOB_KINDS, load_jobs_payload


@pytest.fixture
def sluggish_chain():
    return chain_dtmc(5, forward_probability=0.5)


def observations(source, target, count):
    return [Trajectory.from_states([source, target]) for _ in range(count)]


@pytest.fixture
def noisy_dataset():
    """40% forward successes, 60% failures (the paper's proportions)."""
    return TraceDataset(
        [
            TraceGroup("success", observations("a", "b", 40), droppable=False),
            TraceGroup("failure", observations("a", "a", 60)),
        ]
    )


def data_repair_job(dataset, job_id="d1", bound=2):
    return DataRepairJob.for_dataset(
        job_id,
        dataset,
        f'R<={bound} [ F "goal" ]',
        initial_state="a",
        states=["a", "b"],
        labels={"b": ["goal"]},
        state_rewards={"a": 1.0},
    )


class TestRoundTrip:
    def test_check_job(self, sluggish_chain):
        job = CheckJob.for_model(
            "c1", sluggish_chain, 'P>=0.2 [ F "goal" ]', engine="dense"
        )
        clone = job_from_dict(json.loads(json.dumps(job.to_dict())))
        assert isinstance(clone, CheckJob)
        assert clone.to_dict() == job.to_dict()
        assert clone.engine == "dense"

    def test_model_repair_job(self, sluggish_chain):
        job = ModelRepairJob.for_model(
            "m1", sluggish_chain, 'R<=6 [ F "goal" ]', max_perturbation=0.3,
            seed=7,
        )
        clone = job_from_dict(json.loads(json.dumps(job.to_dict())))
        assert isinstance(clone, ModelRepairJob)
        assert clone.to_dict() == job.to_dict()
        assert clone.max_perturbation == 0.3
        assert clone.seed == 7

    def test_data_repair_job(self, noisy_dataset):
        job = data_repair_job(noisy_dataset)
        clone = job_from_dict(json.loads(json.dumps(job.to_dict())))
        assert isinstance(clone, DataRepairJob)
        assert clone.to_dict() == job.to_dict()

    def test_reward_repair_job(self):
        mdp = car.build_car_mdp()
        job = RewardRepairJob.for_mdp(
            "r1",
            mdp,
            car.car_features().table,
            car.PAPER_LEARNED_THETA,
            [{"state": "S1", "preferred": car.LEFT,
              "dispreferred": car.FORWARD}],
            discount=car.DISCOUNT,
        )
        clone = job_from_dict(json.loads(json.dumps(job.to_dict())))
        assert isinstance(clone, RewardRepairJob)
        assert clone.to_dict() == job.to_dict()

    def test_robust_repair_job(self, sluggish_chain):
        job = RobustRepairJob.for_model(
            "rb1", sluggish_chain, 'R<=6 [ F "goal" ]', epsilon=0.02,
            vi_max_iterations=1000,
        )
        clone = job_from_dict(json.loads(json.dumps(job.to_dict())))
        assert isinstance(clone, RobustRepairJob)
        assert clone.to_dict() == job.to_dict()
        assert clone.epsilon == 0.02
        assert clone.vi_max_iterations == 1000

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            job_from_dict({"kind": "nope", "job_id": "x"})

    def test_empty_job_id_rejected(self, sluggish_chain):
        with pytest.raises(ValueError, match="job_id"):
            CheckJob.for_model("", sluggish_chain, 'P>=0.2 [ F "goal" ]')


class TestValidation:
    """Malformed payloads surface as JobValidationError, not as raw
    KeyError/TypeError from deep inside a spec constructor."""

    def test_unknown_kind(self):
        with pytest.raises(JobValidationError, match="unknown job kind"):
            job_from_dict({"kind": "petri-net-repair", "job_id": "x"})

    def test_missing_job_id(self):
        with pytest.raises(JobValidationError, match="missing its job_id"):
            job_from_dict({"kind": "check"})

    def test_non_mapping_entry(self):
        with pytest.raises(JobValidationError, match="must be an object"):
            job_from_dict("not a job")

    def test_missing_required_field_is_wrapped(self):
        with pytest.raises(JobValidationError, match="bad check job 'c'"):
            job_from_dict({"kind": "check", "job_id": "c"})

    def test_non_finite_numbers_rejected(self, sluggish_chain):
        job = RobustRepairJob.for_model(
            "rb", sluggish_chain, 'R<=6 [ F "goal" ]'
        )
        payload = job.to_dict()
        payload["epsilon"] = float("nan")
        with pytest.raises(JobValidationError, match="non-finite"):
            job_from_dict(payload)
        # json.loads happily decodes the non-standard Infinity token.
        decoded = json.loads(
            json.dumps(job.to_dict()).replace('"seed": 0', '"seed": Infinity')
        )
        with pytest.raises(JobValidationError, match="non-finite"):
            job_from_dict(decoded)

    def test_validation_error_is_a_value_error(self):
        # The HTTP façade's 400 path catches ValueError; keep that true.
        assert issubclass(JobValidationError, ValueError)


class TestRegistry:
    """Every registered job kind must round-trip through its own
    ``to_dict`` / ``job_from_dict`` — new kinds cannot ship without a
    working serialisation."""

    def example_jobs(self):
        from repro.ctmc import CTMC

        chain = chain_dtmc(5, forward_probability=0.5)
        ctmc = CTMC(
            states=["s0", "done"],
            rates={"s0": {"done": 1.0}},
            initial_state="s0",
            labels={"done": {"done"}},
        )
        mdp = car.build_car_mdp()
        return {
            "check": CheckJob.for_model(
                "c", chain, 'P>=0.2 [ F "goal" ]'
            ),
            "model-repair": ModelRepairJob.for_model(
                "m", chain, 'R<=6 [ F "goal" ]'
            ),
            "data-repair": data_repair_job(
                TraceDataset([TraceGroup("g", observations("a", "b", 3))])
            ),
            "reward-repair": RewardRepairJob.for_mdp(
                "r", mdp, car.car_features().table, car.PAPER_LEARNED_THETA,
                [{"state": "S1", "preferred": car.LEFT,
                  "dispreferred": car.FORWARD}],
            ),
            "rate-repair": RateRepairJob.for_model(
                "rt", ctmc, ["done"], 2.0
            ),
            "robust-repair": RobustRepairJob.for_model(
                "rb", chain, 'R<=6 [ F "goal" ]'
            ),
            "cegis-repair": CegisRepairJob.for_model(
                "cg", chain, 'R<=6 [ F "goal" ]'
            ),
        }

    def test_examples_cover_every_kind(self):
        assert set(self.example_jobs()) == set(JOB_KINDS)

    def test_every_kind_round_trips(self):
        for kind, job in self.example_jobs().items():
            payload = json.loads(json.dumps(job.to_dict()))
            assert payload["kind"] == kind
            clone = job_from_dict(payload)
            assert type(clone) is type(job)
            assert clone.to_dict() == job.to_dict()
            assert clone.fingerprint() == job.fingerprint()


class TestFingerprint:
    def test_independent_of_job_id(self, sluggish_chain):
        a = CheckJob.for_model("a", sluggish_chain, 'P>=0.2 [ F "goal" ]')
        b = CheckJob.for_model("b", sluggish_chain, 'P>=0.2 [ F "goal" ]')
        assert a.fingerprint() == b.fingerprint()

    def test_sensitive_to_content(self, sluggish_chain):
        a = CheckJob.for_model("a", sluggish_chain, 'P>=0.2 [ F "goal" ]')
        b = CheckJob.for_model("a", sluggish_chain, 'P>=0.9 [ F "goal" ]')
        c = CheckJob.for_model(
            "a", chain_dtmc(5, forward_probability=0.6), 'P>=0.2 [ F "goal" ]'
        )
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3

    def test_survives_json_round_trip(self, sluggish_chain):
        job = ModelRepairJob.for_model("m", sluggish_chain, 'R<=6 [ F "goal" ]')
        clone = job_from_dict(json.loads(json.dumps(job.to_dict())))
        assert clone.fingerprint() == job.fingerprint()


class TestExecution:
    def test_check_job_runs(self, sluggish_chain):
        job = CheckJob.for_model("c", sluggish_chain, 'P>=0.2 [ F "goal" ]')
        result = execute(job)
        assert result["holds"] is True
        assert result["method"] == "exact"
        assert result["value"] == pytest.approx(1.0)

    def test_check_job_statistical(self, sluggish_chain):
        job = CheckJob.for_model(
            "c", sluggish_chain, 'P>=0.2 [ F "goal" ]', smc_samples=500
        )
        result = job.run_statistical(seed=1)
        assert result["method"] == "statistical"
        assert result["holds"] is True
        assert result["samples"] > 0

    def test_statistical_rejects_mdp(self, two_action_mdp):
        job = CheckJob.for_model(
            "c", two_action_mdp, 'P>=0.1 [ F "goal" ]'
        )
        with pytest.raises(TypeError, match="DTMC"):
            job.run_statistical()

    def test_model_repair_job_repairs(self, sluggish_chain):
        job = ModelRepairJob.for_model("m", sluggish_chain, 'R<=6 [ F "goal" ]')
        result = execute(job)
        assert result["status"] == "repaired"
        assert result["verified"] is True
        assert result["solver_stats"]["iterations"] > 0
        assert "repaired_model" in result

    def test_data_repair_job_repairs(self, noisy_dataset):
        # E[attempts] = 1/0.4 = 2.5; require <= 2 -> need p(a->b) >= 0.5.
        result = execute(data_repair_job(noisy_dataset))
        assert result["status"] == "repaired"
        assert result["verified"] is True
        assert result["drop_probabilities"]["failure"] > 0

    def test_reward_repair_job_flips_policy(self):
        mdp = car.build_car_mdp()
        job = RewardRepairJob.for_mdp(
            "r",
            mdp,
            car.car_features().table,
            car.PAPER_LEARNED_THETA,
            [{"state": "S1", "preferred": car.LEFT,
              "dispreferred": car.FORWARD}],
            discount=car.DISCOUNT,
        )
        result = execute(job)
        assert result["feasible"] is True
        assert result["policy_after"]["S1"] == str(car.LEFT)

    def test_rate_repair_job_round_trips_and_runs(self):
        from repro.ctmc import CTMC

        ctmc = CTMC(
            states=["s0", "s1", "done"],
            rates={"s0": {"s1": 1.0}, "s1": {"done": 0.5}},
            initial_state="s0",
            labels={"done": {"done"}},
        )
        job = RateRepairJob.for_model(
            "rt", ctmc, ["done"], 2.0, max_speedup=4.0
        )
        clone = job_from_dict(json.loads(json.dumps(job.to_dict())))
        assert clone.fingerprint() == job.fingerprint()
        result = execute(clone)
        assert result["flavor"] == "rate"
        assert result["status"] == "repaired"
        assert result["verified"] is True
        assert result["expected_time"] <= 2.0 + 1e-6
        assert result["solver_stats"]["iterations"] > 0


class TestRobustExecution:
    def coin(self):
        from repro.mdp import DTMC

        return DTMC(
            states=["s0", "good", "bad"],
            transitions={
                "s0": {"good": 0.5, "bad": 0.5},
                "good": {"good": 1.0},
                "bad": {"bad": 1.0},
            },
            initial_state="s0",
            labels={"good": {"good"}},
        )

    def test_robust_repair_job_repairs(self):
        job = RobustRepairJob.for_model(
            "rb", self.coin(), 'P<=0.3 [ F "good" ]', epsilon=0.01
        )
        result = execute(job)
        assert result["flavor"] == "robust"
        assert result["status"] == "repaired"
        assert result["robust"] is True
        assert result["verified"] is True
        assert result["certificate"]["margin"] >= 0
        assert result["vi_iterations"] > 0

    def test_vi_cap_surfaces_fallback_in_payload(self):
        job = RobustRepairJob.for_model(
            "rb", self.coin(), 'P<=0.6 [ F "good" ]', epsilon=0.01,
            vi_max_iterations=1,
        )
        result = execute(job)
        assert result["robust"] is False
        assert result["certificate"]["fallback_reason"] == "vi-iteration-cap"


class TestJobFiles:
    def test_save_and_load(self, tmp_path, sluggish_chain):
        jobs = [
            CheckJob.for_model("c1", sluggish_chain, 'P>=0.2 [ F "goal" ]'),
            ModelRepairJob.for_model("m1", sluggish_chain, 'R<=6 [ F "goal" ]'),
        ]
        path = tmp_path / "jobs.json"
        save_jobs(jobs, path)
        loaded = load_jobs(path)
        assert [job.job_id for job in loaded] == ["c1", "m1"]
        assert [job.to_dict() for job in loaded] == [job.to_dict() for job in jobs]

    def test_bare_array_accepted(self, sluggish_chain):
        job = CheckJob.for_model("c1", sluggish_chain, 'P>=0.2 [ F "goal" ]')
        loaded = load_jobs_payload([job.to_dict()])
        assert loaded[0].job_id == "c1"

    def test_duplicate_ids_rejected(self, sluggish_chain):
        job = CheckJob.for_model("dup", sluggish_chain, 'P>=0.2 [ F "goal" ]')
        with pytest.raises(ValueError, match="duplicate job_id"):
            load_jobs_payload([job.to_dict(), job.to_dict()])
