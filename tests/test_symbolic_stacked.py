"""Stacked-kernel equivalence: fused margins vs the per-constraint path.

The fused repair hot path trusts :class:`StackedConstraintKernel` to
reproduce every per-constraint ``fast_margin`` / ``margin_gradient``
bit-for-tolerance — one wrong row silently flips an NLP verdict.  These
tests pin the stacked path to the per-constraint one at 1e-12 over
seeded and hypothesis-generated constraint systems, including the
awkward corners: vanishing denominators, constant constraints, pickle
round-trips and union term tables over disjoint variable sets.
"""

import pickle
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checking.parametric import ParametricConstraint
from repro.symbolic import Polynomial, RationalFunction
from repro.symbolic.compile import (
    StackedConstraintKernel,
    _float_safe_pair,
    kernel_stats,
)

from conftest import polynomials

X = Polynomial.variable("x")
Y = Polynomial.variable("y")
Z = Polynomial.variable("z")

#: Agreement tolerance between stacked and per-constraint evaluation.
TOL = 1e-12


def assert_close(left, right):
    left, right = float(left), float(right)
    assert left == pytest.approx(right, rel=TOL, abs=TOL)


def example_constraints():
    """Three constraints with mixed directions over overlapping vars."""
    return [
        ParametricConstraint(RationalFunction(X * Y + 1, X + Y + 3), ">=", 0.25),
        ParametricConstraint(RationalFunction(X - Y, X * X + 2), "<=", 0.75),
        ParametricConstraint(
            RationalFunction(Z * Z + X, Z + 4), ">", Fraction(1, 3)
        ),
    ]


def stack_of(constraints):
    return StackedConstraintKernel(
        [(c.function, c._sign, c.bound) for c in constraints]
    )


def random_points(names, count, seed, low=-1.5, high=1.5):
    rng = np.random.default_rng(seed)
    return [
        {name: float(v) for name, v in zip(sorted(names), row)}
        for row in rng.uniform(low, high, size=(count, len(names)))
    ]


class TestStackedMatchesPerConstraint:
    def test_margins_match_fast_margin(self):
        constraints = example_constraints()
        stack = stack_of(constraints)
        for point in random_points({"x", "y", "z"}, 20, seed=3):
            margins = stack.margins(stack.vector_from(point))
            for value, constraint in zip(margins, constraints):
                assert_close(value, constraint.fast_margin(point))

    def test_jacobian_matches_margin_gradient(self):
        constraints = example_constraints()
        stack = stack_of(constraints)
        for point in random_points({"x", "y", "z"}, 20, seed=4):
            _, jacobian = stack.margins_and_jacobian(stack.vector_from(point))
            for row, constraint in zip(jacobian, constraints):
                gradient = constraint.margin_gradient(point)
                for j, name in enumerate(stack.params):
                    assert_close(row[j], gradient.get(name, 0.0))

    def test_batch_matches_scalar_rows(self):
        constraints = example_constraints()
        stack = stack_of(constraints)
        points = random_points({"x", "y", "z"}, 12, seed=5)
        matrix = np.array([stack.vector_from(p) for p in points])
        batch = stack.margins_batch(matrix)
        batch_m, batch_j = stack.margins_and_jacobian_batch(matrix)
        for i, point in enumerate(points):
            vector = stack.vector_from(point)
            scalar_m, scalar_j = stack.margins_and_jacobian(vector)
            np.testing.assert_allclose(batch[i], scalar_m, rtol=TOL, atol=TOL)
            np.testing.assert_allclose(
                batch_m[i], scalar_m, rtol=TOL, atol=TOL
            )
            np.testing.assert_allclose(
                batch_j[i], scalar_j, rtol=TOL, atol=TOL
            )

    @settings(max_examples=40, deadline=None)
    @given(
        numerators=st.lists(polynomials(), min_size=1, max_size=4),
        direction=st.sampled_from([">=", "<=", ">", "<"]),
        bound=st.floats(-2.0, 2.0),
    )
    def test_hypothesis_rows_agree(self, numerators, direction, bound):
        # Denominator x+y+z+5 stays positive on the sampled box, so the
        # scalar path never divides by zero.
        denominator = X + Y + Z + 5
        constraints = [
            ParametricConstraint(
                RationalFunction(num, denominator), direction, bound
            )
            for num in numerators
        ]
        stack = StackedConstraintKernel(
            [(c.function, c._sign, c.bound) for c in constraints],
            params=("x", "y", "z"),
        )
        for point in random_points({"x", "y", "z"}, 5, seed=7, low=-1, high=1):
            margins, jacobian = stack.margins_and_jacobian(
                stack.vector_from(point)
            )
            for i, constraint in enumerate(constraints):
                assert_close(margins[i], constraint.margin(point))
                gradient = constraint.margin_gradient(point)
                for j, name in enumerate(stack.params):
                    assert_close(jacobian[i][j], gradient.get(name, 0.0))


class TestStackedEdgeCases:
    def test_scalar_vanishing_denominator_raises(self):
        stack = StackedConstraintKernel(
            [(RationalFunction(X + 1, X), 1.0, 0.0)]
        )
        with pytest.raises(ZeroDivisionError):
            stack.margins(np.array([0.0]))

    def test_batch_vanishing_denominator_is_ieee(self):
        stack = StackedConstraintKernel(
            [(RationalFunction(X + 1, X), 1.0, 0.0)]
        )
        out = stack.margins_batch(np.array([[0.0], [1.0]]))
        assert not np.isfinite(out[0][0])
        assert_close(out[1][0], 2.0)

    def test_constant_constraint_row(self):
        constant = RationalFunction(
            Polynomial.constant(Fraction(3, 4)), Polynomial.one()
        )
        stack = StackedConstraintKernel(
            [
                (constant, 1.0, 0.5),
                (RationalFunction(X, Polynomial.one()), -1.0, 1.0),
            ],
            params=("x",),
        )
        margins, jacobian = stack.margins_and_jacobian(np.array([0.2]))
        assert_close(margins[0], 0.25)
        assert_close(jacobian[0][0], 0.0)
        assert_close(margins[1], 0.8)
        assert_close(jacobian[1][0], -1.0)

    def test_disjoint_variable_rows_share_union_table(self):
        stack = stack_of(
            [
                ParametricConstraint(
                    RationalFunction(X, Polynomial.one()), ">=", 0.0
                ),
                ParametricConstraint(
                    RationalFunction(Y * Y, Y + 2), "<=", 1.0
                ),
            ]
        )
        assert stack.params == ("x", "y")
        margins, jacobian = stack.margins_and_jacobian(np.array([0.5, 1.0]))
        assert_close(margins[0], 0.5)
        assert_close(jacobian[0][1], 0.0)  # row 0 is flat in y
        assert_close(margins[1], 1.0 - 1.0 / 3.0)
        assert_close(jacobian[1][0], 0.0)  # row 1 is flat in x

    def test_pickle_round_trip_preserves_margins(self):
        stack = stack_of(example_constraints())
        clone = pickle.loads(pickle.dumps(stack))
        point = np.array([0.3, -0.2, 0.9])
        np.testing.assert_allclose(
            clone.margins(point), stack.margins(point), rtol=TOL
        )
        m0, j0 = stack.margins_and_jacobian(point)
        m1, j1 = clone.margins_and_jacobian(point)
        np.testing.assert_allclose(m1, m0, rtol=TOL)
        np.testing.assert_allclose(j1, j0, rtol=TOL)

    def test_constraint_stacked_is_cached_and_survives_pickle(self):
        constraint = example_constraints()[0]
        assert constraint.stacked() is constraint.stacked()
        constraint.stacked()
        clone = pickle.loads(pickle.dumps(constraint))
        before = kernel_stats()["compilations"]
        clone.stacked().margins(np.array([0.1, 0.2]))
        assert kernel_stats()["compilations"] == before

    def test_counter_counts_rows_for_batches(self):
        stack = stack_of(example_constraints())
        before = dict(kernel_stats())
        stack.margins_batch(np.zeros((4, 3)) + 0.1)
        after = kernel_stats()
        assert after["dispatches"] - before["dispatches"] == 1
        assert after["evaluations"] - before["evaluations"] == 4 * 3


class TestFloatSafeRescaling:
    def test_huge_exact_coefficients_stay_finite(self):
        # Exact Fractions whose numerator/denominator alone overflow
        # float64 while their quotient is tame — the state-elimination
        # regime that motivated the common power-of-two rescale.
        huge = Fraction(3 * 2**1400, 7)
        numerator = Polynomial.constant(huge) * X + Polynomial.constant(
            huge * 2
        )
        denominator = Polynomial.constant(huge)
        function = RationalFunction(numerator, denominator)
        stack = StackedConstraintKernel([(function, 1.0, 0.0)])
        assert_close(stack.margins(np.array([0.5]))[0], 2.5)

    def test_rescale_is_exact_for_in_range_pairs(self):
        numerator = 3 * X + 1
        denominator = X + 2
        scaled_n, scaled_d = _float_safe_pair(numerator, denominator)
        assert scaled_n is numerator and scaled_d is denominator

    def test_rescaled_pair_preserves_quotient(self):
        factor = Fraction(2) ** 1200
        numerator = Polynomial.constant(factor) * (3 * X + 1)
        denominator = Polynomial.constant(factor) * (X + 2)
        scaled_n, scaled_d = _float_safe_pair(numerator, denominator)
        point = {"x": 0.25}
        expected = Fraction(3, 4) + 1  # (3·¼+1)
        assert_close(
            float(scaled_n.evaluate(point)) / float(scaled_d.evaluate(point)),
            float(expected) / 2.25,
        )
