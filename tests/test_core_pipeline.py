"""Unit tests for the Section II decision procedure."""

import pytest

from repro.core import DataRepair, ModelRepair, TrustedLearningPipeline
from repro.data import TraceDataset, TraceGroup
from repro.logic import parse_pctl
from repro.mdp import Trajectory


def observations(source, target, count):
    return [Trajectory.from_states([source, target]) for _ in range(count)]


def dataset(successes: int, failures: int) -> TraceDataset:
    return TraceDataset(
        [
            TraceGroup("success", observations("a", "b", successes),
                       droppable=False),
            TraceGroup("failure", observations("a", "a", failures)),
        ]
    )


def build_pipeline(data, bound, max_perturbation=None, with_model_repair=True):
    formula = parse_pctl(f'R<={bound} [ F "goal" ]')

    def data_repair_factory(ds):
        return DataRepair(
            dataset=ds,
            formula=formula,
            initial_state="a",
            states=["a", "b"],
            labels={"b": {"goal"}},
            state_rewards={"a": 1.0},
        )

    def model_repair_factory(chain):
        return ModelRepair.for_chain(
            chain, formula, max_perturbation=max_perturbation
        )

    return TrustedLearningPipeline(
        dataset=data,
        formula=formula,
        data_repair_factory=data_repair_factory,
        model_repair_factory=model_repair_factory if with_model_repair else None,
    )


class TestStages:
    def test_learned_model_already_satisfies(self):
        # p(a->b) = 0.8 => E = 1.25 <= 2.
        report = build_pipeline(dataset(80, 20), bound=2).run()
        assert report.succeeded
        assert report.satisfied_by == "learned"
        assert [s.name for s in report.stages] == ["learn+check"]

    def test_model_repair_fixes(self):
        # p = 0.4 => E = 2.5 > 2; model repair can push it up freely.
        report = build_pipeline(dataset(40, 60), bound=2).run()
        assert report.satisfied_by == "model_repair"
        assert [s.name for s in report.stages] == ["learn+check", "model_repair"]

    def test_data_repair_fixes_when_model_repair_capped(self):
        # Perturbation cap 0.02 cannot lift 0.4 to 0.5; dropping can.
        report = build_pipeline(
            dataset(40, 60), bound=2, max_perturbation=0.02
        ).run()
        assert report.satisfied_by == "data_repair"
        assert [s.name for s in report.stages] == [
            "learn+check",
            "model_repair",
            "data_repair",
        ]

    def test_skipping_model_repair(self):
        report = build_pipeline(
            dataset(40, 60), bound=2, with_model_repair=False
        ).run()
        assert report.satisfied_by == "data_repair"
        assert [s.name for s in report.stages] == ["learn+check", "data_repair"]

    def test_everything_fails(self):
        # Bound below the structural floor of 1 attempt.
        report = build_pipeline(
            dataset(40, 60), bound=0.5, max_perturbation=0.02
        ).run()
        assert not report.succeeded
        assert report.satisfied_by is None
        assert report.model is None

    def test_final_model_satisfies_formula(self):
        from repro.checking import DTMCModelChecker

        pipeline = build_pipeline(dataset(40, 60), bound=2)
        report = pipeline.run()
        assert DTMCModelChecker(report.model).check(pipeline.formula).holds


class TestReporting:
    def test_summary_lists_stages(self):
        report = build_pipeline(dataset(40, 60), bound=2).run()
        summary = report.summary()
        assert "learn+check" in summary
        assert "model_repair" in summary
        assert "outcome: model_repair" in summary

    def test_stage_results_attached(self):
        report = build_pipeline(dataset(40, 60), bound=2).run()
        model_stage = report.stages[-1]
        assert model_stage.result is not None
        assert model_stage.result.status == "repaired"

    def test_repr(self):
        report = build_pipeline(dataset(80, 20), bound=2).run()
        assert "satisfied_by='learned'" in repr(report)


class TestRewardPipeline:
    """Section II applied to the reward side, on the car case study."""

    def _pipeline(self):
        from repro.casestudies import car
        from repro.core import QValueConstraint
        from repro.core.pipeline import TrustedRewardPipeline

        mdp = car.build_car_mdp()
        return car, TrustedRewardPipeline(
            mdp=mdp,
            features=car.car_features(),
            rules=[],
            policy_is_safe=car.policy_is_safe,
            q_constraints=[QValueConstraint("S1", car.LEFT, car.FORWARD)],
            discount=car.DISCOUNT,
            horizon=7,
        )

    def test_car_pipeline_repairs_unsafe_reward(self):
        car, pipeline = self._pipeline()
        report = pipeline.run(
            [car.expert_demonstration()],
            irl_kwargs={"learning_rate": 0.2, "max_iterations": 250},
        )
        assert report.succeeded
        assert report.satisfied_by == "reward_repair"
        assert [s.name for s in report.stages] == ["irl+check", "reward_repair"]
        # The final model's rewards induce a safe optimal policy.
        from repro.mdp import value_iteration

        _, policy = value_iteration(report.model, discount=car.DISCOUNT)
        assert car.policy_is_safe(report.model, policy)

    def test_stage_log_records_thetas(self):
        car, pipeline = self._pipeline()
        report = pipeline.run(
            [car.expert_demonstration()],
            irl_kwargs={"learning_rate": 0.2, "max_iterations": 250},
        )
        assert "theta" in report.stages[0].detail
        assert "theta'" in report.stages[1].detail
