"""Unit tests for Model Repair (Definition 1, Equations 1-6)."""

import pytest

from repro.checking import DTMCModelChecker, ParametricDTMC
from repro.core import ModelRepair
from repro.logic import parse_pctl
from repro.mdp import DTMC, chain_dtmc
from repro.mdp.bisimulation import is_epsilon_bisimilar
from repro.optimize import Variable
from repro.symbolic import Polynomial


@pytest.fixture
def sluggish_chain() -> DTMC:
    """A chain too slow to meet R<=6 [F goal] (expected 4/0.5 = 8)."""
    return chain_dtmc(5, forward_probability=0.5)


class TestForChain:
    def test_repair_reduces_expected_reward(self, sluggish_chain):
        repair = ModelRepair.for_chain(sluggish_chain, parse_pctl('R<=6 [ F "goal" ]'))
        result = repair.repair()
        assert result.status == "repaired"
        assert result.verified
        checked = DTMCModelChecker(result.repaired_model).check(
            parse_pctl('R<=6 [ F "goal" ]')
        )
        assert checked.value <= 6.0 + 1e-9

    def test_structure_preserved(self, sluggish_chain):
        """Equation 3: no transitions created or destroyed."""
        result = ModelRepair.for_chain(
            sluggish_chain, parse_pctl('R<=6 [ F "goal" ]')
        ).repair()
        repaired = result.repaired_model
        for state in sluggish_chain.states:
            assert set(repaired.transitions[state]) == set(
                sluggish_chain.transitions[state]
            )

    def test_epsilon_matches_proposition_1(self, sluggish_chain):
        result = ModelRepair.for_chain(
            sluggish_chain, parse_pctl('R<=6 [ F "goal" ]')
        ).repair()
        assert result.epsilon > 0
        assert is_epsilon_bisimilar(
            sluggish_chain, result.repaired_model, result.epsilon
        )

    def test_already_satisfied_short_circuits(self, simple_chain):
        result = ModelRepair.for_chain(
            simple_chain, parse_pctl('R<=100 [ F "goal" ]')
        ).repair()
        assert result.status == "already_satisfied"
        assert result.repaired_model is simple_chain
        assert result.epsilon == 0.0

    def test_infeasible_when_perturbation_capped(self, sluggish_chain):
        result = ModelRepair.for_chain(
            sluggish_chain,
            parse_pctl('R<=6 [ F "goal" ]'),
            max_perturbation=0.01,
        ).repair()
        assert result.status == "infeasible"
        assert result.repaired_model is None
        assert not result.feasible

    def test_probability_property(self, two_path_chain):
        # Original Pr(F safe)=2/3; require >= 0.8.
        result = ModelRepair.for_chain(
            two_path_chain,
            parse_pctl('P>=0.8 [ F "safe" ]'),
            controllable_states=["start"],
        ).repair()
        assert result.status == "repaired"
        assert result.verified
        value = DTMCModelChecker(result.repaired_model).check(
            parse_pctl('P>=0.8 [ F "safe" ]')
        ).value
        assert value >= 0.8 - 1e-9

    def test_cost_minimality_vs_larger_perturbations(self, two_path_chain):
        """The optimum should not be (much) worse than a hand repair."""
        repair = ModelRepair.for_chain(
            two_path_chain,
            parse_pctl('P>=0.8 [ F "safe" ]'),
            controllable_states=["start"],
        )
        result = repair.repair()
        # Hand repair: move 0.2 from bad to good (cost 2·0.2² = 0.08).
        assert result.objective_value <= 0.08 + 1e-3

    def test_requires_controllable_successors(self):
        rigid = DTMC(
            states=["a", "b"],
            transitions={"a": {"b": 1.0}, "b": {"b": 1.0}},
            initial_state="a",
            labels={"b": {"goal"}},
        )
        with pytest.raises(ValueError):
            ModelRepair.for_chain(rigid, parse_pctl('P>=0.5 [ F "goal" ]'))

    def test_named_l1_cost_accepted(self, sluggish_chain):
        result = ModelRepair.for_chain(
            sluggish_chain, parse_pctl('R<=6 [ F "goal" ]'), cost="l1"
        ).repair()
        assert result.status == "repaired"


class TestFromParametric:
    def test_shared_parameter_repair(self, two_path_chain):
        p = Polynomial.variable("p")
        parametric = ParametricDTMC(
            states=two_path_chain.states,
            transitions={
                "start": {"good": 0.6 + p, "bad": 0.3 - p, "start": 0.1},
                "good": {"good": 1},
                "bad": {"bad": 1},
            },
            initial_state="start",
            labels=two_path_chain.labels,
            state_rewards=two_path_chain.state_rewards,
        )
        repair = ModelRepair.from_parametric(
            chain=two_path_chain,
            formula=parse_pctl('P>=0.8 [ F "safe" ]'),
            parametric_model=parametric,
            variables=[Variable("p", 0.0, 0.29, initial=0.0)],
        )
        result = repair.repair()
        assert result.status == "repaired"
        assert result.verified
        # Pr = (0.6+p)/0.9 >= 0.8  =>  p >= 0.12.
        assert result.assignment["p"] == pytest.approx(0.12, abs=5e-3)
