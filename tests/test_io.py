"""Tests for JSON round-trip and PRISM export."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import (
    dtmc_from_dict,
    dtmc_to_dict,
    dtmc_to_prism,
    load_model,
    mdp_from_dict,
    mdp_to_dict,
    mdp_to_prism,
    save_model,
)
from repro.mdp import DTMC, MDP, random_dtmc


class TestDtmcRoundTrip:
    def test_fixture_round_trip(self, two_path_chain):
        rebuilt = dtmc_from_dict(dtmc_to_dict(two_path_chain))
        assert rebuilt.states == two_path_chain.states
        assert rebuilt.initial_state == two_path_chain.initial_state
        assert rebuilt.labels == two_path_chain.labels
        for state in two_path_chain.states:
            for target in two_path_chain.successors(state):
                assert rebuilt.probability(state, target) == pytest.approx(
                    two_path_chain.probability(state, target)
                )

    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_random_round_trip(self, seed):
        chain = random_dtmc(5, seed=seed)
        as_strings = DTMC(
            states=[str(s) for s in chain.states],
            transitions={
                str(s): {str(t): p for t, p in row.items()}
                for s, row in chain.transitions.items()
            },
            initial_state=str(chain.initial_state),
            labels={str(s): props for s, props in chain.labels.items()},
            state_rewards={str(s): r for s, r in chain.state_rewards.items()},
        )
        rebuilt = dtmc_from_dict(dtmc_to_dict(as_strings))
        assert rebuilt.transitions == as_strings.transitions
        assert rebuilt.state_rewards == as_strings.state_rewards


class TestMdpRoundTrip:
    def test_fixture_round_trip(self, two_action_mdp):
        mdp = two_action_mdp.with_rewards(
            state_rewards={"goal": 1.0}, action_rewards={("s", "a"): 0.5}
        )
        rebuilt = mdp_from_dict(mdp_to_dict(mdp))
        assert rebuilt.states == mdp.states
        assert rebuilt.transitions == mdp.transitions
        assert rebuilt.action_rewards == mdp.action_rewards


class TestCtmcRoundTrip:
    def test_save_load_ctmc(self, tmp_path):
        from repro.ctmc import CTMC

        ctmc = CTMC(
            states=["up", "down"],
            rates={"up": {"down": 0.1}, "down": {"up": 2.0}},
            initial_state="up",
            labels={"up": {"working"}},
        )
        path = tmp_path / "ctmc.json"
        save_model(ctmc, path)
        loaded = load_model(path)
        assert isinstance(loaded, CTMC)
        assert loaded.states == ctmc.states
        assert loaded.labels == ctmc.labels
        assert loaded.rates["up"]["down"] == pytest.approx(0.1)
        assert loaded.rates["down"]["up"] == pytest.approx(2.0)


class TestIntervalRoundTrip:
    def build_interval(self, two_path_chain):
        from repro.mdp import IntervalDTMC

        return IntervalDTMC.from_dtmc(two_path_chain, epsilon=0.05)

    def test_interval_dtmc_round_trip(self, two_path_chain):
        from repro.io import interval_dtmc_from_dict, interval_dtmc_to_dict

        interval = self.build_interval(two_path_chain)
        rebuilt = interval_dtmc_from_dict(interval_dtmc_to_dict(interval))
        assert rebuilt.states == interval.states
        assert rebuilt.initial_state == interval.initial_state
        assert rebuilt.labels == interval.labels
        for state, row in interval.intervals.items():
            for target, (lower, upper) in row.items():
                got_lower, got_upper = rebuilt.intervals[state][target]
                assert got_lower == pytest.approx(lower)
                assert got_upper == pytest.approx(upper)

    def test_interval_dtmc_save_load(self, two_path_chain, tmp_path):
        from repro.mdp import IntervalDTMC

        interval = self.build_interval(two_path_chain)
        path = tmp_path / "interval.json"
        save_model(interval, path)
        loaded = load_model(path)
        assert isinstance(loaded, IntervalDTMC)
        assert loaded.contains(two_path_chain)

    def test_interval_mdp_round_trip(self, two_action_mdp, tmp_path):
        from repro.mdp import IntervalMDP

        interval = IntervalMDP.from_mdp(two_action_mdp, epsilon=0.02)
        path = tmp_path / "imdp.json"
        save_model(interval, path)
        loaded = load_model(path)
        assert isinstance(loaded, IntervalMDP)
        assert loaded.states == interval.states
        assert loaded.intervals == interval.intervals

    @given(st.integers(0, 1000), st.floats(0.0, 0.2))
    @settings(max_examples=20, deadline=None)
    def test_epsilon_ball_contains_centre(self, seed, epsilon):
        """``from_dtmc(c, eps)`` always contains ``c`` — including after
        a JSON round-trip of the interval model."""
        from repro.io import interval_dtmc_from_dict, interval_dtmc_to_dict
        from repro.mdp import IntervalDTMC

        chain = random_dtmc(5, seed=seed)
        as_strings = DTMC(
            states=[str(s) for s in chain.states],
            transitions={
                str(s): {str(t): p for t, p in row.items()}
                for s, row in chain.transitions.items()
            },
            initial_state=str(chain.initial_state),
        )
        interval = IntervalDTMC.from_dtmc(as_strings, epsilon)
        assert interval.contains(as_strings)
        rebuilt = interval_dtmc_from_dict(interval_dtmc_to_dict(interval))
        assert rebuilt.contains(as_strings)


class TestFileInterface:
    def test_save_load_dtmc(self, two_path_chain, tmp_path):
        path = tmp_path / "chain.json"
        save_model(two_path_chain, path)
        loaded = load_model(path)
        assert isinstance(loaded, DTMC)
        assert loaded.states == two_path_chain.states

    def test_save_load_mdp(self, two_action_mdp, tmp_path):
        path = tmp_path / "mdp.json"
        save_model(two_action_mdp, path)
        loaded = load_model(path)
        assert isinstance(loaded, MDP)
        assert loaded.actions("s") == ["a", "b"]

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"kind": "petri-net", "model": {}}')
        with pytest.raises(ValueError):
            load_model(path)

    def test_unserialisable_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_model(object(), tmp_path / "x.json")


class TestPrismExport:
    def test_dtmc_export_contains_structure(self, two_path_chain):
        text = dtmc_to_prism(two_path_chain)
        assert text.startswith("dtmc")
        assert "module chain" in text
        assert 's : [0..2] init 0;' in text
        assert 'label "safe"' in text
        assert 'rewards "default"' in text
        # Probabilities serialised.
        assert "0.6 : (s'=1)" in text

    def test_mdp_export_contains_actions(self, two_action_mdp):
        text = mdp_to_prism(two_action_mdp)
        assert text.startswith("mdp")
        assert "[a_a]" in text
        assert "[a_b]" in text

    def test_label_sanitisation(self):
        chain = DTMC(
            states=["x"],
            transitions={"x": {"x": 1.0}},
            initial_state="x",
            labels={"x": {"bad label!"}},
        )
        text = dtmc_to_prism(chain)
        assert 'label "bad_label_"' in text


class TestPrismImport:
    def test_round_trip_dtmc(self, two_path_chain):
        from repro.io import parse_prism

        text = dtmc_to_prism(two_path_chain)
        imported = parse_prism(text)
        assert isinstance(imported, DTMC)
        # Same structure under the index renaming state -> s<i>.
        for state in two_path_chain.states:
            i = two_path_chain.index[state]
            for target in two_path_chain.successors(state):
                j = two_path_chain.index[target]
                assert imported.probability(f"s{i}", f"s{j}") == pytest.approx(
                    two_path_chain.probability(state, target)
                )
        assert imported.states_with_atom("safe") == {"s1"}
        assert imported.state_rewards["s0"] == 1.0

    def test_round_trip_checks_identically(self, two_path_chain):
        from repro.checking import DTMCModelChecker
        from repro.io import parse_prism
        from repro.logic import parse_pctl

        imported = parse_prism(dtmc_to_prism(two_path_chain))
        original = DTMCModelChecker(two_path_chain).check(
            parse_pctl('P>=0 [ F "safe" ]')
        ).value
        reread = DTMCModelChecker(imported).check(
            parse_pctl('P>=0 [ F "safe" ]')
        ).value
        assert reread == pytest.approx(original)

    def test_round_trip_mdp(self, two_action_mdp):
        from repro.io import parse_prism

        imported = parse_prism(mdp_to_prism(two_action_mdp))
        assert isinstance(imported, MDP)
        assert imported.probability("s0", "a_a", "s1") == pytest.approx(0.9)
        assert imported.probability("s0", "a_b", "s1") == pytest.approx(0.2)

    def test_hand_written_model(self):
        from repro.io import parse_prism

        text = """
        dtmc
        module die
          s : [0..2] init 0;
          [] s=0 -> 0.5 : (s'=1) + 0.5 : (s'=2);
          [] s=1 -> 1 : (s'=1);
          [] s=2 -> 1 : (s'=2);
        endmodule
        label "even" = s=2;
        """
        chain = parse_prism(text)
        assert chain.probability("s0", "s2") == 0.5
        assert chain.states_with_atom("even") == {"s2"}

    def test_errors_on_unsupported_input(self):
        from repro.io import PrismParseError, parse_prism

        with pytest.raises(PrismParseError):
            parse_prism("ctmc\nmodule m\nendmodule")
        with pytest.raises(PrismParseError):
            parse_prism("dtmc\nmodule m\n x : [0..1] init 0;\n y : [0..1] init 0;\nendmodule")
        with pytest.raises(PrismParseError):
            parse_prism(
                "dtmc\nmodule m\n s : [0..1] init 0;\n"
                "  [] s=0 & s=1 -> 1 : (s'=1);\nendmodule"
            )

    def test_load_prism_file(self, two_path_chain, tmp_path):
        from repro.io import load_prism

        path = tmp_path / "model.pm"
        path.write_text(dtmc_to_prism(two_path_chain))
        chain = load_prism(path)
        assert isinstance(chain, DTMC)
