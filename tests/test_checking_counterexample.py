"""Tests for counterexample generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checking import (
    Counterexample,
    DTMCModelChecker,
    counterexample,
    strongest_evidence_paths,
)
from repro.logic import parse_pctl
from repro.mdp import DTMC, random_dtmc


@pytest.fixture
def branching_chain() -> DTMC:
    """Three routes to 'bad' with probabilities 0.5, 0.25, 0.05."""
    return DTMC(
        states=["s", "a", "b", "bad", "safe"],
        transitions={
            "s": {"bad": 0.5, "a": 0.25, "b": 0.25},
            "a": {"bad": 1.0},
            "b": {"bad": 0.2, "safe": 0.8},
            "bad": {"bad": 1.0},
            "safe": {"safe": 1.0},
        },
        initial_state="s",
        labels={"bad": {"bad"}},
    )


class TestStrongestEvidence:
    def test_most_probable_path_first(self, branching_chain):
        paths = strongest_evidence_paths(branching_chain, {"bad"}, count=3)
        assert paths[0] == (("s", "bad"), 0.5)
        assert paths[1] == (("s", "a", "bad"), 0.25)
        assert paths[2][1] == pytest.approx(0.05)

    def test_respects_allowed_set(self, branching_chain):
        paths = strongest_evidence_paths(
            branching_chain, {"bad"}, allowed={"s", "a"}, count=3
        )
        assert (("s", "b", "bad"), 0.05) not in paths
        assert len(paths) == 2

    def test_self_loop_paths_enumerable(self, two_path_chain):
        paths = strongest_evidence_paths(two_path_chain, {"good"}, count=3)
        assert paths[0] == (("start", "good"), 0.6)
        # Second-best loops once through start.
        assert paths[1][0] == ("start", "start", "good")
        assert paths[1][1] == pytest.approx(0.06)


class TestCounterexample:
    def test_evidence_exceeds_bound(self, branching_chain):
        formula = parse_pctl('P<=0.6 [ F "bad" ]')
        assert not DTMCModelChecker(branching_chain).check(formula).holds
        evidence = counterexample(branching_chain, formula)
        assert evidence.complete
        assert evidence.total_probability > 0.6
        # Greedy most-probable-first keeps the set small: 2 paths suffice.
        assert len(evidence) == 2

    def test_paths_end_in_targets(self, branching_chain):
        formula = parse_pctl('P<=0.1 [ F "bad" ]')
        evidence = counterexample(branching_chain, formula)
        for path in evidence.paths:
            assert path[-1] == "bad"

    def test_probabilities_non_increasing(self, branching_chain):
        formula = parse_pctl('P<=0.79 [ F "bad" ]')
        evidence = counterexample(branching_chain, formula)
        assert evidence.probabilities == sorted(
            evidence.probabilities, reverse=True
        )

    def test_lower_bound_rejected(self, branching_chain):
        with pytest.raises(ValueError):
            counterexample(branching_chain, parse_pctl('P>=0.9 [ F "bad" ]'))

    def test_bounded_until_rejected(self, branching_chain):
        with pytest.raises(ValueError):
            counterexample(branching_chain, parse_pctl('P<=0.5 [ F<=2 "bad" ]'))

    def test_until_left_restriction(self):
        chain = DTMC(
            states=["s", "via", "bad"],
            transitions={
                "s": {"bad": 0.3, "via": 0.7},
                "via": {"bad": 1.0},
                "bad": {"bad": 1.0},
            },
            initial_state="s",
            labels={"s": {"ok"}, "bad": {"bad"}},
        )
        # "ok" U "bad": the route through `via` leaves Sat(ok) first.
        formula = parse_pctl('P<=0.2 [ "ok" U "bad" ]')
        evidence = counterexample(chain, formula)
        assert evidence.paths == [("s", "bad")]
        assert evidence.total_probability == pytest.approx(0.3)

    def test_incomplete_when_budget_exhausted(self, two_path_chain):
        formula = parse_pctl('P<=0.66 [ F "safe" ]')
        evidence = counterexample(
            two_path_chain, formula, max_paths=2
        )
        # True probability 2/3 needs many looping paths; 2 are not enough.
        assert not evidence.complete
        assert evidence.total_probability <= 0.66


class TestEvidenceBudget:
    """Regression: a budget cut must be *reported*, not silently
    under-count — stiff models (absorbing self-loops) fragment the mass
    over unboundedly many looping paths."""

    @pytest.fixture
    def sticky_chain(self):
        """0.9 of the mass loops in place every step."""
        return DTMC(
            states=["start", "goal"],
            transitions={
                "start": {"start": 0.9, "goal": 0.1},
                "goal": {"goal": 1.0},
            },
            initial_state="start",
            labels={"goal": {"goal"}},
        )

    def test_budget_cut_is_flagged_with_partial_mass(self, sticky_chain):
        evidence = strongest_evidence_paths(
            sticky_chain, {"goal"}, count=50, max_expansions=10
        )
        assert not evidence.complete
        assert len(evidence) < 50
        # The partial mass collected before the cut is still reported.
        assert 0.0 < evidence.total_probability < 1.0
        assert evidence.expansions == evidence.max_expansions == 10

    def test_reaching_count_is_complete(self, sticky_chain):
        evidence = strongest_evidence_paths(
            sticky_chain, {"goal"}, count=3, max_expansions=10_000
        )
        assert evidence.complete
        assert len(evidence) == 3
        assert evidence.expansions < evidence.max_expansions

    def test_counterexample_diagnostics_on_budget_cut(self, sticky_chain):
        formula = parse_pctl('P<=0.95 [ F "goal" ]')
        evidence = counterexample(
            sticky_chain, formula, max_expansions=8
        )
        assert not evidence.complete
        assert evidence.total_probability < 0.95
        assert evidence.expansions == evidence.max_expansions == 8


class TestSerialization:
    def test_round_trip(self, branching_chain):
        formula = parse_pctl('P<=0.6 [ F "bad" ]')
        evidence = counterexample(branching_chain, formula)
        payload = evidence.to_dict()
        clone = Counterexample.from_dict(payload)
        assert clone.paths == evidence.paths
        assert clone.probabilities == evidence.probabilities
        assert clone.bound == evidence.bound
        assert clone.complete == evidence.complete
        assert clone.expansions == evidence.expansions
        assert clone.max_expansions == evidence.max_expansions
        assert clone.max_paths == evidence.max_paths
        assert clone.to_dict() == payload

    def test_dict_exposes_diagnostics(self, branching_chain):
        formula = parse_pctl('P<=0.1 [ F "bad" ]')
        payload = counterexample(branching_chain, formula).to_dict()
        for key in (
            "paths", "probabilities", "bound", "complete",
            "total_probability", "expansions", "max_expansions",
            "max_paths",
        ):
            assert key in payload


class TestEvidenceMassMonotone:
    """Property: greedy most-probable-first enumeration yields a
    non-increasing probability sequence on arbitrary chains."""

    @given(seed=st.integers(0, 400), count=st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_evidence_probabilities_non_increasing(self, seed, count):
        chain = random_dtmc(6, seed=seed, num_labels=1)
        targets = chain.states_with_atom("l0")
        if not targets:
            return
        evidence = strongest_evidence_paths(
            chain, targets, count=count, max_expansions=5_000
        )
        probabilities = [p for _, p in evidence]
        assert probabilities == sorted(probabilities, reverse=True)
        assert evidence.total_probability == pytest.approx(
            sum(probabilities)
        )

    @given(seed=st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_counterexample_probabilities_non_increasing(self, seed):
        chain = random_dtmc(6, seed=seed, num_labels=1)
        formula = parse_pctl('P<=0.05 [ F "l0" ]')
        check = DTMCModelChecker(chain).check(formula)
        if check.holds:
            return
        evidence = counterexample(chain, formula, max_expansions=5_000)
        assert evidence.probabilities == sorted(
            evidence.probabilities, reverse=True
        )
