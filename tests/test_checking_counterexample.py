"""Tests for counterexample generation."""

import pytest

from repro.checking import (
    DTMCModelChecker,
    counterexample,
    strongest_evidence_paths,
)
from repro.logic import parse_pctl
from repro.mdp import DTMC


@pytest.fixture
def branching_chain() -> DTMC:
    """Three routes to 'bad' with probabilities 0.5, 0.25, 0.05."""
    return DTMC(
        states=["s", "a", "b", "bad", "safe"],
        transitions={
            "s": {"bad": 0.5, "a": 0.25, "b": 0.25},
            "a": {"bad": 1.0},
            "b": {"bad": 0.2, "safe": 0.8},
            "bad": {"bad": 1.0},
            "safe": {"safe": 1.0},
        },
        initial_state="s",
        labels={"bad": {"bad"}},
    )


class TestStrongestEvidence:
    def test_most_probable_path_first(self, branching_chain):
        paths = strongest_evidence_paths(branching_chain, {"bad"}, count=3)
        assert paths[0] == (("s", "bad"), 0.5)
        assert paths[1] == (("s", "a", "bad"), 0.25)
        assert paths[2][1] == pytest.approx(0.05)

    def test_respects_allowed_set(self, branching_chain):
        paths = strongest_evidence_paths(
            branching_chain, {"bad"}, allowed={"s", "a"}, count=3
        )
        assert (("s", "b", "bad"), 0.05) not in paths
        assert len(paths) == 2

    def test_self_loop_paths_enumerable(self, two_path_chain):
        paths = strongest_evidence_paths(two_path_chain, {"good"}, count=3)
        assert paths[0] == (("start", "good"), 0.6)
        # Second-best loops once through start.
        assert paths[1][0] == ("start", "start", "good")
        assert paths[1][1] == pytest.approx(0.06)


class TestCounterexample:
    def test_evidence_exceeds_bound(self, branching_chain):
        formula = parse_pctl('P<=0.6 [ F "bad" ]')
        assert not DTMCModelChecker(branching_chain).check(formula).holds
        evidence = counterexample(branching_chain, formula)
        assert evidence.complete
        assert evidence.total_probability > 0.6
        # Greedy most-probable-first keeps the set small: 2 paths suffice.
        assert len(evidence) == 2

    def test_paths_end_in_targets(self, branching_chain):
        formula = parse_pctl('P<=0.1 [ F "bad" ]')
        evidence = counterexample(branching_chain, formula)
        for path in evidence.paths:
            assert path[-1] == "bad"

    def test_probabilities_non_increasing(self, branching_chain):
        formula = parse_pctl('P<=0.79 [ F "bad" ]')
        evidence = counterexample(branching_chain, formula)
        assert evidence.probabilities == sorted(
            evidence.probabilities, reverse=True
        )

    def test_lower_bound_rejected(self, branching_chain):
        with pytest.raises(ValueError):
            counterexample(branching_chain, parse_pctl('P>=0.9 [ F "bad" ]'))

    def test_bounded_until_rejected(self, branching_chain):
        with pytest.raises(ValueError):
            counterexample(branching_chain, parse_pctl('P<=0.5 [ F<=2 "bad" ]'))

    def test_until_left_restriction(self):
        chain = DTMC(
            states=["s", "via", "bad"],
            transitions={
                "s": {"bad": 0.3, "via": 0.7},
                "via": {"bad": 1.0},
                "bad": {"bad": 1.0},
            },
            initial_state="s",
            labels={"s": {"ok"}, "bad": {"bad"}},
        )
        # "ok" U "bad": the route through `via` leaves Sat(ok) first.
        formula = parse_pctl('P<=0.2 [ "ok" U "bad" ]')
        evidence = counterexample(chain, formula)
        assert evidence.paths == [("s", "bad")]
        assert evidence.total_probability == pytest.approx(0.3)

    def test_incomplete_when_budget_exhausted(self, two_path_chain):
        formula = parse_pctl('P<=0.66 [ F "safe" ]')
        evidence = counterexample(
            two_path_chain, formula, max_paths=2
        )
        # True probability 2/3 needs many looping paths; 2 are not enough.
        assert not evidence.complete
        assert evidence.total_probability <= 0.66
