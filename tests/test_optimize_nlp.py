"""Unit tests for the nonlinear-program layer."""

import pytest

from repro.checking.parametric import ParametricConstraint
from repro.optimize import (
    Constraint,
    NonlinearProgram,
    Variable,
    constraint_from_parametric,
)
from repro.symbolic import Polynomial, RationalFunction


class TestVariable:
    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            Variable("x", lower=1.0, upper=0.0)

    def test_initial_clipped_into_bounds(self):
        v = Variable("x", 0.0, 1.0, initial=5.0)
        assert v.initial == 1.0


class TestConstraint:
    def test_margin_and_satisfaction(self):
        c = Constraint(lambda v: v["x"] - 1.0)
        assert c.satisfied({"x": 1.5})
        assert not c.satisfied({"x": 0.0})

    def test_strict_shift(self):
        strict = Constraint(lambda v: v["x"], strict=True)
        loose = Constraint(lambda v: v["x"])
        assert strict.value({"x": 0.0}) < loose.value({"x": 0.0})

    def test_extra_shift(self):
        shifted = Constraint(lambda v: v["x"], shift=0.1)
        assert shifted.value({"x": 0.05}) == pytest.approx(-0.05)


class TestSolve:
    def test_projection_onto_line(self):
        program = NonlinearProgram(
            variables=[Variable("x", -1, 1), Variable("y", -1, 1)],
            objective=lambda v: v["x"] ** 2 + v["y"] ** 2,
            constraints=[Constraint(lambda v: v["x"] + v["y"] - 1.0)],
        )
        result = program.solve()
        assert result.feasible
        assert result.assignment["x"] == pytest.approx(0.5, abs=1e-4)
        assert result.assignment["y"] == pytest.approx(0.5, abs=1e-4)

    def test_unconstrained_minimum(self):
        program = NonlinearProgram(
            variables=[Variable("x", -2, 2, initial=1.5)],
            objective=lambda v: (v["x"] - 0.3) ** 2,
        )
        result = program.solve()
        assert result.feasible
        assert result.assignment["x"] == pytest.approx(0.3, abs=1e-5)

    def test_infeasible_detected(self):
        program = NonlinearProgram(
            variables=[Variable("x", 0, 1)],
            objective=lambda v: v["x"],
            constraints=[Constraint(lambda v: v["x"] - 2.0)],  # x >= 2 impossible
        )
        result = program.solve()
        assert not result.feasible
        assert "no start point" in result.message

    def test_bounds_respected(self):
        program = NonlinearProgram(
            variables=[Variable("x", 0.5, 1.0)],
            objective=lambda v: v["x"] ** 2,
        )
        result = program.solve()
        assert result.assignment["x"] == pytest.approx(0.5, abs=1e-6)

    def test_multistart_escapes_bad_start(self):
        # Objective with a spurious plateau near the default start.
        program = NonlinearProgram(
            variables=[Variable("x", -4, 4, initial=3.5)],
            objective=lambda v: (v["x"] ** 2 - 1) ** 2,
            constraints=[Constraint(lambda v: v["x"])],  # x >= 0
        )
        result = program.solve(extra_starts=10)
        assert result.feasible
        assert result.assignment["x"] == pytest.approx(1.0, abs=1e-3)

    def test_duplicate_variables_rejected(self):
        with pytest.raises(ValueError):
            NonlinearProgram(
                variables=[Variable("x"), Variable("x")],
                objective=lambda v: 0.0,
            )

    def test_needs_variables(self):
        with pytest.raises(ValueError):
            NonlinearProgram(variables=[], objective=lambda v: 0.0)


class TestParametricAdapter:
    def test_upper_bound_margin(self):
        x = Polynomial.variable("x")
        constraint = constraint_from_parametric(
            ParametricConstraint(RationalFunction(x), "<=", 0.5),
            safety_margin=0.0,
        )
        assert constraint.satisfied({"x": 0.4})
        assert not constraint.satisfied({"x": 0.6})

    def test_lower_bound_margin(self):
        x = Polynomial.variable("x")
        constraint = constraint_from_parametric(
            ParametricConstraint(RationalFunction(x), ">=", 0.5),
            safety_margin=0.0,
        )
        assert constraint.satisfied({"x": 0.6})
        assert not constraint.satisfied({"x": 0.4})

    def test_safety_margin_scales_with_bound(self):
        x = Polynomial.variable("x")
        constraint = constraint_from_parametric(
            ParametricConstraint(RationalFunction(x), "<=", 100.0),
            safety_margin=1e-3,
        )
        # Needs x <= 100 - 0.1.
        assert not constraint.satisfied({"x": 99.95})
        assert constraint.satisfied({"x": 99.8})

    def test_solves_rational_constraint(self):
        x = Polynomial.variable("x")
        # f(x) = 1/x <= 4  =>  x >= 0.25; minimise x².
        f = RationalFunction(Polynomial.one(), x)
        program = NonlinearProgram(
            variables=[Variable("x", 0.01, 1.0, initial=0.9)],
            objective=lambda v: v["x"] ** 2,
            constraints=[
                constraint_from_parametric(ParametricConstraint(f, "<=", 4.0))
            ],
        )
        result = program.solve()
        assert result.feasible
        assert result.assignment["x"] == pytest.approx(0.25, abs=1e-3)
