"""Tests for SCC decomposition, steady-state analysis and the S operator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checking import (
    DTMCModelChecker,
    bottom_strongly_connected_components,
    long_run_average_reward,
    long_run_distribution,
    stationary_distribution,
    steady_state_probabilities,
    strongly_connected_components,
)
from repro.logic import parse_pctl
from repro.mdp import DTMC, random_dtmc


@pytest.fixture
def ergodic_chain() -> DTMC:
    """Two-state working/broken chain with known stationary distribution."""
    return DTMC(
        states=["up", "down"],
        transitions={
            "up": {"up": 0.95, "down": 0.05},
            "down": {"up": 0.5, "down": 0.5},
        },
        initial_state="up",
        labels={"up": {"working"}},
        state_rewards={"up": 1.0},
    )


@pytest.fixture
def two_trap_chain() -> DTMC:
    """Transient start splitting into two absorbing cycles."""
    return DTMC(
        states=["start", "l1", "l2", "r"],
        transitions={
            "start": {"l1": 0.25, "r": 0.75},
            "l1": {"l2": 1.0},
            "l2": {"l1": 1.0},
            "r": {"r": 1.0},
        },
        initial_state="start",
        labels={"l1": {"left"}, "l2": {"left"}, "r": {"right"}},
    )


class TestScc:
    def test_cycle_is_one_component(self, two_trap_chain):
        components = strongly_connected_components(two_trap_chain)
        assert frozenset({"l1", "l2"}) in components
        assert frozenset({"start"}) in components

    def test_reverse_topological_order(self, two_trap_chain):
        components = strongly_connected_components(two_trap_chain)
        position = {c: i for i, c in enumerate(components)}
        # start's SCC must come after its successors' SCCs.
        start = next(c for c in components if "start" in c)
        left = next(c for c in components if "l1" in c)
        assert position[left] < position[start]

    def test_bottom_components(self, two_trap_chain):
        bottoms = bottom_strongly_connected_components(two_trap_chain)
        assert sorted(map(sorted, bottoms)) == [["l1", "l2"], ["r"]]

    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_components_partition_states(self, seed):
        chain = random_dtmc(7, seed=seed)
        components = strongly_connected_components(chain)
        union = set()
        total = 0
        for component in components:
            union |= component
            total += len(component)
        assert union == set(chain.states)
        assert total == len(chain.states)

    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_every_chain_has_a_bottom(self, seed):
        chain = random_dtmc(6, seed=seed)
        assert bottom_strongly_connected_components(chain)


class TestStationary:
    def test_two_state_closed_form(self, ergodic_chain):
        pi = stationary_distribution(ergodic_chain, frozenset({"up", "down"}))
        # pi_up = 0.5 / (0.5 + 0.05)
        assert pi["up"] == pytest.approx(10 / 11)
        assert pi["down"] == pytest.approx(1 / 11)

    def test_period_two_cycle(self, two_trap_chain):
        pi = stationary_distribution(two_trap_chain, frozenset({"l1", "l2"}))
        assert pi["l1"] == pytest.approx(0.5)
        assert pi["l2"] == pytest.approx(0.5)

    def test_singleton(self, two_trap_chain):
        pi = stationary_distribution(two_trap_chain, frozenset({"r"}))
        assert pi == {"r": 1.0}


class TestLongRun:
    def test_mixture_over_traps(self, two_trap_chain):
        occupancy = long_run_distribution(two_trap_chain)["start"]
        assert occupancy["r"] == pytest.approx(0.75)
        assert occupancy["l1"] == pytest.approx(0.125)
        assert occupancy["l2"] == pytest.approx(0.125)
        assert occupancy.get("start", 0.0) == 0.0

    def test_steady_state_probabilities(self, two_trap_chain):
        values = steady_state_probabilities(
            two_trap_chain, {"l1", "l2"}
        )
        assert values["start"] == pytest.approx(0.25)
        assert values["l1"] == 1.0
        assert values["r"] == 0.0

    def test_long_run_average_reward(self, ergodic_chain):
        averages = long_run_average_reward(ergodic_chain)
        assert averages["up"] == pytest.approx(10 / 11)
        # Ergodic: same long-run average from both states.
        assert averages["down"] == pytest.approx(10 / 11)

    @given(st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_occupancy_normalised(self, seed):
        chain = random_dtmc(6, seed=seed)
        occupancy = long_run_distribution(chain)
        for state in chain.states:
            assert sum(occupancy[state].values()) == pytest.approx(1.0)


class TestSteadyStateOperator:
    def test_parse_and_check(self, ergodic_chain):
        result = DTMCModelChecker(ergodic_chain).check(
            parse_pctl('S>=0.9 [ "working" ]')
        )
        assert result.holds
        assert result.value == pytest.approx(10 / 11)

    def test_violated_bound(self, ergodic_chain):
        result = DTMCModelChecker(ergodic_chain).check(
            parse_pctl('S>=0.95 [ "working" ]')
        )
        assert not result.holds

    def test_transient_start(self, two_trap_chain):
        result = DTMCModelChecker(two_trap_chain).check(
            parse_pctl('S<=0.3 [ "left" ]')
        )
        assert result.value == pytest.approx(0.25)
        assert result.holds

    def test_nested_boolean_operand(self, two_trap_chain):
        result = DTMCModelChecker(two_trap_chain).check(
            parse_pctl('S>=0.99 [ "left" | "right" ]')
        )
        assert result.holds

    def test_round_trip_repr(self):
        formula = parse_pctl('S>=0.5 [ "working" ]')
        assert parse_pctl(repr(formula)) == formula
