"""Unit tests for maximum-likelihood chain learning."""

import pytest

from repro.learning.mle import (
    count_transitions,
    empirical_visit_counts,
    learn_dtmc,
    log_likelihood,
    parametric_mle_dtmc,
)
from repro.mdp import Simulator, Trajectory, chain_dtmc
from repro.symbolic import Polynomial, RationalFunction


def traces(*paths):
    return [Trajectory.from_states(list(p)) for p in paths]


class TestCounting:
    def test_count_transitions(self):
        counts = count_transitions(traces(["a", "b", "a"], ["a", "b"]))
        assert counts == {"a": {"b": 2}, "b": {"a": 1}}

    def test_visit_counts(self):
        counts = empirical_visit_counts(traces(["a", "b"], ["a"]))
        assert counts == {"a": 2, "b": 1}


class TestLearning:
    def test_mle_probabilities(self):
        data = traces(["a", "b"], ["a", "b"], ["a", "a"])
        chain = learn_dtmc(data, initial_state="a")
        assert chain.probability("a", "b") == pytest.approx(2 / 3)
        assert chain.probability("a", "a") == pytest.approx(1 / 3)

    def test_unseen_source_becomes_absorbing(self):
        chain = learn_dtmc(traces(["a", "b"]), initial_state="a")
        assert chain.probability("b", "b") == 1.0

    def test_explicit_state_space(self):
        chain = learn_dtmc(
            traces(["a", "b"]), initial_state="a", states=["a", "b", "c"]
        )
        assert "c" in chain.states
        assert chain.probability("c", "c") == 1.0

    def test_smoothing_spreads_mass(self):
        data = traces(["a", "b"], ["a", "b"], ["a", "c"])
        raw = learn_dtmc(data, initial_state="a")
        smoothed = learn_dtmc(data, initial_state="a", smoothing=1.0)
        assert smoothed.probability("a", "c") > raw.probability("a", "c") - 1e-12
        assert smoothed.probability("a", "b") < raw.probability("a", "b")

    def test_labels_and_rewards_attached(self):
        chain = learn_dtmc(
            traces(["a", "b"]),
            initial_state="a",
            labels={"b": {"goal"}},
            state_rewards={"a": 1.0},
        )
        assert chain.states_with_atom("goal") == {"b"}
        assert chain.state_rewards["a"] == 1.0

    def test_recovers_generating_chain(self):
        truth = chain_dtmc(4, forward_probability=0.7)
        sim = Simulator(seed=3)
        data = sim.sample_chain_many(truth, 400, stop_states={3})
        learned = learn_dtmc(data, initial_state=0, states=truth.states)
        assert learned.probability(0, 1) == pytest.approx(0.7, abs=0.06)


class TestLogLikelihood:
    def test_higher_for_generating_model(self):
        data = traces(["a", "b"], ["a", "b"], ["a", "a"])
        fitted = learn_dtmc(data, initial_state="a")
        from repro.mdp import DTMC

        other = DTMC(
            states=["a", "b"],
            transitions={"a": {"b": 0.1, "a": 0.9}, "b": {"a": 1.0}},
            initial_state="a",
        )
        assert log_likelihood(fitted, data) > log_likelihood(other, data)

    def test_impossible_step_is_minus_infinity(self):
        from repro.mdp import DTMC

        chain = DTMC(
            states=["a", "b"],
            transitions={"a": {"a": 1.0}, "b": {"b": 1.0}},
            initial_state="a",
        )
        assert log_likelihood(chain, traces(["a", "b"])) == float("-inf")


class TestParametricMle:
    def test_matches_concrete_at_zero_drop(self):
        grouped = {
            "good": {"a": {"b": 4}},
            "bad": {"a": {"a": 6}},
        }
        model = parametric_mle_dtmc(
            grouped_counts=grouped,
            initial_state="a",
            states=["a", "b"],
            drop_parameters={"bad": "p"},
        )
        chain = model.instantiate({"p": 0.0})
        assert chain.probability("a", "b") == pytest.approx(0.4)

    def test_paper_rational_shape(self):
        """Sec. V-A.2: forward prob = 0.4(1−p_s) / (0.4(1−p_s)+0.6(1−p_f));
        with only the failure group droppable this is 0.4/(0.4+0.6(1−p))."""
        grouped = {
            "success": {"a": {"b": 40}},
            "failure": {"a": {"a": 60}},
        }
        model = parametric_mle_dtmc(
            grouped_counts=grouped,
            initial_state="a",
            states=["a", "b"],
            drop_parameters={"failure": "p"},
        )
        f = model.transitions["a"]["b"]
        p = Polynomial.variable("p")
        expected = RationalFunction(
            Polynomial.constant(40), 40 + (1 - p).scaled(60)
        )
        assert f == expected

    def test_dropping_failures_raises_success_probability(self):
        grouped = {
            "success": {"a": {"b": 40}},
            "failure": {"a": {"a": 60}},
        }
        model = parametric_mle_dtmc(
            grouped_counts=grouped,
            initial_state="a",
            states=["a", "b"],
            drop_parameters={"failure": "p"},
        )
        low = model.instantiate({"p": 0.0}).probability("a", "b")
        high = model.instantiate({"p": 0.5}).probability("a", "b")
        assert high > low

    def test_fixed_rows_pinned(self):
        grouped = {"g": {"a": {"b": 1}, "b": {"a": 1}}}
        model = parametric_mle_dtmc(
            grouped_counts=grouped,
            initial_state="a",
            states=["a", "b"],
            drop_parameters={"g": "p"},
            fixed_rows={"b": {"b": 1.0}},
        )
        chain = model.instantiate({"p": 0.3})
        assert chain.probability("b", "b") == 1.0

    def test_unobserved_state_absorbing(self):
        model = parametric_mle_dtmc(
            grouped_counts={"g": {"a": {"b": 1}}},
            initial_state="a",
            states=["a", "b", "c"],
            drop_parameters={},
        )
        chain = model.instantiate({})
        assert chain.probability("c", "c") == 1.0
