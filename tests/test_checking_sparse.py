"""Sparse-vs-dense engine equivalence, cache behaviour, and bug fixes.

The sparse CSR engine of :mod:`repro.checking.matrix` must produce
*identical* verdicts and probabilities (to 1e-10 absolute) as the dense
dictionary reference on the case-study models and random models.  This
suite is the build's safety net for the vectorised backend — the
repo-level conftest fails the run if it is skipped.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.casestudies.car import build_car_mdp
from repro.casestudies.wsn import attempts_property, build_wsn_chain, build_wsn_mdp
from repro.checking import (
    CheckCache,
    DTMCModelChecker,
    MDPModelChecker,
    cached_check,
    model_fingerprint,
    parametric_fingerprint,
)
from repro.checking.cache import get_cache
from repro.checking.graph import (
    backward_reachable,
    bottom_strongly_connected_components,
    prob0A_states,
    prob0E_states,
    prob1A_states,
    prob1E_states,
    prob0_states,
    prob1_states,
    strongly_connected_components,
)
from repro.checking.matrix import get_dtmc_matrix, get_mdp_matrix
from repro.checking.parametric import ParametricDTMC, analysis_count
from repro.logic import parse_pctl
from repro.mdp import random_dtmc, random_mdp
from repro.symbolic import Polynomial

TOLERANCE = 1e-10

WSN_DTMC_FORMULAS = [
    'P>=0.5 [ F "delivered" ]',
    'P>=0.1 [ F<=6 "delivered" ]',
    'P>=0.5 [ X "delivered" ]',
    'P>=0.5 [ G !"delivered" ]',
    'S>=0.5 [ "delivered" ]',
    "R<=10 [ C<=5 ]",
]

RANDOM_DTMC_FORMULAS = [
    'P>=0.5 [ F "l0" ]',
    'P>=0.5 [ "l0" U "l1" ]',
    'P>=0.2 [ "l0" U<=4 "l1" ]',
    'P>=0.5 [ X "l1" ]',
    'S>=0.3 [ "l0" ]',
    'R<=3 [ F "l1" ]',
]

CAR_MDP_FORMULAS = [
    'P<=0.5 [ F "unsafe" ]',
    'P>=0.1 [ F "target" ]',
    'P<=0.5 [ F<=4 "collision" ]',
    'P>=0.0 [ X "rightlane" ]',
    'P>=0.5 [ G !"unsafe" ]',
    "R<=10 [ C<=5 ]",
    'R<=100 [ F "target" ]',
]

RANDOM_MDP_FORMULAS = [
    'P<=0.5 [ F "l0" ]',
    'P>=0.1 [ "l0" U "l1" ]',
    'P<=0.9 [ "l0" U<=3 "l1" ]',
    'P>=0.0 [ X "l1" ]',
    "R<=10 [ C<=4 ]",
    'R<=50 [ F "l0" ]',
]


def _labelled_random_mdp(num_states, seed):
    """:func:`random_mdp` with parity labels (the builder emits none)."""
    from repro.mdp.model import MDP

    bare = random_mdp(num_states, seed=seed)
    labels = {
        state: {"l0"} if index % 2 == 0 else {"l1"}
        for index, state in enumerate(bare.states)
    }
    return MDP(
        states=bare.states,
        transitions={
            state: {
                action: dict(row)
                for action, row in bare.transitions[state].items()
            }
            for state in bare.states
        },
        initial_state=bare.initial_state,
        state_rewards=dict(bare.state_rewards),
        labels=labels,
    )


def _assert_values_close(dense_values, sparse_values, atol=TOLERANCE):
    assert set(dense_values) == set(sparse_values)
    for state, dense_value in dense_values.items():
        sparse_value = sparse_values[state]
        if np.isinf(dense_value) or np.isinf(sparse_value):
            assert dense_value == sparse_value, state
        else:
            assert abs(dense_value - sparse_value) <= atol, (
                state,
                dense_value,
                sparse_value,
            )


def _assert_dtmc_equivalent(chain, formula_text):
    formula = parse_pctl(formula_text)
    dense = DTMCModelChecker(chain, engine="dense").check(formula)
    sparse = DTMCModelChecker(chain, engine="sparse").check(formula)
    assert dense.holds == sparse.holds
    assert dense.satisfaction_set == sparse.satisfaction_set
    if dense.values is not None:
        _assert_values_close(dense.values, sparse.values)


def _assert_mdp_equivalent(mdp, formula_text, atol=TOLERANCE):
    formula = parse_pctl(formula_text)
    dense = MDPModelChecker(mdp, engine="dense").check(formula)
    sparse = MDPModelChecker(mdp, engine="sparse").check(formula)
    assert dense.holds == sparse.holds
    assert dense.satisfaction_set == sparse.satisfaction_set
    if dense.values is not None:
        _assert_values_close(dense.values, sparse.values, atol=atol)


class TestDTMCEquivalence:
    @pytest.mark.parametrize("formula_text", WSN_DTMC_FORMULAS)
    def test_wsn_chain(self, formula_text):
        chain = build_wsn_chain(size=3)
        _assert_dtmc_equivalent(chain, formula_text)

    def test_wsn_attempts_reward(self):
        chain = build_wsn_chain(size=4)
        _assert_dtmc_equivalent(chain, str(attempts_property(30)))

    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 668])
    @pytest.mark.parametrize("formula_text", RANDOM_DTMC_FORMULAS)
    def test_random_chains(self, seed, formula_text):
        chain = random_dtmc(8, seed=seed)
        _assert_dtmc_equivalent(chain, formula_text)

    def test_two_path_chain(self, two_path_chain):
        for formula_text in (
            'P>=0.6 [ F "safe" ]',
            'P<=0.4 [ F "unsafe" ]',
            'R<=2 [ F "safe" ]',
            'S>=0.5 [ "safe" ]',
        ):
            _assert_dtmc_equivalent(two_path_chain, formula_text)


class TestMDPEquivalence:
    @pytest.mark.parametrize("formula_text", CAR_MDP_FORMULAS)
    def test_car_mdp(self, formula_text):
        _assert_mdp_equivalent(build_car_mdp(), formula_text)

    def test_wsn_mdp(self):
        mdp = build_wsn_mdp(size=3)
        _assert_mdp_equivalent(mdp, 'P>=0.1 [ F "delivered" ]')
        _assert_mdp_equivalent(mdp, 'P<=0.9 [ F<=5 "delivered" ]')

    @pytest.mark.parametrize("seed", [0, 3, 11, 99])
    @pytest.mark.parametrize("formula_text", RANDOM_MDP_FORMULAS)
    def test_random_mdps(self, seed, formula_text):
        mdp = _labelled_random_mdp(7, seed=seed)
        # Reward value iteration is iterative in BOTH engines; the dense
        # Gauss-Seidel stop criterion alone is 1e-10, so the cross-engine
        # gap on adversarially slow-mixing random models can exceed the
        # 1e-10 budget that the case-study models meet.
        atol = 5e-9 if formula_text.startswith("R<=50") else TOLERANCE
        _assert_mdp_equivalent(mdp, formula_text, atol=atol)

    def test_two_action_mdp(self, two_action_mdp):
        for formula_text in (
            'P>=0.5 [ F "goal" ]',
            'P<=0.95 [ F "goal" ]',
            'P<=0.5 [ F<=1 "goal" ]',
        ):
            _assert_mdp_equivalent(two_action_mdp, formula_text)


class TestGraphEquivalence:
    @pytest.mark.parametrize("seed", [0, 5, 17, 123])
    def test_dtmc_qualitative_sets(self, seed):
        chain = random_dtmc(9, seed=seed)
        atoms = sorted(chain.atoms())
        targets = set(chain.states_with_atom(atoms[0]))
        allowed = set(chain.states_with_atom(atoms[-1])) | targets
        for kwargs in ({}, {"allowed": allowed}):
            assert prob0_states(
                chain, targets, engine="sparse", **kwargs
            ) == prob0_states(chain, targets, engine="dense", **kwargs)
            assert prob1_states(
                chain, targets, engine="sparse", **kwargs
            ) == prob1_states(chain, targets, engine="dense", **kwargs)
        assert backward_reachable(
            chain, targets, engine="sparse"
        ) == backward_reachable(chain, targets, engine="dense")
        assert backward_reachable(
            chain, targets, through=allowed, engine="sparse"
        ) == backward_reachable(chain, targets, through=allowed, engine="dense")

    @pytest.mark.parametrize("seed", [0, 5, 17, 123])
    def test_mdp_qualitative_sets(self, seed):
        mdp = _labelled_random_mdp(8, seed=seed)
        targets = set(mdp.states_with_atom("l0"))
        for function in (
            prob0A_states,
            prob0E_states,
            prob1A_states,
            prob1E_states,
        ):
            assert function(mdp, targets, engine="sparse") == function(
                mdp, targets, engine="dense"
            ), function.__name__

    @pytest.mark.parametrize("seed", [0, 2, 31, 77])
    def test_scc_decomposition(self, seed):
        chain = random_dtmc(10, seed=seed)
        dense = strongly_connected_components(chain, engine="dense")
        sparse = strongly_connected_components(chain, engine="sparse")
        assert set(dense) == set(sparse)
        # Both orders must be reverse-topological: edges leaving a
        # component may only point at earlier-listed components.
        for components in (dense, sparse):
            position = {}
            for rank, component in enumerate(components):
                for state in component:
                    position[state] = rank
            for state in chain.states:
                for target in chain.successors(state):
                    if position[target] != position[state]:
                        assert position[target] < position[state]
        assert set(
            bottom_strongly_connected_components(chain, engine="dense")
        ) == set(bottom_strongly_connected_components(chain, engine="sparse"))

    def test_unknown_engine_rejected(self, two_path_chain):
        with pytest.raises(ValueError, match="unknown engine"):
            prob0_states(two_path_chain, {"good"}, engine="cuda")
        with pytest.raises(ValueError, match="unknown engine"):
            DTMCModelChecker(two_path_chain, engine="cuda")


class TestMatrixAndCache:
    def test_matrix_memoised_on_model(self, two_path_chain):
        assert get_dtmc_matrix(two_path_chain) is get_dtmc_matrix(two_path_chain)

    def test_mdp_matrix_memoised(self, two_action_mdp):
        assert get_mdp_matrix(two_action_mdp) is get_mdp_matrix(two_action_mdp)

    def test_fingerprint_content_addressed(self):
        a = random_dtmc(6, seed=4)
        b = random_dtmc(6, seed=4)
        c = random_dtmc(6, seed=5)
        assert model_fingerprint(a) == model_fingerprint(b)
        assert model_fingerprint(a) != model_fingerprint(c)

    def test_fingerprint_sees_rewards(self, two_path_chain):
        bumped = two_path_chain.with_rewards({"start": 2.0})
        assert model_fingerprint(two_path_chain) != model_fingerprint(bumped)

    def test_get_or_compute_hits_and_misses(self):
        cache = CheckCache()
        assert cache.get_or_compute(("k",), lambda: 1) == 1
        assert cache.get_or_compute(("k",), lambda: 2) == 1
        stats = cache.stats()
        assert (stats["hits"], stats["misses"], stats["entries"]) == (1, 1, 1)
        cache.clear()
        stats = cache.stats()
        assert (stats["hits"], stats["misses"], stats["entries"]) == (0, 0, 0)

    def test_cached_check_reuses_result(self, two_path_chain):
        cache = CheckCache()
        formula = parse_pctl('P>=0.6 [ F "safe" ]')
        first = cached_check(two_path_chain, formula, cache=cache)
        second = cached_check(two_path_chain, formula, cache=cache)
        assert first is second
        assert cache.hits == 1

    def test_parametric_constraint_memoised(self):
        p = Polynomial.variable("p")
        model = ParametricDTMC(
            states=["a", "b", "c"],
            transitions={
                "a": {"b": p, "a": 1 - p},
                "b": {"c": 1},
                "c": {"c": 1},
            },
            initial_state="a",
            labels={"c": {"done"}},
        )
        formula = parse_pctl('P>=0.5 [ F "done" ]')
        cache = CheckCache()
        before = analysis_count()
        first = cache.parametric_constraint(model, formula)
        second = cache.parametric_constraint(model, formula)
        assert first is second
        assert analysis_count() - before == 1
        # A content-identical rebuild still hits the cache.
        rebuilt = ParametricDTMC(
            states=["a", "b", "c"],
            transitions={
                "a": {"b": p, "a": 1 - p},
                "b": {"c": 1},
                "c": {"c": 1},
            },
            initial_state="a",
            labels={"c": {"done"}},
        )
        assert parametric_fingerprint(model) == parametric_fingerprint(rebuilt)
        assert cache.parametric_constraint(rebuilt, formula) is first

    def test_get_cache_defaults_to_global(self):
        private = CheckCache()
        assert get_cache(private) is private
        assert get_cache(None) is get_cache(None)


class TestRepairCacheReuse:
    def test_model_repair_runs_one_elimination(self):
        from repro.casestudies.wsn import model_repair_problem

        problem = model_repair_problem(bound=19)
        problem.cache = CheckCache()
        before = analysis_count()
        problem.repair()
        assert analysis_count() - before == 1
        problem.repair()
        assert analysis_count() - before == 1
        assert problem.cache.hits >= 2


class TestParametricAbsorbingStates:
    """Regression: p(s,s) == 1 during elimination raised ZeroDivisionError."""

    def _trap_model(self):
        z = Polynomial.variable("z")
        return ParametricDTMC(
            states=["a", "trap", "goal"],
            transitions={
                "a": {"trap": 0.5, "goal": z},
                "trap": {"trap": 1},
                "goal": {"goal": 1},
            },
            initial_state="a",
            labels={"goal": {"done"}},
        )

    def test_eliminate_survives_absorbing_trap(self):
        function = self._trap_model().reachability_probability(
            {"goal"}, method="eliminate"
        )
        assert float(function.evaluate({"z": 0.3})) == pytest.approx(0.3)

    def test_eliminate_agrees_with_concrete_check(self):
        model = self._trap_model()
        function = model.reachability_probability({"goal"}, method="eliminate")
        assignment = {"z": 0.5}
        concrete = model.instantiate(assignment)
        expected = DTMCModelChecker(concrete).path_probabilities(
            parse_pctl('P>=0 [ F "done" ]').path
        )[concrete.initial_state]
        assert float(function.evaluate(assignment)) == pytest.approx(
            expected, abs=TOLERANCE
        )

    def test_absorbing_initial_state_reachability_is_zero(self):
        z = Polynomial.variable("z")
        model = ParametricDTMC(
            states=["a", "goal"],
            # Structurally the self-loop is exactly 1; the z-edge models a
            # repair candidate that is zero on the valid region.
            transitions={"a": {"a": 1, "goal": z}, "goal": {"goal": 1}},
            initial_state="a",
            labels={"goal": {"done"}},
        )
        function = model.reachability_probability({"goal"}, method="eliminate")
        assert function.is_zero()

    def test_absorbing_initial_state_reward_raises(self):
        z = Polynomial.variable("z")
        model = ParametricDTMC(
            states=["a", "goal"],
            transitions={"a": {"a": 1, "goal": z}, "goal": {"goal": 1}},
            initial_state="a",
            labels={"goal": {"done"}},
            state_rewards={"a": 1},
        )
        with pytest.raises(ValueError, match="infinite"):
            model.expected_reward({"goal"}, method="eliminate")


class TestHMMSamplingDeterminism:
    """Regression: sample() used an unseeded generator by default."""

    def _hmm(self):
        from repro.hmm.model import HMM

        return HMM(
            states=["rain", "sun"],
            symbols=["walk", "shop"],
            initial={"rain": 0.5, "sun": 0.5},
            transitions={
                "rain": {"rain": 0.7, "sun": 0.3},
                "sun": {"rain": 0.4, "sun": 0.6},
            },
            emissions={
                "rain": {"walk": 0.2, "shop": 0.8},
                "sun": {"walk": 0.6, "shop": 0.4},
            },
        )

    def test_default_is_deterministic(self):
        hmm = self._hmm()
        assert hmm.sample(25) == hmm.sample(25)

    def test_seed_parameter_changes_draws(self):
        hmm = self._hmm()
        assert hmm.sample(25, seed=0) == hmm.sample(25)
        assert hmm.sample(50, seed=1) != hmm.sample(50, seed=2)

    def test_explicit_rng_still_threads(self):
        hmm = self._hmm()
        a = hmm.sample(10, np.random.default_rng(3))
        b = hmm.sample(10, np.random.default_rng(3))
        assert a == b


class TestStartPointsWithInfiniteBounds:
    """Regression: infinite bounds were clamped to ±1.0 silently."""

    def test_one_sided_starts_stay_feasible(self, caplog):
        from repro.optimize.nlp import NonlinearProgram, Variable

        program = NonlinearProgram(
            variables=[Variable("z", 2.0, np.inf, initial=3.0)],
            objective=lambda v: (v["z"] - 2.5) ** 2,
        )
        with caplog.at_level("WARNING", logger="repro.optimize.nlp"):
            starts = program._start_points(extra_starts=12, seed=0)
        assert all(start[0] >= 2.0 for start in starts)
        assert any("infinite bound" in record.message for record in caplog.records)
        result = program.solve()
        assert result.feasible
        assert result.assignment["z"] == pytest.approx(2.5, abs=1e-6)

    def test_jitter_centres_on_initial_when_unbounded(self):
        from repro.optimize.nlp import NonlinearProgram, Variable

        program = NonlinearProgram(
            variables=[Variable("w", -np.inf, np.inf, initial=10.0)],
            objective=lambda v: v["w"] ** 2,
        )
        starts = program._start_points(extra_starts=16, seed=1)
        jittered = np.array([start[0] for start in starts[2:]])
        assert (np.abs(jittered - 10.0) <= 1.0 + 1e-12).all()

    def test_parallel_matches_sequential(self):
        from repro.optimize.nlp import Constraint, NonlinearProgram, Variable

        program = NonlinearProgram(
            variables=[Variable("x", -1, 1), Variable("y", -1, 1)],
            objective=lambda v: v["x"] ** 2 + v["y"] ** 2,
            constraints=[Constraint(lambda v: v["x"] + v["y"] - 1.0)],
        )
        threaded = program.solve(parallel=True)
        sequential = program.solve(parallel=False)
        assert threaded.feasible and sequential.feasible
        assert threaded.assignment == sequential.assignment
        assert threaded.objective_value == sequential.objective_value
