"""Fault-injection robustness suite for the batch runner.

Every test asserts the runtime's core guarantee: under crashes, hangs,
transient errors and timeouts, **every job terminates with a definite
status** and the batch never deadlocks (enforced by pytest-level
timeouts on the slowest cases via small fault/backoff settings).
"""

import threading
import time

import pytest

from repro.mdp import chain_dtmc
from repro.service import (
    BatchRunner,
    CheckJob,
    FaultPlan,
    ModelRepairJob,
    Telemetry,
    run_batch,
)
from repro.service.runner import TERMINAL_STATUSES

pytestmark = pytest.mark.service


@pytest.fixture
def sluggish_chain():
    return chain_dtmc(5, forward_probability=0.5)


def check_jobs(chain, count, prefix="job"):
    return [
        CheckJob.for_model(
            f"{prefix}-{i}", chain, 'P>=0.2 [ F "goal" ]', smc_samples=300
        )
        for i in range(count)
    ]


def fast_runner(**kwargs):
    kwargs.setdefault("backoff_base", 0.01)
    kwargs.setdefault("backoff_max", 0.05)
    return BatchRunner(**kwargs)


class TestHappyPath:
    def test_inline_batch(self, sluggish_chain):
        report = fast_runner(max_workers=0).run(check_jobs(sluggish_chain, 3))
        assert report.by_status() == {"succeeded": 3}
        assert report.all_ok
        assert all(outcome.attempts == 1 for outcome in report)

    def test_pool_batch(self, sluggish_chain):
        report = fast_runner(max_workers=2).run(check_jobs(sluggish_chain, 4))
        assert report.by_status() == {"succeeded": 4}
        assert len(report) == 4

    def test_duplicate_ids_rejected(self, sluggish_chain):
        jobs = check_jobs(sluggish_chain, 1) + check_jobs(sluggish_chain, 1)
        with pytest.raises(ValueError, match="duplicate"):
            fast_runner(max_workers=0).run(jobs)

    def test_outcomes_keep_input_order(self, sluggish_chain):
        jobs = check_jobs(sluggish_chain, 5)
        report = fast_runner(max_workers=2).run(jobs)
        assert [o.job_id for o in report] == [j.job_id for j in jobs]

    def test_run_batch_convenience(self, sluggish_chain):
        report = run_batch(check_jobs(sluggish_chain, 2), max_workers=0)
        assert report.all_ok


class TestInvalidPayloads:
    """Malformed job payloads must terminate as structured records —
    never rip through a worker, never burn the retry budget."""

    class RottenJob(CheckJob):
        """A spec whose serialised form no longer validates."""

        def to_dict(self):
            payload = super().to_dict()
            payload["smc_samples"] = float("nan")
            return payload

    def rotten(self, chain):
        # for_model is a staticmethod returning a plain CheckJob; swap
        # in the corrupting subclass to poison the serialised form.
        job = CheckJob.for_model("rotten", chain, 'P>=0.2 [ F "goal" ]')
        job.__class__ = self.RottenJob
        return job

    def test_inline_invalid_fails_without_retries(self, sluggish_chain):
        telemetry = Telemetry()
        report = fast_runner(
            max_workers=0, telemetry=telemetry, max_retries=3
        ).run([self.rotten(sluggish_chain)])
        outcome = report.outcomes[0]
        assert outcome.status == "failed-after-retries"
        assert outcome.attempts == 1  # deterministic failure: no retries
        assert "non-finite" in outcome.error
        assert telemetry.counters()["job_invalid"] == 1
        assert "job_retry" not in telemetry.counters()

    def test_pool_invalid_fails_without_retries(self, sluggish_chain):
        report = fast_runner(max_workers=2, max_retries=3).run(
            [self.rotten(sluggish_chain)] + check_jobs(sluggish_chain, 2)
        )
        rotten = report.outcome("rotten")
        assert rotten.status == "failed-after-retries"
        assert rotten.attempts == 1
        # The malformed job must not poison its batch-mates.
        assert report.by_status()["succeeded"] == 2


class TestRobustCounters:
    def coin(self):
        from repro.mdp import DTMC

        return DTMC(
            states=["s0", "good", "bad"],
            transitions={
                "s0": {"good": 0.5, "bad": 0.5},
                "good": {"good": 1.0},
                "bad": {"bad": 1.0},
            },
            initial_state="s0",
            labels={"good": {"good"}},
        )

    def test_vi_effort_and_fallbacks_reach_telemetry(self):
        from repro.service import RobustRepairJob

        telemetry = Telemetry()
        jobs = [
            RobustRepairJob.for_model(
                "ok", self.coin(), 'P<=0.3 [ F "good" ]', epsilon=0.01
            ),
            RobustRepairJob.for_model(
                "capped", self.coin(), 'P<=0.6 [ F "good" ]', epsilon=0.01,
                vi_max_iterations=1,
            ),
        ]
        report = fast_runner(max_workers=0, telemetry=telemetry).run(jobs)
        assert report.all_ok
        counters = telemetry.counters()
        assert counters["robust_vi_iterations"] > 0
        assert counters["robust_fallbacks"] == 1
        assert report.counters["robust_fallbacks"] == 1


class TestTransientErrors:
    def test_retry_then_success(self, sluggish_chain):
        telemetry = Telemetry()
        plan = FaultPlan(error_probability=1.0, attempts_affected=1)
        report = fast_runner(
            max_workers=0, faults=plan, telemetry=telemetry
        ).run(check_jobs(sluggish_chain, 2))
        assert report.by_status() == {"succeeded": 2}
        assert all(outcome.attempts == 2 for outcome in report)
        assert telemetry.counters()["job_retry"] == 2

    def test_retry_exhaustion(self, sluggish_chain):
        plan = FaultPlan(error_probability=1.0)  # every attempt fails
        report = fast_runner(
            max_workers=0, faults=plan, max_retries=2
        ).run(check_jobs(sluggish_chain, 1))
        outcome = report.outcomes[0]
        assert outcome.status == "failed-after-retries"
        assert outcome.attempts == 3  # initial + max_retries
        assert "injected error" in outcome.error

    def test_inline_crash_downgraded(self, sluggish_chain):
        """Inline mode must survive crash decisions (no pool to break)."""
        plan = FaultPlan(crash_probability=1.0, attempts_affected=1)
        report = fast_runner(max_workers=0, faults=plan).run(
            check_jobs(sluggish_chain, 1)
        )
        assert report.outcomes[0].status == "succeeded"
        assert report.outcomes[0].attempts == 2


class TestWorkerCrashes:
    def test_pool_rebuilt_after_crash(self, sluggish_chain):
        telemetry = Telemetry()
        plan = FaultPlan(crash_probability=1.0, attempts_affected=1)
        report = fast_runner(
            max_workers=2, faults=plan, telemetry=telemetry
        ).run(check_jobs(sluggish_chain, 3))
        assert report.by_status() == {"succeeded": 3}
        assert telemetry.counters()["worker_crash"] >= 1

    def test_crash_exhaustion_fails_definitely(self, sluggish_chain):
        plan = FaultPlan(crash_probability=1.0)
        report = fast_runner(
            max_workers=1, faults=plan, max_retries=1
        ).run(check_jobs(sluggish_chain, 1))
        assert report.outcomes[0].status == "failed-after-retries"


class TestTimeoutsAndFallback:
    def test_hang_degrades_to_statistical(self, sluggish_chain):
        telemetry = Telemetry()
        plan = FaultPlan(hang_probability=1.0, hang_seconds=3.0)
        report = fast_runner(
            max_workers=1,
            faults=plan,
            job_timeout=0.5,
            telemetry=telemetry,
        ).run(check_jobs(sluggish_chain, 1))
        outcome = report.outcomes[0]
        assert outcome.status == "degraded"
        assert outcome.degraded
        assert outcome.result["method"] == "statistical"
        assert outcome.result["holds"] is True
        assert telemetry.counters()["job_fallback"] == 1

    def test_timeout_without_fallback_retries(self, sluggish_chain):
        plan = FaultPlan(hang_probability=1.0, hang_seconds=3.0)
        report = fast_runner(
            max_workers=1,
            faults=plan,
            job_timeout=0.3,
            max_retries=1,
            statistical_fallback=False,
        ).run(check_jobs(sluggish_chain, 1))
        outcome = report.outcomes[0]
        assert outcome.status == "failed-after-retries"
        assert outcome.attempts == 2

    def test_repair_job_timeout_has_no_fallback(self, sluggish_chain):
        plan = FaultPlan(hang_probability=1.0, hang_seconds=3.0)
        job = ModelRepairJob.for_model(
            "rep", sluggish_chain, 'R<=6 [ F "goal" ]'
        )
        report = fast_runner(
            max_workers=1, faults=plan, job_timeout=0.3, max_retries=0
        ).run([job])
        assert report.outcomes[0].status == "failed-after-retries"


class TestMixedFaults:
    def test_thirty_percent_faults_all_definite(self, sluggish_chain):
        """The acceptance scenario: seeded ~30% crash/hang/error faults.

        Every job must reach a definite terminal status without
        deadlock or lost results.
        """
        telemetry = Telemetry()
        plan = FaultPlan(
            crash_probability=0.1,
            hang_probability=0.1,
            error_probability=0.1,
            seed=7,
            hang_seconds=2.0,
        )
        jobs = check_jobs(sluggish_chain, 8, prefix="mixed")
        report = fast_runner(
            max_workers=2,
            faults=plan,
            job_timeout=0.5,
            max_retries=3,
            telemetry=telemetry,
        ).run(jobs)
        assert len(report) == len(jobs)
        for outcome in report:
            assert outcome.status in TERMINAL_STATUSES
            if outcome.ok:
                assert outcome.result is not None
        assert telemetry.counters()["job_end"] == len(jobs)


class TestCancellation:
    def test_cancel_before_run(self, sluggish_chain):
        runner = fast_runner(max_workers=0)
        runner.cancel()
        report = runner.run(check_jobs(sluggish_chain, 3))
        assert report.by_status() == {"cancelled": 3}

    def test_cancel_mid_batch(self, sluggish_chain):
        plan = FaultPlan(hang_probability=1.0, hang_seconds=0.2)
        runner = fast_runner(max_workers=1, faults=plan, max_retries=0)
        jobs = check_jobs(sluggish_chain, 6, prefix="cancel")
        timer = threading.Timer(0.3, runner.cancel)
        timer.start()
        try:
            start = time.monotonic()
            report = runner.run(jobs)
            elapsed = time.monotonic() - start
        finally:
            timer.cancel()
        assert elapsed < 5.0
        statuses = report.by_status()
        assert statuses.get("cancelled", 0) >= 1
        assert sum(statuses.values()) == len(jobs)


class TestStoreIntegration:
    def test_warm_rerun_skips_work(self, tmp_path, sluggish_chain):
        job = ModelRepairJob.for_model(
            "rep", sluggish_chain, 'R<=6 [ F "goal" ]'
        )
        cold_tel = Telemetry()
        cold = fast_runner(
            max_workers=1, store_dir=tmp_path, telemetry=cold_tel
        ).run([job])
        assert cold.outcomes[0].status == "succeeded"
        assert not cold.outcomes[0].cached
        assert cold_tel.counters()["parametric_eliminations"] >= 1

        warm_tel = Telemetry()
        warm = fast_runner(
            max_workers=1, store_dir=tmp_path, telemetry=warm_tel
        ).run([job])
        assert warm.outcomes[0].status == "succeeded"
        assert warm.outcomes[0].cached
        assert warm_tel.counters().get("parametric_eliminations", 0) == 0

    def test_identical_content_dedups_within_batch(
        self, tmp_path, sluggish_chain
    ):
        jobs = [
            ModelRepairJob.for_model(f"rep-{i}", sluggish_chain, 'R<=6 [ F "goal" ]')
            for i in range(3)  # same content, distinct ids
        ]
        report = fast_runner(max_workers=1, store_dir=tmp_path).run(jobs)
        assert report.by_status() == {"succeeded": 3}
        assert sum(1 for outcome in report if outcome.cached) >= 2
