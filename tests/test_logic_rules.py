"""Unit tests for groundable rules (Reward Repair, Proposition 4)."""

import pytest

from repro.logic.ltl import LGlobally, state_atom
from repro.logic.propositional import prop_atom
from repro.logic.rules import (
    FirstOrderRule,
    LtlRule,
    PropositionalRule,
    all_satisfied,
    total_penalty,
)
from repro.mdp import Trajectory


def trace(*steps):
    return Trajectory(steps)


class TestPropositionalRule:
    @pytest.fixture
    def never_action_zero_at_s1(self):
        at_s1 = prop_atom("at_s1")
        takes0 = prop_atom("takes0")
        return PropositionalRule(
            at_s1.implies(~takes0),
            bindings={
                "at_s1": lambda s, a: s == "S1",
                "takes0": lambda s, a: a == 0,
            },
            weight=5.0,
        )

    def test_one_grounding_per_step(self, never_action_zero_at_s1):
        u = trace(("S0", 0), ("S1", 1), ("S6", None))
        assert never_action_zero_at_s1.grounding_count(u) == 3

    def test_counts_violations(self, never_action_zero_at_s1):
        safe = trace(("S0", 0), ("S1", 1), ("S6", None))
        unsafe = trace(("S0", 0), ("S1", 0), ("S2", None))
        assert never_action_zero_at_s1.violation_count(safe) == 0
        assert never_action_zero_at_s1.violation_count(unsafe) == 1
        assert never_action_zero_at_s1.satisfied(safe)
        assert not never_action_zero_at_s1.satisfied(unsafe)

    def test_penalty_is_weight_times_violations(self, never_action_zero_at_s1):
        unsafe = trace(("S1", 0), ("S1", 0), ("S2", None))
        assert never_action_zero_at_s1.penalty(unsafe) == 10.0

    def test_unbound_variable_rejected(self):
        with pytest.raises(ValueError):
            PropositionalRule(prop_atom("x"), bindings={})

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            LtlRule(LGlobally(state_atom("a")), weight=-1.0)


class TestFirstOrderRule:
    @pytest.fixture
    def progress_rule(self):
        # Whenever at S1, the action is 1.
        return FirstOrderRule(
            variables=["t"],
            body=lambda u, b: u.state_at(b["t"]) != "S1"
            or u.action_at(b["t"]) == 1,
        )

    def test_grounding_count_is_positions_power_vars(self, progress_rule):
        u = trace(("S0", 0), ("S1", 1), ("S6", None))
        assert progress_rule.grounding_count(u) == 3

    def test_violations(self, progress_rule):
        bad = trace(("S1", 0), ("S2", None))
        assert progress_rule.violation_count(bad) == 1

    def test_two_variables(self):
        # "No state repeats" — quantifies over pairs of positions.
        rule = FirstOrderRule(
            variables=["i", "j"],
            body=lambda u, b: b["i"] == b["j"]
            or u.state_at(b["i"]) != u.state_at(b["j"]),
        )
        loop = Trajectory.from_states(["a", "b", "a"])
        assert rule.grounding_count(loop) == 9
        assert rule.violation_count(loop) == 2  # (0,2) and (2,0)

    def test_requires_variables(self):
        with pytest.raises(ValueError):
            FirstOrderRule(variables=[], body=lambda u, b: True)


class TestLtlRule:
    def test_single_grounding(self):
        rule = LtlRule(LGlobally(~state_atom("S2")))
        u = Trajectory.from_states(["S0", "S1"])
        assert rule.grounding_count(u) == 1
        assert rule.violation_count(u) == 0
        assert rule.violation_count(Trajectory.from_states(["S1", "S2"])) == 1


class TestAggregation:
    def test_total_penalty_sums_rules(self):
        rule_a = LtlRule(LGlobally(~state_atom("bad")), weight=2.0)
        rule_b = LtlRule(LGlobally(~state_atom("worse")), weight=3.0)
        u = Trajectory.from_states(["ok", "bad", "worse"])
        assert total_penalty([rule_a, rule_b], u) == 5.0
        assert not all_satisfied([rule_a, rule_b], u)
        assert all_satisfied([rule_a, rule_b], Trajectory.from_states(["ok"]))
