"""Backward-compat shims warn, and nothing else does.

The unified repair engine kept the public constructors and result
attributes intact; the only API that moved behind a shim is
``ModelRepair.constraint()``.  These tests pin (a) that the shim warns
*and* still returns the same (cache-shared) object as the replacement,
and (b) that importing the library emits no deprecation warnings of its
own — so CI catches any future internal use of a shimmed API.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import ModelRepair
from repro.logic import parse_pctl
from repro.mdp import DTMC


def coin_repair() -> ModelRepair:
    chain = DTMC(
        states=["s0", "good", "bad"],
        transitions={
            "s0": {"good": 0.5, "bad": 0.5},
            "good": {"good": 1.0},
            "bad": {"bad": 1.0},
        },
        initial_state="s0",
        labels={"good": {"good"}},
    )
    return ModelRepair.for_chain(chain, parse_pctl('P<=0.3 [ F "good" ]'))


class TestConstraintShim:
    def test_warns(self):
        repair = coin_repair()
        with pytest.warns(DeprecationWarning, match="problem\\(\\)"):
            repair.constraint()

    def test_matches_replacement(self):
        repair = coin_repair()
        with pytest.warns(DeprecationWarning):
            old = repair.constraint()
        new = repair.problem().parametric_constraints()[0]
        # Both routes hit the same memoised elimination.
        assert old is new


class TestImportsAreWarningClean:
    def test_no_deprecation_warnings_on_import(self):
        # numpy/scipy pre-imported so only *our* warnings can trip the
        # filter; covers every package touched by the refactor.
        code = (
            "import numpy, scipy.optimize, warnings\n"
            "warnings.simplefilter('error', DeprecationWarning)\n"
            "import repro.repair, repro.core, repro.ctmc, repro.io\n"
            "import repro.service, repro.cli.main\n"
        )
        env = dict(os.environ)
        root = Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = str(root / "src")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
