"""Unit and property tests for rational functions."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.symbolic import Polynomial, RationalFunction

from conftest import polynomials, small_fractions

X = Polynomial.variable("x")
Y = Polynomial.variable("y")
RX = RationalFunction.variable("x")


class TestConstruction:
    def test_zero_denominator_rejected(self):
        with pytest.raises(ZeroDivisionError):
            RationalFunction(X, Polynomial.zero())

    def test_zero_numerator_normalises(self):
        f = RationalFunction(Polynomial.zero(), X + 1)
        assert f.is_zero()
        assert f.denominator == Polynomial.one()

    def test_equal_num_den_is_one(self):
        f = RationalFunction(X + 1, X + 1)
        assert f == RationalFunction.one()

    def test_cancellation(self):
        f = RationalFunction(X * X - 1, X - 1)
        assert f.numerator == X + 1
        assert f.denominator == Polynomial.one()

    def test_constant(self):
        f = RationalFunction.constant(Fraction(2, 3))
        assert f.is_constant()
        assert f.constant_value() == Fraction(2, 3)

    def test_denominator_sign_canonical(self):
        f = RationalFunction(Polynomial.one(), -(X + 1))
        _, lead = f.denominator.leading_term()
        assert lead > 0


class TestArithmetic:
    def test_addition_common_denominator(self):
        f = RX / (RX + 1) + 1 / (RX + 1)
        assert f == RationalFunction.one()

    def test_subtraction(self):
        assert RX - RX == RationalFunction.zero()

    def test_multiplication(self):
        f = (RX / (RX + 1)) * ((RX + 1) / RX)
        assert f == RationalFunction.one()

    def test_division(self):
        f = RX / RX
        assert f == RationalFunction.one()

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            RX / RationalFunction.zero()

    def test_negative_power(self):
        f = RX ** (-2)
        assert f.evaluate({"x": 2}) == Fraction(1, 4)

    def test_scalar_mixing(self):
        assert 1 - RX == RationalFunction(1 - X)
        assert (2 * RX).evaluate({"x": 3}) == 6


class TestEvaluation:
    def test_evaluate(self):
        f = RationalFunction(X + 1, X - 1)
        assert f.evaluate({"x": 3}) == Fraction(2)

    def test_pole_raises(self):
        f = RationalFunction(Polynomial.one(), X)
        with pytest.raises(ZeroDivisionError):
            f.evaluate({"x": 0})

    def test_substitute_partial(self):
        f = RationalFunction(X + Y, X)
        g = f.substitute({"y": 1})
        assert g == RationalFunction(X + 1, X)

    def test_to_callable(self):
        f = RationalFunction(X, X + 1)
        call = f.to_callable()
        assert call({"x": 1.0}) == pytest.approx(0.5)

    def test_derivative_quotient_rule(self):
        # d/dx (1/x) = -1/x²
        f = 1 / RX
        derivative = f.derivative("x")
        assert derivative.evaluate({"x": 2}) == Fraction(-1, 4)


class TestEquality:
    def test_cross_multiplication_equality(self):
        f = RationalFunction(X * X - 1, X - 1)
        g = RationalFunction(X + 1)
        assert f == g
        assert hash(f) == hash(g)

    def test_constant_hash_matches_fraction_semantics(self):
        assert hash(RationalFunction.constant(2)) == hash(
            RationalFunction(Polynomial.constant(4), Polynomial.constant(2))
        )


class TestPropertyBased:
    @given(polynomials(), polynomials(), polynomials(), polynomials())
    @settings(max_examples=40, deadline=None)
    def test_field_operations_consistent_with_evaluation(self, a, b, c, d):
        if b.is_zero() or d.is_zero():
            return
        f = RationalFunction(a, b)
        g = RationalFunction(c, d)
        point = {"x": Fraction(3, 7), "y": Fraction(-2, 5), "z": Fraction(1, 9)}
        try:
            fv = f.evaluate(point)
            gv = g.evaluate(point)
            sum_value = (f + g).evaluate(point)
            product_value = (f * g).evaluate(point)
        except ZeroDivisionError:
            return
        assert sum_value == fv + gv
        assert product_value == fv * gv

    @given(polynomials(), polynomials())
    @settings(max_examples=40, deadline=None)
    def test_self_subtraction_is_zero(self, a, b):
        if b.is_zero():
            return
        f = RationalFunction(a, b)
        assert (f - f).is_zero()

    @given(polynomials(), polynomials())
    @settings(max_examples=40, deadline=None)
    def test_normalisation_preserves_value(self, a, b):
        if b.is_zero():
            return
        f = RationalFunction(a, b)
        point = {"x": Fraction(1, 2), "y": Fraction(2, 3), "z": Fraction(5, 4)}
        try:
            expected = a.evaluate(point) / b.evaluate(point)
        except ZeroDivisionError:
            return
        assert f.evaluate(point) == expected
