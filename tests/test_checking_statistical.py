"""Tests for statistical model checking."""

import pytest

from repro.checking import (
    DTMCModelChecker,
    StatisticalModelChecker,
    chernoff_sample_size,
)
from repro.logic import parse_pctl
from repro.logic.pctl import AtomicProposition, Eventually, Until, TrueFormula
from repro.mdp import chain_dtmc


class TestChernoff:
    def test_known_value(self):
        # ln(2/0.05) / (2·0.01²) = 18444.4 -> 18445
        assert chernoff_sample_size(0.01, 0.05) == 18445

    def test_monotone_in_epsilon(self):
        assert chernoff_sample_size(0.05, 0.05) < chernoff_sample_size(0.01, 0.05)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            chernoff_sample_size(0.0, 0.5)
        with pytest.raises(ValueError):
            chernoff_sample_size(0.1, 1.5)


class TestEstimation:
    def test_estimate_matches_exact(self, two_path_chain):
        smc = StatisticalModelChecker(two_path_chain, seed=3)
        path = Eventually(AtomicProposition("safe"))
        result = smc.estimate_probability(path, epsilon=0.03, delta=0.05)
        exact = DTMCModelChecker(two_path_chain).path_probabilities(path)[
            two_path_chain.initial_state
        ]
        assert result.estimate == pytest.approx(exact, abs=0.03)
        assert result.samples == chernoff_sample_size(0.03, 0.05)

    def test_bounded_until(self, two_path_chain):
        smc = StatisticalModelChecker(two_path_chain, seed=5)
        path = Eventually(AtomicProposition("safe"), 1)
        result = smc.estimate_probability(path, epsilon=0.03, delta=0.05)
        assert result.estimate == pytest.approx(0.6, abs=0.03)

    def test_until_left_restriction(self, two_path_chain):
        # "not unsafe" U "safe" is the same event here.
        smc = StatisticalModelChecker(two_path_chain, seed=2)
        path = Until(
            ~AtomicProposition("unsafe"), AtomicProposition("safe")
        )
        result = smc.estimate_probability(path, epsilon=0.03, delta=0.05)
        assert result.estimate == pytest.approx(2 / 3, abs=0.03)

    def test_reward_estimate(self, simple_chain):
        smc = StatisticalModelChecker(simple_chain, seed=4)
        result = smc.estimate_reward(
            parse_pctl('R<=10 [ F "goal" ]'), samples=4000
        )
        assert result.estimate == pytest.approx(4 / 0.8, rel=0.05)

    def test_seed_reproducibility(self, two_path_chain):
        path = Eventually(AtomicProposition("safe"))
        run = lambda: StatisticalModelChecker(
            two_path_chain, seed=11
        ).estimate_probability(path, epsilon=0.05, delta=0.1).estimate
        assert run() == run()


class TestVerdicts:
    def test_check_probability(self, two_path_chain):
        smc = StatisticalModelChecker(two_path_chain, seed=1)
        assert smc.check(parse_pctl('P>=0.6 [ F "safe" ]'), epsilon=0.02).holds
        assert not smc.check(parse_pctl('P>=0.8 [ F "safe" ]'), epsilon=0.02).holds

    def test_check_reward(self, simple_chain):
        smc = StatisticalModelChecker(simple_chain, seed=1)
        assert smc.check(parse_pctl('R<=6 [ F "goal" ]')).holds
        assert not smc.check(parse_pctl('R<=4 [ F "goal" ]')).holds

    def test_boolean_formula_rejected(self, two_path_chain):
        smc = StatisticalModelChecker(two_path_chain, seed=1)
        with pytest.raises(TypeError):
            smc.check(parse_pctl("safe"))


class TestSprt:
    def test_accepts_clear_cases_quickly(self, two_path_chain):
        smc = StatisticalModelChecker(two_path_chain, seed=7)
        # True p = 2/3; bounds far away on either side.
        low = smc.sprt(parse_pctl('P>=0.3 [ F "safe" ]'))
        assert low.holds
        high = smc.sprt(parse_pctl('P>=0.95 [ F "safe" ]'))
        assert not high.holds
        # SPRT should beat the Chernoff fixed-size budget.
        assert low.samples < chernoff_sample_size(0.01, 0.01)

    def test_upper_bound_comparison(self, two_path_chain):
        smc = StatisticalModelChecker(two_path_chain, seed=9)
        assert smc.sprt(parse_pctl('P<=0.9 [ F "safe" ]')).holds
        assert not smc.sprt(parse_pctl('P<=0.3 [ F "safe" ]')).holds

    def test_agreement_with_exact_on_chain(self):
        chain = chain_dtmc(4, forward_probability=0.9)
        smc = StatisticalModelChecker(chain, seed=13)
        verdict = smc.sprt(parse_pctl('P>=0.99 [ F "goal" ]'))
        assert verdict.holds  # reaches goal with probability 1
