"""Unit tests for the PCTL text parser."""

import pytest

from repro.logic import (
    And,
    AtomicProposition,
    Eventually,
    Globally,
    Implies,
    Next,
    Not,
    Or,
    PctlParseError,
    ProbabilisticOperator,
    RewardOperator,
    TrueFormula,
    Until,
    parse_pctl,
)


class TestAtomsAndBooleans:
    def test_quoted_atom(self):
        assert parse_pctl('"changedlane"') == AtomicProposition("changedlane")

    def test_bare_identifier_atom(self):
        assert parse_pctl("delivered") == AtomicProposition("delivered")

    def test_true_false(self):
        assert isinstance(parse_pctl("true"), TrueFormula)

    def test_negation(self):
        assert parse_pctl("!crash") == Not(AtomicProposition("crash"))

    def test_conjunction_disjunction(self):
        formula = parse_pctl("a & b | c")
        assert isinstance(formula, Or)
        assert isinstance(formula.left, And)

    def test_implication_lowest_precedence(self):
        formula = parse_pctl("a & b => c")
        assert isinstance(formula, Implies)

    def test_parentheses(self):
        formula = parse_pctl("a & (b | c)")
        assert isinstance(formula, And)
        assert isinstance(formula.right, Or)


class TestProbabilisticOperator:
    def test_paper_lane_change_property(self):
        formula = parse_pctl('P>0.99 [ F ("changedlane" | "reducedspeed") ]')
        assert isinstance(formula, ProbabilisticOperator)
        assert formula.comparison == ">"
        assert formula.bound == 0.99
        assert isinstance(formula.path, Eventually)

    def test_until(self):
        formula = parse_pctl('P>=0.5 [ "a" U "b" ]')
        assert isinstance(formula.path, Until)
        assert formula.path.step_bound is None

    def test_bounded_until(self):
        formula = parse_pctl('P>=0.5 [ "a" U<=5 "b" ]')
        assert formula.path.step_bound == 5

    def test_bounded_eventually(self):
        formula = parse_pctl("P<0.1 [ F<=3 crash ]")
        assert formula.path.step_bound == 3

    def test_next(self):
        formula = parse_pctl("P>=1 [ X ok ]")
        assert isinstance(formula.path, Next)

    def test_globally(self):
        formula = parse_pctl("P>=0.9 [ G safe ]")
        assert isinstance(formula.path, Globally)

    def test_bound_range_enforced(self):
        with pytest.raises(ValueError):
            parse_pctl("P>=1.5 [ F ok ]")

    def test_nested_probabilistic(self):
        formula = parse_pctl("P>=0.9 [ F P>=0.5 [ X ok ] ]")
        inner = formula.path.right
        assert isinstance(inner, ProbabilisticOperator)


class TestRewardOperator:
    def test_paper_wsn_property(self):
        formula = parse_pctl('R{"attempts"}<=40 [ F "delivered" ]')
        assert isinstance(formula, RewardOperator)
        assert formula.label == "attempts"
        assert formula.bound == 40.0
        assert formula.comparison == "<="

    def test_unlabelled_reward(self):
        formula = parse_pctl("R<=10 [ F goal ]")
        assert formula.label is None

    def test_reward_requires_eventually(self):
        with pytest.raises(PctlParseError):
            parse_pctl("R<=10 [ X goal ]")


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "P>= [ F ok ]",
            "P>=0.5 F ok ]",
            "P>=0.5 [ F ok",
            "a &",
            "@bad",
            "P=0.5 [ F ok ]",
        ],
    )
    def test_malformed_raises_with_position(self, text):
        with pytest.raises(PctlParseError):
            parse_pctl(text)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(PctlParseError):
            parse_pctl("true true")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            'P>=0.99 [ F "changedlane" ]',
            'P<0.1 [ "a" U<=7 "b" ]',
            "P<=0.5 [ G safe ]",
            'R{"attempts"}<=100 [ F delivered ]',
            "!a & (b | !c)",
        ],
    )
    def test_reparse_of_repr_is_equal(self, text):
        formula = parse_pctl(text)
        assert parse_pctl(repr(formula)) == formula
