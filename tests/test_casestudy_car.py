"""Tests for the car obstacle-avoidance case study (Section V-B, Fig. 1)."""

import numpy as np
import pytest

from repro.casestudies import car
from repro.core import QValueConstraint, RewardRepair
from repro.learning.irl import MaxEntIRL


@pytest.fixture(scope="module")
def mdp():
    return car.build_car_mdp()


@pytest.fixture(scope="module")
def features():
    return car.car_features()


@pytest.fixture(scope="module")
def repairer(mdp, features):
    return RewardRepair(mdp, features, discount=car.DISCOUNT)


class TestGeometry:
    def test_states_match_figure_1(self, mdp):
        for i in range(11):
            assert f"S{i}" in mdp.states

    def test_expert_demo_is_dynamically_consistent(self, mdp):
        demo = car.expert_demonstration()
        for state, action, target in demo.transitions():
            assert mdp.probability(state, action, target) == 1.0

    def test_collision_and_offroad_labelled_unsafe(self, mdp):
        assert mdp.states_with_atom("unsafe") == {"S2", "S10"}
        assert mdp.states_with_atom("target") == {"S4"}

    def test_forward_path_passes_the_van(self, mdp):
        assert mdp.successors("S1", car.FORWARD) == ["S2"]
        assert mdp.successors("S2", car.FORWARD) == ["S3"]

    def test_lane_changes_preserve_position(self, mdp):
        assert mdp.successors("S1", car.LEFT) == ["S6"]
        assert mdp.successors("S8", car.RIGHT) == ["S3"]

    def test_running_past_s9_is_offroad(self, mdp):
        assert mdp.successors("S9", car.FORWARD) == ["S10"]


class TestFeatures:
    def test_lane_indicator(self, features):
        assert features("S0")[0] == 1.0
        assert features("S6")[0] == 0.0

    def test_distance_zero_at_unsafe(self, features):
        assert features("S2")[1] == 0.0
        assert features("S10")[1] == 0.0

    def test_distance_normalised(self, features, mdp):
        for state in mdp.states:
            assert 0.0 <= features(state)[1] <= 1.0

    def test_target_indicator(self, features):
        assert features("S4")[2] == 1.0
        assert features("S3")[2] == 0.0

    def test_distance_values(self):
        assert car.distance_to_unsafe("S1") == 1.0
        assert car.distance_to_unsafe("S7") == 1.0
        assert car.distance_to_unsafe("S9") == 3.0


class TestPaperLearnedReward:
    """E5: θ = (0.38, 0.34, 0.53) yields the unsafe forward at S1."""

    def test_learned_policy_unsafe_at_s1(self, mdp, repairer):
        policy = repairer.optimal_policy(car.PAPER_LEARNED_THETA)
        assert policy["S1"] == car.FORWARD
        assert "S1" in car.states_leading_to_unsafe(mdp, policy)
        assert not car.policy_is_safe(mdp, policy)


class TestPaperRepairedReward:
    """E6: θ' = (0.38, 0.44, 0.53) is safe and matches the paper policy."""

    def test_repaired_policy_safe(self, mdp, repairer):
        policy = repairer.optimal_policy(car.PAPER_REPAIRED_THETA)
        assert policy["S1"] == car.LEFT
        assert car.policy_is_safe(mdp, policy)

    def test_repaired_policy_matches_paper_actions(self, repairer):
        policy = repairer.optimal_policy(car.PAPER_REPAIRED_THETA)
        # Paper: (S5,0),(S6,0),(S7,0),(S8,2),(S9,2),(S3,0).
        assert policy["S5"] == car.FORWARD
        assert policy["S6"] == car.FORWARD
        assert policy["S7"] == car.FORWARD
        assert policy["S8"] == car.RIGHT
        assert policy["S9"] == car.RIGHT
        assert policy["S3"] == car.FORWARD


class TestQConstrainedRepair:
    def test_repair_from_paper_learned_theta(self, mdp, repairer):
        result = repairer.q_constrained(
            car.PAPER_LEARNED_THETA,
            [QValueConstraint("S1", car.LEFT, car.FORWARD)],
        )
        assert result.feasible
        assert result.policy_after["S1"] == car.LEFT
        assert car.policy_is_safe(mdp, result.policy_after)

    def test_distance_weight_rises(self, repairer):
        """The paper's repair raises θ2 (0.34 → 0.44); ours must move the
        same direction and dominate the other components."""
        result = repairer.q_constrained(
            car.PAPER_LEARNED_THETA,
            [QValueConstraint("S1", car.LEFT, car.FORWARD)],
        )
        delta = result.theta_delta()
        assert delta[1] > 0
        assert delta[1] == pytest.approx(max(abs(delta)), abs=1e-9)

    def test_repair_cost_is_small(self, repairer):
        result = repairer.q_constrained(
            car.PAPER_LEARNED_THETA,
            [QValueConstraint("S1", car.LEFT, car.FORWARD)],
        )
        assert float(np.linalg.norm(result.theta_delta())) < 0.2


class TestEndToEndIrl:
    def test_irl_learns_unsafe_reward_and_repair_fixes_it(self, mdp, features):
        """The full paper pipeline on our own learned θ̂."""
        irl = MaxEntIRL(mdp, features, horizon=7, learning_rate=0.2,
                        max_iterations=250)
        fit = irl.fit([car.expert_demonstration()])
        repairer = RewardRepair(mdp, features, discount=car.DISCOUNT)
        learned_policy = repairer.optimal_policy(fit.theta)
        assert learned_policy["S1"] == car.FORWARD  # unsafe, like the paper
        result = repairer.q_constrained(
            fit.theta, [QValueConstraint("S1", car.LEFT, car.FORWARD)]
        )
        assert result.feasible
        assert car.policy_is_safe(mdp, result.policy_after)
