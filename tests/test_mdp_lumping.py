"""Tests for probabilistic bisimulation quotients."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checking import DTMCModelChecker
from repro.logic import parse_pctl
from repro.mdp import DTMC, bisimulation_partition, quotient_chain, random_dtmc


@pytest.fixture
def symmetric_chain() -> DTMC:
    """Two interchangeable middle states."""
    return DTMC(
        states=["s", "l", "r", "t"],
        transitions={
            "s": {"l": 0.5, "r": 0.5},
            "l": {"t": 0.8, "l": 0.2},
            "r": {"t": 0.8, "r": 0.2},
            "t": {"t": 1.0},
        },
        initial_state="s",
        labels={"t": {"goal"}},
        state_rewards={"l": 1.0, "r": 1.0},
    )


class TestPartition:
    def test_symmetric_states_lump(self, symmetric_chain):
        partition = bisimulation_partition(symmetric_chain)
        assert frozenset({"l", "r"}) in partition
        assert len(partition) == 3

    def test_labels_split_blocks(self):
        chain = DTMC(
            states=["a", "b"],
            transitions={"a": {"a": 1.0}, "b": {"b": 1.0}},
            initial_state="a",
            labels={"a": {"x"}},
        )
        partition = bisimulation_partition(chain)
        assert len(partition) == 2

    def test_rewards_split_blocks(self):
        chain = DTMC(
            states=["a", "b"],
            transitions={"a": {"a": 1.0}, "b": {"b": 1.0}},
            initial_state="a",
            state_rewards={"a": 1.0},
        )
        assert len(bisimulation_partition(chain)) == 2

    def test_unlabelled_states_are_trivially_bisimilar(self):
        """Larsen-Skou semantics: with no labels, all states lump (every
        state gives mass 1 to the single class)."""
        chain = DTMC(
            states=["a", "b", "t"],
            transitions={
                "a": {"t": 0.9, "a": 0.1},
                "b": {"t": 0.5, "b": 0.5},
                "t": {"t": 1.0},
            },
            initial_state="a",
        )
        assert len(bisimulation_partition(chain)) == 1

    def test_different_dynamics_split_given_labels(self):
        chain = DTMC(
            states=["a", "b", "t"],
            transitions={
                "a": {"t": 0.9, "a": 0.1},
                "b": {"t": 0.5, "b": 0.5},
                "t": {"t": 1.0},
            },
            initial_state="a",
            labels={"t": {"goal"}},
        )
        partition = bisimulation_partition(chain)
        assert frozenset({"a"}) in partition
        assert frozenset({"b"}) in partition

    @given(st.integers(0, 400))
    @settings(max_examples=15, deadline=None)
    def test_partition_covers_states(self, seed):
        chain = random_dtmc(6, seed=seed)
        partition = bisimulation_partition(chain)
        union = set()
        for block in partition:
            union |= block
        assert union == set(chain.states)


class TestQuotient:
    def test_quotient_size(self, symmetric_chain):
        quotient, mapping = quotient_chain(symmetric_chain)
        assert quotient.num_states == 3
        assert mapping["l"] == mapping["r"]

    def test_quotient_preserves_reachability(self, symmetric_chain):
        quotient, mapping = quotient_chain(symmetric_chain)
        formula = parse_pctl('P>=0 [ F "goal" ]')
        original = DTMCModelChecker(symmetric_chain).check(formula).value
        lumped = DTMCModelChecker(quotient).check(formula).value
        assert lumped == pytest.approx(original)

    def test_quotient_preserves_expected_reward(self, symmetric_chain):
        quotient, _ = quotient_chain(symmetric_chain)
        formula = parse_pctl('R<=100 [ F "goal" ]')
        original = DTMCModelChecker(symmetric_chain).check(formula).value
        lumped = DTMCModelChecker(quotient).check(formula).value
        assert lumped == pytest.approx(original)

    def test_wsn_grid_diagonal_symmetry_lumps(self):
        """With uniform ignore probabilities the 3x3 grid is symmetric
        about its main diagonal: n12~n21, n13~n31, n23~n32.  (The paper's
        row-dependent ignore probabilities break this symmetry — the
        default chain does NOT lump, which the partition detects.)"""
        from repro.casestudies.wsn import attempts_property, build_wsn_chain

        symmetric = build_wsn_chain(
            ignore_field_station=0.5, ignore_interior=0.5
        )
        quotient, mapping = quotient_chain(symmetric)
        # Diagonal pairs lump — and refinement finds more: n22's
        # class-mass signature coincides with n13/n31's, an equivalence
        # graph symmetry alone would miss.  9 states -> 5 blocks.
        assert quotient.num_states == 5
        assert mapping["n12"] == mapping["n21"]
        assert mapping["n13"] == mapping["n31"] == mapping["n22"]
        assert mapping["n23"] == mapping["n32"]
        original = DTMCModelChecker(symmetric).check(attempts_property(1)).value
        lumped = DTMCModelChecker(quotient).check(attempts_property(1)).value
        assert lumped == pytest.approx(original)

    def test_wsn_row_asymmetry_prevents_lumping(self):
        from repro.casestudies.wsn import build_wsn_chain

        chain = build_wsn_chain()  # row-dependent ignore probabilities
        quotient, _ = quotient_chain(chain)
        assert quotient.num_states == chain.num_states

    @given(st.integers(0, 400))
    @settings(max_examples=12, deadline=None)
    def test_quotient_preserves_reachability_random(self, seed):
        chain = random_dtmc(6, seed=seed, num_labels=1)
        atoms = sorted(chain.atoms())
        if not atoms:
            return
        quotient, _ = quotient_chain(chain)
        formula = parse_pctl(f'P>=0 [ F "{atoms[0]}" ]')
        original = DTMCModelChecker(chain).check(formula).value
        lumped = DTMCModelChecker(quotient).check(formula).value
        assert lumped == pytest.approx(original, abs=1e-9)
