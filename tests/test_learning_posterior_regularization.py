"""Unit tests for the Proposition 4 projection."""

import math

import numpy as np
import pytest

from repro.learning.irl import TabularFeatureMap
from repro.learning.posterior_regularization import (
    expected_rule_satisfaction,
    fit_reward_to_distribution,
    project_distribution,
)
from repro.learning.trajectory_distribution import TrajectoryDistribution
from repro.logic.ltl import LGlobally, state_atom
from repro.logic.rules import LtlRule
from repro.mdp import MDP


@pytest.fixture
def fork_mdp() -> MDP:
    """Initial fork to a 'bad' or 'ok' branch, then terminal."""
    return MDP(
        states=["s", "bad", "ok"],
        transitions={
            "s": {
                "risky": {"bad": 0.5, "ok": 0.5},
                "safe": {"ok": 1.0},
            },
            "bad": {"stay": {"bad": 1.0}},
            "ok": {"stay": {"ok": 1.0}},
        },
        initial_state="s",
        state_rewards={"bad": 0.5, "ok": 0.2},
    )


@pytest.fixture
def avoid_bad_rule():
    return LtlRule(LGlobally(~state_atom("bad")), weight=6.0, name="avoid-bad")


class TestProjection:
    def test_violators_downweighted_by_exact_factor(self, fork_mdp, avoid_bad_rule):
        base = TrajectoryDistribution.from_maxent(
            fork_mdp, fork_mdp.state_rewards, horizon=1
        )
        projected = project_distribution(base, [avoid_bad_rule])
        for trajectory in base.support():
            ratio = projected.probability(trajectory) / base.probability(trajectory)
            if trajectory.visits("bad"):
                # Down-weighted by exp(-λ) before renormalisation.
                assert ratio < 1.0
            else:
                assert ratio > 1.0

    def test_satisfying_ratios_preserved(self, fork_mdp, avoid_bad_rule):
        """Proposition 4: Q equals P on satisfying paths, up to Z."""
        base = TrajectoryDistribution.from_maxent(
            fork_mdp, fork_mdp.state_rewards, horizon=1
        )
        projected = project_distribution(base, [avoid_bad_rule])
        satisfying = [u for u in base.support() if not u.visits("bad")]
        assert len(satisfying) >= 2
        reference = None
        for trajectory in satisfying:
            ratio = projected.probability(trajectory) / base.probability(trajectory)
            if reference is None:
                reference = ratio
            assert ratio == pytest.approx(reference)

    def test_large_weight_drives_violators_to_zero(self, fork_mdp):
        base = TrajectoryDistribution.from_maxent(
            fork_mdp, fork_mdp.state_rewards, horizon=1
        )
        hard_rule = LtlRule(LGlobally(~state_atom("bad")), weight=200.0)
        projected = project_distribution(base, [hard_rule])
        violation = projected.event_probability(lambda u: u.visits("bad"))
        assert violation < 1e-12

    def test_zero_weight_is_identity(self, fork_mdp):
        base = TrajectoryDistribution.from_maxent(
            fork_mdp, fork_mdp.state_rewards, horizon=1
        )
        identity_rule = LtlRule(LGlobally(~state_atom("bad")), weight=0.0)
        projected = project_distribution(base, [identity_rule])
        for trajectory in base.support():
            assert projected.probability(trajectory) == pytest.approx(
                base.probability(trajectory)
            )

    def test_expected_satisfaction_increases(self, fork_mdp, avoid_bad_rule):
        base = TrajectoryDistribution.from_maxent(
            fork_mdp, fork_mdp.state_rewards, horizon=1
        )
        projected = project_distribution(base, [avoid_bad_rule])
        assert expected_rule_satisfaction(
            projected, avoid_bad_rule
        ) > expected_rule_satisfaction(base, avoid_bad_rule)


class TestRewardRefit:
    def test_moment_matching_moves_toward_target(self, fork_mdp):
        features = TabularFeatureMap(
            {"s": [0.0, 0.0], "bad": [1.0, 0.0], "ok": [0.0, 1.0]}
        )
        base = TrajectoryDistribution.from_maxent(
            fork_mdp, fork_mdp.state_rewards, horizon=1
        )
        hard_rule = LtlRule(LGlobally(~state_atom("bad")), weight=50.0)
        target = project_distribution(base, [hard_rule])
        theta, rewards = fit_reward_to_distribution(
            fork_mdp,
            features,
            target,
            horizon=1,
            learning_rate=0.3,
            max_iterations=300,
        )
        # 'ok' must now out-reward 'bad'.
        assert rewards["ok"] > rewards["bad"]
        refit = TrajectoryDistribution.from_maxent(fork_mdp, rewards, horizon=1)
        violation = refit.event_probability(lambda u: u.visits("bad"))
        base_violation = base.event_probability(lambda u: u.visits("bad"))
        assert violation < base_violation

    def test_initial_theta_respected(self, fork_mdp):
        features = TabularFeatureMap(
            {"s": [0.0, 0.0], "bad": [1.0, 0.0], "ok": [0.0, 1.0]}
        )
        base = TrajectoryDistribution.from_maxent(
            fork_mdp, fork_mdp.state_rewards, horizon=1
        )
        theta, _ = fit_reward_to_distribution(
            fork_mdp,
            features,
            base,
            horizon=1,
            initial_theta=np.array([0.5, 0.2]),
            max_iterations=0,
        )
        assert theta == pytest.approx([0.5, 0.2])
