"""Unit tests for policies."""

import numpy as np
import pytest

from repro.mdp import DeterministicPolicy, StochasticPolicy
from repro.mdp.policy import uniform_policy


class TestDeterministicPolicy:
    def test_lookup(self):
        policy = DeterministicPolicy({"s": "go"})
        assert policy["s"] == "go"
        assert "s" in policy

    def test_action_distribution_is_point_mass(self):
        policy = DeterministicPolicy({"s": "go"})
        assert policy.action_distribution("s") == {"go": 1.0}

    def test_sample_ignores_rng(self):
        policy = DeterministicPolicy({"s": "go"})
        assert policy.sample("s", np.random.default_rng(0)) == "go"

    def test_equality_and_hash(self):
        a = DeterministicPolicy({"s": "go", "t": "stop"})
        b = DeterministicPolicy({"t": "stop", "s": "go"})
        assert a == b
        assert hash(a) == hash(b)

    def test_items(self):
        policy = DeterministicPolicy({"s": "go"})
        assert list(policy.items()) == [("s", "go")]


class TestStochasticPolicy:
    def test_distribution_must_sum_to_one(self):
        with pytest.raises(ValueError):
            StochasticPolicy({"s": {"a": 0.4, "b": 0.4}})

    def test_zero_probability_actions_dropped(self):
        policy = StochasticPolicy({"s": {"a": 1.0, "b": 0.0}})
        assert policy.action_distribution("s") == {"a": 1.0}

    def test_sampling_follows_distribution(self):
        policy = StochasticPolicy({"s": {"a": 0.8, "b": 0.2}})
        rng = np.random.default_rng(42)
        draws = [policy.sample("s", rng) for _ in range(2000)]
        assert draws.count("a") / len(draws) == pytest.approx(0.8, abs=0.05)

    def test_greedy_extracts_mode(self):
        policy = StochasticPolicy({"s": {"a": 0.7, "b": 0.3}})
        assert policy.greedy()["s"] == "a"


class TestUniformPolicy:
    def test_uniform_over_enabled_actions(self, two_action_mdp):
        policy = uniform_policy(two_action_mdp)
        assert policy.action_distribution("s") == {"a": 0.5, "b": 0.5}
        assert policy.action_distribution("goal") == {"a": 1.0}
