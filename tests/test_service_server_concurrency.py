"""Concurrency + hardening suite for the HTTP front door.

Covers the async ``POST /jobs`` surface (backpressure, rate limiting,
drain-on-shutdown) and the handler-thread hardening: parallel POSTs
must never lose counter updates, malformed overrides and bodies must
answer structured 400/413s, and a flood beyond queue capacity must
answer 503 + ``Retry-After`` — never a dropped connection.
"""

import http.client
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.mdp import chain_dtmc
from repro.service.jobs import CheckJob
from repro.service.server import build_server
from repro.service.telemetry import Telemetry

pytestmark = pytest.mark.service


def check_payload(job_id: str, n: int = 4) -> dict:
    return CheckJob.for_model(
        job_id, chain_dtmc(n, forward_probability=0.5), 'P>=0.2 [ F "goal" ]'
    ).to_dict()


def start_server(**kwargs):
    telemetry = kwargs.pop("telemetry", None) or Telemetry()
    server = build_server(port=0, telemetry=telemetry, **kwargs)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread, f"http://{host}:{port}", telemetry


def stop_server(server, thread):
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def get_json(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read())


def post_json(url, payload, headers=None):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, json.loads(response.read())


def post_collect(url, payload, headers=None):
    """POST and return (status, body, headers) without raising."""
    try:
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read()), dict(
                response.headers
            )
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def poll_until_terminal(base, ticket, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, record = get_json(f"{base}/jobs/{ticket}")
        if record["status"] not in ("queued", "running"):
            return record
        time.sleep(0.02)
    raise AssertionError(f"ticket {ticket} never reached a terminal status")


@pytest.fixture
def service():
    server, thread, base, telemetry = start_server(
        queue_size=64, queue_workers=2
    )
    try:
        yield server, base, telemetry
    finally:
        stop_server(server, thread)


class TestCounterIntegrity:
    def test_parallel_batches_lose_no_increments(self, service):
        _, base, _ = service
        clients, per_client = 8, 2
        errors = []

        def client(index):
            try:
                for i in range(per_client):
                    job = check_payload(f"c{index}-{i}")
                    status, _ = post_json(base + "/batch", {"jobs": [job]})
                    assert status == 200
            except Exception as exc:  # noqa: BLE001 — collected below
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        _, health = get_json(base + "/health")
        assert health["batches"] == clients * per_client

    def test_parallel_async_submissions_all_accounted(self, service):
        server, base, _ = service
        clients, per_client = 6, 3
        tickets, errors = [], []
        lock = threading.Lock()

        def client(index):
            try:
                for i in range(per_client):
                    status, body, _ = post_collect(
                        base + "/jobs",
                        {"jobs": [check_payload(f"a{index}-{i}")]},
                    )
                    assert status == 202, body
                    with lock:
                        tickets.extend(
                            entry["ticket"] for entry in body["accepted"]
                        )
            except Exception as exc:  # noqa: BLE001 — collected below
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert len(tickets) == len(set(tickets)) == clients * per_client
        for ticket in tickets:
            assert poll_until_terminal(base, ticket)["status"] == "succeeded"
        stats = server.queue.stats()
        assert stats["submitted"] == stats["completed"] == len(tickets)


class TestOverrideValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"max_retries": "abc"},
            {"max_retries": -1},
            {"max_retries": None},
            {"job_timeout": "abc"},
            {"job_timeout": -5},
            {"job_timeout": 0},
        ],
    )
    def test_malformed_overrides_structured_400(self, service, overrides):
        _, base, _ = service
        for path in ("/batch", "/jobs"):
            status, body, _ = post_collect(
                base + path, {"jobs": [check_payload("x")], **overrides}
            )
            assert status == 400, (path, overrides)
            assert body["error"]["code"] == "invalid-override"

    def test_valid_overrides_still_flow(self, service):
        _, base, _ = service
        status, report = post_json(
            base + "/batch",
            {"jobs": [check_payload("ok")], "max_retries": 1,
             "job_timeout": 30},
        )
        assert status == 200
        assert report["statuses"] == {"succeeded": 1}


class TestBodyHardening:
    def _raw_post(self, server, headers, body=b""):
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.putrequest("POST", "/batch")
            for name, value in headers.items():
                connection.putheader(name, value)
            connection.endheaders()
            if body:
                connection.send(body)
            response = connection.getresponse()
            return response.status, json.loads(response.read())
        finally:
            connection.close()

    def test_negative_content_length_400(self, service):
        server, _, _ = service
        status, body = self._raw_post(server, {"Content-Length": "-5"})
        assert status == 400
        assert body["error"]["code"] == "invalid-content-length"

    def test_non_numeric_content_length_400(self, service):
        server, _, _ = service
        status, body = self._raw_post(server, {"Content-Length": "lots"})
        assert status == 400
        assert body["error"]["code"] == "invalid-content-length"

    def test_missing_content_length_400(self, service):
        server, _, _ = service
        status, body = self._raw_post(server, {})
        assert status == 400
        assert body["error"]["code"] == "missing-content-length"

    def test_oversized_body_413(self):
        server, thread, base, _ = start_server(max_body_bytes=1024)
        try:
            payload = {"jobs": [check_payload("big")], "pad": "x" * 4096}
            status, body, _ = post_collect(base + "/batch", payload)
            assert status == 413
            assert body["error"]["code"] == "body-too-large"
        finally:
            stop_server(server, thread)

    def test_invalid_json_400(self, service):
        server, _, _ = service
        raw = b"{not json"
        status, body = self._raw_post(
            server, {"Content-Length": str(len(raw))}, body=raw
        )
        assert status == 400
        assert body["error"]["code"] == "invalid-json"


class TestBackpressure:
    def test_flood_gets_503_with_retry_after_never_dropped(self):
        server, thread, base, telemetry = start_server(
            queue_size=2, queue_workers=1
        )
        try:
            results, errors = [], []
            lock = threading.Lock()

            def submit(index):
                try:
                    outcome = post_collect(
                        base + "/jobs",
                        {"jobs": [check_payload(f"f{index}")]},
                    )
                    with lock:
                        results.append(outcome)
                except Exception as exc:  # noqa: BLE001 — dropped conn etc.
                    errors.append(exc)

            threads = [
                threading.Thread(target=submit, args=(i,)) for i in range(24)
            ]
            for worker in threads:
                worker.start()
            for worker in threads:
                worker.join(timeout=120)
            # Hard acceptance: every request got an HTTP answer.
            assert not errors
            assert len(results) == 24
            accepted = [r for r in results if r[0] == 202]
            rejected = [r for r in results if r[0] == 503]
            assert len(accepted) + len(rejected) == 24
            assert rejected, "flood past capacity must observe 503s"
            for status, body, headers in rejected:
                assert body["error"]["code"] == "queue-full"
                assert int(headers["Retry-After"]) >= 1
            # Accepted work still completes.
            for status, body, _ in accepted:
                for entry in body["accepted"]:
                    record = poll_until_terminal(base, entry["ticket"])
                    assert record["status"] == "succeeded"
            assert telemetry.counters()["jobs_rejected"] == len(rejected)
        finally:
            stop_server(server, thread)

    def test_rate_limit_429_with_retry_after(self):
        server, thread, base, _ = start_server(
            queue_size=64, queue_workers=1, rate_limit=1.0, rate_burst=2.0
        )
        try:
            headers = {"X-Client-Id": "flooder"}
            outcomes = [
                post_collect(
                    base + "/jobs",
                    {"jobs": [check_payload(f"r{i}")]},
                    headers=headers,
                )
                for i in range(5)
            ]
            accepted = [o for o in outcomes if o[0] == 202]
            limited = [o for o in outcomes if o[0] == 429]
            assert len(accepted) == 2  # the burst
            assert len(limited) == 3
            for status, body, hdrs in limited:
                assert body["error"]["code"] == "rate-limited"
                assert int(hdrs["Retry-After"]) >= 1
            # A different client is not starved by the flooder.
            status, _, _ = post_collect(
                base + "/jobs",
                {"jobs": [check_payload("other")]},
                headers={"X-Client-Id": "patient"},
            )
            assert status == 202
        finally:
            stop_server(server, thread)


class TestShutdownDrain:
    def test_server_close_drains_queue(self):
        server, thread, base, _ = start_server(
            queue_size=32, queue_workers=1
        )
        tickets = []
        try:
            status, body, _ = post_collect(
                base + "/jobs",
                {"jobs": [check_payload(f"d{i}") for i in range(8)]},
            )
            assert status == 202
            tickets = [entry["ticket"] for entry in body["accepted"]]
        finally:
            stop_server(server, thread)
        # After close the socket is gone; poll the queue in-process.
        for ticket in tickets:
            record = server.queue.snapshot(ticket)
            assert record["status"] == "succeeded", record
        stats = server.queue.stats()
        assert stats["completed"] == len(tickets)
        assert stats["cancelled"] == 0
        assert stats["closed"] is True


class TestPolling:
    def test_unknown_ticket_404(self, service):
        _, base, _ = service
        try:
            get_json(base + "/jobs/job-99999999")
        except urllib.error.HTTPError as error:
            assert error.code == 404
            assert json.loads(error.read())["error"]["code"] == (
                "unknown-ticket"
            )
        else:
            raise AssertionError("expected 404")

    def test_queue_endpoint_reports_stats(self, service):
        _, base, _ = service
        status, stats = get_json(base + "/queue")
        assert status == 200
        for key in ("capacity", "depth", "in_flight", "completed",
                    "rejected_total", "workers"):
            assert key in stats

    def test_malformed_job_still_400_on_async_path(self, service):
        _, base, _ = service
        status, body, _ = post_collect(
            base + "/jobs", {"jobs": [{"kind": "nope", "job_id": "x"}]}
        )
        assert status == 400
        assert "error" in body
