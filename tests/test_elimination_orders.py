"""Verdict identity across elimination orders and snapshot resumes.

The speed layer (min-degree ordering, incremental corridor
re-elimination) must never change what the checker concludes: every
ordering of the same elimination and every snapshot-resumed corridor
computes the *same* rational function, so evaluations at any parameter
point agree to within accumulated float rounding (≤ 1e-12 here — the
symbolic pipeline is exact, only the final float conversion rounds).

Covered:

* all five ``repro.corpus`` families, full elimination, insertion vs
  min-degree ordering;
* the sub-stochastic ``restricted_constraint`` corridor path: scratch vs
  snapshot-resumed elimination on a grown corridor, against the
  truncated-model reference;
* hypothesis-randomized DTMCs (the seeded ``random`` family).
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checking import CheckCache
from repro.checking.parametric import (
    ELIMINATION_ORDERS,
    corridor_elimination,
    parametric_constraint,
    restricted_constraint,
    restricted_model,
)
from repro.corpus import FAMILIES
from repro.logic import parse_pctl

TOLERANCE = 1e-12


def _spec(family, size, seed=None):
    kwargs = {"seed": seed} if seed is not None else {}
    problem = FAMILIES[family].repair(size, **kwargs).problem()
    spec = problem.parametric[0]
    return spec.resolve_model(), spec.formula, problem.initial_assignment()


def _evaluation_points(assignment):
    """The initial assignment plus two deterministic jitters of it.

    Points are exact ``Fraction``s so evaluation stays on the symbolic
    exact path — elimination can produce coefficients too large for
    float64 even when the final value is tame.
    """
    exact = {
        name: Fraction(value).limit_denominator(10**9)
        for name, value in assignment.items()
    }
    points = [dict(exact)]
    for shift in (Fraction(3, 1000), Fraction(-2, 1000)):
        points.append({name: value + shift for name, value in exact.items()})
    return points


def _assert_same_function(left, right, points):
    for point in points:
        assert float(left.evaluate(point)) == pytest.approx(
            float(right.evaluate(point)), abs=TOLERANCE
        )


def _upper_bound_formula(family, model):
    """An upper-bound reachability formula the corridor path accepts.

    ``network`` (R<=) and ``refuel`` (P<=) already point the right way;
    the lower-bound families get a synthetic ``P<= 0.99 [F goal]`` on
    their own goal atom — direction is all the truncation relaxation
    cares about.
    """
    fam = FAMILIES[family]
    formula = fam.repair(fam.sizes[0]).problem().parametric[0].formula
    if formula.comparison in ("<", "<="):
        return None  # the family formula itself is usable
    return parse_pctl(f'P<=0.99 [F "{fam.goal_atom}"]')


def _growing_corridors(model, formula):
    """Two nested corridors connecting the initial state to a goal.

    A BFS shortest path from the initial state to a target seeds both
    corridors (so neither truncation degenerates to the zero
    constraint); the larger one additionally admits a prefix of the BFS
    exploration order.
    """
    from collections import deque

    from repro.checking.parametric import label_satisfaction_set

    targets = set(
        label_satisfaction_set(model.states, model.labels, formula.path.right)
    )
    parent = {model.initial_state: None}
    order = [model.initial_state]
    queue = deque([model.initial_state])
    hit = model.initial_state if model.initial_state in targets else None
    while queue and hit is None:
        state = queue.popleft()
        for successor in model.transitions.get(state, {}):
            if successor in parent:
                continue
            parent[successor] = state
            order.append(successor)
            if successor in targets:
                hit = successor
                break
            queue.append(successor)
    path = set()
    walk = hit
    while walk is not None:
        path.add(walk)
        walk = parent[walk]
    small = path | set(order[: max(2, len(order) // 3)]) | targets
    large = small | set(order[: max(3, (2 * len(order)) // 3)])
    if large == small:
        large = small | set(order)
    return small, large


class TestOrderIdentity:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_orders_agree_on_each_family(self, family):
        fam = FAMILIES[family]
        model, formula, assignment = _spec(family, fam.sizes[0])
        points = _evaluation_points(assignment)
        stats = {}
        gauss = parametric_constraint(model, formula)
        insertion = parametric_constraint(
            model, formula, method="eliminate", order="insertion"
        )
        min_degree = parametric_constraint(
            model, formula, method="eliminate", order="min-degree", stats=stats
        )
        _assert_same_function(insertion.function, min_degree.function, points)
        _assert_same_function(gauss.function, min_degree.function, points)
        assert insertion.comparison == min_degree.comparison
        assert insertion.bound == min_degree.bound
        assert stats.get("eliminated", 0) > 0

    def test_orders_are_the_documented_set(self):
        assert set(ELIMINATION_ORDERS) == {"insertion", "min-degree"}

    def test_unknown_order_rejected(self):
        model, formula, _ = _spec("grid", FAMILIES["grid"].sizes[0])
        with pytest.raises(ValueError):
            parametric_constraint(
                model, formula, method="eliminate", order="sideways"
            )


class TestCorridorIdentity:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_resume_matches_scratch_and_truncation(self, family):
        fam = FAMILIES[family]
        model, formula, assignment = _spec(family, fam.sizes[0])
        synthetic = _upper_bound_formula(family, model)
        if synthetic is not None:
            formula = synthetic
        points = _evaluation_points(assignment)
        small, large = _growing_corridors(model, formula)

        scratch_small, snapshot = corridor_elimination(model, formula, small)
        assert snapshot is not None
        stats = {}
        resumed, _ = corridor_elimination(
            model, formula, large, snapshot=snapshot, stats=stats
        )
        scratch_large, _ = corridor_elimination(model, formula, large)
        reference = parametric_constraint(
            restricted_model(model, large), formula
        )

        _assert_same_function(resumed.function, scratch_large.function, points)
        _assert_same_function(resumed.function, reference.function, points)
        assert stats.get("resumed", 0) == 1
        # The truncation relaxes: small corridor ≤ large corridor value
        # would need monotone mass, but identity with the truncated
        # reference is the contract — spot-check the small one too.
        small_reference = parametric_constraint(
            restricted_model(model, small), formula
        )
        _assert_same_function(
            scratch_small.function, small_reference.function, points
        )

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_restricted_constraint_cache_path(self, family):
        fam = FAMILIES[family]
        model, formula, assignment = _spec(family, fam.sizes[0])
        synthetic = _upper_bound_formula(family, model)
        if synthetic is not None:
            formula = synthetic
        points = _evaluation_points(assignment)
        small, large = _growing_corridors(model, formula)

        cache = CheckCache(max_entries=32)
        first, snapshot = restricted_constraint(
            model, formula, small, cache=cache, with_snapshot=True
        )
        grown, _ = restricted_constraint(
            model,
            formula,
            large,
            cache=cache,
            snapshot=snapshot,
            with_snapshot=True,
        )
        scratch = restricted_constraint(model, formula, large)
        _assert_same_function(grown.function, scratch.function, points)
        stats = cache.stats()
        assert stats["parametric_eliminations"] >= (
            2 if large != small else 1
        )
        assert stats["elimination_states"] > 0
        assert stats["elimination_reuse_hits"] >= 1
        # Exact-key warm reuse: same corridor again is served from the
        # cache without a new elimination.
        before = cache.stats()["parametric_eliminations"]
        again, _ = restricted_constraint(
            model, formula, large, cache=cache, with_snapshot=True
        )
        assert cache.stats()["parametric_eliminations"] == before
        _assert_same_function(again.function, grown.function, points)


class TestRandomizedChains:
    @settings(max_examples=12, deadline=None)
    @given(
        size=st.integers(min_value=12, max_value=20),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_orders_agree_on_random_chains(self, size, seed):
        model, formula, assignment = _spec("random", size, seed=seed)
        points = _evaluation_points(assignment)
        insertion = parametric_constraint(
            model, formula, method="eliminate", order="insertion"
        )
        min_degree = parametric_constraint(
            model, formula, method="eliminate", order="min-degree"
        )
        _assert_same_function(insertion.function, min_degree.function, points)

    @settings(max_examples=8, deadline=None)
    @given(
        size=st.integers(min_value=12, max_value=20),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_corridor_resume_on_random_chains(self, size, seed):
        model, _, assignment = _spec("random", size, seed=seed)
        formula = parse_pctl('P<=0.99 [F "goal"]')
        points = _evaluation_points(assignment)
        small, large = _growing_corridors(model, formula)

        scratch_small, snapshot = corridor_elimination(model, formula, small)
        resumed, _ = corridor_elimination(
            model, formula, large, snapshot=snapshot
        )
        scratch_large, _ = corridor_elimination(model, formula, large)
        reference = parametric_constraint(
            restricted_model(model, large), formula
        )
        _assert_same_function(resumed.function, scratch_large.function, points)
        _assert_same_function(resumed.function, reference.function, points)
