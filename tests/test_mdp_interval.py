"""Tests for interval chains and the robustness certificate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checking import DTMCModelChecker
from repro.logic import parse_pctl
from repro.logic.pctl import AtomicProposition, Eventually
from repro.mdp import (
    DTMC,
    IntervalDTMC,
    ModelValidationError,
    chain_dtmc,
    random_dtmc,
    robustness_certificate,
)


class TestConstruction:
    def test_row_feasibility_enforced(self):
        with pytest.raises(ModelValidationError):
            IntervalDTMC(
                states=["a"],
                intervals={"a": {"a": (0.2, 0.4)}},  # cannot sum to 1
                initial_state="a",
            )

    def test_bad_interval_rejected(self):
        with pytest.raises(ModelValidationError):
            IntervalDTMC(
                states=["a"],
                intervals={"a": {"a": (0.6, 0.4)}},
                initial_state="a",
            )

    def test_from_dtmc_clamps(self, two_path_chain):
        interval = IntervalDTMC.from_dtmc(two_path_chain, epsilon=0.5)
        lower, upper = interval.intervals["start"]["good"]
        assert lower == pytest.approx(0.1)
        assert upper == pytest.approx(1.0)

    def test_from_dtmc_near_deterministic_chain(self):
        # A learned chain can carry probabilities a hair above 1.0 from
        # float error; the ε-ball must clamp into [0, 1] instead of
        # producing an inverted or infeasible interval.
        chain = DTMC(
            states=["a", "b"],
            transitions={"a": {"b": 1.0 + 5e-10}, "b": {"b": 1.0}},
            initial_state="a",
        )
        for epsilon in (0.0, 0.01):
            interval = IntervalDTMC.from_dtmc(chain, epsilon=epsilon)
            lower, upper = interval.intervals["a"]["b"]
            assert 0.0 <= lower <= upper <= 1.0
            assert interval.contains(chain)

    def test_from_dtmc_keeps_structural_zeros(self, two_path_chain):
        # The ε-ball widens existing edges only; absent transitions stay
        # structurally impossible rather than gaining mass.
        interval = IntervalDTMC.from_dtmc(two_path_chain, epsilon=0.1)
        for state, row in two_path_chain.transitions.items():
            assert set(interval.intervals[state]) == set(row)

    def test_epsilon_ball_pins_explicit_zero(self):
        from repro.mdp.interval import _epsilon_ball_row

        ball = _epsilon_ball_row({"a": 0.0, "b": 1.0}, epsilon=0.05)
        assert ball["a"] == (0.0, 0.0)
        assert ball["b"] == (0.95, 1.0)

    def test_contains_original_and_perturbations(self, two_path_chain):
        interval = IntervalDTMC.from_dtmc(two_path_chain, epsilon=0.05)
        assert interval.contains(two_path_chain)
        nudged = two_path_chain.with_transitions(
            {"start": {"good": 0.63, "bad": 0.27, "start": 0.1}}
        )
        assert interval.contains(nudged)
        far = two_path_chain.with_transitions(
            {"start": {"good": 0.8, "bad": 0.1, "start": 0.1}}
        )
        assert not interval.contains(far)


class TestRobustReachability:
    def test_degenerate_interval_equals_concrete(self, two_path_chain):
        interval = IntervalDTMC.from_dtmc(two_path_chain, epsilon=0.0)
        exact = DTMCModelChecker(two_path_chain).path_probabilities(
            Eventually(AtomicProposition("safe"))
        )[two_path_chain.initial_state]
        assert interval.reachability_probability(
            {"good"}, maximise=True
        ) == pytest.approx(exact)
        assert interval.reachability_probability(
            {"good"}, maximise=False
        ) == pytest.approx(exact)

    def test_min_below_max(self, two_path_chain):
        interval = IntervalDTMC.from_dtmc(two_path_chain, epsilon=0.05)
        low = interval.reachability_probability({"good"}, maximise=False)
        high = interval.reachability_probability({"good"}, maximise=True)
        assert low < high

    def test_hand_computed_bounds(self):
        # start: good in [0.4,0.6], bad in [0.4,0.6]; one step decides.
        interval = IntervalDTMC(
            states=["start", "good", "bad"],
            intervals={
                "start": {"good": (0.4, 0.6), "bad": (0.4, 0.6)},
                "good": {"good": (1.0, 1.0)},
                "bad": {"bad": (1.0, 1.0)},
            },
            initial_state="start",
            labels={"good": {"safe"}},
        )
        assert interval.reachability_probability({"good"}, True) == pytest.approx(0.6)
        assert interval.reachability_probability({"good"}, False) == pytest.approx(0.4)

    @given(st.integers(0, 500), st.floats(0.0, 0.05))
    @settings(max_examples=15, deadline=None)
    def test_interval_bounds_bracket_members(self, seed, epsilon):
        """Any concrete chain inside the intervals has its reachability
        between the robust min and max."""
        chain = random_dtmc(5, seed=seed, num_labels=1)
        atoms = sorted(chain.atoms())
        if not atoms:
            return
        targets = set(chain.states_with_atom(atoms[0]))
        if not targets:
            return
        interval = IntervalDTMC.from_dtmc(chain, epsilon)
        exact = DTMCModelChecker(chain).path_probabilities(
            Eventually(AtomicProposition(atoms[0]))
        )[chain.initial_state]
        low = interval.reachability_probability(targets, maximise=False)
        high = interval.reachability_probability(targets, maximise=True)
        assert low - 1e-7 <= exact <= high + 1e-7


class TestRobustReward:
    def test_degenerate_equals_concrete(self, simple_chain):
        interval = IntervalDTMC.from_dtmc(simple_chain, epsilon=0.0)
        assert interval.expected_reward({4}, maximise=True) == pytest.approx(
            4 / 0.8
        )

    def test_worst_case_exceeds_best_case(self):
        chain = chain_dtmc(4, forward_probability=0.6)
        interval = IntervalDTMC.from_dtmc(chain, epsilon=0.05)
        worst = interval.expected_reward({3}, maximise=True)
        best = interval.expected_reward({3}, maximise=False)
        assert best < 3 / 0.6 < worst

    def test_infinite_when_adversary_blocks(self, two_path_chain):
        interval = IntervalDTMC.from_dtmc(two_path_chain, epsilon=0.0)
        assert interval.expected_reward({"good"}, maximise=True) == np.inf


class TestVIReports:
    def test_reachability_report_converges(self, two_path_chain):
        interval = IntervalDTMC.from_dtmc(two_path_chain, epsilon=0.05)
        values, report = interval.reachability_values_report(
            {"good"}, maximise=True
        )
        assert report.converged and not report.diverged
        assert report.iterations > 0
        assert values["good"] == pytest.approx(1.0)

    def test_reachability_report_respects_cap(self, two_path_chain):
        interval = IntervalDTMC.from_dtmc(two_path_chain, epsilon=0.05)
        _values, report = interval.reachability_values_report(
            {"good"}, maximise=True, max_iterations=1
        )
        assert not report.converged
        assert report.iterations == 1

    def test_reward_report_converges(self, simple_chain):
        interval = IntervalDTMC.from_dtmc(simple_chain, epsilon=0.0)
        values, report = interval.expected_reward_values_report(
            {4}, maximise=True
        )
        assert report.converged and not report.diverged
        assert values[simple_chain.initial_state] == pytest.approx(4 / 0.8)

    def test_report_round_trips_to_dict(self, two_path_chain):
        interval = IntervalDTMC.from_dtmc(two_path_chain, epsilon=0.0)
        _values, report = interval.reachability_values_report(
            {"good"}, maximise=False
        )
        payload = report.to_dict()
        assert set(payload) == {
            "iterations", "converged", "residual", "diverged"
        }


class TestExtremalChain:
    def test_extremal_chain_attains_robust_bound(self, two_path_chain):
        interval = IntervalDTMC.from_dtmc(two_path_chain, epsilon=0.05)
        values = interval.reachability_values({"good"}, maximise=True)
        witness = interval.extremal_chain(values, maximise=True)
        exact = DTMCModelChecker(witness).path_probabilities(
            Eventually(AtomicProposition("safe"))
        )[witness.initial_state]
        assert exact == pytest.approx(values[interval.initial_state], abs=1e-6)
        assert interval.contains(witness)


class TestRobustnessCertificate:
    def test_certificate_holds_for_slack_property(self, simple_chain):
        # E = 5 attempts; bound 10 survives small perturbations.
        assert robustness_certificate(
            simple_chain, parse_pctl('R<=10 [ F "goal" ]'), epsilon=0.02
        )

    def test_certificate_fails_on_tight_property(self, simple_chain):
        # Bound 5 is exactly the nominal value — any adverse drift breaks it.
        assert not robustness_certificate(
            simple_chain, parse_pctl('R<=5 [ F "goal" ]'), epsilon=0.02
        )

    def test_probability_certificate(self, two_path_chain):
        formula = parse_pctl('P>=0.55 [ F "safe" ]')
        assert robustness_certificate(two_path_chain, formula, epsilon=0.01)
        tight = parse_pctl('P>=0.66 [ F "safe" ]')
        assert not robustness_certificate(two_path_chain, tight, epsilon=0.05)

    def test_repaired_model_certificate_story(self):
        """Repair to slack below the bound, then certify the slack."""
        from repro.core import ModelRepair

        chain = chain_dtmc(5, forward_probability=0.5)
        result = ModelRepair.for_chain(
            chain, parse_pctl('R<=5.5 [ F "goal" ]')
        ).repair()
        assert result.status == "repaired"
        # The repair lands near the bound; certify against a looser one.
        assert robustness_certificate(
            result.repaired_model, parse_pctl('R<=7 [ F "goal" ]'), epsilon=0.01
        )

    def test_unsupported_formula_rejected(self, two_path_chain):
        with pytest.raises(TypeError):
            robustness_certificate(
                two_path_chain, parse_pctl("safe"), epsilon=0.01
            )


class TestIntervalMDP:
    from repro.mdp import IntervalMDP  # noqa: PLC0415 — scoped import

    def build(self):
        from repro.mdp import IntervalMDP

        return IntervalMDP(
            states=["s", "goal", "trap"],
            intervals={
                "s": {
                    "risky": {
                        "goal": (0.6, 0.9),
                        "trap": (0.1, 0.4),
                    },
                    "steady": {
                        "goal": (0.7, 0.7),
                        "trap": (0.3, 0.3),
                    },
                },
                "goal": {"stay": {"goal": (1.0, 1.0)}},
                "trap": {"stay": {"trap": (1.0, 1.0)}},
            },
            initial_state="s",
            labels={"goal": {"goal"}},
        )

    def test_pessimistic_nature_prefers_steady(self):
        imdp = self.build()
        # Against worst-case nature, risky yields 0.6 < steady's 0.7.
        value = imdp.reachability_probability(
            {"goal"}, controller_maximises=True, nature_maximises=False
        )
        assert value == pytest.approx(0.7)

    def test_optimistic_nature_prefers_risky(self):
        imdp = self.build()
        value = imdp.reachability_probability(
            {"goal"}, controller_maximises=True, nature_maximises=True
        )
        assert value == pytest.approx(0.9)

    def test_minimising_controller(self):
        imdp = self.build()
        value = imdp.reachability_probability(
            {"goal"}, controller_maximises=False, nature_maximises=False
        )
        assert value == pytest.approx(0.6)

    def test_from_mdp_degenerate_matches_mdp_checker(self, two_action_mdp):
        from repro.checking import MDPModelChecker
        from repro.logic.pctl import AtomicProposition, Eventually
        from repro.mdp import IntervalMDP

        imdp = IntervalMDP.from_mdp(two_action_mdp, epsilon=0.0)
        pmax = MDPModelChecker(two_action_mdp).path_probabilities(
            Eventually(AtomicProposition("goal")), maximise=True
        )["s"]
        robust = imdp.reachability_probability(
            {"goal"}, controller_maximises=True, nature_maximises=False
        )
        assert robust == pytest.approx(pmax)

    def test_uncertainty_widens_the_band(self, two_action_mdp):
        from repro.mdp import IntervalMDP

        tight = IntervalMDP.from_mdp(two_action_mdp, epsilon=0.0)
        loose = IntervalMDP.from_mdp(two_action_mdp, epsilon=0.05)
        assert loose.reachability_probability(
            {"goal"}, True, False
        ) <= tight.reachability_probability({"goal"}, True, False) + 1e-9
        assert loose.reachability_probability(
            {"goal"}, True, True
        ) >= tight.reachability_probability({"goal"}, True, True) - 1e-9

    def test_infeasible_row_rejected(self):
        from repro.mdp import IntervalMDP, ModelValidationError

        with pytest.raises(ModelValidationError):
            IntervalMDP(
                states=["a"],
                intervals={"a": {"act": {"a": (0.1, 0.2)}}},
                initial_state="a",
            )

    def test_state_without_actions_rejected(self):
        from repro.mdp import IntervalMDP, ModelValidationError

        with pytest.raises(ModelValidationError):
            IntervalMDP(states=["a"], intervals={}, initial_state="a")
