"""Tests for the repair extensions: augment-mode Data Repair and
MDP-under-policy Model Repair."""

import pytest

from repro.checking import DTMCModelChecker
from repro.core import DataRepair, ModelRepair
from repro.data import TraceDataset, TraceGroup
from repro.logic import parse_pctl
from repro.mdp import MDP, DeterministicPolicy, Trajectory
from repro.mdp.policy import StochasticPolicy


def observations(source, target, count):
    return [Trajectory.from_states([source, target]) for _ in range(count)]


@pytest.fixture
def noisy_dataset() -> TraceDataset:
    return TraceDataset(
        [
            TraceGroup("success", observations("a", "b", 40)),
            TraceGroup("failure", observations("a", "a", 60), droppable=False),
        ]
    )


class TestAugmentMode:
    """Paper: 'similar formulations when we consider data points being
    added' — duplicate good observations instead of dropping bad ones."""

    def make_repair(self, dataset, bound, **kwargs):
        return DataRepair(
            dataset=dataset,
            formula=parse_pctl(f'R<={bound} [ F "goal" ]'),
            initial_state="a",
            states=["a", "b"],
            labels={"b": {"goal"}},
            state_rewards={"a": 1.0},
            mode="augment",
            **kwargs,
        )

    def test_augmenting_successes_reaches_bound(self, noisy_dataset):
        # Need p(a->b) >= 0.5: 40(1+w) / (40(1+w)+60) >= 0.5 -> w >= 0.5.
        result = self.make_repair(noisy_dataset, 2).repair()
        assert result.status == "repaired"
        assert result.verified
        assert result.drop_probabilities["success"] == pytest.approx(
            0.5, abs=0.02
        )
        checked = DTMCModelChecker(result.repaired_model).check(
            parse_pctl('R<=2 [ F "goal" ]')
        )
        assert checked.holds

    def test_augment_weights_bounded(self, noisy_dataset):
        result = self.make_repair(noisy_dataset, 2, max_augment=0.2).repair()
        assert result.status == "infeasible"

    def test_parametric_model_at_zero_matches_mle(self, noisy_dataset):
        repair = self.make_repair(noisy_dataset, 2)
        chain = repair.parametric_model().instantiate({"weight_success": 0.0})
        assert chain.probability("a", "b") == pytest.approx(0.4)

    def test_invalid_mode_rejected(self, noisy_dataset):
        with pytest.raises(ValueError):
            DataRepair(
                dataset=noisy_dataset,
                formula=parse_pctl('R<=2 [ F "goal" ]'),
                initial_state="a",
                mode="replace",
            )

    def test_invalid_max_augment_rejected(self, noisy_dataset):
        with pytest.raises(ValueError):
            self.make_repair(noisy_dataset, 2, max_augment=0.0)


@pytest.fixture
def patrol_mdp() -> MDP:
    """A patrol robot: 'sweep' is thorough but slow, 'skip' is fast."""
    return MDP(
        states=["dock", "hall", "done"],
        transitions={
            "dock": {
                "sweep": {"hall": 0.5, "dock": 0.5},
                "skip": {"hall": 0.9, "dock": 0.1},
            },
            "hall": {
                "sweep": {"done": 0.5, "hall": 0.5},
                "skip": {"done": 0.9, "hall": 0.1},
            },
            "done": {"sweep": {"done": 1.0}},
        },
        initial_state="dock",
        labels={"done": {"done"}},
        state_rewards={"dock": 1.0, "hall": 1.0},
    )


class TestMdpPolicyRepair:
    def test_repair_fixed_policy_rows_only(self, patrol_mdp):
        policy = DeterministicPolicy(
            {"dock": "sweep", "hall": "sweep", "done": "sweep"}
        )
        formula = parse_pctl('R<=3 [ F "done" ]')  # sweep-only needs 4
        helper = ModelRepair.for_mdp_under_policy(patrol_mdp, policy, formula)
        repaired_mdp, result = helper.repair()
        assert result.status == "repaired"
        assert result.verified
        # The chosen rows changed ...
        assert repaired_mdp.probability("dock", "sweep", "hall") > 0.5
        # ... the unchosen rows did not.
        assert repaired_mdp.probability("dock", "skip", "hall") == pytest.approx(
            0.9
        )
        # And the repaired MDP under the same policy satisfies φ.
        induced = repaired_mdp.induced_dtmc(policy)
        assert DTMCModelChecker(induced).check(formula).holds

    def test_infeasible_returns_original(self, patrol_mdp):
        policy = DeterministicPolicy(
            {"dock": "sweep", "hall": "sweep", "done": "sweep"}
        )
        formula = parse_pctl('R<=0.5 [ F "done" ]')
        helper = ModelRepair.for_mdp_under_policy(
            patrol_mdp, policy, formula, max_perturbation=0.05
        )
        repaired_mdp, result = helper.repair()
        assert result.status == "infeasible"
        assert repaired_mdp is patrol_mdp

    def test_already_satisfied(self, patrol_mdp):
        policy = DeterministicPolicy(
            {"dock": "skip", "hall": "skip", "done": "sweep"}
        )
        formula = parse_pctl('R<=3 [ F "done" ]')  # skip-only needs ~2.22
        helper = ModelRepair.for_mdp_under_policy(patrol_mdp, policy, formula)
        repaired_mdp, result = helper.repair()
        assert result.status == "already_satisfied"

    def test_stochastic_policy_rejected(self, patrol_mdp):
        policy = StochasticPolicy(
            {
                "dock": {"sweep": 0.5, "skip": 0.5},
                "hall": {"sweep": 1.0},
                "done": {"sweep": 1.0},
            }
        )
        with pytest.raises(TypeError):
            ModelRepair.for_mdp_under_policy(
                patrol_mdp, policy, parse_pctl('R<=3 [ F "done" ]')
            )
