"""Unit tests for Reward Repair (Definition 2, Section IV-C)."""

import numpy as np
import pytest

from repro.core import QValueConstraint, RewardRepair
from repro.learning.irl import TabularFeatureMap
from repro.logic.ltl import LGlobally, state_atom
from repro.logic.rules import LtlRule
from repro.mdp import MDP


@pytest.fixture
def shortcut_mdp() -> MDP:
    """A risky shortcut through 'danger' vs a safe detour to 'goal'."""
    return MDP(
        states=["start", "danger", "detour", "goal", "end"],
        transitions={
            "start": {
                "shortcut": {"danger": 1.0},
                "around": {"detour": 1.0},
            },
            "danger": {"go": {"goal": 1.0}},
            "detour": {"go": {"goal": 1.0}},
            "goal": {"go": {"end": 1.0}},
            "end": {"go": {"end": 1.0}},
        },
        initial_state="start",
        labels={"danger": {"unsafe"}, "goal": {"target"}},
    )


@pytest.fixture
def shortcut_features() -> TabularFeatureMap:
    # f = (on the risky shortcut, at the goal)
    return TabularFeatureMap(
        {
            "start": [0.0, 0.0],
            "danger": [1.0, 0.0],
            "detour": [0.0, 0.0],
            "goal": [0.0, 1.0],
            "end": [0.0, 0.0],
        }
    )


UNSAFE_THETA = np.array([0.5, 1.0])  # positive weight on the shortcut


class TestQConstrained:
    def test_unsafe_before_repair(self, shortcut_mdp, shortcut_features):
        repair = RewardRepair(shortcut_mdp, shortcut_features, discount=0.9)
        policy = repair.optimal_policy(UNSAFE_THETA)
        assert policy["start"] == "shortcut"

    def test_repair_flips_preference(self, shortcut_mdp, shortcut_features):
        repair = RewardRepair(shortcut_mdp, shortcut_features, discount=0.9)
        result = repair.q_constrained(
            UNSAFE_THETA,
            [QValueConstraint("start", "around", "shortcut", margin=1e-3)],
        )
        assert result.feasible
        assert result.policy_before["start"] == "shortcut"
        assert result.policy_after["start"] == "around"

    def test_repair_is_small(self, shortcut_mdp, shortcut_features):
        """min ||Δθ|| should not move θ more than needed (≈ the gap)."""
        repair = RewardRepair(shortcut_mdp, shortcut_features, discount=0.9)
        result = repair.q_constrained(
            UNSAFE_THETA,
            [QValueConstraint("start", "around", "shortcut", margin=1e-3)],
        )
        # Brute hand repair: drop the shortcut weight by 0.5 (cost 0.25).
        assert float(np.sum(result.theta_delta() ** 2)) <= 0.25 + 1e-2

    def test_repaired_mdp_carries_rewards(self, shortcut_mdp, shortcut_features):
        repair = RewardRepair(shortcut_mdp, shortcut_features, discount=0.9)
        result = repair.q_constrained(
            UNSAFE_THETA, [QValueConstraint("start", "around", "shortcut")]
        )
        assert result.repaired_mdp.state_rewards == result.rewards_after

    def test_infeasible_with_tiny_delta_bound(self, shortcut_mdp, shortcut_features):
        repair = RewardRepair(shortcut_mdp, shortcut_features, discount=0.9)
        result = repair.q_constrained(
            UNSAFE_THETA,
            [QValueConstraint("start", "around", "shortcut", margin=0.5)],
            delta_bound=1e-4,
        )
        assert not result.feasible


class TestProjection:
    def test_projection_reduces_violation(self, shortcut_mdp, shortcut_features):
        repair = RewardRepair(shortcut_mdp, shortcut_features, discount=0.9)
        rule = LtlRule(LGlobally(~state_atom("danger")), weight=30.0)
        result = repair.project(
            UNSAFE_THETA,
            [rule],
            horizon=3,
            stop_states={"end"},
            learning_rate=0.2,
            max_iterations=150,
        )
        d = result.diagnostics
        assert d["violation_probability_projected"] < d[
            "violation_probability_before"
        ]
        assert d["violation_probability_after"] < d["violation_probability_before"]
        assert d["kl_q_from_p"] >= 0.0

    def test_projected_rewards_disfavour_danger(
        self, shortcut_mdp, shortcut_features
    ):
        repair = RewardRepair(shortcut_mdp, shortcut_features, discount=0.9)
        rule = LtlRule(LGlobally(~state_atom("danger")), weight=30.0)
        result = repair.project(
            UNSAFE_THETA, [rule], horizon=3, stop_states={"end"},
            learning_rate=0.2, max_iterations=150,
        )
        # The shortcut feature weight must drop.
        assert result.theta_after[0] < result.theta_before[0]

    def test_theta_delta(self, shortcut_mdp, shortcut_features):
        repair = RewardRepair(shortcut_mdp, shortcut_features, discount=0.9)
        rule = LtlRule(LGlobally(~state_atom("danger")), weight=10.0)
        result = repair.project(
            UNSAFE_THETA, [rule], horizon=3, stop_states={"end"},
            max_iterations=20,
        )
        assert result.theta_delta() == pytest.approx(
            result.theta_after - result.theta_before
        )


class TestSampledProjection:
    def test_sampled_route_matches_exact_direction(
        self, shortcut_mdp, shortcut_features
    ):
        repair = RewardRepair(shortcut_mdp, shortcut_features, discount=0.9)
        rule = LtlRule(LGlobally(~state_atom("danger")), weight=30.0)
        exact = repair.project(
            UNSAFE_THETA, [rule], horizon=3, stop_states={"end"},
            learning_rate=0.2, max_iterations=120,
        )
        sampled = repair.project_sampled(
            UNSAFE_THETA, [rule], horizon=3, samples=2500, seed=2,
            learning_rate=0.2, max_iterations=120,
        )
        # Both push the shortcut feature weight down.
        assert sampled.theta_after[0] < sampled.theta_before[0]
        assert np.sign(sampled.theta_delta()[0]) == np.sign(
            exact.theta_delta()[0]
        )

    def test_sampled_diagnostics(self, shortcut_mdp, shortcut_features):
        repair = RewardRepair(shortcut_mdp, shortcut_features, discount=0.9)
        rule = LtlRule(LGlobally(~state_atom("danger")), weight=30.0)
        result = repair.project_sampled(
            UNSAFE_THETA, [rule], horizon=3, samples=1500, seed=4,
            max_iterations=40,
        )
        d = result.diagnostics
        assert d["sampled"] == 1.0
        assert 0.0 <= d["violation_probability_projected"] <= d[
            "violation_probability_before"
        ]
