"""Unit and property tests for the DTMC PCTL checker."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checking import DTMCModelChecker
from repro.logic import parse_pctl
from repro.logic.pctl import (
    AtomicProposition,
    Eventually,
    Globally,
    Next,
    Not,
    ProbabilisticOperator,
    Until,
)
from repro.mdp import DTMC, chain_dtmc, random_dtmc


class TestBooleanLayer:
    def test_true_false_atoms(self, two_path_chain):
        checker = DTMCModelChecker(two_path_chain)
        assert checker.satisfaction_set(parse_pctl("true")) == frozenset(
            two_path_chain.states
        )
        assert checker.satisfaction_set(parse_pctl("false")) == frozenset()
        assert checker.satisfaction_set(parse_pctl('"safe"')) == {"good"}

    def test_connectives(self, two_path_chain):
        checker = DTMCModelChecker(two_path_chain)
        assert checker.satisfaction_set(parse_pctl("safe | unsafe")) == {
            "good",
            "bad",
        }
        assert checker.satisfaction_set(parse_pctl("!safe & !unsafe")) == {"start"}
        assert checker.satisfaction_set(parse_pctl("safe => unsafe")) == {
            "start",
            "bad",
        }

    def test_unknown_formula_type_rejected(self, two_path_chain):
        with pytest.raises(TypeError):
            DTMCModelChecker(two_path_chain).satisfaction_set(object())


class TestNext:
    def test_next_probability(self, two_path_chain):
        checker = DTMCModelChecker(two_path_chain)
        result = checker.check(parse_pctl('P>=0.5 [ X "safe" ]'))
        assert result.value == pytest.approx(0.6)
        assert result.holds


class TestUnboundedUntil:
    def test_closed_form_reachability(self, two_path_chain):
        checker = DTMCModelChecker(two_path_chain)
        result = checker.check(parse_pctl('P>=0.6 [ F "safe" ]'))
        assert result.value == pytest.approx(2 / 3)
        assert result.holds

    def test_until_with_left_restriction(self):
        # a U b where leaving "a" before "b" fails the path.
        chain = DTMC(
            states=["s0", "s1", "other", "target"],
            transitions={
                "s0": {"s1": 0.5, "other": 0.5},
                "s1": {"target": 1.0},
                "other": {"target": 1.0},
                "target": {"target": 1.0},
            },
            initial_state="s0",
            labels={"s0": {"a"}, "s1": {"a"}, "target": {"b"}},
        )
        result = DTMCModelChecker(chain).check(parse_pctl('P>=0.5 [ "a" U "b" ]'))
        assert result.value == pytest.approx(0.5)

    def test_goal_state_has_probability_one(self, two_path_chain):
        checker = DTMCModelChecker(two_path_chain)
        values = checker.path_probabilities(
            Until(parse_pctl("true"), AtomicProposition("safe"))
        )
        assert values["good"] == 1.0
        assert values["bad"] == 0.0


class TestBoundedUntil:
    def test_zero_steps_only_immediate(self, simple_chain):
        checker = DTMCModelChecker(simple_chain)
        values = checker.path_probabilities(Eventually(AtomicProposition("goal"), 0))
        assert values[4] == 1.0
        assert values[0] == 0.0

    def test_exact_step_counting(self):
        chain = chain_dtmc(3, forward_probability=0.5)
        checker = DTMCModelChecker(chain)
        values = checker.path_probabilities(Eventually(AtomicProposition("goal"), 2))
        # Reach state 2 from 0 in exactly 2 steps: 0.25.
        assert values[0] == pytest.approx(0.25)

    def test_bounded_converges_to_unbounded(self, two_path_chain):
        checker = DTMCModelChecker(two_path_chain)
        unbounded = checker.path_probabilities(
            Eventually(AtomicProposition("safe"))
        )["start"]
        bounded = checker.path_probabilities(
            Eventually(AtomicProposition("safe"), 60)
        )["start"]
        assert bounded == pytest.approx(unbounded, abs=1e-6)

    def test_monotone_in_bound(self, two_path_chain):
        checker = DTMCModelChecker(two_path_chain)
        previous = 0.0
        for k in range(6):
            current = checker.path_probabilities(
                Eventually(AtomicProposition("safe"), k)
            )["start"]
            assert current >= previous - 1e-12
            previous = current


class TestGlobally:
    def test_globally_duality(self, two_path_chain):
        checker = DTMCModelChecker(two_path_chain)
        globally = checker.path_probabilities(Globally(Not(AtomicProposition("unsafe"))))
        eventually = checker.path_probabilities(
            Eventually(AtomicProposition("unsafe"))
        )
        for state in two_path_chain.states:
            assert globally[state] == pytest.approx(1 - eventually[state])

    def test_safety_property(self, two_path_chain):
        result = DTMCModelChecker(two_path_chain).check(
            parse_pctl('P>=0.5 [ G !"unsafe" ]')
        )
        assert result.value == pytest.approx(2 / 3)
        assert result.holds


class TestNestedFormulas:
    def test_probabilistic_operator_nested_in_atom_position(self, simple_chain):
        # States from which goal is reachable within 1 step w.p. >= 0.8.
        formula = parse_pctl('P>=0.5 [ F P>=0.8 [ X "goal" ] ]')
        result = DTMCModelChecker(simple_chain).check(formula)
        assert result.holds


class TestRewards:
    def test_expected_attempts(self, simple_chain):
        result = DTMCModelChecker(simple_chain).check(
            parse_pctl('R<=6 [ F "goal" ]')
        )
        assert result.value == pytest.approx(4 / 0.8)
        assert result.holds

    def test_reward_bound_violation(self, simple_chain):
        result = DTMCModelChecker(simple_chain).check(
            parse_pctl('R<=4 [ F "goal" ]')
        )
        assert not result.holds

    def test_infinite_reward_when_not_certain(self, two_path_chain):
        result = DTMCModelChecker(two_path_chain).check(
            parse_pctl('R<=100 [ F "safe" ]')
        )
        assert result.value == np.inf
        assert not result.holds


class TestPropertyBased:
    @given(st.integers(0, 2000))
    @settings(max_examples=30, deadline=None)
    def test_probabilities_in_unit_interval(self, seed):
        chain = random_dtmc(6, seed=seed)
        checker = DTMCModelChecker(chain)
        for atom in sorted(chain.atoms()):
            values = checker.path_probabilities(
                Eventually(AtomicProposition(atom))
            )
            for value in values.values():
                assert -1e-9 <= value <= 1 + 1e-9

    @given(st.integers(0, 2000))
    @settings(max_examples=20, deadline=None)
    def test_complement_semantics(self, seed):
        """Sat(P<b) and Sat(P>=b) partition the states."""
        chain = random_dtmc(6, seed=seed, num_labels=1)
        atoms = sorted(chain.atoms())
        if not atoms:
            return
        path = Eventually(AtomicProposition(atoms[0]))
        checker = DTMCModelChecker(chain)
        below = checker.satisfaction_set(ProbabilisticOperator("<", 0.5, path))
        at_least = checker.satisfaction_set(ProbabilisticOperator(">=", 0.5, path))
        assert below | at_least == frozenset(chain.states)
        assert below & at_least == frozenset()

    @given(st.integers(0, 2000))
    @settings(max_examples=15, deadline=None)
    def test_monte_carlo_agreement(self, seed):
        from repro.mdp import Simulator

        chain = random_dtmc(5, seed=seed, num_labels=1)
        atoms = sorted(chain.atoms())
        if not atoms:
            return
        targets = chain.states_with_atom(atoms[0])
        # The simulator truncates runs at max_steps, so compare against
        # the step-bounded exact probability: on slow-mixing chains the
        # unbounded probability can sit far above any truncated estimate.
        exact = DTMCModelChecker(chain).path_probabilities(
            Eventually(AtomicProposition(atoms[0]), 200)
        )[chain.initial_state]
        estimate = Simulator(seed=seed).estimate_reachability(
            chain, set(targets), samples=400, max_steps=200
        )
        assert estimate == pytest.approx(exact, abs=0.12)
