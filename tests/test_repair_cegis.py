"""CEGIS repair loop: localization, loop outcomes, wiring, serialization.

The loop's contract: verdicts agree with the global elimination path
wherever both run, every outcome is reported honestly (a candidate that
still violates after the budget is *not* ``verified``), and results
round-trip losslessly through the flavor registry and the service
queue with their telemetry counters summed.
"""

import pytest

from repro.casestudies import wsn
from repro.core.api import check_model, repair_cegis, repair_model
from repro.mdp import DTMC
from repro.repair import CegisIteration, CegisRepair, CegisRepairResult
from repro.repair.results import RepairResult


def violating_chain() -> DTMC:
    """P(F bad) = 0.7; repairable below 0.3 by shifting both rows."""
    return DTMC(
        states=["s", "a", "bad", "safe"],
        transitions={
            "s": {"bad": 0.5, "a": 0.5},
            "a": {"bad": 0.4, "safe": 0.6},
            "bad": {"bad": 1.0},
            "safe": {"safe": 1.0},
        },
        initial_state="s",
        labels={"bad": {"bad"}},
    )


BAD_FORMULA = 'P<=0.3 [ F "bad" ]'


class TestLoop:
    def test_repairs_and_verifies(self):
        result = repair_cegis(violating_chain(), BAD_FORMULA, seed=0)
        assert isinstance(result, CegisRepairResult)
        assert result.status == "repaired"
        assert result.verified
        assert result.iterations >= 1
        assert result.constraints_added == result.iterations
        assert result.fallbacks == 0  # P-upper-bound localizes cleanly
        assert result.counterexample_states > 0
        assert len(result.iteration_log) == result.iterations
        assert all(
            isinstance(entry, CegisIteration)
            for entry in result.iteration_log
        )
        # The repaired chain really satisfies the property.
        check = check_model(result.repaired_model, BAD_FORMULA)
        assert check.holds

    def test_already_satisfied_skips_the_loop(self):
        result = repair_cegis(violating_chain(), 'P<=0.9 [ F "bad" ]')
        assert result.status == "already_satisfied"
        assert result.iterations == 0
        assert result.iteration_log == []

    def test_budget_exhaustion_is_honest(self):
        # One iteration is not enough here; the result must say so
        # rather than claim success.
        result = repair_cegis(
            violating_chain(), BAD_FORMULA, max_iterations=1, seed=0
        )
        if result.status == "repaired" and not result.verified:
            assert "violates" in result.message
            assert result.iterations == 1
        else:  # a lucky single localization may legitimately verify
            assert result.verified

    def test_iteration_floor(self):
        with pytest.raises(ValueError):
            repair_cegis(violating_chain(), BAD_FORMULA, max_iterations=0)


class TestPaperScaleVerdicts:
    """CEGIS must agree with the global path on the paper's WSN cases."""

    @pytest.mark.parametrize(
        "bound, status",
        [(100, "already_satisfied"), (40, "repaired"), (19, "infeasible")],
    )
    def test_wsn_attempts_cases(self, bound, status):
        result = CegisRepair(wsn.model_repair_problem(bound)).repair(seed=0)
        assert result.status == status
        if status == "repaired":
            assert result.verified


class TestMonitoredScenario:
    """The scaling scenario: localization stays a thin corridor."""

    def test_localizes_without_fallback(self):
        size = 4
        chain = wsn.build_monitored_chain(size=size)
        value = check_model(
            chain, wsn.clean_delivery_property(1.0), engine="sparse"
        ).value
        bound = round(0.2 * value, 6)
        base = wsn.monitored_repair_problem(bound=bound, size=size)
        result = CegisRepair(base).repair(seed=0)
        assert result.status == "repaired"
        assert result.verified
        assert result.fallbacks == 0
        # The corridor is a strict subset of the grid.
        assert all(
            entry.restriction_size < len(chain.states)
            for entry in result.iteration_log
        )

    def test_matches_global_verdict_and_objective(self):
        size = 4
        chain = wsn.build_monitored_chain(size=size)
        value = check_model(
            chain, wsn.clean_delivery_property(1.0), engine="sparse"
        ).value
        bound = round(0.2 * value, 6)
        base = wsn.monitored_repair_problem(bound=bound, size=size)
        cegis = CegisRepair(base).repair(seed=0)
        globally = wsn.monitored_repair_problem(bound=bound, size=size).repair(
            seed=0
        )
        assert cegis.status == globally.status == "repaired"
        assert cegis.verified and globally.verified
        assert cegis.objective_value == pytest.approx(
            globally.objective_value, rel=1e-4
        )

    def test_bound_tightening_verifies_without_widening(self):
        # Force the escape hatch (threshold 0): instead of widening the
        # corridor after a failed verification, the loop steers the
        # newest constraint's bound onto the boundary with cheap
        # re-solves.  The candidate is concretely verified against the
        # full formula; the objective pays a bounded premium for
        # concentrating the repair on corridor parameters.
        size = 4
        chain = wsn.build_monitored_chain(size=size)
        value = check_model(
            chain, wsn.clean_delivery_property(1.0), engine="sparse"
        ).value
        bound = round(0.2 * value, 6)
        base = wsn.monitored_repair_problem(bound=bound, size=size)
        cegis = CegisRepair(base, tighten_after_seconds=0.0).repair(seed=0)
        globally = wsn.monitored_repair_problem(bound=bound, size=size).repair(
            seed=0
        )
        assert cegis.status == "repaired"
        assert cegis.verified
        assert sum(entry.tightenings for entry in cegis.iteration_log) > 0
        # Verified means feasible for the full problem, so the global
        # optimum is a floor; the concentration premium stays small.
        assert cegis.objective_value >= globally.objective_value - 1e-9
        assert cegis.objective_value == pytest.approx(
            globally.objective_value, rel=0.05
        )
        # Tightening replaces eliminations: a single corridor suffices.
        assert cegis.iterations == 1
        assert cegis.constraints_added == 1


class TestSerialization:
    def result(self):
        return repair_cegis(violating_chain(), BAD_FORMULA, seed=0)

    def test_round_trip_through_flavor_registry(self):
        result = self.result()
        payload = result.to_dict()
        assert payload["flavor"] == "cegis"
        clone = RepairResult.from_dict(payload)
        assert isinstance(clone, CegisRepairResult)
        assert clone.to_dict() == payload

    def test_iteration_log_survives(self):
        result = self.result()
        clone = RepairResult.from_dict(result.to_dict())
        assert len(clone.iteration_log) == len(result.iteration_log)
        for ours, theirs in zip(result.iteration_log, clone.iteration_log):
            assert ours.to_dict() == theirs.to_dict()

    def test_counters_visible_in_payload(self):
        payload = self.result().to_dict()
        assert payload["iterations"] >= 1
        assert payload["constraints_added"] >= 1
        assert payload["counterexample_states"] > 0


class TestServiceFrontDoor:
    """Acceptance: the ``cegis-repair`` job kind round-trips through the
    queue front door with its telemetry counters summed."""

    def test_queue_round_trip_sums_counters(self):
        import json

        from repro.service import (
            BatchRunner,
            CegisRepairJob,
            JobQueue,
            Telemetry,
            job_from_dict,
        )

        job = CegisRepairJob.for_model("cq", violating_chain(), BAD_FORMULA)
        # The job that enters the queue is the serialised form.
        job = job_from_dict(json.loads(json.dumps(job.to_dict())))
        telemetry = Telemetry()
        queue = JobQueue(
            runner_factory=lambda: BatchRunner(
                max_workers=0, telemetry=telemetry, max_retries=0
            ),
            telemetry=telemetry,
            capacity=4,
            workers=1,
        )
        try:
            record = queue.submit(job)
            assert queue.join(timeout=60)
            snap = queue.snapshot(record.ticket)
            assert snap["status"] == "succeeded"
            assert snap["outcome"]["result"]["flavor"] == "cegis"
        finally:
            queue.close()
        counters = telemetry.counters()
        assert counters["cegis_iterations"] >= 1
        assert counters["cegis_constraints_added"] >= 1
        assert counters["cegis_counterexample_states"] > 0

    def test_invalid_payload_rejected_at_the_door(self):
        import json

        from repro.service import CegisRepairJob, JobValidationError, job_from_dict

        job = CegisRepairJob.for_model("cx", violating_chain(), BAD_FORMULA)
        decoded = json.loads(
            json.dumps(job.to_dict()).replace('"seed": 0', '"seed": NaN')
        )
        with pytest.raises(JobValidationError, match="non-finite"):
            job_from_dict(decoded)


class TestGracefulDegradation:
    def test_reward_formula_still_repairs_via_fallback_accounting(self):
        # Reward localization on the paper grid covers the whole model,
        # so the loop degrades to the shared global elimination — and
        # must say so in its fallback accounting rather than pretend it
        # localized.
        result = CegisRepair(wsn.model_repair_problem(40)).repair(seed=0)
        assert result.status == "repaired"
        assert result.verified
        kinds = {entry.kind for entry in result.iteration_log}
        reasons = {
            entry.fallback_reason
            for entry in result.iteration_log
            if entry.kind == "global"
        }
        assert kinds <= {"localized", "global"}
        if result.fallbacks:
            assert reasons  # every global iteration names its reason

    def test_verdict_matches_global_engine(self):
        chain = violating_chain()
        cegis = repair_cegis(chain, BAD_FORMULA, seed=0)
        globally = repair_model(chain, BAD_FORMULA, seed=0)
        assert cegis.status == globally.status == "repaired"
        assert cegis.verified and globally.verified
