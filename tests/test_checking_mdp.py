"""Unit and property tests for the MDP PCTL checker."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checking import DTMCModelChecker, MDPModelChecker
from repro.logic import parse_pctl
from repro.logic.pctl import AtomicProposition, Eventually, Not
from repro.mdp import DTMC, MDP, random_dtmc, random_mdp


class TestMinMaxSemantics:
    def test_pmax_picks_best_action(self, two_action_mdp):
        checker = MDPModelChecker(two_action_mdp)
        values = checker.path_probabilities(
            Eventually(AtomicProposition("goal")), maximise=True
        )
        assert values["s"] == pytest.approx(0.9)

    def test_pmin_picks_worst_action(self, two_action_mdp):
        checker = MDPModelChecker(two_action_mdp)
        values = checker.path_probabilities(
            Eventually(AtomicProposition("goal")), maximise=False
        )
        assert values["s"] == pytest.approx(0.2)

    def test_upper_bound_formula_uses_pmax(self, two_action_mdp):
        # P<=0.5 [F goal] must hold under every scheduler: Pmax=0.9 > 0.5.
        result = MDPModelChecker(two_action_mdp).check(
            parse_pctl('P<=0.5 [ F "goal" ]')
        )
        assert result.value == pytest.approx(0.9)
        assert not result.holds

    def test_lower_bound_formula_uses_pmin(self, two_action_mdp):
        # P>=0.1 [F goal]: Pmin=0.2 >= 0.1 — every scheduler qualifies.
        result = MDPModelChecker(two_action_mdp).check(
            parse_pctl('P>=0.1 [ F "goal" ]')
        )
        assert result.value == pytest.approx(0.2)
        assert result.holds


class TestNextAndBounded:
    def test_next(self, two_action_mdp):
        checker = MDPModelChecker(two_action_mdp)
        result = checker.check(parse_pctl('P<=0.95 [ X "goal" ]'))
        assert result.value == pytest.approx(0.9)
        assert result.holds

    def test_bounded_until_step_zero(self, two_action_mdp):
        checker = MDPModelChecker(two_action_mdp)
        values = checker.path_probabilities(
            Eventually(AtomicProposition("goal"), 0), maximise=True
        )
        assert values["s"] == 0.0
        assert values["goal"] == 1.0

    def test_bounded_converges(self, two_action_mdp):
        checker = MDPModelChecker(two_action_mdp)
        bounded = checker.path_probabilities(
            Eventually(AtomicProposition("goal"), 50), maximise=True
        )["s"]
        assert bounded == pytest.approx(0.9, abs=1e-8)


class TestGlobally:
    def test_globally_duality(self, two_action_mdp):
        checker = MDPModelChecker(two_action_mdp)
        result = checker.check(parse_pctl('P>=0.05 [ G !"goal" ]'))
        # Pmin(G !goal) = 1 - Pmax(F goal) = 0.1
        assert result.value == pytest.approx(0.1)
        assert result.holds


class TestRewards:
    def test_reward_upper_bound_uses_rmax(self):
        mdp = MDP(
            states=["s", "t", "goal"],
            transitions={
                "s": {
                    "fast": {"goal": 1.0},
                    "slow": {"t": 1.0},
                },
                "t": {"a": {"goal": 1.0}},
                "goal": {"a": {"goal": 1.0}},
            },
            initial_state="s",
            labels={"goal": {"goal"}},
            state_rewards={"s": 1.0, "t": 1.0},
        )
        checker = MDPModelChecker(mdp)
        upper = checker.check(parse_pctl('R<=2 [ F "goal" ]'))
        assert upper.value == pytest.approx(2.0)  # Rmax via the slow route
        assert upper.holds
        lower = checker.check(parse_pctl('R>=1.5 [ F "goal" ]'))
        assert lower.value == pytest.approx(1.0)  # Rmin via the fast route
        assert not lower.holds

    def test_reward_infinite_when_scheduler_can_avoid(self, two_action_mdp):
        mdp = two_action_mdp.with_rewards(state_rewards={"s": 1.0})
        checker = MDPModelChecker(mdp)
        values = checker.expected_rewards(
            parse_pctl('R<=5 [ F "goal" ]'), maximise=True
        )
        # Neither action reaches the goal with probability 1.
        assert values["s"] == np.inf


class TestAgreementWithDtmc:
    def _as_mdp(self, chain: DTMC) -> MDP:
        return MDP(
            states=chain.states,
            transitions={
                s: {"only": dict(chain.transitions[s])} for s in chain.states
            },
            initial_state=chain.initial_state,
            labels=chain.labels,
            state_rewards=chain.state_rewards,
        )

    @given(st.integers(0, 2000))
    @settings(max_examples=20, deadline=None)
    def test_single_action_mdp_equals_chain(self, seed):
        chain = random_dtmc(5, seed=seed, num_labels=1)
        atoms = sorted(chain.atoms())
        if not atoms:
            return
        path = Eventually(AtomicProposition(atoms[0]))
        chain_values = DTMCModelChecker(chain).path_probabilities(path)
        mdp_checker = MDPModelChecker(self._as_mdp(chain))
        pmax = mdp_checker.path_probabilities(path, maximise=True)
        pmin = mdp_checker.path_probabilities(path, maximise=False)
        for state in chain.states:
            assert pmax[state] == pytest.approx(chain_values[state], abs=1e-8)
            assert pmin[state] == pytest.approx(chain_values[state], abs=1e-8)

    @given(st.integers(0, 2000))
    @settings(max_examples=15, deadline=None)
    def test_pmin_below_pmax(self, seed):
        mdp = random_mdp(5, num_actions=3, seed=seed)
        # Pick the first state as an ad-hoc target.
        target = mdp.states[-1]
        labelled = MDP(
            states=mdp.states,
            transitions=mdp.transitions,
            initial_state=mdp.initial_state,
            labels={target: {"t"}},
        )
        checker = MDPModelChecker(labelled)
        path = Eventually(AtomicProposition("t"))
        pmax = checker.path_probabilities(path, maximise=True)
        pmin = checker.path_probabilities(path, maximise=False)
        for state in labelled.states:
            assert pmin[state] <= pmax[state] + 1e-9


class TestWitnessScheduler:
    def test_pmax_witness_achieves_pmax(self, two_action_mdp):
        from repro.checking import DTMCModelChecker

        checker = MDPModelChecker(two_action_mdp)
        path = Eventually(AtomicProposition("goal"))
        witness = checker.witness_scheduler(path, maximise=True)
        assert witness["s"] == "a"
        induced = two_action_mdp.induced_dtmc(witness)
        achieved = DTMCModelChecker(induced).path_probabilities(path)["s"]
        assert achieved == pytest.approx(
            checker.path_probabilities(path, maximise=True)["s"]
        )

    def test_pmin_witness_achieves_pmin(self, two_action_mdp):
        from repro.checking import DTMCModelChecker

        checker = MDPModelChecker(two_action_mdp)
        path = Eventually(AtomicProposition("goal"))
        witness = checker.witness_scheduler(path, maximise=False)
        assert witness["s"] == "b"
        induced = two_action_mdp.induced_dtmc(witness)
        achieved = DTMCModelChecker(induced).path_probabilities(path)["s"]
        assert achieved == pytest.approx(0.2)

    def test_globally_witness_via_dual(self, two_action_mdp):
        from repro.logic.pctl import Globally

        checker = MDPModelChecker(two_action_mdp)
        witness = checker.witness_scheduler(
            Globally(Not(AtomicProposition("goal"))), maximise=True
        )
        # Maximising G !goal = minimising F goal: pick the weak action.
        assert witness["s"] == "b"

    def test_bounded_rejected(self, two_action_mdp):
        checker = MDPModelChecker(two_action_mdp)
        with pytest.raises(ValueError):
            checker.witness_scheduler(
                Eventually(AtomicProposition("goal"), 3), maximise=True
            )

    def test_random_mdp_witness_consistency(self):
        from repro.checking import DTMCModelChecker
        from repro.mdp import MDP

        base = random_mdp(6, num_actions=3, seed=42)
        target = base.states[-1]
        mdp = MDP(
            states=base.states,
            transitions=base.transitions,
            initial_state=base.initial_state,
            labels={target: {"t"}},
        )
        checker = MDPModelChecker(mdp)
        path = Eventually(AtomicProposition("t"))
        for maximise in (True, False):
            witness = checker.witness_scheduler(path, maximise=maximise)
            induced = mdp.induced_dtmc(witness)
            achieved = DTMCModelChecker(induced).path_probabilities(path)
            optimal = checker.path_probabilities(path, maximise=maximise)
            assert achieved[mdp.initial_state] == pytest.approx(
                optimal[mdp.initial_state], abs=1e-7
            )
