"""Shim for legacy editable installs (`pip install -e .`) on machines
without the `wheel` package; configuration lives in pyproject.toml."""

from setuptools import setup

setup()
