"""Section V-A: query routing in a wireless sensor network.

Reproduces the paper's Model Repair cases (already-satisfied / feasible /
infeasible) and the Data Repair case on observation traces.

Run with::

    python examples/wsn_query_routing.py
"""

from repro.casestudies import wsn
from repro.checking import DTMCModelChecker


def model_repair_cases() -> None:
    chain = wsn.build_wsn_chain()
    expected = DTMCModelChecker(chain).check(wsn.attempts_property(1)).value
    print("== Model Repair (Section V-A.1) ==")
    print(f"expected attempts n33 -> n11 of the learned model: {expected:.2f}")

    for bound in (100, 40, 19):
        result = wsn.model_repair_problem(bound).repair()
        line = f"R{{attempts}} <= {bound:>3}: {result.status}"
        if result.status == "repaired":
            corrections = ", ".join(
                f"{name}={value:.4f}" for name, value in result.assignment.items()
            )
            line += f" ({corrections}, epsilon={result.epsilon:.4f})"
        print(line)


def data_repair_case() -> None:
    print()
    print("== Data Repair (Section V-A.2) ==")
    dataset = wsn.generate_observation_dataset(episodes=400, seed=7)
    sizes = ", ".join(
        f"{name}: {len(dataset.group(name))}" for name in dataset.group_names()
    )
    print(f"observation groups: {sizes}")

    repair = wsn.data_repair_problem(dataset, bound=wsn.DEFAULT_DATA_REPAIR_BOUND)
    learned = repair.learned_model()
    before = DTMCModelChecker(learned).check(wsn.attempts_property(1)).value
    print(f"MLE model expected attempts: {before:.2f} "
          f"(bound {wsn.DEFAULT_DATA_REPAIR_BOUND})")

    result = repair.repair()
    print(f"data repair: {result.status}")
    for group, probability in result.drop_probabilities.items():
        print(f"  drop probability for {group}: {probability:.4f}")
    print(f"  expected traces dropped: {result.expected_dropped:.1f} "
          f"of {dataset.total_traces()}")
    after = DTMCModelChecker(result.repaired_model).check(
        wsn.attempts_property(1)
    ).value
    print(f"re-learned model expected attempts: {after:.2f}")


if __name__ == "__main__":
    model_repair_cases()
    data_repair_case()
