"""Diagnostics around a repair: counterexamples, DOT diffs, certificates.

The full trust workflow on a small service chain:

1. check a safety bound and find it violated;
2. extract the smallest counterexample (which behaviours are to blame);
3. Model-Repair the chain;
4. render the repair as a Graphviz diff (what changed, by how much);
5. certify how much further parameter drift the repaired model
   tolerates (interval-chain robustness certificate).

Run with::

    python examples/robustness_and_diagnostics.py
"""

from repro import DTMC, DTMCModelChecker, ModelRepair, parse_pctl
from repro.checking import counterexample
from repro.io import repair_diff_to_dot
from repro.mdp import robustness_certificate


def build_service_chain() -> DTMC:
    """A request pipeline where retries can spiral into an overload."""
    return DTMC(
        states=["idle", "serving", "retrying", "overload", "done"],
        transitions={
            "idle": {"serving": 1.0},
            "serving": {"done": 0.7, "retrying": 0.3},
            "retrying": {"serving": 0.55, "overload": 0.3, "retrying": 0.15},
            "overload": {"overload": 1.0},
            "done": {"done": 1.0},
        },
        initial_state="idle",
        labels={"overload": {"overload"}, "done": {"done"}},
    )


def main() -> None:
    chain = build_service_chain()
    formula = parse_pctl('P<=0.1 [ F "overload" ]')

    print("== 1. Check ==")
    check = DTMCModelChecker(chain).check(formula)
    print(f"{formula!r}: holds={check.holds} "
          f"(P(F overload) = {check.value:.4f})")

    print()
    print("== 2. Counterexample ==")
    evidence = counterexample(chain, formula)
    print(f"{len(evidence)} highest-probability overload paths carry "
          f"{evidence.total_probability:.4f} > {formula.bound} of mass:")
    for path, probability in zip(evidence.paths[:5], evidence.probabilities[:5]):
        print(f"  {probability:.4f}  {' -> '.join(path)}")

    print()
    print("== 3. Model Repair ==")
    result = ModelRepair.for_chain(
        chain, formula, controllable_states=["retrying", "serving"]
    ).repair()
    print(f"status: {result.status}, cost: {result.objective_value:.5f}, "
          f"epsilon: {result.epsilon:.4f}")
    repaired = result.repaired_model
    after = DTMCModelChecker(repaired).check(formula)
    print(f"P(F overload) after repair: {after.value:.4f}")

    print()
    print("== 4. Graphviz diff (changed edges in red) ==")
    print(repair_diff_to_dot(chain, repaired))

    print("== 5. Robustness certificate ==")
    for epsilon in (0.0, 0.005, 0.01, 0.02):
        certified = robustness_certificate(repaired, formula, epsilon)
        print(f"  all ±{epsilon:.3f}-perturbations satisfy the bound: "
              f"{certified}")


if __name__ == "__main__":
    main()
