"""Quickstart: learn a Markov chain from traces, check a PCTL trust
property, and repair the model when it fails.

Run with::

    python examples/quickstart.py
"""

from repro import (
    DTMCModelChecker,
    ModelRepair,
    Simulator,
    chain_dtmc,
    learn_dtmc,
    parse_pctl,
)


def main() -> None:
    # 1. A ground-truth system we only observe through traces: a five-stage
    #    task pipeline that advances with probability 0.55 per attempt.
    truth = chain_dtmc(5, forward_probability=0.55)
    simulator = Simulator(seed=7)
    traces = simulator.sample_chain_many(truth, count=500, stop_states={4})
    print(f"simulated {len(traces)} traces from the ground-truth system")

    # 2. Learn a model by maximum likelihood (the paper's ML procedure).
    learned = learn_dtmc(
        traces,
        initial_state=0,
        states=truth.states,
        labels={4: {"goal"}},
        state_rewards={stage: 1.0 for stage in range(4)},
    )
    print(f"learned forward probability at stage 0: "
          f"{learned.probability(0, 1):.3f}")

    # 3. The trust property: finish within 6 attempts in expectation.
    formula = parse_pctl('R<=6 [ F "goal" ]')
    check = DTMCModelChecker(learned).check(formula)
    print(f"learned model satisfies {formula!r}? {check.holds} "
          f"(expected attempts: {check.value:.2f})")

    # 4. Model Repair: the smallest structure-preserving perturbation of
    #    the transition probabilities that makes the property hold.
    result = ModelRepair.for_chain(learned, formula).repair()
    print(f"repair status: {result.status}")
    print(f"perturbation cost g(Z) = {result.objective_value:.5f}")
    print(f"epsilon-bisimulation bound (Prop. 1): {result.epsilon:.4f}")

    # 5. The repaired model provably satisfies the property.
    repaired_check = DTMCModelChecker(result.repaired_model).check(formula)
    print(f"repaired model satisfies the property? {repaired_check.holds} "
          f"(expected attempts: {repaired_check.value:.2f})")


if __name__ == "__main__":
    main()
