"""Constrained EM for hidden Markov models (the paper's conclusion).

A network-intrusion monitor learns an HMM over hidden {benign, attack}
modes from alert-volume observations.  Domain knowledge says an attack
never de-escalates silently ("attack -> benign without a 'quiet'
observation is implausible"); plain Baum-Welch learns such transitions
anyway from noisy data, while constrained Baum-Welch folds the rule
into the E-step — exactly the extension sketched in the paper's
conclusion.  Finally, the learned hidden chain is Model-Repaired
against a PCTL recovery-time property.

Run with::

    python examples/hmm_constrained_learning.py
"""

import numpy as np

from repro.hmm import (
    HMM,
    baum_welch,
    constrained_baum_welch,
    forbid_transition,
    repair_hidden_chain,
)
from repro.logic import parse_pctl


def ground_truth() -> HMM:
    return HMM(
        states=["benign", "attack"],
        symbols=["quiet", "noisy"],
        initial={"benign": 0.9, "attack": 0.1},
        transitions={
            "benign": {"benign": 0.9, "attack": 0.1},
            "attack": {"benign": 0.25, "attack": 0.75},
        },
        emissions={
            "benign": {"quiet": 0.85, "noisy": 0.15},
            "attack": {"quiet": 0.2, "noisy": 0.8},
        },
    )


def main() -> None:
    rng = np.random.default_rng(42)
    truth = ground_truth()
    sequences = [truth.sample(80, rng)[1] for _ in range(20)]
    print(f"training on {len(sequences)} alert sequences of length 80")

    plain, plain_trace = baum_welch(
        sequences, states=["h_benign", "h_attack"], iterations=30, seed=1
    )
    print()
    print("plain Baum-Welch:")
    print(f"  log-likelihood: {plain_trace[-1]:.1f}")
    print(f"  P(h_benign -> h_attack) = {plain.A[0, 1]:.4f}")
    print(f"  P(h_attack -> h_benign) = {plain.A[1, 0]:.4f}")

    rule = forbid_transition("h_attack", "h_benign", weight=6.0)
    constrained, constrained_trace = constrained_baum_welch(
        sequences,
        states=["h_benign", "h_attack"],
        constraints=[rule],
        iterations=30,
        seed=1,
    )
    print()
    print(f"constrained Baum-Welch (rule: {rule.name}, lambda=6):")
    print(f"  log-likelihood: {constrained_trace[-1]:.1f}")
    print(f"  P(h_attack -> h_benign) = {constrained.A[1, 0]:.4f} "
          f"(plain: {plain.A[1, 0]:.4f})")
    cost = constrained_trace[-1] - plain_trace[-1]
    print(f"  likelihood cost of the constraint: {cost:.2f} nats")

    print()
    print("Model Repair on the constrained model's hidden chain:")
    print("  the hard constraint drove recovery to ~0, breaking the")
    print("  liveness property 'expected steps back to benign <= 4' —")
    print("  Model Repair restores the minimum recovery rate:")
    formula = parse_pctl('R<=4 [ F "recovered" ]')
    repaired_hmm, result = repair_hidden_chain(
        constrained,
        formula,
        labels={"h_benign": {"recovered"}},
        initial_state="h_attack",
        state_rewards={"h_attack": 1.0},
    )
    print(f"  status: {result.status}, epsilon = {result.epsilon:.4f}")
    if result.feasible:
        print(f"  repaired P(h_attack -> h_benign) = "
              f"{repaired_hmm.A[1, 0]:.4f} "
              f"(was {constrained.A[1, 0]:.2e})")


if __name__ == "__main__":
    main()
