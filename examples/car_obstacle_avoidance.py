"""Section V-B: reward repair for an obstacle-avoiding car controller.

The full story: learn a reward by MaxEnt IRL from the expert overtake,
discover the optimal policy drives into the van at S1, then repair the
reward two ways — the Q-value-constrained projection the paper uses in
the case study, and the Proposition 4 posterior-regularised projection.

Run with::

    python examples/car_obstacle_avoidance.py
"""

import numpy as np

from repro.casestudies import car
from repro.core import QValueConstraint, RewardRepair
from repro.learning import MaxEntIRL
from repro.logic.ltl import LGlobally, state_atom
from repro.logic.rules import LtlRule


def describe_policy(mdp, policy, label: str) -> None:
    offenders = car.states_leading_to_unsafe(mdp, policy)
    action_names = {0: "forward", 1: "left", 2: "right"}
    print(f"{label}:")
    print(f"  action at S1: {action_names[policy['S1']]}")
    print(f"  states whose trajectory hits S2/S10: {offenders or 'none'}")
    print(f"  safe: {car.policy_is_safe(mdp, policy)}")


def main() -> None:
    mdp = car.build_car_mdp()
    features = car.car_features()
    repairer = RewardRepair(mdp, features, discount=car.DISCOUNT)

    print("== Learning the reward by MaxEnt IRL ==")
    demo = car.expert_demonstration()
    print(f"expert demonstration: {demo!r}")
    irl = MaxEntIRL(mdp, features, horizon=7, learning_rate=0.2,
                    max_iterations=250)
    fit = irl.fit([demo])
    print(f"learned theta: {np.round(fit.theta, 3)} "
          f"(paper reports {car.PAPER_LEARNED_THETA})")

    describe_policy(mdp, repairer.optimal_policy(fit.theta),
                    "optimal policy under the learned reward")

    print()
    print("== Reward Repair: Q-value constraint (paper's case study) ==")
    constraint = QValueConstraint("S1", car.LEFT, car.FORWARD)
    result = repairer.q_constrained(fit.theta, [constraint])
    print(f"repaired theta: {np.round(result.theta_after, 3)} "
          f"(delta {np.round(result.theta_delta(), 3)})")
    describe_policy(mdp, result.policy_after, "policy after Q-constrained repair")

    print()
    print("== Reward Repair: Proposition 4 projection ==")
    rule = LtlRule(LGlobally(~state_atom("S2")), weight=25.0,
                   name="never-collide")
    projected = repairer.project(
        car.PAPER_LEARNED_THETA,
        [rule],
        horizon=6,
        stop_states={"End"},
        learning_rate=0.15,
        max_iterations=150,
    )
    d = projected.diagnostics
    print(f"P(collision trajectory) before projection : "
          f"{d['violation_probability_before']:.4f}")
    print(f"P(collision trajectory) after projection  : "
          f"{d['violation_probability_projected']:.6f}")
    print(f"P(collision trajectory) under refit reward: "
          f"{d['violation_probability_after']:.4f}")
    print(f"KL(Q || P): {d['kl_q_from_p']:.4f}")

    print()
    print("== Reproducing the paper's exact numbers ==")
    learned_policy = repairer.optimal_policy(car.PAPER_LEARNED_THETA)
    repaired_policy = repairer.optimal_policy(car.PAPER_REPAIRED_THETA)
    describe_policy(mdp, learned_policy,
                    f"paper learned theta {car.PAPER_LEARNED_THETA}")
    describe_policy(mdp, repaired_policy,
                    f"paper repaired theta {car.PAPER_REPAIRED_THETA}")


if __name__ == "__main__":
    main()
