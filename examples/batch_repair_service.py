"""The batch repair service end-to-end: jobs file -> runner -> telemetry.

Builds a mixed batch over the paper's case studies — WSN query routing
(expected-attempts checks), an edge-wise Model Repair of a slow chain,
and the car controller's Reward Repair — writes it to a JSON jobs file
exactly as ``repro
batch`` would consume it, runs it through the fault-tolerant runner
with a persistent result store, and prints the per-job outcomes and
telemetry summary.  A second, warm run of the same file then shows the
content-addressed store at work: every job is served from disk and no
parametric elimination is repeated.

Run with::

    python examples/batch_repair_service.py
"""

import tempfile
from pathlib import Path

from repro.casestudies import car, wsn
from repro.mdp import chain_dtmc
from repro.service import (
    BatchRunner,
    CheckJob,
    ModelRepairJob,
    RewardRepairJob,
    Telemetry,
    load_jobs,
    save_jobs,
)


def build_jobs():
    chain = wsn.build_wsn_chain()
    mdp = car.build_car_mdp()
    return [
        CheckJob.for_model(
            "wsn-check-100", chain, 'R<=100 [ F "delivered" ]'
        ),
        CheckJob.for_model(
            "wsn-check-40", chain, 'R<=40 [ F "delivered" ]'
        ),
        ModelRepairJob.for_model(
            "chain-repair",
            chain_dtmc(5, forward_probability=0.5),
            'R<=6 [ F "goal" ]',
        ),
        RewardRepairJob.for_mdp(
            "car-reward-repair",
            mdp,
            car.car_features().table,
            car.PAPER_LEARNED_THETA,
            [{"state": "S1", "preferred": car.LEFT,
              "dispreferred": car.FORWARD}],
            discount=car.DISCOUNT,
        ),
    ]


def run_once(jobs_path, store_dir, label):
    print(f"== {label} ==")
    telemetry = Telemetry()
    runner = BatchRunner(
        max_workers=0,  # inline; pass e.g. 4 to fan out over processes
        store_dir=store_dir,
        telemetry=telemetry,
        max_retries=2,
    )
    report = runner.run(load_jobs(jobs_path))
    for outcome in report:
        extra = " (from store)" if outcome.cached else ""
        print(
            f"  {outcome.job_id:<20} {outcome.status:<12} "
            f"attempts={outcome.attempts}{extra}"
        )
        if outcome.job_id == "chain-repair" and not outcome.cached:
            assignment = outcome.result.get("assignment", {})
            corrections = ", ".join(
                f"{k}={v:.4f}" for k, v in sorted(assignment.items())
            )
            print(f"      corrections: {corrections}")
    print(f"  wall clock: {report.wall_clock:.2f}s")
    counters = telemetry.counters()
    print(
        "  parametric eliminations: "
        f"{counters.get('parametric_eliminations', 0)}, "
        f"solver iterations: {counters.get('solver_iterations', 0)}"
    )
    print(telemetry.summary())
    print()
    return report


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-batch-"))
    jobs_path = workdir / "jobs.json"
    store_dir = str(workdir / "store")

    save_jobs(build_jobs(), jobs_path)
    print(f"jobs file: {jobs_path}  (runnable via: repro batch {jobs_path})")
    print()

    run_once(jobs_path, store_dir, "cold run")
    warm = run_once(jobs_path, store_dir, "warm re-run (same store)")
    assert all(outcome.cached for outcome in warm if outcome.ok)


if __name__ == "__main__":
    main()
