"""The Section II decision procedure on a custom domain.

A ground station learns a retry model for a flaky satellite uplink from
grouped telemetry, and needs the trust property "a frame is delivered
within 5 expected attempts".  The pipeline tries: learned model →
Model Repair (capped perturbations) → Data Repair, and reports which
stage produced the trusted model.  Also demonstrates serialisation and
PRISM export of the final model.

Run with::

    python examples/custom_repair_pipeline.py
"""

import tempfile
from pathlib import Path

from repro import (
    DataRepair,
    DTMCModelChecker,
    ModelRepair,
    TraceDataset,
    TraceGroup,
    Trajectory,
    TrustedLearningPipeline,
    parse_pctl,
)
from repro.io import dtmc_to_prism, load_model, save_model


def telemetry() -> TraceDataset:
    """Grouped uplink observations: sends that got an ACK vs timeouts.

    The timeout group is contaminated by a ground-side clock bug, so it
    is droppable; ACKed sends are trusted hardware records.
    """
    acked = [Trajectory.from_states(["sending", "delivered"])] * 15
    timeouts = [Trajectory.from_states(["sending", "sending"])] * 85
    return TraceDataset(
        [
            TraceGroup("acked", acked, droppable=False),
            TraceGroup("timeouts", timeouts),
        ]
    )


def main() -> None:
    formula = parse_pctl('R<=5 [ F "delivered" ]')
    states = ["sending", "delivered"]
    labels = {"delivered": {"delivered"}}
    rewards = {"sending": 1.0}

    def data_repair_factory(dataset: TraceDataset) -> DataRepair:
        return DataRepair(
            dataset=dataset,
            formula=formula,
            initial_state="sending",
            states=states,
            labels=labels,
            state_rewards=rewards,
        )

    def model_repair_factory(chain) -> ModelRepair:
        # Hardware specs bound how far the model may be adjusted.
        return ModelRepair.for_chain(chain, formula, max_perturbation=0.02)

    pipeline = TrustedLearningPipeline(
        dataset=telemetry(),
        formula=formula,
        data_repair_factory=data_repair_factory,
        model_repair_factory=model_repair_factory,
    )
    report = pipeline.run()
    print(report.summary())
    print()

    model = report.model
    value = DTMCModelChecker(model).check(formula).value
    print(f"final model expected attempts: {value:.2f}")

    # Persist and export the trusted model.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trusted_uplink.json"
        save_model(model, path)
        reloaded = load_model(path)
        print(f"round-tripped through {path.name}: "
              f"{DTMCModelChecker(reloaded).check(formula).holds}")
    print()
    print("PRISM export of the trusted model:")
    print(dtmc_to_prism(model))


if __name__ == "__main__":
    main()
