"""Nonlinear programs over named variables, solved with scipy.

The repair formulations produce problems of the shape

    min  g(v)                       (cost of the perturbation)
    s.t. f(v) ⋈ b                   (parametric model-checking constraint)
         lower_k < v_k < upper_k    (stochasticity box constraints)

``NonlinearProgram`` holds named variables so the symbolic layer and the
numeric layer agree on ordering; solving uses SLSQP from several start
points (the constraint surface of a rational function is non-convex, so
multi-start materially improves the feasible-hit rate).  Infeasibility
is reported when no start point yields a feasible local optimum — the
verdict the paper's ``X = 19`` Model Repair case relies on.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize as scipy_optimize

from repro.checking.parametric import ParametricConstraint

Assignment = Dict[str, float]

logger = logging.getLogger(__name__)

_STRICT_EPSILON = 1e-9
_FEASIBILITY_TOLERANCE = 1e-7
#: Half-width of the jitter box used for variables with an infinite bound
#: (centred on the variable's initial value).
_UNBOUNDED_JITTER = 1.0
#: Largest ``starts × variables`` block the fused multi-start path hands
#: SLSQP as one joint program.  Below this, one block-diagonal solve
#: replaces every per-start ``minimize`` call (the dispatch-bound
#: regime); above it, SLSQP's dense BFGS/QP machinery outgrows the saved
#: python overhead and the per-start loop wins.
_JOINT_DIMENSION_LIMIT = 64

#: Joint constraint-row budget: SLSQP's QP subproblem scales with
#: (constraint rows × dimension²), so stacking m starts multiplies both
#: factors.  Past this many joint rows the enlarged subproblem costs
#: more than the saved per-start ``minimize`` overhead — measured on the
#: corpus, problems with several perturbation/row-sum side constraints
#: solve faster per start even though the fused kernel itself is cheap.
_JOINT_CONSTRAINT_LIMIT = 32


class _FusedEvaluation:
    """Per-iterate memo over one stacked kernel.

    SLSQP asks for the constraint vector and its jacobian at the same
    iterate through separate callbacks; one fused kernel call computes
    both, and this memo hands the second request the stored answer.  One
    instance per SLSQP run — the key is the iterate's raw bytes.
    """

    __slots__ = ("kernel", "columns", "dimension", "shifts",
                 "key", "margins", "jacobian")

    def __init__(self, kernel, columns, dimension, shifts):
        self.kernel = kernel
        self.columns = columns
        self.dimension = dimension
        self.shifts = shifts
        self.key = None

    def at(self, x: np.ndarray):
        key = x.tobytes()
        if self.key != key:
            margins, jacobian = self.kernel.margins_and_jacobian(
                x[self.columns]
            )
            full = np.zeros((self.kernel.size, self.dimension))
            full[:, self.columns] = jacobian
            self.key = key
            self.margins = margins - self.shifts
            self.jacobian = full
        return self.margins, self.jacobian


class Variable:
    """A named decision variable with box bounds and an initial guess."""

    def __init__(
        self,
        name: str,
        lower: float = -np.inf,
        upper: float = np.inf,
        initial: float = 0.0,
    ):
        if lower > upper:
            raise ValueError(f"variable {name}: lower bound exceeds upper bound")
        self.name = name
        self.lower = float(lower)
        self.upper = float(upper)
        self.initial = float(np.clip(initial, lower, upper))

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, [{self.lower}, {self.upper}])"


class Constraint:
    """An inequality ``margin(v) >= 0``.

    ``strict=True`` shifts the margin by a small ε so strict
    inequalities of the PCTL comparison survive the solver's closed
    feasible set; ``shift`` adds a further safety margin so boundary
    optima still verify under exact re-checking.

    ``gradient`` (optional) returns the analytic partials of the *raw*
    margin as a name→value mapping — the shift is constant, so the same
    gradient serves the shifted value; the solver passes it to SLSQP as
    the constraint jacobian instead of finite-differencing.
    ``batch_margin`` (optional) evaluates raw margins for a whole
    ``(m, n)`` matrix of points at once (columns ordered by a ``names``
    sequence); the multi-start seeder screens candidate start points
    through it in one vectorized pass.

    ``stack_spec`` (optional) declares the margin *stackable*: a
    ``(function, sign, bound)`` triple with ``margin = sign · (f − b)``
    for a rational ``f``.  The solver fuses every stackable constraint
    into one :class:`~repro.symbolic.compile.StackedConstraintKernel`,
    so SLSQP sees a single vector-valued constraint instead of N python
    callbacks.  ``stack_kernel`` (optional) is a zero-argument provider
    of a pre-built one-row kernel for this spec (e.g. the cached
    :meth:`ParametricConstraint.stacked`), letting the solver skip
    recompilation.  The per-constraint ``margin``/``gradient`` path
    stays behind as the fallback for non-stackable constraints and for
    ``stacked=False`` solves.
    """

    def __init__(
        self,
        margin: Callable[[Assignment], float],
        name: str = "constraint",
        strict: bool = False,
        shift: float = 0.0,
        gradient: Optional[Callable[[Assignment], Mapping[str, float]]] = None,
        batch_margin: Optional[Callable] = None,
        stack_spec: Optional[Tuple] = None,
        stack_kernel: Optional[Callable] = None,
    ):
        self.margin = margin
        self.name = name
        self.strict = strict
        self.shift = float(shift)
        self.gradient = gradient
        self.batch_margin = batch_margin
        self.stack_spec = stack_spec
        self.stack_kernel = stack_kernel

    def _total_shift(self) -> float:
        return self.shift + (_STRICT_EPSILON if self.strict else 0.0)

    def value(self, assignment: Assignment) -> float:
        """The (possibly ε-shifted) margin at a point."""
        return float(self.margin(assignment)) - self._total_shift()

    def batch_values(self, points, names) -> "np.ndarray":
        """Shifted margins for an ``(m, n)`` matrix (requires the hook)."""
        raw = np.asarray(self.batch_margin(points, names), dtype=float)
        return raw - self._total_shift()

    def satisfied(self, assignment: Assignment) -> bool:
        """Whether the constraint holds within tolerance."""
        return self.value(assignment) >= -_FEASIBILITY_TOLERANCE

    def __repr__(self) -> str:
        return f"Constraint({self.name!r}, strict={self.strict})"


def constraint_from_parametric(
    parametric: ParametricConstraint,
    name: str = "pctl",
    safety_margin: float = 1e-6,
    compiled: bool = True,
) -> Constraint:
    """Adapt a parametric model-checking constraint ``f(v) ⋈ b``.

    ``safety_margin`` keeps solutions strictly inside the feasible set;
    without it, boundary optima can fail the exact concrete re-check by
    a rounding hair.  The margin is relative to the bound's magnitude.

    With ``compiled=True`` (default) the margin, its analytic gradient
    and the batch screener all run through the constraint's numpy
    kernel (:meth:`ParametricConstraint.compiled`); ``compiled=False``
    keeps the pure-symbolic evaluation path with finite-difference
    jacobians — the pre-kernel behaviour, retained for the
    compiled-vs-symbolic benchmarks.
    """
    shift = safety_margin * max(1.0, abs(parametric.bound))
    strict = parametric.comparison in ("<", ">")
    if not compiled:
        return Constraint(
            margin=parametric.margin, name=name, strict=strict, shift=shift
        )
    return Constraint(
        margin=parametric.fast_margin,
        name=name,
        strict=strict,
        shift=shift,
        gradient=parametric.margin_gradient,
        batch_margin=parametric.margin_batch,
        stack_spec=(parametric.function, parametric._sign, parametric.bound),
        stack_kernel=parametric.stacked,
    )


class OptimizationResult:
    """Outcome of solving a nonlinear program.

    Attributes
    ----------
    feasible:
        Whether a point satisfying every constraint was found.
    assignment:
        The best feasible point (or the least-infeasible one otherwise).
    objective_value:
        Objective at ``assignment``.
    starts_tried:
        Number of start points attempted.
    message:
        Human-readable solver summary.
    solver_stats:
        Aggregate SLSQP accounting across all starts: ``iterations``,
        ``function_evaluations``, ``starts_converged``, ``starts_failed``
        (previously swallowed; surfaced for the service telemetry).
    """

    def __init__(
        self,
        feasible: bool,
        assignment: Assignment,
        objective_value: float,
        starts_tried: int,
        message: str,
        solver_stats: Optional[Dict[str, int]] = None,
    ):
        self.feasible = feasible
        self.assignment = assignment
        self.objective_value = objective_value
        self.starts_tried = starts_tried
        self.message = message
        self.solver_stats = dict(solver_stats or {})

    def __repr__(self) -> str:
        return (
            f"OptimizationResult(feasible={self.feasible}, "
            f"objective={self.objective_value:.6g}, "
            f"assignment={ {k: round(v, 6) for k, v in self.assignment.items()} })"
        )


class NonlinearProgram:
    """A smooth constrained minimisation over named variables.

    Examples
    --------
    >>> program = NonlinearProgram(
    ...     variables=[Variable("x", -1, 1), Variable("y", -1, 1)],
    ...     objective=lambda v: v["x"] ** 2 + v["y"] ** 2,
    ...     constraints=[Constraint(lambda v: v["x"] + v["y"] - 1.0)],
    ... )
    >>> result = program.solve()
    >>> result.feasible
    True
    >>> round(result.assignment["x"], 3)
    0.5
    """

    def __init__(
        self,
        variables: Sequence[Variable],
        objective: Callable[[Assignment], float],
        constraints: Sequence[Constraint] = (),
        objective_gradient: Optional[
            Callable[[Assignment], Mapping[str, float]]
        ] = None,
    ):
        if not variables:
            raise ValueError("program needs at least one variable")
        names = [v.name for v in variables]
        if len(set(names)) != len(names):
            raise ValueError("duplicate variable names")
        self.variables = list(variables)
        self.objective = objective
        #: Optional analytic partials of the objective (name→value
        #: mapping); when present it is passed to SLSQP as ``jac=``.
        self.objective_gradient = objective_gradient
        self.constraints = list(constraints)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _to_assignment(self, vector: np.ndarray) -> Assignment:
        return {
            variable.name: float(value)
            for variable, value in zip(self.variables, vector)
        }

    def _start_points(
        self, extra_starts: int, seed: int, oversample: int = 1
    ) -> List[np.ndarray]:
        rng = np.random.default_rng(seed)
        lows = np.array([v.lower for v in self.variables])
        highs = np.array([v.upper for v in self.variables])
        initials = np.array([v.initial for v in self.variables])
        bounded = np.isfinite(lows) & np.isfinite(highs)
        if not bounded.all():
            # Clamping an infinite bound to ±1 (the old behaviour) can
            # place every start outside the feasible region of a
            # one-sided-bounded variable (e.g. lower=2, upper=inf);
            # jitter around the initial value instead.
            names = [
                v.name for v, is_bounded in zip(self.variables, bounded)
                if not is_bounded
            ]
            logger.warning(
                "variables %s have an infinite bound; jittered start points "
                "are centred on their initial values instead of the box",
                names,
            )
        span_low = np.where(bounded, lows, initials - _UNBOUNDED_JITTER)
        span_high = np.where(bounded, highs, initials + _UNBOUNDED_JITTER)
        points = [initials.copy()]
        # Include the box midpoint (the initial value where unbounded)
        # and uniform jitter over the (possibly recentred) box.
        midpoints = initials.copy()
        midpoints[bounded] = (lows[bounded] + highs[bounded]) / 2.0
        points.append(midpoints)
        for _ in range(extra_starts * max(1, oversample)):
            draw = span_low + rng.random(len(self.variables)) * (
                span_high - span_low
            )
            points.append(np.clip(draw, lows, highs))
        return points

    def _screen_starts(
        self,
        starts: List[np.ndarray],
        keep: int,
        stack=None,
        columns=None,
        shifts=None,
        skip_ids=frozenset(),
    ) -> List[np.ndarray]:
        """Vectorized multi-start seeding over an oversampled candidate pool.

        The initial point and the box midpoint (``starts[:2]``) always
        survive; the random candidates are scored by their worst shifted
        margin (higher is closer to feasible) and only the ``keep`` most
        promising ones are solved.  With a stacked kernel the whole
        ``(starts × constraints)`` margin matrix comes from **one**
        fused batch call; remaining batch-capable constraints contribute
        one ``evaluate_batch`` pass each.
        """
        fixed, candidates = starts[:2], starts[2:]
        if len(candidates) <= keep:
            return starts
        names = [v.name for v in self.variables]
        matrix = np.stack(candidates)
        score = np.full(len(candidates), np.inf)
        screened = False
        if stack is not None:
            margins = stack.margins_batch(matrix[:, columns]) - shifts
            margins = np.where(np.isfinite(margins), margins, -np.inf)
            score = np.minimum(score, margins.min(axis=1))
            screened = True
        for constraint in self.constraints:
            if id(constraint) in skip_ids or constraint.batch_margin is None:
                continue
            try:
                margins = constraint.batch_values(matrix, names)
            except (ValueError, KeyError):
                # A constraint over parameters outside this program
                # cannot be screened; skip it rather than mis-rank.
                continue
            screened = True
            margins = np.where(np.isfinite(margins), margins, -np.inf)
            score = np.minimum(score, margins)
        if not screened:
            return starts
        ranked = np.argsort(-score, kind="stable")[:keep]
        # Preserve draw order among the survivors so the winning
        # assignment reduction stays deterministic.
        return fixed + [candidates[i] for i in sorted(ranked)]

    # ------------------------------------------------------------------
    # Stacked-kernel plumbing
    # ------------------------------------------------------------------
    def _auto_stack(self, members: List[Constraint]):
        """Build (and memoize on the program) a fused kernel for ``members``."""
        from repro.symbolic.compile import StackedConstraintKernel

        key = tuple(id(constraint) for constraint in members)
        cached = getattr(self, "_stack_cache", None)
        if cached is not None and cached[0] == key:
            return cached[1]
        if len(members) == 1 and members[0].stack_kernel is not None:
            kernel = members[0].stack_kernel()
        else:
            kernel = StackedConstraintKernel(
                [constraint.stack_spec for constraint in members]
            )
        self._stack_cache = (key, kernel)
        return kernel

    def _resolve_stack(self, stacked):
        """``(members, kernel)`` for the fused path, or ``([], None)``.

        ``stacked=False`` disables fusion (the pre-fusion per-constraint
        path); a :class:`StackedConstraintKernel` is used as given (the
        repair engine passes the CheckCache-memoized one); ``None``
        builds a kernel from the stackable constraints' specs.  Kernels
        whose parameters are not all program variables fall back to the
        per-constraint path rather than mis-evaluate.
        """
        if stacked is False:
            return [], None
        members = [c for c in self.constraints if c.stack_spec is not None]
        if not members:
            return [], None
        from repro.symbolic.compile import StackedConstraintKernel

        if isinstance(stacked, StackedConstraintKernel):
            kernel = stacked
            if kernel.size != len(members):
                raise ValueError(
                    f"stacked kernel has {kernel.size} rows but the program "
                    f"has {len(members)} stackable constraints"
                )
        else:
            kernel = self._auto_stack(members)
        if not set(kernel.params) <= {v.name for v in self.variables}:
            return [], None
        return members, kernel

    def _run_joint(
        self,
        starts: List[np.ndarray],
        stack,
        columns: np.ndarray,
        shifts: np.ndarray,
        others: List[Constraint],
        bounds,
        order: List[str],
        max_iterations: int,
    ):
        """One block-diagonal SLSQP solve over every start at once.

        The multi-start candidates become independent blocks of a single
        joint program (separable objective, block-diagonal jacobian), so
        scipy's per-``minimize`` machinery runs once instead of once per
        start, and every constraint margin/derivative for every block
        comes from one fused batch kernel call per iterate.  Returns
        ``(per-block assignments, stats)`` or ``None`` when the joint
        solve blew up; callers re-verify feasibility per block exactly,
        polish the winner with one warm local solve, and fall back to
        the per-start loop when no block lands feasible.
        """
        blocks = len(starts)
        dim = len(order)
        rows = stack.size
        z0 = np.concatenate(starts)
        joint_bounds = list(bounds) * blocks
        tiled_shifts = np.tile(shifts, blocks)
        # Precomputed fancy indices scatter every block's (rows × params)
        # jacobian into the block-diagonal matrix in one vectorized write.
        block_axis = np.arange(blocks)[:, None, None]
        scatter_rows = block_axis * rows + np.arange(rows)[None, :, None]
        scatter_cols = block_axis * dim + columns[None, None, :]
        memo = {"key": None}

        def fused(z: np.ndarray):
            key = z.tobytes()
            if memo["key"] != key:
                points = z.reshape(blocks, dim)
                margins, jacobian = stack.margins_and_jacobian_batch(
                    points[:, columns]
                )
                flat = margins.ravel() - tiled_shifts
                # SLSQP has no notion of a failed evaluation; clamp the
                # (rare, out-of-domain) non-finite entries so one bad
                # block steers away instead of poisoning the QP.
                flat = np.nan_to_num(flat, nan=-1e30, posinf=1e30, neginf=-1e30)
                stacked_jacobian = np.zeros((blocks * rows, blocks * dim))
                stacked_jacobian[scatter_rows, scatter_cols] = np.nan_to_num(
                    jacobian, nan=0.0, posinf=0.0, neginf=0.0
                )
                memo["key"] = key
                memo["margins"] = flat
                memo["jacobian"] = stacked_jacobian
            return memo

        joint_constraints = [
            {
                "type": "ineq",
                "fun": lambda z: fused(z)["margins"],
                "jac": lambda z: fused(z)["jacobian"],
            }
        ]
        for constraint in others:
            def other_fun(z, constraint=constraint):
                values = constraint.batch_values(z.reshape(blocks, dim), order)
                return np.nan_to_num(
                    np.asarray(values, dtype=float),
                    nan=-1e30, posinf=1e30, neginf=-1e30,
                )

            def other_jac(z, constraint=constraint):
                points = z.reshape(blocks, dim)
                stacked_jacobian = np.zeros((blocks, blocks * dim))
                for b, row in enumerate(points):
                    partials = constraint.gradient(self._to_assignment(row))
                    stacked_jacobian[b, b * dim : (b + 1) * dim] = [
                        float(partials.get(name, 0.0)) for name in order
                    ]
                return stacked_jacobian

            joint_constraints.append(
                {"type": "ineq", "fun": other_fun, "jac": other_jac}
            )

        def joint_objective(z: np.ndarray) -> float:
            points = z.reshape(blocks, dim)
            return float(
                sum(self.objective(self._to_assignment(row)) for row in points)
            )

        def joint_gradient(z: np.ndarray) -> np.ndarray:
            points = z.reshape(blocks, dim)
            out = np.empty(blocks * dim)
            for b, row in enumerate(points):
                partials = self.objective_gradient(self._to_assignment(row))
                out[b * dim : (b + 1) * dim] = [
                    float(partials.get(name, 0.0)) for name in order
                ]
            return out

        try:
            outcome = scipy_optimize.minimize(
                joint_objective,
                z0,
                jac=joint_gradient,
                method="SLSQP",
                bounds=joint_bounds,
                constraints=joint_constraints,
                options={"maxiter": max_iterations, "ftol": 1e-12},
            )
        except (ValueError, KeyError, ZeroDivisionError, OverflowError):
            return None
        lower = np.array([b[0] for b in bounds])
        upper = np.array([b[1] for b in bounds])
        points = np.clip(outcome.x.reshape(blocks, dim), lower, upper)
        assignments = [self._to_assignment(row) for row in points]
        stats = {
            "iterations": int(getattr(outcome, "nit", 0) or 0),
            "function_evaluations": int(getattr(outcome, "nfev", 0) or 0),
            "gradient_evaluations": int(getattr(outcome, "njev", 0) or 0),
            "joint_solves": 1,
        }
        return assignments, stats, bool(outcome.success)

    def is_feasible(self, assignment: Assignment) -> bool:
        """Whether every constraint and box bound holds at a point."""
        for variable in self.variables:
            value = assignment[variable.name]
            if value < variable.lower - _FEASIBILITY_TOLERANCE:
                return False
            if value > variable.upper + _FEASIBILITY_TOLERANCE:
                return False
        return all(c.satisfied(assignment) for c in self.constraints)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self,
        extra_starts: int = 8,
        seed: int = 0,
        method: str = "SLSQP",
        max_iterations: int = 500,
        parallel: Optional[bool] = None,
        max_workers: Optional[int] = None,
        stacked=None,
    ) -> OptimizationResult:
        """Multi-start local solve; feasibility is re-verified exactly.

        A start point counts as successful only if scipy converges *and*
        the returned point passes :meth:`is_feasible` — scipy sometimes
        reports success on slightly-violated constraints.

        ``stacked`` selects the fused evaluation path: ``None`` (default)
        builds a :class:`~repro.symbolic.compile.StackedConstraintKernel`
        over every stackable constraint, a pre-built kernel is reused as
        given, and ``False`` forces the per-constraint legacy path.  With
        a stack, SLSQP's constraint and jacobian callbacks read one
        memoized fused evaluation per iterate, and — for small enough
        ``starts × variables`` — all starts are solved as one
        block-diagonal joint program (then the winner is re-verified
        exactly and polished with a single warm local solve, falling back
        to the per-start loop if no block lands feasible, so the fused
        path can never report infeasible where the loop would not).

        ``parallel=None`` enables the thread pool only on multi-CPU
        hosts; the fused paths make per-start threading pure overhead on
        a single core.
        """
        bounds = [(v.lower, v.upper) for v in self.variables]
        lower_bounds = np.array([b[0] for b in bounds])
        upper_bounds = np.array([b[1] for b in bounds])
        order = [v.name for v in self.variables]
        if parallel is None:
            parallel = (os.cpu_count() or 1) > 1

        members, stack = self._resolve_stack(stacked)
        member_ids = frozenset(id(c) for c in members)
        others = [c for c in self.constraints if id(c) not in member_ids]
        columns = shifts = None
        if stack is not None:
            index = {name: i for i, name in enumerate(order)}
            columns = np.array(
                [index[name] for name in stack.params], dtype=int
            )
            shifts = np.array([c._total_shift() for c in members])

        def gradient_vector(partials_of, x: np.ndarray) -> np.ndarray:
            partials = partials_of(self._to_assignment(x))
            return np.array(
                [float(partials.get(name, 0.0)) for name in order]
            )

        def per_constraint_dicts(constraints):
            entries = []
            for c in constraints:
                entry = {
                    "type": "ineq",
                    "fun": (lambda x, c=c: c.value(self._to_assignment(x))),
                }
                if c.gradient is not None:
                    # Analytic jacobian from the compiled kernel: SLSQP
                    # stops finite-differencing this constraint ((n+1)×
                    # fewer margin evaluations per iteration).
                    entry["jac"] = lambda x, c=c: gradient_vector(
                        c.gradient, x
                    )
                entries.append(entry)
            return entries

        others_dicts = per_constraint_dicts(others)

        def objective_vector(x: np.ndarray) -> float:
            return float(self.objective(self._to_assignment(x)))

        objective_jacobian = None
        if self.objective_gradient is not None:
            objective_jacobian = lambda x: gradient_vector(  # noqa: E731
                self.objective_gradient, x
            )

        def run_start(
            start: np.ndarray,
        ) -> Tuple[Optional[Assignment], Dict[str, int]]:
            if stack is not None:
                # One memoized fused evaluation per iterate serves both
                # the vector-valued constraint and its jacobian.
                fused = _FusedEvaluation(stack, columns, len(order), shifts)
                scipy_constraints = [
                    {
                        "type": "ineq",
                        "fun": lambda x: fused.at(x)[0],
                        "jac": lambda x: fused.at(x)[1],
                    }
                ] + others_dicts
            else:
                scipy_constraints = others_dicts
            try:
                outcome = scipy_optimize.minimize(
                    objective_vector,
                    start,
                    jac=objective_jacobian,
                    method=method,
                    bounds=bounds,
                    constraints=scipy_constraints,
                    options={"maxiter": max_iterations, "ftol": 1e-12},
                )
            except (ValueError, ZeroDivisionError, OverflowError):
                return None, {"starts_failed": 1}
            stats = {
                "iterations": int(getattr(outcome, "nit", 0) or 0),
                "function_evaluations": int(getattr(outcome, "nfev", 0) or 0),
                "gradient_evaluations": int(getattr(outcome, "njev", 0) or 0),
                "starts_converged": int(bool(outcome.success)),
            }
            assignment = self._to_assignment(
                np.clip(outcome.x, lower_bounds, upper_bounds)
            )
            return assignment, stats

        # Oversample the random draws when any constraint can be
        # batch-screened, then keep only the most promising candidates —
        # scored with one vectorized kernel pass instead of a per-point
        # solve (or the old per-point thread-pool evaluation).
        can_screen = stack is not None or any(
            c.batch_margin is not None for c in self.constraints
        )
        oversample = 4 if can_screen and extra_starts > 0 else 1
        starts = self._start_points(extra_starts, seed, oversample)
        if oversample > 1:
            starts = self._screen_starts(
                starts,
                keep=extra_starts,
                stack=stack,
                columns=columns,
                shifts=shifts,
                skip_ids=member_ids,
            )

        solver_stats: Dict[str, int] = {
            "iterations": 0,
            "function_evaluations": 0,
            "starts_converged": 0,
            "starts_failed": 0,
        }

        def merge_stats(stats: Dict[str, int]) -> None:
            for name, count in stats.items():
                solver_stats[name] = solver_stats.get(name, 0) + count

        # Joint block-diagonal path: below _JOINT_DIMENSION_LIMIT, one
        # SLSQP call over all starts at once replaces the per-start loop
        # — this is where the dispatch-bound regime's 3x+ lives, because
        # scipy's per-minimize machinery (not our callbacks) dominates
        # small problems.
        joint_eligible = (
            stack is not None
            and method == "SLSQP"
            and self.objective_gradient is not None
            and len(starts) > 1
            and len(starts) * len(order) <= _JOINT_DIMENSION_LIMIT
            and len(starts) * (stack.size + len(others))
            <= _JOINT_CONSTRAINT_LIMIT
            and all(
                c.batch_margin is not None and c.gradient is not None
                for c in others
            )
        )
        if joint_eligible:
            joint = self._run_joint(
                starts, stack, columns, shifts, others,
                bounds, order, max_iterations,
            )
            if joint is not None:
                assignments, joint_stats, converged = joint
                merge_stats(joint_stats)
                best_block: Optional[Tuple[float, Assignment]] = None
                for assignment in assignments:
                    if self.is_feasible(assignment):
                        value = float(self.objective(assignment))
                        if best_block is None or value < best_block[0]:
                            best_block = (value, assignment)
                if best_block is not None:
                    winner = best_block
                    if not converged:
                        # The joint program is separable, so a converged
                        # joint solve is per-block optimal already; a
                        # rough exit gets one warm polish solve from the
                        # winning block to recover per-start precision.
                        vector = np.array(
                            [best_block[1][name] for name in order]
                        )
                        polished, polish_stats = run_start(vector)
                        merge_stats(polish_stats)
                        if polished is not None and self.is_feasible(polished):
                            value = float(self.objective(polished))
                            if value <= best_block[0]:
                                winner = (value, polished)
                    merge_stats({"starts_converged": 1})
                    return OptimizationResult(
                        feasible=True,
                        assignment=winner[1],
                        objective_value=winner[0],
                        starts_tried=len(starts),
                        message="feasible local optimum found",
                        solver_stats=solver_stats,
                    )
            # No feasible block (or the joint solve blew up): fall
            # through to the exact per-start loop so the fused path
            # never misses a verdict the legacy path would find.

        if parallel and len(starts) > 1:
            workers = max_workers or min(len(starts), os.cpu_count() or 1)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                attempts = list(pool.map(run_start, starts))
        else:
            attempts = [run_start(start) for start in starts]

        for _, stats in attempts:
            merge_stats(stats)

        best: Optional[Tuple[float, Assignment]] = None
        least_violation: Optional[Tuple[float, Assignment]] = None
        for assignment, _ in attempts:
            if assignment is None:
                continue
            if self.is_feasible(assignment):
                value = float(self.objective(assignment))
                if best is None or value < best[0]:
                    best = (value, assignment)
            else:
                violation = -min(
                    (c.value(assignment) for c in self.constraints), default=0.0
                )
                if least_violation is None or violation < least_violation[0]:
                    least_violation = (violation, assignment)
        if best is not None:
            return OptimizationResult(
                feasible=True,
                assignment=best[1],
                objective_value=best[0],
                starts_tried=len(starts),
                message="feasible local optimum found",
                solver_stats=solver_stats,
            )
        fallback = (
            least_violation[1]
            if least_violation is not None
            else self._to_assignment(starts[0])
        )
        return OptimizationResult(
            feasible=False,
            assignment=fallback,
            objective_value=float(self.objective(fallback)),
            starts_tried=len(starts),
            message="no start point reached a feasible local optimum",
            solver_stats=solver_stats,
        )
