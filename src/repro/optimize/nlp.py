"""Nonlinear programs over named variables, solved with scipy.

The repair formulations produce problems of the shape

    min  g(v)                       (cost of the perturbation)
    s.t. f(v) ⋈ b                   (parametric model-checking constraint)
         lower_k < v_k < upper_k    (stochasticity box constraints)

``NonlinearProgram`` holds named variables so the symbolic layer and the
numeric layer agree on ordering; solving uses SLSQP from several start
points (the constraint surface of a rational function is non-convex, so
multi-start materially improves the feasible-hit rate).  Infeasibility
is reported when no start point yields a feasible local optimum — the
verdict the paper's ``X = 19`` Model Repair case relies on.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize as scipy_optimize

from repro.checking.parametric import ParametricConstraint

Assignment = Dict[str, float]

logger = logging.getLogger(__name__)

_STRICT_EPSILON = 1e-9
_FEASIBILITY_TOLERANCE = 1e-7
#: Half-width of the jitter box used for variables with an infinite bound
#: (centred on the variable's initial value).
_UNBOUNDED_JITTER = 1.0


class Variable:
    """A named decision variable with box bounds and an initial guess."""

    def __init__(
        self,
        name: str,
        lower: float = -np.inf,
        upper: float = np.inf,
        initial: float = 0.0,
    ):
        if lower > upper:
            raise ValueError(f"variable {name}: lower bound exceeds upper bound")
        self.name = name
        self.lower = float(lower)
        self.upper = float(upper)
        self.initial = float(np.clip(initial, lower, upper))

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, [{self.lower}, {self.upper}])"


class Constraint:
    """An inequality ``margin(v) >= 0``.

    ``strict=True`` shifts the margin by a small ε so strict
    inequalities of the PCTL comparison survive the solver's closed
    feasible set; ``shift`` adds a further safety margin so boundary
    optima still verify under exact re-checking.

    ``gradient`` (optional) returns the analytic partials of the *raw*
    margin as a name→value mapping — the shift is constant, so the same
    gradient serves the shifted value; the solver passes it to SLSQP as
    the constraint jacobian instead of finite-differencing.
    ``batch_margin`` (optional) evaluates raw margins for a whole
    ``(m, n)`` matrix of points at once (columns ordered by a ``names``
    sequence); the multi-start seeder screens candidate start points
    through it in one vectorized pass.
    """

    def __init__(
        self,
        margin: Callable[[Assignment], float],
        name: str = "constraint",
        strict: bool = False,
        shift: float = 0.0,
        gradient: Optional[Callable[[Assignment], Mapping[str, float]]] = None,
        batch_margin: Optional[Callable] = None,
    ):
        self.margin = margin
        self.name = name
        self.strict = strict
        self.shift = float(shift)
        self.gradient = gradient
        self.batch_margin = batch_margin

    def _total_shift(self) -> float:
        return self.shift + (_STRICT_EPSILON if self.strict else 0.0)

    def value(self, assignment: Assignment) -> float:
        """The (possibly ε-shifted) margin at a point."""
        return float(self.margin(assignment)) - self._total_shift()

    def batch_values(self, points, names) -> "np.ndarray":
        """Shifted margins for an ``(m, n)`` matrix (requires the hook)."""
        raw = np.asarray(self.batch_margin(points, names), dtype=float)
        return raw - self._total_shift()

    def satisfied(self, assignment: Assignment) -> bool:
        """Whether the constraint holds within tolerance."""
        return self.value(assignment) >= -_FEASIBILITY_TOLERANCE

    def __repr__(self) -> str:
        return f"Constraint({self.name!r}, strict={self.strict})"


def constraint_from_parametric(
    parametric: ParametricConstraint,
    name: str = "pctl",
    safety_margin: float = 1e-6,
    compiled: bool = True,
) -> Constraint:
    """Adapt a parametric model-checking constraint ``f(v) ⋈ b``.

    ``safety_margin`` keeps solutions strictly inside the feasible set;
    without it, boundary optima can fail the exact concrete re-check by
    a rounding hair.  The margin is relative to the bound's magnitude.

    With ``compiled=True`` (default) the margin, its analytic gradient
    and the batch screener all run through the constraint's numpy
    kernel (:meth:`ParametricConstraint.compiled`); ``compiled=False``
    keeps the pure-symbolic evaluation path with finite-difference
    jacobians — the pre-kernel behaviour, retained for the
    compiled-vs-symbolic benchmarks.
    """
    shift = safety_margin * max(1.0, abs(parametric.bound))
    strict = parametric.comparison in ("<", ">")
    if not compiled:
        return Constraint(
            margin=parametric.margin, name=name, strict=strict, shift=shift
        )
    return Constraint(
        margin=parametric.fast_margin,
        name=name,
        strict=strict,
        shift=shift,
        gradient=parametric.margin_gradient,
        batch_margin=parametric.margin_batch,
    )


class OptimizationResult:
    """Outcome of solving a nonlinear program.

    Attributes
    ----------
    feasible:
        Whether a point satisfying every constraint was found.
    assignment:
        The best feasible point (or the least-infeasible one otherwise).
    objective_value:
        Objective at ``assignment``.
    starts_tried:
        Number of start points attempted.
    message:
        Human-readable solver summary.
    solver_stats:
        Aggregate SLSQP accounting across all starts: ``iterations``,
        ``function_evaluations``, ``starts_converged``, ``starts_failed``
        (previously swallowed; surfaced for the service telemetry).
    """

    def __init__(
        self,
        feasible: bool,
        assignment: Assignment,
        objective_value: float,
        starts_tried: int,
        message: str,
        solver_stats: Optional[Dict[str, int]] = None,
    ):
        self.feasible = feasible
        self.assignment = assignment
        self.objective_value = objective_value
        self.starts_tried = starts_tried
        self.message = message
        self.solver_stats = dict(solver_stats or {})

    def __repr__(self) -> str:
        return (
            f"OptimizationResult(feasible={self.feasible}, "
            f"objective={self.objective_value:.6g}, "
            f"assignment={ {k: round(v, 6) for k, v in self.assignment.items()} })"
        )


class NonlinearProgram:
    """A smooth constrained minimisation over named variables.

    Examples
    --------
    >>> program = NonlinearProgram(
    ...     variables=[Variable("x", -1, 1), Variable("y", -1, 1)],
    ...     objective=lambda v: v["x"] ** 2 + v["y"] ** 2,
    ...     constraints=[Constraint(lambda v: v["x"] + v["y"] - 1.0)],
    ... )
    >>> result = program.solve()
    >>> result.feasible
    True
    >>> round(result.assignment["x"], 3)
    0.5
    """

    def __init__(
        self,
        variables: Sequence[Variable],
        objective: Callable[[Assignment], float],
        constraints: Sequence[Constraint] = (),
        objective_gradient: Optional[
            Callable[[Assignment], Mapping[str, float]]
        ] = None,
    ):
        if not variables:
            raise ValueError("program needs at least one variable")
        names = [v.name for v in variables]
        if len(set(names)) != len(names):
            raise ValueError("duplicate variable names")
        self.variables = list(variables)
        self.objective = objective
        #: Optional analytic partials of the objective (name→value
        #: mapping); when present it is passed to SLSQP as ``jac=``.
        self.objective_gradient = objective_gradient
        self.constraints = list(constraints)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _to_assignment(self, vector: np.ndarray) -> Assignment:
        return {
            variable.name: float(value)
            for variable, value in zip(self.variables, vector)
        }

    def _start_points(
        self, extra_starts: int, seed: int, oversample: int = 1
    ) -> List[np.ndarray]:
        rng = np.random.default_rng(seed)
        lows = np.array([v.lower for v in self.variables])
        highs = np.array([v.upper for v in self.variables])
        initials = np.array([v.initial for v in self.variables])
        bounded = np.isfinite(lows) & np.isfinite(highs)
        if not bounded.all():
            # Clamping an infinite bound to ±1 (the old behaviour) can
            # place every start outside the feasible region of a
            # one-sided-bounded variable (e.g. lower=2, upper=inf);
            # jitter around the initial value instead.
            names = [
                v.name for v, is_bounded in zip(self.variables, bounded)
                if not is_bounded
            ]
            logger.warning(
                "variables %s have an infinite bound; jittered start points "
                "are centred on their initial values instead of the box",
                names,
            )
        span_low = np.where(bounded, lows, initials - _UNBOUNDED_JITTER)
        span_high = np.where(bounded, highs, initials + _UNBOUNDED_JITTER)
        points = [initials.copy()]
        # Include the box midpoint (the initial value where unbounded)
        # and uniform jitter over the (possibly recentred) box.
        midpoints = initials.copy()
        midpoints[bounded] = (lows[bounded] + highs[bounded]) / 2.0
        points.append(midpoints)
        for _ in range(extra_starts * max(1, oversample)):
            draw = span_low + rng.random(len(self.variables)) * (
                span_high - span_low
            )
            points.append(np.clip(draw, lows, highs))
        return points

    def _screen_starts(
        self, starts: List[np.ndarray], keep: int
    ) -> List[np.ndarray]:
        """Vectorized multi-start seeding over an oversampled candidate pool.

        The initial point and the box midpoint (``starts[:2]``) always
        survive; the random candidates are scored in **one**
        ``evaluate_batch`` pass per batch-capable constraint (worst
        shifted margin across constraints — higher is closer to
        feasible) and only the ``keep`` most promising ones are solved.
        This replaces solving every random draw: the screening cost is
        a couple of matrix products instead of a per-point SLSQP run.
        """
        screeners = [c for c in self.constraints if c.batch_margin is not None]
        fixed, candidates = starts[:2], starts[2:]
        if not screeners or len(candidates) <= keep:
            return starts
        names = [v.name for v in self.variables]
        matrix = np.stack(candidates)
        score = np.full(len(candidates), np.inf)
        screened = False
        for constraint in screeners:
            try:
                margins = constraint.batch_values(matrix, names)
            except (ValueError, KeyError):
                # A constraint over parameters outside this program
                # cannot be screened; skip it rather than mis-rank.
                continue
            screened = True
            margins = np.where(np.isfinite(margins), margins, -np.inf)
            score = np.minimum(score, margins)
        if not screened:
            return starts
        ranked = np.argsort(-score, kind="stable")[:keep]
        # Preserve draw order among the survivors so the winning
        # assignment reduction stays deterministic.
        return fixed + [candidates[i] for i in sorted(ranked)]

    def is_feasible(self, assignment: Assignment) -> bool:
        """Whether every constraint and box bound holds at a point."""
        for variable in self.variables:
            value = assignment[variable.name]
            if value < variable.lower - _FEASIBILITY_TOLERANCE:
                return False
            if value > variable.upper + _FEASIBILITY_TOLERANCE:
                return False
        return all(c.satisfied(assignment) for c in self.constraints)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self,
        extra_starts: int = 8,
        seed: int = 0,
        method: str = "SLSQP",
        max_iterations: int = 500,
        parallel: bool = True,
        max_workers: Optional[int] = None,
    ) -> OptimizationResult:
        """Multi-start local solve; feasibility is re-verified exactly.

        A start point counts as successful only if scipy converges *and*
        the returned point passes :meth:`is_feasible` — scipy sometimes
        reports success on slightly-violated constraints.

        With ``parallel=True`` (default) the starts run concurrently on a
        thread pool; results are still reduced in start order, so the
        winning assignment is identical to the sequential loop's.
        """
        bounds = [(v.lower, v.upper) for v in self.variables]
        lower_bounds = np.array([b[0] for b in bounds])
        upper_bounds = np.array([b[1] for b in bounds])
        order = [v.name for v in self.variables]

        def gradient_vector(partials_of, x: np.ndarray) -> np.ndarray:
            partials = partials_of(self._to_assignment(x))
            return np.array(
                [float(partials.get(name, 0.0)) for name in order]
            )

        scipy_constraints = []
        for c in self.constraints:
            entry = {
                "type": "ineq",
                "fun": (lambda x, c=c: c.value(self._to_assignment(x))),
            }
            if c.gradient is not None:
                # Analytic jacobian from the compiled kernel: SLSQP stops
                # finite-differencing this constraint ((n+1)× fewer
                # margin evaluations per iteration).
                entry["jac"] = lambda x, c=c: gradient_vector(c.gradient, x)
            scipy_constraints.append(entry)

        def objective_vector(x: np.ndarray) -> float:
            return float(self.objective(self._to_assignment(x)))

        objective_jacobian = None
        if self.objective_gradient is not None:
            objective_jacobian = lambda x: gradient_vector(  # noqa: E731
                self.objective_gradient, x
            )

        def run_start(
            start: np.ndarray,
        ) -> Tuple[Optional[Assignment], Dict[str, int]]:
            try:
                outcome = scipy_optimize.minimize(
                    objective_vector,
                    start,
                    jac=objective_jacobian,
                    method=method,
                    bounds=bounds,
                    constraints=scipy_constraints,
                    options={"maxiter": max_iterations, "ftol": 1e-12},
                )
            except (ValueError, ZeroDivisionError, OverflowError):
                return None, {"starts_failed": 1}
            stats = {
                "iterations": int(getattr(outcome, "nit", 0) or 0),
                "function_evaluations": int(getattr(outcome, "nfev", 0) or 0),
                "gradient_evaluations": int(getattr(outcome, "njev", 0) or 0),
                "starts_converged": int(bool(outcome.success)),
            }
            assignment = self._to_assignment(
                np.clip(outcome.x, lower_bounds, upper_bounds)
            )
            return assignment, stats

        # Oversample the random draws when any constraint can be
        # batch-screened, then keep only the most promising candidates —
        # scored with one vectorized kernel pass instead of a per-point
        # solve (or the old per-point thread-pool evaluation).
        can_screen = any(c.batch_margin is not None for c in self.constraints)
        oversample = 4 if can_screen and extra_starts > 0 else 1
        starts = self._start_points(extra_starts, seed, oversample)
        if oversample > 1:
            starts = self._screen_starts(starts, keep=extra_starts)
        if parallel and len(starts) > 1:
            workers = max_workers or min(len(starts), os.cpu_count() or 1)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                attempts = list(pool.map(run_start, starts))
        else:
            attempts = [run_start(start) for start in starts]

        solver_stats: Dict[str, int] = {
            "iterations": 0,
            "function_evaluations": 0,
            "starts_converged": 0,
            "starts_failed": 0,
        }
        for _, stats in attempts:
            for name, count in stats.items():
                solver_stats[name] = solver_stats.get(name, 0) + count

        best: Optional[Tuple[float, Assignment]] = None
        least_violation: Optional[Tuple[float, Assignment]] = None
        for assignment, _ in attempts:
            if assignment is None:
                continue
            if self.is_feasible(assignment):
                value = float(self.objective(assignment))
                if best is None or value < best[0]:
                    best = (value, assignment)
            else:
                violation = -min(
                    (c.value(assignment) for c in self.constraints), default=0.0
                )
                if least_violation is None or violation < least_violation[0]:
                    least_violation = (violation, assignment)
        if best is not None:
            return OptimizationResult(
                feasible=True,
                assignment=best[1],
                objective_value=best[0],
                starts_tried=len(starts),
                message="feasible local optimum found",
                solver_stats=solver_stats,
            )
        fallback = (
            least_violation[1]
            if least_violation is not None
            else self._to_assignment(starts[0])
        )
        return OptimizationResult(
            feasible=False,
            assignment=fallback,
            objective_value=float(self.objective(fallback)),
            starts_tried=len(starts),
            message="no start point reached a feasible local optimum",
            solver_stats=solver_stats,
        )
