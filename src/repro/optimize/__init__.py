"""Nonlinear optimisation layer (the paper's AMPL role).

Model Repair and Data Repair reduce to the nonlinear program of
Equations 4–6: minimise a smooth cost over the repair parameters subject
to the rational constraint from parametric model checking plus box
constraints.  This package wraps ``scipy.optimize`` with multi-start,
constraint adapters for :class:`~repro.checking.ParametricConstraint`,
and an explicit feasibility verdict (the paper's three WSN cases hinge
on distinguishing "repaired", "already satisfied" and "infeasible").
"""

from repro.optimize.nlp import (
    Constraint,
    NonlinearProgram,
    OptimizationResult,
    Variable,
    constraint_from_parametric,
)

__all__ = [
    "NonlinearProgram",
    "OptimizationResult",
    "Variable",
    "Constraint",
    "constraint_from_parametric",
]
