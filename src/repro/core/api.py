"""Flat, picklable entry points for the repair pipelines.

The class-based interfaces (:class:`~repro.core.model_repair.ModelRepair`
and friends) close over lambdas and builder state, which cannot cross a
process boundary.  The batch service (:mod:`repro.service`) instead
dispatches these module-level functions: every argument is a plain
value (model object, formula text or object, numbers, names), so a call
can be pickled to a :class:`~concurrent.futures.ProcessPoolExecutor`
worker or serialised into a JSON job file and reconstructed elsewhere.

Each function mirrors one decision-procedure step:

``check_model``      learn → **check**
``repair_model``     check → **Model Repair** (Definition 1)
``repair_data``      check → **Data Repair** (Definition 3)
``repair_reward``    check → **Reward Repair** (Definition 2, Q-route)
``repair_rates``     check → **Rate Repair** (the CTMC extension)
``repair_robust``    check → **Robust Repair** (interval-certified
                     Model Repair, :mod:`repro.repair.robust`)
``repair_cegis``     check → **CEGIS Repair** (counterexample-guided
                     Model Repair, :mod:`repro.repair.cegis`)
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from repro.checking.cache import CheckCache, cached_check
from repro.data.dataset import TraceDataset
from repro.logic.pctl import StateFormula

State = Hashable

Formula = Union[str, StateFormula]


def _as_formula(formula: Formula) -> StateFormula:
    if isinstance(formula, StateFormula):
        return formula
    from repro.logic.parser import parse_pctl

    return parse_pctl(formula)


def check_model(
    model,
    formula: Formula,
    *,
    engine: str = "sparse",
    cache: Optional[CheckCache] = None,
):
    """Model-check a DTMC or MDP (memoised, engine-selectable).

    Returns the :class:`~repro.checking.result.ModelCheckingResult`.
    """
    return cached_check(model, _as_formula(formula), engine=engine, cache=cache)


def repair_model(
    model,
    formula: Formula,
    *,
    controllable_states: Optional[Sequence[State]] = None,
    max_perturbation: Optional[float] = None,
    cost: str = "frobenius",
    engine: str = "sparse",
    extra_starts: int = 8,
    seed: int = 0,
    cache: Optional[CheckCache] = None,
):
    """Edge-wise Model Repair of a chain toward ``formula``.

    A kwargs-only wrapper over :meth:`ModelRepair.for_chain` +
    :meth:`ModelRepair.repair`; returns the
    :class:`~repro.core.model_repair.ModelRepairResult`.
    """
    from repro.core.model_repair import ModelRepair

    repair = ModelRepair.for_chain(
        model,
        _as_formula(formula),
        controllable_states=controllable_states,
        max_perturbation=max_perturbation,
        cost=cost,
        engine=engine,
    )
    repair.cache = cache
    return repair.repair(extra_starts=extra_starts, seed=seed)


def repair_robust(
    model,
    formula: Formula,
    *,
    epsilon: float = 0.01,
    controllable_states: Optional[Sequence[State]] = None,
    max_perturbation: Optional[float] = None,
    cost: str = "frobenius",
    engine: str = "sparse",
    max_outer_iterations: int = 5,
    vi_max_iterations: Optional[int] = None,
    extra_starts: int = 8,
    seed: int = 0,
    cache: Optional[CheckCache] = None,
):
    """Robust Model Repair certified over a ±``epsilon`` interval ball.

    A kwargs-only wrapper over
    :meth:`~repro.repair.robust.RobustRepair.for_chain` +
    :meth:`~repro.repair.robust.RobustRepair.repair`; returns the
    :class:`~repro.repair.robust.RobustRepairResult` whose certificate
    quantifies over *every* chain within ±``epsilon`` of the repaired
    model.  ``vi_max_iterations`` caps the robust value iteration
    (``None`` keeps the flavour default); on non-convergence the result
    degrades to the nominal check with ``robust=False``.
    """
    from repro.repair.robust import DEFAULT_VI_MAX_ITERATIONS, RobustRepair

    repair = RobustRepair.for_chain(
        model,
        _as_formula(formula),
        epsilon=epsilon,
        controllable_states=controllable_states,
        max_perturbation=max_perturbation,
        cost=cost,
        engine=engine,
        max_outer_iterations=max_outer_iterations,
        vi_max_iterations=(
            DEFAULT_VI_MAX_ITERATIONS
            if vi_max_iterations is None
            else vi_max_iterations
        ),
    )
    repair.base.cache = cache
    return repair.repair(extra_starts=extra_starts, seed=seed)


def repair_cegis(
    model,
    formula: Formula,
    *,
    controllable_states: Optional[Sequence[State]] = None,
    max_perturbation: Optional[float] = None,
    cost: str = "frobenius",
    engine: str = "sparse",
    max_iterations: int = 10,
    max_counterexample_paths: int = 10_000,
    max_expansions: int = 200_000,
    extra_starts: int = 8,
    seed: int = 0,
    cache: Optional[CheckCache] = None,
):
    """Counterexample-guided Model Repair of a chain toward ``formula``.

    A kwargs-only wrapper over
    :meth:`~repro.repair.cegis.CegisRepair.for_chain` +
    :meth:`~repro.repair.cegis.CegisRepair.repair`; returns the
    :class:`~repro.repair.cegis.CegisRepairResult`.  Instead of one
    global state elimination, the loop grows a working set of
    constraints localized to counterexample-touched subchains —
    ``max_iterations`` bounds the check → localize → solve rounds and
    the two budget arguments bound each counterexample search.
    """
    from repro.repair.cegis import CegisRepair

    repair = CegisRepair.for_chain(
        model,
        _as_formula(formula),
        controllable_states=controllable_states,
        max_perturbation=max_perturbation,
        cost=cost,
        engine=engine,
        max_iterations=max_iterations,
        max_counterexample_paths=max_counterexample_paths,
        max_expansions=max_expansions,
    )
    repair.base.cache = cache
    return repair.repair(extra_starts=extra_starts, seed=seed)


def repair_data(
    dataset: TraceDataset,
    formula: Formula,
    *,
    initial_state: State,
    states: Optional[Sequence[State]] = None,
    labels: Optional[Mapping[State, Iterable[str]]] = None,
    state_rewards: Optional[Mapping[State, float]] = None,
    max_drop: float = 1.0 - 1e-6,
    mode: str = "drop",
    max_augment: float = 4.0,
    engine: str = "sparse",
    extra_starts: int = 8,
    seed: int = 0,
    cache: Optional[CheckCache] = None,
):
    """Data Repair: drop/augment traces so the re-learned chain meets φ.

    Returns the :class:`~repro.core.data_repair.DataRepairResult`.
    """
    from repro.core.data_repair import DataRepair

    repair = DataRepair(
        dataset=dataset,
        formula=_as_formula(formula),
        initial_state=initial_state,
        states=states,
        labels=labels,
        state_rewards=state_rewards,
        max_drop=max_drop,
        mode=mode,
        max_augment=max_augment,
        cache=cache,
        engine=engine,
    )
    return repair.repair(extra_starts=extra_starts, seed=seed)


def repair_reward(
    mdp,
    features: Mapping[State, Sequence[float]],
    theta: Sequence[float],
    constraints: Sequence[Mapping[str, object]],
    *,
    discount: float = 0.95,
    delta_bound: float = 2.0,
    extra_starts: int = 6,
    seed: int = 0,
):
    """Q-value-constrained Reward Repair with tabular features.

    ``features`` maps each state to its feature vector; ``constraints``
    is a sequence of dicts with keys ``state``, ``preferred``,
    ``dispreferred`` and optional ``margin`` — the JSON-friendly form of
    :class:`~repro.core.reward_repair.QValueConstraint`.  Returns the
    :class:`~repro.core.reward_repair.RewardRepairResult`.
    """
    from repro.core.reward_repair import QValueConstraint, RewardRepair
    from repro.learning.irl import TabularFeatureMap

    # A JSON round-trip stringifies states and actions; resolve each
    # constraint against the MDP's actual objects by string equality so
    # e.g. "1" matches the integer action 1.
    states_by_text = {str(s): s for s in mdp.states}
    actions_by_text = {
        str(a): a for rows in mdp.transitions.values() for a in rows
    }

    def resolve(table: Mapping[str, object], value: object) -> object:
        return table.get(str(value), value)

    specs = [
        QValueConstraint(
            state=resolve(states_by_text, entry["state"]),
            preferred=resolve(actions_by_text, entry["preferred"]),
            dispreferred=resolve(actions_by_text, entry["dispreferred"]),
            margin=float(entry.get("margin", 1e-3)),
        )
        for entry in constraints
    ]
    repair = RewardRepair(mdp, TabularFeatureMap(features), discount=discount)
    return repair.q_constrained(
        np.asarray(theta, dtype=float),
        specs,
        delta_bound=delta_bound,
        extra_starts=extra_starts,
        seed=seed,
    )


def repair_rates(
    ctmc,
    targets: Sequence[State],
    bound: float,
    *,
    controllable: Optional[Sequence[State]] = None,
    max_speedup: float = 2.0,
    extra_starts: int = 6,
    seed: int = 0,
    cache: Optional[CheckCache] = None,
):
    """CTMC rate repair: scale rates so ``E[time to targets] ≤ bound``.

    A kwargs-only wrapper over :class:`~repro.ctmc.repair.RateRepair`;
    returns the :class:`~repro.ctmc.repair.RateRepairResult`.
    """
    from repro.ctmc.repair import RateRepair

    repair = RateRepair(
        ctmc,
        set(targets),
        bound,
        controllable=controllable,
        max_speedup=max_speedup,
        cache=cache,
    )
    return repair.repair(extra_starts=extra_starts, seed=seed)
