"""Repair cost functions ``g``.

Equation 1 minimises a cost of the perturbation; the paper's "typical
function is the sum of squares of the perturbation variables" (the
squared Frobenius norm of ``Z``).  Alternatives here support the
cost-function ablation benchmark.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

Assignment = Mapping[str, float]
CostFunction = Callable[[Assignment], float]
CostGradient = Callable[[Assignment], Mapping[str, float]]


def frobenius_cost(assignment: Assignment) -> float:
    """``Σ v_k²`` — the paper's default ``‖Z‖_F²``."""
    return sum(value * value for value in assignment.values())


def frobenius_gradient(assignment: Assignment) -> Dict[str, float]:
    """``∂/∂v_k Σ v_k² = 2 v_k`` — analytic gradient of the default cost."""
    return {name: 2.0 * value for name, value in assignment.items()}


frobenius_cost.gradient = frobenius_gradient


def l1_cost(assignment: Assignment) -> float:
    """``Σ |v_k|`` — sparsity-encouraging alternative."""
    return sum(abs(value) for value in assignment.values())


def max_cost(assignment: Assignment) -> float:
    """``max |v_k|`` — directly minimises the ε of Proposition 1."""
    return max((abs(value) for value in assignment.values()), default=0.0)


def weighted_quadratic_cost(weights: Mapping[str, float]) -> CostFunction:
    """``Σ w_k v_k²`` with per-variable weights.

    Lets an application make some transitions more expensive to perturb
    than others (the paper: "which part of the car controller can be
    modified").
    """

    def cost(assignment: Assignment) -> float:
        return sum(
            weights.get(name, 1.0) * value * value
            for name, value in assignment.items()
        )

    def gradient(assignment: Assignment) -> Dict[str, float]:
        return {
            name: 2.0 * weights.get(name, 1.0) * value
            for name, value in assignment.items()
        }

    cost.gradient = gradient
    return cost


NAMED_COSTS = {
    "frobenius": frobenius_cost,
    "l1": l1_cost,
    "max": max_cost,
}


def resolve_cost(cost) -> CostFunction:
    """Accept a cost function or one of the names in :data:`NAMED_COSTS`."""
    if callable(cost):
        return cost
    try:
        return NAMED_COSTS[cost]
    except KeyError:
        raise ValueError(
            f"unknown cost {cost!r}; expected one of {sorted(NAMED_COSTS)}"
        ) from None


def resolve_cost_gradient(cost) -> Optional[CostGradient]:
    """The analytic gradient of ``cost``, or ``None``.

    Smooth costs (frobenius, weighted quadratic) publish their gradient
    as a ``.gradient`` attribute on the cost callable; non-smooth ones
    (l1, max) don't, and the NLP falls back to finite differences for
    them exactly as before.
    """
    resolved = resolve_cost(cost)
    return getattr(resolved, "gradient", None)
