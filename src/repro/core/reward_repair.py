"""Reward Repair (Definition 2, Section IV-C, Equations 16–18).

Two complementary solvers, both used by the paper:

``RewardRepair.project``
    The posterior-regularisation route (Proposition 4).  Build the
    MaxEnt trajectory distribution ``P`` of the learned reward
    (Equation 16), project it onto the rule-satisfying subspace —
    ``Q(U) ∝ P(U)·exp(−Σ λ[1−φ(U)])`` — and re-estimate a linear reward
    whose MaxEnt distribution matches ``Q``.
``RewardRepair.q_constrained``
    The direct projection used in the car case study (Section V-B):
    ``min ‖Δθ‖  s.t.  Q(S1, 1) > Q(S1, 0)`` — minimally move the reward
    weights so the optimal policy's state-action preferences respect the
    safety constraint.  This is the NLP route, run through the shared
    :mod:`repro.repair` driver; the projection routes use gradient
    fitting instead and bypass the NLP entirely.
"""

from __future__ import annotations

from typing import Dict, Hashable, NamedTuple, Optional, Sequence, Set

import numpy as np

from repro.core.costs import frobenius_cost
from repro.learning.irl import FeatureMap
from repro.learning.posterior_regularization import (
    fit_reward_to_distribution,
    project_distribution,
)
from repro.learning.trajectory_distribution import TrajectoryDistribution
from repro.logic.rules import Rule, all_satisfied
from repro.mdp.model import MDP
from repro.mdp.policy import DeterministicPolicy
from repro.mdp.solvers import q_values, value_iteration
from repro.optimize import Constraint, Variable
from repro.repair import RepairProblem, RepairResult, solve_repair

State = Hashable
Action = Hashable


class QValueConstraint(NamedTuple):
    """Require ``Q(state, preferred) > Q(state, dispreferred) + margin``."""

    state: State
    preferred: Action
    dispreferred: Action
    margin: float = 1e-3


class RewardRepairResult(RepairResult):
    """Outcome of a Reward Repair.

    Carries the shared :class:`~repro.repair.RepairResult` fields (the
    ``assignment`` is the weight delta ``Δθ`` component-wise) plus:

    Attributes
    ----------
    theta_before / theta_after:
        Reward weight vectors (learned vs. repaired).
    rewards_after:
        Repaired per-state rewards ``θ'ᵀ f(s)``.
    policy_before / policy_after:
        Optimal deterministic policies of the MDP under each reward.
    repaired_mdp:
        The MDP carrying the repaired reward.
    diagnostics:
        Solver- and projection-specific numbers (e.g. rule-violation
        probability before/after the projection).
    """

    flavor = "reward"

    def __init__(
        self,
        theta_before: np.ndarray,
        theta_after: np.ndarray,
        rewards_after: Dict[State, float],
        policy_before: DeterministicPolicy,
        policy_after: DeterministicPolicy,
        repaired_mdp: MDP,
        feasible: bool,
        diagnostics: Optional[Dict[str, float]] = None,
        solver_stats: Optional[Dict[str, int]] = None,
        verified: Optional[bool] = None,
        message: str = "",
    ):
        theta_before = np.asarray(theta_before, dtype=float)
        theta_after = np.asarray(theta_after, dtype=float)
        diagnostics = dict(diagnostics or {})
        delta = theta_after - theta_before
        objective = diagnostics.get("objective", float(delta @ delta))
        super().__init__(
            status="repaired" if feasible else "infeasible",
            assignment={f"d{i}": float(x) for i, x in enumerate(delta)},
            objective_value=float(objective),
            verified=bool(feasible) if verified is None else bool(verified),
            message=message,
            solver_stats=solver_stats,
        )
        self.theta_before = theta_before
        self.theta_after = theta_after
        self.rewards_after = dict(rewards_after)
        self.policy_before = policy_before
        self.policy_after = policy_after
        self.repaired_mdp = repaired_mdp
        self.diagnostics = diagnostics

    def theta_delta(self) -> np.ndarray:
        """The repair ``θ' − θ``."""
        return self.theta_after - self.theta_before

    def extra_payload(self) -> Dict:
        from repro.io.json_io import model_to_payload

        return {
            "theta_before": [float(x) for x in self.theta_before],
            "theta_after": [float(x) for x in self.theta_after],
            "rewards_after": {
                str(s): float(r) for s, r in self.rewards_after.items()
            },
            "policy_before": {
                str(s): str(a) for s, a in self.policy_before.mapping.items()
            },
            "policy_after": {
                str(s): str(a) for s, a in self.policy_after.mapping.items()
            },
            "repaired_mdp": (
                None
                if self.repaired_mdp is None
                else model_to_payload(self.repaired_mdp)
            ),
            "diagnostics": {
                str(k): float(v) for k, v in self.diagnostics.items()
            },
        }

    @classmethod
    def _from_payload(cls, payload) -> "RewardRepairResult":
        from repro.io.json_io import model_from_payload

        repaired = payload.get("repaired_mdp")
        return cls(
            theta_before=payload.get("theta_before", []),
            theta_after=payload.get("theta_after", []),
            rewards_after=payload.get("rewards_after", {}),
            policy_before=DeterministicPolicy(payload.get("policy_before", {})),
            policy_after=DeterministicPolicy(payload.get("policy_after", {})),
            repaired_mdp=(
                None if repaired is None else model_from_payload(repaired)
            ),
            feasible=payload.get("feasible", payload["status"] != "infeasible"),
            diagnostics=payload.get("diagnostics", {}),
            solver_stats=payload.get("solver_stats", {}),
            verified=payload.get("verified"),
            message=payload.get("message", ""),
        )

    def _repr_extra(self) -> str:
        return (
            f"theta_before={np.array2string(self.theta_before, precision=3)}, "
            f"theta_after={np.array2string(self.theta_after, precision=3)}"
        )

    def describe(self) -> str:
        return (
            f"status={self.status}, "
            f"theta' {[round(float(t), 3) for t in self.theta_after]}"
        )


class RewardRepair:
    """Reward Repair on an MDP with linear-in-features rewards.

    Parameters
    ----------
    mdp:
        The dynamics (rewards on the object are ignored; θ defines them).
    features:
        State feature map ``f``.
    discount:
        Discount used when extracting optimal policies and Q-values.
    """

    def __init__(self, mdp: MDP, features: FeatureMap, discount: float = 0.95):
        self.mdp = mdp
        self.features = features
        self.discount = discount

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def rewards_for(self, theta: np.ndarray) -> Dict[State, float]:
        """``{s: θᵀ f(s)}``."""
        return {s: float(self.features(s) @ theta) for s in self.mdp.states}

    def mdp_with(self, theta: np.ndarray) -> MDP:
        """The MDP with state rewards set from θ."""
        return self.mdp.with_rewards(state_rewards=self.rewards_for(theta))

    def optimal_policy(self, theta: np.ndarray) -> DeterministicPolicy:
        """The optimal deterministic policy under θ's reward."""
        _, policy = value_iteration(self.mdp_with(theta), discount=self.discount)
        return policy

    # ------------------------------------------------------------------
    # Proposition 4: posterior-regularised projection
    # ------------------------------------------------------------------
    def project(
        self,
        theta: np.ndarray,
        rules: Sequence[Rule],
        horizon: int,
        stop_states: Optional[Set[State]] = None,
        learning_rate: float = 0.05,
        max_iterations: int = 400,
    ) -> RewardRepairResult:
        """Repair by projecting the trajectory distribution (Prop. 4).

        Steps: build ``P`` from θ (Equation 16) → closed-form projection
        ``Q`` → moment-match a new θ' to ``Q``.  Diagnostics record the
        probability mass on rule-violating trajectories before and after
        the projection and under the re-estimated reward.
        """
        theta = np.asarray(theta, dtype=float)
        rewards = self.rewards_for(theta)
        p_dist = TrajectoryDistribution.from_maxent(
            self.mdp, rewards, horizon, stop_states=stop_states
        )
        q_dist = project_distribution(p_dist, rules)

        def violating(distribution: TrajectoryDistribution) -> float:
            return distribution.event_probability(
                lambda u: not all_satisfied(rules, u)
            )

        theta_after, rewards_after = fit_reward_to_distribution(
            self.mdp,
            self.features,
            q_dist,
            horizon,
            stop_states=stop_states,
            initial_theta=theta,
            learning_rate=learning_rate,
            max_iterations=max_iterations,
        )
        refit_dist = TrajectoryDistribution.from_maxent(
            self.mdp, rewards_after, horizon, stop_states=stop_states
        )
        repaired = self.mdp.with_rewards(state_rewards=rewards_after)
        return RewardRepairResult(
            theta_before=theta,
            theta_after=theta_after,
            rewards_after=rewards_after,
            policy_before=self.optimal_policy(theta),
            policy_after=self.optimal_policy(theta_after),
            repaired_mdp=repaired,
            feasible=True,
            diagnostics={
                "violation_probability_before": violating(p_dist),
                "violation_probability_projected": violating(q_dist),
                "violation_probability_after": violating(refit_dist),
                "kl_q_from_p": q_dist.kl_divergence(p_dist),
            },
        )

    def project_sampled(
        self,
        theta: np.ndarray,
        rules: Sequence[Rule],
        horizon: int,
        samples: int = 2_000,
        seed: Optional[int] = None,
        learning_rate: float = 0.05,
        max_iterations: int = 200,
    ) -> RewardRepairResult:
        """Proposition 4 repair for models too large to enumerate.

        Same contract as :meth:`project`, but the projection target
        ``E_Q[f]`` is estimated from Metropolis-sampled trajectories
        with importance weights ``exp(−Σλ[1−φ(U)])`` — the paper's
        "samples of trajectories drawn from the MDP using Gibbs
        sampling" route.  Diagnostics carry the sampled violation
        estimate instead of exact probabilities.
        """
        from repro.learning.posterior_regularization import (
            fit_reward_to_sampled_projection,
            sampled_projection_feature_expectation,
        )

        from repro.learning.trajectory_distribution import (
            MetropolisTrajectorySampler,
        )
        from repro.logic.rules import all_satisfied

        theta = np.asarray(theta, dtype=float)
        rewards = self.rewards_for(theta)
        sampler = MetropolisTrajectorySampler(
            self.mdp, rewards, horizon, seed=seed
        )
        draws = sampler.sample(samples)
        violation_before = sum(
            1 for u in draws if not all_satisfied(rules, u)
        ) / len(draws)
        _, violation_projected = sampled_projection_feature_expectation(
            self.mdp, self.features, rewards, rules, horizon,
            samples=samples, seed=seed,
        )
        theta_after, rewards_after = fit_reward_to_sampled_projection(
            self.mdp,
            self.features,
            rewards,
            rules,
            horizon,
            samples=samples,
            seed=seed,
            initial_theta=theta,
            learning_rate=learning_rate,
            max_iterations=max_iterations,
        )
        repaired = self.mdp.with_rewards(state_rewards=rewards_after)
        return RewardRepairResult(
            theta_before=theta,
            theta_after=theta_after,
            rewards_after=rewards_after,
            policy_before=self.optimal_policy(theta),
            policy_after=self.optimal_policy(theta_after),
            repaired_mdp=repaired,
            feasible=True,
            diagnostics={
                "violation_probability_before": violation_before,
                "violation_probability_projected": violation_projected,
                "sampled": 1.0,
                "samples": float(samples),
            },
        )

    # ------------------------------------------------------------------
    # Car case study: Q-value-constrained minimal reward change
    # ------------------------------------------------------------------
    def q_problem(
        self,
        theta: np.ndarray,
        constraints: Sequence[QValueConstraint],
        delta_bound: float = 2.0,
    ) -> RepairProblem:
        """The declarative :class:`~repro.repair.RepairProblem`.

        Definition 2's Q-route in the shared core's terms: the weight
        deltas ``d_i`` as variables, each Q-value preference as an exact
        rational constraint (the Q-function is recomputed by value
        iteration at every candidate θ+Δ, so the constraint is exact
        rather than a local linearisation), ``‖Δθ‖²`` as the cost.
        """
        theta = np.asarray(theta, dtype=float)
        dimension = self.features.dimension
        variables = [
            Variable(f"d{i}", -delta_bound, delta_bound, initial=0.0)
            for i in range(dimension)
        ]

        def theta_at(assignment: Dict[str, float]) -> np.ndarray:
            return theta + np.array(
                [assignment[f"d{i}"] for i in range(dimension)]
            )

        def q_margin(
            assignment: Dict[str, float], spec: QValueConstraint
        ) -> float:
            candidate = self.mdp_with(theta_at(assignment))
            values, _ = value_iteration(
                candidate, discount=self.discount, tolerance=1e-9
            )
            q = q_values(candidate, values, discount=self.discount)
            return (
                q[(spec.state, spec.preferred)]
                - q[(spec.state, spec.dispreferred)]
                - spec.margin
            )

        return RepairProblem(
            name="reward-repair",
            variables=variables,
            cost=frobenius_cost,
            constraints=[
                Constraint(
                    lambda v, spec=spec: q_margin(v, spec),
                    name=f"Q({spec.state},{spec.preferred})"
                    f">Q({spec.state},{spec.dispreferred})",
                )
                for spec in constraints
            ],
            # The margins are exact value-iteration Q-values, re-checked
            # at the solution point by the solver's feasibility verdict;
            # report the least-infeasible θ′ for diagnostics either way.
            instantiate=theta_at,
            instantiate_when_infeasible=True,
        )

    def q_constrained(
        self,
        theta: np.ndarray,
        constraints: Sequence[QValueConstraint],
        delta_bound: float = 2.0,
        extra_starts: int = 6,
        seed: int = 0,
    ) -> RewardRepairResult:
        """Repair by ``min ‖Δθ‖² s.t. Q(s, a⁺) > Q(s, a⁻) + margin``,
        run through the shared driver (:func:`repro.repair.solve_repair`)."""
        theta = np.asarray(theta, dtype=float)
        outcome = solve_repair(
            self.q_problem(theta, constraints, delta_bound=delta_bound),
            extra_starts=extra_starts,
            seed=seed,
        )
        theta_after = np.asarray(outcome.artifact, dtype=float)
        rewards_after = self.rewards_for(theta_after)
        repaired = self.mdp.with_rewards(state_rewards=rewards_after)
        return RewardRepairResult(
            theta_before=theta,
            theta_after=theta_after,
            rewards_after=rewards_after,
            policy_before=self.optimal_policy(theta),
            policy_after=self.optimal_policy(theta_after),
            repaired_mdp=repaired,
            feasible=outcome.status == "repaired",
            diagnostics={"objective": outcome.objective_value},
            solver_stats=outcome.solver_stats,
            verified=outcome.verified,
            message=outcome.message,
        )
