"""The Trusted Machine Learning decision procedure (Section II).

Given a dataset ``D``, a learning procedure and a property ``φ``:

1. learn ``M = ML(D)``; if ``M |= φ`` output ``M``;
2. otherwise run Model Repair (or Reward Repair, for reward-side
   violations); if the repaired ``M' |= φ`` output ``M'``;
3. otherwise run Data Repair; if ``ML(D') |= φ`` output that model;
4. otherwise report that ``φ`` cannot be satisfied under the configured
   repair spaces.

The pipeline records every stage so experiments can show *which* repair
succeeded.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional

from repro.checking.cache import cached_check
from repro.core.data_repair import DataRepair, DataRepairResult
from repro.core.model_repair import ModelRepair, ModelRepairResult
from repro.data.dataset import TraceDataset
from repro.logic.pctl import StateFormula
from repro.mdp.model import DTMC

State = Hashable


class PipelineStage:
    """One attempted stage of the pipeline and its verdict."""

    def __init__(self, name: str, succeeded: bool, detail: str, result=None):
        self.name = name
        self.succeeded = succeeded
        self.detail = detail
        self.result = result

    def __repr__(self) -> str:
        return f"PipelineStage({self.name!r}, succeeded={self.succeeded})"


class PipelineReport:
    """Final outcome of the TML pipeline.

    Attributes
    ----------
    model:
        A model satisfying ``φ``, or ``None`` when every stage failed.
    satisfied_by:
        ``"learned"``, ``"model_repair"``, ``"data_repair"`` or ``None``.
    stages:
        The ordered stage log.
    """

    def __init__(
        self,
        model: Optional[DTMC],
        satisfied_by: Optional[str],
        stages: List[PipelineStage],
    ):
        self.model = model
        self.satisfied_by = satisfied_by
        self.stages = stages

    @property
    def succeeded(self) -> bool:
        """Whether any stage produced a satisfying model."""
        return self.model is not None

    def summary(self) -> str:
        """Human-readable multi-line stage log."""
        lines = []
        for stage in self.stages:
            verdict = "ok" if stage.succeeded else "failed"
            lines.append(f"{stage.name}: {verdict} — {stage.detail}")
        outcome = self.satisfied_by or "unsatisfiable under configured repairs"
        lines.append(f"outcome: {outcome}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"PipelineReport(succeeded={self.succeeded}, "
            f"satisfied_by={self.satisfied_by!r})"
        )


class TrustedLearningPipeline:
    """Learn → check → Model Repair → Data Repair (Section II).

    Parameters
    ----------
    dataset:
        The training traces (grouped; groups drive Data Repair).
    formula:
        The trust property ``φ``.
    data_repair_factory:
        Builds the :class:`DataRepair` problem from the dataset — the
        caller fixes the state space / labels / rewards here.
    model_repair_factory:
        Builds the :class:`ModelRepair` problem from the learned chain —
        the caller fixes the controllable structure here.  ``None``
        skips straight to Data Repair.
    """

    def __init__(
        self,
        dataset: TraceDataset,
        formula: StateFormula,
        data_repair_factory: Callable[[TraceDataset], DataRepair],
        model_repair_factory: Optional[Callable[[DTMC], ModelRepair]] = None,
    ):
        self.dataset = dataset
        self.formula = formula
        self.data_repair_factory = data_repair_factory
        self.model_repair_factory = model_repair_factory

    def run(self) -> PipelineReport:
        """Execute the decision procedure."""
        stages: List[PipelineStage] = []
        data_repair = self.data_repair_factory(self.dataset)
        learned = data_repair.learned_model()
        check = cached_check(learned, self.formula)
        stages.append(
            PipelineStage(
                "learn+check",
                check.holds,
                f"ML(D) {'satisfies' if check.holds else 'violates'} φ"
                + (f" (value={check.value:.6g})" if check.value is not None else ""),
            )
        )
        if check.holds:
            return PipelineReport(learned, "learned", stages)

        if self.model_repair_factory is not None:
            model_repair = self.model_repair_factory(learned)
            outcome: ModelRepairResult = model_repair.repair()
            succeeded = outcome.feasible and outcome.verified
            stages.append(
                PipelineStage(
                    "model_repair",
                    succeeded,
                    outcome.describe(),
                    result=outcome,
                )
            )
            if succeeded:
                return PipelineReport(
                    outcome.repaired_model, "model_repair", stages
                )

        data_outcome: DataRepairResult = data_repair.repair()
        succeeded = data_outcome.feasible and data_outcome.verified
        stages.append(
            PipelineStage(
                "data_repair",
                succeeded,
                data_outcome.describe(),
                result=data_outcome,
            )
        )
        if succeeded:
            return PipelineReport(data_outcome.repaired_model, "data_repair", stages)
        return PipelineReport(None, None, stages)


class TrustedRewardPipeline:
    """The Section II procedure applied to the reward side.

    When the learned quantity is ``R`` (via inverse reinforcement
    learning) rather than ``P``, the decision procedure becomes:

    1. learn θ from expert demonstrations (MaxEnt IRL);
    2. check whether the optimal policy under θ satisfies the rules
       (via the trajectory-distribution violation probability and a
       user-supplied policy-safety predicate);
    3. if not, run Reward Repair (the Q-value-constrained projection
       and/or the Proposition 4 projection);
    4. report which stage produced the trusted reward.

    Parameters
    ----------
    mdp / features:
        The dynamics and feature map shared by IRL and Reward Repair.
    rules:
        The trajectory rules the repaired reward must respect.
    policy_is_safe:
        ``(mdp, policy) -> bool`` — the case-study-level safety verdict
        (e.g. :func:`repro.casestudies.car.policy_is_safe`).
    q_constraints:
        The Q-value constraints handed to
        :meth:`~repro.core.RewardRepair.q_constrained` when step 3 runs.
    discount / horizon / stop_states:
        Passed through to the repair machinery.
    """

    def __init__(
        self,
        mdp,
        features,
        rules,
        policy_is_safe,
        q_constraints,
        discount: float = 0.95,
        horizon: int = 7,
        stop_states=None,
    ):
        self.mdp = mdp
        self.features = features
        self.rules = list(rules)
        self.policy_is_safe = policy_is_safe
        self.q_constraints = list(q_constraints)
        self.discount = discount
        self.horizon = horizon
        self.stop_states = stop_states

    def run(self, demonstrations, irl_kwargs=None) -> PipelineReport:
        """Execute learn → check → Reward Repair."""
        from repro.core.reward_repair import RewardRepair
        from repro.learning.irl import MaxEntIRL

        stages: List[PipelineStage] = []
        irl = MaxEntIRL(
            self.mdp, self.features, horizon=self.horizon,
            **(irl_kwargs or {}),
        )
        fit = irl.fit(demonstrations)
        repairer = RewardRepair(self.mdp, self.features, discount=self.discount)
        learned_policy = repairer.optimal_policy(fit.theta)
        safe = self.policy_is_safe(self.mdp, learned_policy)
        stages.append(
            PipelineStage(
                "irl+check",
                safe,
                f"learned theta {[round(t, 3) for t in fit.theta]}; "
                f"optimal policy {'safe' if safe else 'unsafe'}",
                result=fit,
            )
        )
        if safe:
            return PipelineReport(fit.apply_to(self.mdp), "learned", stages)

        outcome = repairer.q_constrained(fit.theta, self.q_constraints)
        repaired_safe = outcome.feasible and self.policy_is_safe(
            self.mdp, outcome.policy_after
        )
        stages.append(
            PipelineStage(
                "reward_repair",
                repaired_safe,
                f"feasible={outcome.feasible}, {outcome.describe()}",
                result=outcome,
            )
        )
        if repaired_safe:
            return PipelineReport(outcome.repaired_mdp, "reward_repair", stages)
        return PipelineReport(None, None, stages)
