"""The paper's contribution: Model, Data and Reward Repair.

``ModelRepair``
    Definition 1 / Section IV-A — minimally perturb transition
    probabilities so the chain satisfies a PCTL property, via parametric
    model checking + nonlinear optimisation (Proposition 2).
``DataRepair``
    Definition 3 / Section IV-B — the machine-teaching formulation:
    drop traces so the re-learned model satisfies the property
    (Proposition 3).
``RewardRepair``
    Definition 2 / Section IV-C — project a learned reward onto the
    safety envelope, by posterior regularisation (Proposition 4) or by
    Q-value-constrained minimal weight change (the car case study).
``TrustedLearningPipeline``
    The Section II decision procedure tying them together.
"""

from repro.core.api import (
    check_model,
    repair_cegis,
    repair_data,
    repair_model,
    repair_rates,
    repair_reward,
    repair_robust,
)
from repro.core.costs import (
    NAMED_COSTS,
    frobenius_cost,
    l1_cost,
    max_cost,
    resolve_cost,
    weighted_quadratic_cost,
)
from repro.core.model_repair import ModelRepair, ModelRepairResult
from repro.core.data_repair import DataRepair, DataRepairResult
from repro.core.reward_repair import (
    QValueConstraint,
    RewardRepair,
    RewardRepairResult,
)
from repro.core.pipeline import (
    PipelineReport,
    PipelineStage,
    TrustedLearningPipeline,
    TrustedRewardPipeline,
)

__all__ = [
    "check_model",
    "repair_model",
    "repair_data",
    "repair_reward",
    "repair_rates",
    "repair_robust",
    "repair_cegis",
    "ModelRepair",
    "ModelRepairResult",
    "DataRepair",
    "DataRepairResult",
    "RewardRepair",
    "RewardRepairResult",
    "QValueConstraint",
    "TrustedLearningPipeline",
    "TrustedRewardPipeline",
    "PipelineReport",
    "PipelineStage",
    "frobenius_cost",
    "l1_cost",
    "max_cost",
    "weighted_quadratic_cost",
    "resolve_cost",
    "NAMED_COSTS",
]
