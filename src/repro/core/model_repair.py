"""Model Repair (Definition 1, Equations 1–6).

Given a chain ``M`` that violates a PCTL property ``φ``, find the
smallest perturbation ``Z`` of the transition probabilities such that
``M_Z |= φ``:

    min  g(Z)                                   (Eq. 1, 4)
    s.t. M_Z |= φ                               (Eq. 2 → 5 via parametric
                                                 model checking)
         P(i,j) + Z(i,j) = 0  iff  P(i,j) = 0   (Eq. 3: structure
                                                 preserved)
         0 < P(i,j) + Z(i,j) < 1                (Eq. 6: stochasticity)

Two ways to define the feasible repair space ``Feas_MP``:

* :meth:`ModelRepair.for_chain` — one perturbation variable per
  controllable edge, with each controllable row's last edge dependent so
  the row keeps summing to 1 (the generic ``Z`` matrix of Section IV-A).
* :meth:`ModelRepair.from_parametric` — a hand-built parametric chain
  with shared correction parameters (the WSN case study's ``p`` on
  field/station nodes and ``q`` on interior nodes).

The solve itself — pre-check, cached elimination, multi-start NLP,
re-verification, ε-bound — lives in :mod:`repro.repair`; this module
only *builds* the :class:`~repro.repair.RepairProblem`.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.checking.cache import CheckCache
from repro.checking.parametric import (
    ParametricConstraint,
    ParametricDTMC,
)
from repro.core.costs import frobenius_cost, resolve_cost
from repro.logic.pctl import StateFormula
from repro.mdp.bisimulation import perturbation_bound
from repro.mdp.model import DTMC
from repro.optimize import Constraint, Variable
from repro.repair import ParametricSpec, RepairProblem, RepairResult, solve_repair
from repro.symbolic import Polynomial

State = Hashable
Assignment = Dict[str, float]

_DEFAULT_MARGIN = 1e-6


def _linear_row_batch(row_vars: Sequence[str], offset: float, sign: float):
    """Vectorized margin ``offset + sign·Σ z_row`` for start screening."""

    def batch(points, names):
        import numpy as np

        columns = [names.index(name) for name in row_vars]
        matrix = np.asarray(points, dtype=float)
        return offset + sign * matrix[:, columns].sum(axis=1)

    return batch


def _abs_row_batch(row_vars: Sequence[str], bound: float):
    """Vectorized margin ``bound − |Σ z_row|`` for start screening."""

    def batch(points, names):
        import numpy as np

        columns = [names.index(name) for name in row_vars]
        matrix = np.asarray(points, dtype=float)
        return bound - np.abs(matrix[:, columns].sum(axis=1))

    return batch


def _abs_sum_gradient(
    assignment: Mapping[str, float], row_vars: Sequence[str]
) -> Dict[str, float]:
    """Subgradient of ``−|Σ z_row|`` (0 at the kink, like a forward FD)."""
    total = sum(assignment[name] for name in row_vars)
    slope = -1.0 if total > 0 else (1.0 if total < 0 else 0.0)
    return {name: slope for name in row_vars}


class ModelRepairResult(RepairResult):
    """Outcome of a Model Repair attempt.

    Carries the shared :class:`~repro.repair.RepairResult` fields
    (``status``, ``assignment``, ``objective_value``, ``verified``,
    ``message``, ``solver_stats``, ``feasible``) plus:

    Attributes
    ----------
    repaired_model:
        The repaired chain (the original when already satisfied,
        ``None`` when infeasible).
    epsilon:
        Proposition 1's ε-bisimulation bound between original and
        repaired model (0 when no repair was needed).
    """

    flavor = "model"

    def __init__(
        self,
        status: str,
        repaired_model: Optional[DTMC],
        assignment: Assignment,
        objective_value: float,
        epsilon: float,
        verified: bool,
        message: str = "",
        solver_stats: Optional[Mapping[str, int]] = None,
    ):
        super().__init__(
            status=status,
            assignment=assignment,
            objective_value=objective_value,
            verified=verified,
            message=message,
            solver_stats=solver_stats,
        )
        self.repaired_model = repaired_model
        self.epsilon = epsilon

    def extra_payload(self) -> Dict:
        from repro.io.json_io import model_to_payload

        return {
            "epsilon": float(self.epsilon),
            "repaired_model": (
                None
                if self.repaired_model is None
                else model_to_payload(self.repaired_model)
            ),
        }

    @classmethod
    def _from_payload(cls, payload: Mapping) -> "ModelRepairResult":
        from repro.io.json_io import model_from_payload

        repaired = payload.get("repaired_model")
        return cls(
            status=payload["status"],
            repaired_model=(
                None if repaired is None else model_from_payload(repaired)
            ),
            assignment=payload.get("assignment", {}),
            objective_value=payload.get("objective_value", 0.0),
            epsilon=payload.get("epsilon", 0.0),
            verified=payload.get("verified", False),
            message=payload.get("message", ""),
            solver_stats=payload.get("solver_stats", {}),
        )

    def _repr_extra(self) -> str:
        return f"epsilon={self.epsilon:.6g}"

    def describe(self) -> str:
        return f"status={self.status}, epsilon={self.epsilon:.6g}"


class ModelRepair:
    """A configured Model Repair problem; call :meth:`repair` to solve.

    Use the :meth:`for_chain` / :meth:`from_parametric` constructors
    rather than ``__init__`` directly.
    """

    def __init__(
        self,
        original: DTMC,
        formula: StateFormula,
        parametric_model: ParametricDTMC,
        variables: Sequence[Variable],
        cost: Callable[[Assignment], float],
        extra_constraints: Sequence[Constraint] = (),
        cache: Optional[CheckCache] = None,
        engine: str = "sparse",
    ):
        self.original = original
        self.formula = formula
        self.parametric_model = parametric_model
        self.variables = list(variables)
        self.cost = cost
        self.extra_constraints = list(extra_constraints)
        #: Memo for the symbolic closed form and concrete re-checks;
        #: ``None`` selects the process-wide cache, so repeated
        #: :meth:`repair` calls on unchanged inputs run exactly one
        #: parametric state elimination.
        self.cache = cache
        #: Numeric engine for the concrete pre-check and re-verification.
        self.engine = engine

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def for_chain(
        chain: DTMC,
        formula: StateFormula,
        controllable_states: Optional[Sequence[State]] = None,
        max_perturbation: Optional[float] = None,
        cost="frobenius",
        margin: float = _DEFAULT_MARGIN,
        engine: str = "sparse",
    ) -> "ModelRepair":
        """Edge-wise repair of selected rows.

        Parameters
        ----------
        controllable_states:
            States whose outgoing distribution may be perturbed (default:
            every state with ≥ 2 successors).  For a row with successors
            ``t_1 … t_k`` the variables are ``z_{s→t_1} … z_{s→t_{k−1}}``
            and the last edge absorbs ``−Σ z`` to keep the row
            stochastic (Proposition 1's row-sum-zero ``Z``).
        max_perturbation:
            Optional bound ``|Z(i,j)| ≤ δ`` defining a small
            neighbourhood of repairs (the paper's "only consider small
            perturbations").
        cost:
            ``g(Z)``: a callable over the *variable* assignment, or one
            of ``"frobenius"`` / ``"l1"`` / ``"max"``.  Named costs are
            applied to the full ``Z`` row including the dependent entry.
        """
        if controllable_states is None:
            controllable_states = [
                s for s in chain.states if len(chain.transitions[s]) >= 2
            ]
        controllable = [
            s for s in controllable_states if len(chain.transitions[s]) >= 2
        ]
        if not controllable:
            raise ValueError("no controllable state has two or more successors")

        variables: List[Variable] = []
        extra_constraints: List[Constraint] = []
        transitions: Dict[State, Dict[State, object]] = {
            s: dict(row) for s, row in chain.transitions.items()
        }
        dependent_terms: List[Tuple[List[str], float]] = []
        for state in controllable:
            successors = sorted(chain.transitions[state], key=str)
            row_vars: List[str] = []
            for target in successors[:-1]:
                name = f"z_{chain.index[state]}_{chain.index[target]}"
                base = chain.probability(state, target)
                lower = -base + margin
                upper = 1.0 - base - margin
                if max_perturbation is not None:
                    lower = max(lower, -max_perturbation)
                    upper = min(upper, max_perturbation)
                variables.append(Variable(name, lower, upper, initial=0.0))
                transitions[state][target] = base + Polynomial.variable(name)
                row_vars.append(name)
            last = successors[-1]
            last_base = chain.probability(state, last)
            dependent = Polynomial.constant(last_base)
            for name in row_vars:
                dependent = dependent - Polynomial.variable(name)
            transitions[state][last] = dependent
            dependent_terms.append((row_vars, last_base))
            # The row-sum constraints are linear, so they carry exact
            # constant gradients (SLSQP then skips finite-differencing
            # them) and a vectorized batch form for start screening.
            extra_constraints.append(
                Constraint(
                    lambda v, names=row_vars, base=last_base: base
                    - sum(v[n] for n in names)
                    - margin,
                    name=f"row_{chain.index[state]}_lower",
                    gradient=lambda v, names=row_vars: {
                        n: -1.0 for n in names
                    },
                    batch_margin=_linear_row_batch(
                        row_vars, last_base - margin, -1.0
                    ),
                )
            )
            extra_constraints.append(
                Constraint(
                    lambda v, names=row_vars, base=last_base: 1.0
                    - base
                    + sum(v[n] for n in names)
                    - margin,
                    name=f"row_{chain.index[state]}_upper",
                    gradient=lambda v, names=row_vars: {
                        n: 1.0 for n in names
                    },
                    batch_margin=_linear_row_batch(
                        row_vars, 1.0 - last_base - margin, 1.0
                    ),
                )
            )
            if max_perturbation is not None:
                extra_constraints.append(
                    Constraint(
                        lambda v, names=row_vars: max_perturbation
                        - abs(sum(v[n] for n in names)),
                        name=f"row_{chain.index[state]}_delta",
                        gradient=lambda v, names=row_vars: _abs_sum_gradient(
                            v, names
                        ),
                        batch_margin=_abs_row_batch(
                            row_vars, max_perturbation
                        ),
                    )
                )

        parametric = ParametricDTMC(
            states=chain.states,
            transitions=transitions,
            initial_state=chain.initial_state,
            labels=chain.labels,
            state_rewards=chain.state_rewards,
        )

        if callable(cost):
            cost_function = cost
        else:
            base_cost = resolve_cost(cost)

            def cost_function(assignment: Assignment) -> float:
                # Named costs act on the full Z matrix: free variables
                # plus each controllable row's dependent entry −Σ z.
                full = dict(assignment)
                for i, (names, _base) in enumerate(dependent_terms):
                    full[f"_dependent_{i}"] = -sum(assignment[n] for n in names)
                return base_cost(full)

            base_gradient = getattr(base_cost, "gradient", None)
            if base_gradient is not None:

                def cost_gradient(assignment: Assignment) -> Assignment:
                    # Chain rule through the dependent entries:
                    # ∂(−Σ z)/∂z_n = −1 for every n in that row.
                    full = dict(assignment)
                    for i, (names, _base) in enumerate(dependent_terms):
                        full[f"_dependent_{i}"] = -sum(
                            assignment[n] for n in names
                        )
                    g_full = base_gradient(full)
                    grad = {
                        name: float(g_full.get(name, 0.0))
                        for name in assignment
                    }
                    for i, (names, _base) in enumerate(dependent_terms):
                        dep = float(g_full.get(f"_dependent_{i}", 0.0))
                        for name in names:
                            grad[name] -= dep
                    return grad

                cost_function.gradient = cost_gradient

        return ModelRepair(
            original=chain,
            formula=formula,
            parametric_model=parametric,
            variables=variables,
            cost=cost_function,
            extra_constraints=extra_constraints,
            engine=engine,
        )

    @staticmethod
    def for_mdp_under_policy(
        mdp,
        policy,
        formula: StateFormula,
        controllable_states: Optional[Sequence[State]] = None,
        max_perturbation: Optional[float] = None,
        cost="frobenius",
    ) -> "MDPPolicyRepair":
        """Repair an MDP's transitions for a fixed deterministic policy.

        The MDP + policy induce a chain; that chain is repaired
        edge-wise and the repaired rows are written back into the rows
        of the *chosen* actions (other actions are untouched), mirroring
        the paper's remark that the application decides "which part of
        the ... controller can be modified".  The returned helper's
        :meth:`MDPPolicyRepair.repair` yields both the chain-level
        result and the repaired MDP.
        """
        from repro.mdp.policy import DeterministicPolicy

        if not isinstance(policy, DeterministicPolicy):
            raise TypeError("MDP repair needs a deterministic policy")
        induced = mdp.induced_dtmc(policy)
        chain_repair = ModelRepair.for_chain(
            induced,
            formula,
            controllable_states=controllable_states,
            max_perturbation=max_perturbation,
            cost=cost,
        )
        return MDPPolicyRepair(mdp, policy, chain_repair)

    @staticmethod
    def from_parametric(
        chain: DTMC,
        formula: StateFormula,
        parametric_model: ParametricDTMC,
        variables: Sequence[Variable],
        cost: Callable[[Assignment], float] = frobenius_cost,
        extra_constraints: Sequence[Constraint] = (),
        engine: str = "sparse",
    ) -> "ModelRepair":
        """Repair with a hand-built parametric model.

        ``parametric_model`` must instantiate to ``chain`` when every
        variable is at its ``initial`` value (checked at solve time for
        the zero assignment when possible).  This is the WSN-style
        shared-parameter repair.
        """
        return ModelRepair(
            original=chain,
            formula=formula,
            parametric_model=parametric_model,
            variables=variables,
            cost=cost,
            extra_constraints=extra_constraints,
            engine=engine,
        )

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def problem(self) -> RepairProblem:
        """The declarative :class:`~repro.repair.RepairProblem`.

        Definition 1 in the shared core's terms: edge perturbations as
        variables, ``M_Z |= φ`` as the parametric side condition, row
        bounds as extra constraints, Proposition 1's ε-bisimulation as
        the bound hook.
        """
        return RepairProblem(
            name="model-repair",
            variables=self.variables,
            cost=self.cost,
            parametric=[ParametricSpec(self.parametric_model, self.formula)],
            constraints=self.extra_constraints,
            original=self.original,
            formula=self.formula,
            instantiate=self.parametric_model.instantiate,
            epsilon=lambda repaired: perturbation_bound(self.original, repaired),
            already_satisfied_message=(
                "original model already satisfies the property"
            ),
            cache=self.cache,
            engine=self.engine,
        )

    def constraint(self) -> ParametricConstraint:
        """Deprecated: the reduced constraint ``f(v) ⋈ b`` (Prop. 2).

        Use ``problem().parametric_constraints()[0]``; kept as a shim
        for callers of the pre-engine API.
        """
        warnings.warn(
            "ModelRepair.constraint() is deprecated; use "
            "ModelRepair.problem().parametric_constraints()[0] instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.problem().parametric_constraints()[0]

    def repair(
        self, extra_starts: int = 8, seed: int = 0
    ) -> ModelRepairResult:
        """Run the full Model Repair pipeline (the shared driver):

        pre-check → cached elimination → multi-start NLP → concrete
        re-verification → ε-bound (:func:`repro.repair.solve_repair`).
        """
        outcome = solve_repair(
            self.problem(), extra_starts=extra_starts, seed=seed
        )
        return ModelRepairResult(
            status=outcome.status,
            repaired_model=outcome.artifact,
            assignment=outcome.assignment,
            objective_value=outcome.objective_value,
            epsilon=outcome.epsilon,
            verified=outcome.verified,
            message=outcome.message,
            solver_stats=outcome.solver_stats,
        )


class MDPPolicyRepair:
    """Repair of an MDP's chosen-action rows under a fixed policy.

    Produced by :meth:`ModelRepair.for_mdp_under_policy`; not built
    directly.
    """

    def __init__(self, mdp, policy, chain_repair: ModelRepair):
        self.mdp = mdp
        self.policy = policy
        self.chain_repair = chain_repair

    def repair(self, extra_starts: int = 8, seed: int = 0):
        """Run the chain repair and write repaired rows back to the MDP.

        Returns ``(repaired_mdp, ModelRepairResult)``; when the chain
        repair is infeasible the original MDP is returned unchanged.
        """
        result = self.chain_repair.repair(extra_starts=extra_starts, seed=seed)
        if not result.feasible or result.repaired_model is None:
            return self.mdp, result
        repaired_chain = result.repaired_model
        updates = {}
        for state in self.mdp.states:
            action = self.policy[state]
            updates[state] = {action: dict(repaired_chain.transitions[state])}
        return self.mdp.with_transitions(updates), result
