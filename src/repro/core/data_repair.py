"""Data Repair (Definition 3, Equations 7–15).

A machine-teaching problem: perturb the dataset ``D`` (by dropping
traces) so that the model re-learned from the perturbed data satisfies
``φ``, at minimal teaching effort:

    min  E_T(D, D') = ‖p‖²            (Eqs. 7, 11: perturbation effort)
    s.t. ML(D') |= φ                  (Eqs. 8, 12)
         ML = regularised MLE          (Eqs. 9–10, 13–14: inner problem,
                                        solved in closed form)

The inner maximum-likelihood problem has a closed-form solution whose
transition probabilities are *rational functions* of the per-group drop
probabilities ``p_g`` (see :func:`repro.learning.mle.parametric_mle_dtmc`),
so the outer problem reduces — exactly as Proposition 3 states — to the
same :class:`~repro.repair.RepairProblem` shape as Model Repair, with
the drop probabilities as the decision variables.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Mapping, Optional, Sequence

from repro.checking.cache import CheckCache
from repro.data.dataset import TraceDataset
from repro.learning.mle import (
    learn_dtmc,
    parametric_augment_mle_dtmc,
    parametric_mle_dtmc,
)
from repro.logic.pctl import StateFormula
from repro.mdp.model import DTMC
from repro.optimize import Variable
from repro.repair import ParametricSpec, RepairProblem, RepairResult, solve_repair

State = Hashable
Assignment = Dict[str, float]

_MAX_DROP = 1.0 - 1e-6


class DataRepairResult(RepairResult):
    """Outcome of a Data Repair attempt.

    Carries the shared :class:`~repro.repair.RepairResult` fields plus:

    Attributes
    ----------
    drop_probabilities:
        Per-group drop probability ``p_g`` (the repair; an alias of the
        base ``assignment``).  In ``"augment"`` mode these are the
        duplication weights ``w_g`` instead.
    repaired_model:
        The chain learned from the repaired data distribution.
    expected_dropped:
        Expected number of traces removed (added, in ``"augment"``
        mode).
    effort:
        The teaching-effort objective ``Σ p_g²`` at the solution (an
        alias of the base ``objective_value``).
    """

    flavor = "data"

    def __init__(
        self,
        status: str,
        drop_probabilities: Mapping[str, float],
        repaired_model: Optional[DTMC],
        expected_dropped: float,
        effort: float,
        verified: bool,
        message: str = "",
        solver_stats: Optional[Mapping[str, int]] = None,
    ):
        super().__init__(
            status=status,
            assignment=drop_probabilities,
            objective_value=effort,
            verified=verified,
            message=message,
            solver_stats=solver_stats,
        )
        self.repaired_model = repaired_model
        self.expected_dropped = expected_dropped

    @property
    def drop_probabilities(self) -> Dict[str, float]:
        """The per-group repair vector (alias of ``assignment``)."""
        return self.assignment

    @property
    def effort(self) -> float:
        """The teaching-effort objective (alias of ``objective_value``)."""
        return self.objective_value

    def extra_payload(self) -> Dict:
        from repro.io.json_io import model_to_payload

        return {
            "drop_probabilities": {
                str(name): float(value)
                for name, value in self.drop_probabilities.items()
            },
            "expected_dropped": float(self.expected_dropped),
            "effort": float(self.effort),
            "repaired_model": (
                None
                if self.repaired_model is None
                else model_to_payload(self.repaired_model)
            ),
        }

    @classmethod
    def _from_payload(cls, payload: Mapping) -> "DataRepairResult":
        from repro.io.json_io import model_from_payload

        repaired = payload.get("repaired_model")
        return cls(
            status=payload["status"],
            drop_probabilities=payload.get("drop_probabilities", {}),
            repaired_model=(
                None if repaired is None else model_from_payload(repaired)
            ),
            expected_dropped=payload.get("expected_dropped", 0.0),
            effort=payload.get("effort", 0.0),
            verified=payload.get("verified", False),
            message=payload.get("message", ""),
            solver_stats=payload.get("solver_stats", {}),
        )

    def _repr_extra(self) -> str:
        probs = {k: round(v, 6) for k, v in self.drop_probabilities.items()}
        return f"drops={probs}, expected_dropped={self.expected_dropped:.3g}"

    def describe(self) -> str:
        return (
            f"status={self.status}, "
            f"expected_dropped={self.expected_dropped:.3g}"
        )


class DataRepair:
    """A configured Data Repair problem; call :meth:`repair` to solve.

    Parameters
    ----------
    dataset:
        Grouped traces.  Only groups with ``droppable=True`` receive a
        drop parameter; the rest are pinned (the paper's reliable
        points, ``p_i = 1`` in its keep-convention).
    formula:
        The PCTL property the re-learned model must satisfy.
    initial_state:
        Initial state for the learned chain.
    states / labels / state_rewards:
        Model structure for the learned chain (labels drive the PCTL
        atoms, rewards drive ``R`` properties).
    effort:
        The outer objective over drop probabilities; defaults to
        ``Σ p_g²`` (the paper's ``‖p‖²`` with the keep/drop convention
        folded in).
    max_drop:
        Upper bound on every drop probability (< 1 keeps the learned
        chain's structure intact — Equation 6's analogue).
    mode:
        ``"drop"`` (the paper's main formulation: group ``g`` kept with
        weight ``1 − p_g``) or ``"augment"`` (the paper's "data points
        being added" variant: group ``g`` duplicated with weight
        ``1 + w_g``, ``0 ≤ w_g ≤ max_augment``).
    max_augment:
        Upper bound on the duplication weights in ``"augment"`` mode.
    """

    def __init__(
        self,
        dataset: TraceDataset,
        formula: StateFormula,
        initial_state: State,
        states: Optional[Sequence[State]] = None,
        labels: Optional[Mapping[State, Iterable[str]]] = None,
        state_rewards: Optional[Mapping[State, float]] = None,
        effort: Optional[Callable[[Assignment], float]] = None,
        max_drop: float = _MAX_DROP,
        mode: str = "drop",
        max_augment: float = 4.0,
        cache: Optional[CheckCache] = None,
        engine: str = "sparse",
    ):
        if mode not in ("drop", "augment"):
            raise ValueError(f"unknown Data Repair mode {mode!r}")
        self.mode = mode
        if max_augment <= 0:
            raise ValueError("max_augment must be positive")
        self.max_augment = float(max_augment)
        self.dataset = dataset
        self.formula = formula
        self.initial_state = initial_state
        self.states = list(states) if states is not None else dataset.states()
        if initial_state not in set(self.states):
            self.states.append(initial_state)
        self.labels = labels
        self.state_rewards = state_rewards
        self.effort = effort or (
            lambda assignment: sum(value * value for value in assignment.values())
        )
        if not 0 < max_drop < 1:
            raise ValueError("max_drop must lie strictly between 0 and 1")
        self.max_drop = max_drop
        #: Memo for the symbolic closed form and concrete re-checks;
        #: ``None`` selects the process-wide cache.  The parametric MLE
        #: model is rebuilt per call, but its content fingerprint is
        #: unchanged, so the elimination still runs only once.
        self.cache = cache
        #: Numeric engine for the concrete pre-check and re-verification.
        self.engine = engine

    # ------------------------------------------------------------------
    # Pieces
    # ------------------------------------------------------------------
    def learned_model(self) -> DTMC:
        """``ML(D)`` — the chain learned from the unrepaired data."""
        return learn_dtmc(
            self.dataset.all_traces(),
            initial_state=self.initial_state,
            states=self.states,
            labels=self.labels,
            state_rewards=self.state_rewards,
        )

    def parametric_model(self):
        """``ML(D_p)`` symbolically, as a function of the repair vector."""
        if self.mode == "augment":
            weight_parameters = {
                name: f"weight_{name}"
                for name in self.dataset.droppable_groups()
            }
            return parametric_augment_mle_dtmc(
                grouped_counts=self.dataset.grouped_counts(),
                initial_state=self.initial_state,
                states=self.states,
                weight_parameters=weight_parameters,
                labels=self.labels,
                state_rewards=self.state_rewards,
            )
        drop_parameters = {
            name: f"drop_{name}" for name in self.dataset.droppable_groups()
        }
        return parametric_mle_dtmc(
            grouped_counts=self.dataset.grouped_counts(),
            initial_state=self.initial_state,
            states=self.states,
            drop_parameters=drop_parameters,
            labels=self.labels,
            state_rewards=self.state_rewards,
        )

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def _parameter_prefix(self) -> str:
        return "weight_" if self.mode == "augment" else "drop_"

    def problem(self) -> RepairProblem:
        """The declarative :class:`~repro.repair.RepairProblem`.

        Proposition 3 in the shared core's terms: per-group drop (or
        duplication) probabilities as variables, the parametric MLE
        chain's ``ML(D_p) |= φ`` as the side condition, teaching effort
        as the cost.
        """
        prefix = self._parameter_prefix()
        upper = self.max_augment if self.mode == "augment" else self.max_drop
        variables = [
            Variable(f"{prefix}{name}", 0.0, upper, initial=0.0)
            for name in self.dataset.droppable_groups()
        ]
        return RepairProblem(
            name="data-repair",
            variables=variables,
            cost=self.effort,
            parametric=[ParametricSpec(self.parametric_model, self.formula)],
            original=self.learned_model(),
            formula=self.formula,
            instantiate=lambda assignment: self.parametric_model().instantiate(
                assignment
            ),
            already_satisfied_message=(
                "model learned from the original data already satisfies φ"
            ),
            no_variable_message="no group is droppable",
            cache=self.cache,
            engine=self.engine,
        )

    def repair(self, extra_starts: int = 8, seed: int = 0) -> DataRepairResult:
        """Run the full Data Repair pipeline (learn → reduce → optimise)
        through the shared driver (:func:`repro.repair.solve_repair`)."""
        outcome = solve_repair(
            self.problem(), extra_starts=extra_starts, seed=seed
        )
        prefix = self._parameter_prefix()
        drop_probabilities = (
            {}
            if outcome.status == "already_satisfied"
            else {
                name: outcome.assignment[f"{prefix}{name}"]
                for name in self.dataset.droppable_groups()
                if f"{prefix}{name}" in outcome.assignment
            }
        )
        return DataRepairResult(
            status=outcome.status,
            drop_probabilities=drop_probabilities,
            repaired_model=outcome.artifact,
            expected_dropped=self.dataset.expected_dropped(drop_probabilities),
            effort=outcome.objective_value,
            verified=outcome.verified,
            message=outcome.message,
            solver_stats=outcome.solver_stats,
        )
