"""Data Repair (Definition 3, Equations 7–15).

A machine-teaching problem: perturb the dataset ``D`` (by dropping
traces) so that the model re-learned from the perturbed data satisfies
``φ``, at minimal teaching effort:

    min  E_T(D, D') = ‖p‖²            (Eqs. 7, 11: perturbation effort)
    s.t. ML(D') |= φ                  (Eqs. 8, 12)
         ML = regularised MLE          (Eqs. 9–10, 13–14: inner problem,
                                        solved in closed form)

The inner maximum-likelihood problem has a closed-form solution whose
transition probabilities are *rational functions* of the per-group drop
probabilities ``p_g`` (see :func:`repro.learning.mle.parametric_mle_dtmc`),
so the outer problem reduces — exactly as Proposition 3 states — to a
nonlinear program over rational constraints, solved the same way as
Model Repair.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Mapping, Optional, Sequence

from repro.checking.cache import CheckCache, cached_check, get_cache
from repro.data.dataset import TraceDataset
from repro.learning.mle import (
    learn_dtmc,
    parametric_augment_mle_dtmc,
    parametric_mle_dtmc,
)
from repro.logic.pctl import StateFormula
from repro.mdp.model import DTMC
from repro.optimize import (
    Constraint,
    NonlinearProgram,
    Variable,
    constraint_from_parametric,
)

State = Hashable
Assignment = Dict[str, float]

_MAX_DROP = 1.0 - 1e-6


class DataRepairResult:
    """Outcome of a Data Repair attempt.

    Attributes
    ----------
    status:
        ``"already_satisfied"``, ``"repaired"`` or ``"infeasible"``.
    drop_probabilities:
        Per-group drop probability ``p_g`` (the repair).  In
        ``"augment"`` mode these are the duplication weights ``w_g``
        instead.
    repaired_model:
        The chain learned from the repaired data distribution.
    expected_dropped:
        Expected number of traces removed (added, in ``"augment"``
        mode).
    effort:
        The teaching-effort objective ``Σ p_g²`` at the solution.
    verified:
        Whether the repaired model was concretely re-checked.
    solver_stats:
        Aggregate NLP accounting (iterations, function evaluations,
        converged starts); empty when no solve ran.
    """

    def __init__(
        self,
        status: str,
        drop_probabilities: Mapping[str, float],
        repaired_model: Optional[DTMC],
        expected_dropped: float,
        effort: float,
        verified: bool,
        message: str = "",
        solver_stats: Optional[Mapping[str, int]] = None,
    ):
        self.status = status
        self.drop_probabilities = dict(drop_probabilities)
        self.repaired_model = repaired_model
        self.expected_dropped = expected_dropped
        self.effort = effort
        self.verified = verified
        self.message = message
        self.solver_stats = dict(solver_stats or {})

    @property
    def feasible(self) -> bool:
        """True unless the repair problem was infeasible."""
        return self.status != "infeasible"

    def __repr__(self) -> str:
        probs = {k: round(v, 6) for k, v in self.drop_probabilities.items()}
        return (
            f"DataRepairResult(status={self.status!r}, drops={probs}, "
            f"expected_dropped={self.expected_dropped:.3g}, "
            f"verified={self.verified})"
        )


class DataRepair:
    """A configured Data Repair problem; call :meth:`repair` to solve.

    Parameters
    ----------
    dataset:
        Grouped traces.  Only groups with ``droppable=True`` receive a
        drop parameter; the rest are pinned (the paper's reliable
        points, ``p_i = 1`` in its keep-convention).
    formula:
        The PCTL property the re-learned model must satisfy.
    initial_state:
        Initial state for the learned chain.
    states / labels / state_rewards:
        Model structure for the learned chain (labels drive the PCTL
        atoms, rewards drive ``R`` properties).
    effort:
        The outer objective over drop probabilities; defaults to
        ``Σ p_g²`` (the paper's ``‖p‖²`` with the keep/drop convention
        folded in).
    max_drop:
        Upper bound on every drop probability (< 1 keeps the learned
        chain's structure intact — Equation 6's analogue).
    mode:
        ``"drop"`` (the paper's main formulation: group ``g`` kept with
        weight ``1 − p_g``) or ``"augment"`` (the paper's "data points
        being added" variant: group ``g`` duplicated with weight
        ``1 + w_g``, ``0 ≤ w_g ≤ max_augment``).
    max_augment:
        Upper bound on the duplication weights in ``"augment"`` mode.
    """

    def __init__(
        self,
        dataset: TraceDataset,
        formula: StateFormula,
        initial_state: State,
        states: Optional[Sequence[State]] = None,
        labels: Optional[Mapping[State, Iterable[str]]] = None,
        state_rewards: Optional[Mapping[State, float]] = None,
        effort: Optional[Callable[[Assignment], float]] = None,
        max_drop: float = _MAX_DROP,
        mode: str = "drop",
        max_augment: float = 4.0,
        cache: Optional[CheckCache] = None,
        engine: str = "sparse",
    ):
        if mode not in ("drop", "augment"):
            raise ValueError(f"unknown Data Repair mode {mode!r}")
        self.mode = mode
        if max_augment <= 0:
            raise ValueError("max_augment must be positive")
        self.max_augment = float(max_augment)
        self.dataset = dataset
        self.formula = formula
        self.initial_state = initial_state
        self.states = list(states) if states is not None else dataset.states()
        if initial_state not in set(self.states):
            self.states.append(initial_state)
        self.labels = labels
        self.state_rewards = state_rewards
        self.effort = effort or (
            lambda assignment: sum(value * value for value in assignment.values())
        )
        if not 0 < max_drop < 1:
            raise ValueError("max_drop must lie strictly between 0 and 1")
        self.max_drop = max_drop
        #: Memo for the symbolic closed form and concrete re-checks;
        #: ``None`` selects the process-wide cache.  The parametric MLE
        #: model is rebuilt per call, but its content fingerprint is
        #: unchanged, so the elimination still runs only once.
        self.cache = cache
        #: Numeric engine for the concrete pre-check and re-verification.
        self.engine = engine

    # ------------------------------------------------------------------
    # Pieces
    # ------------------------------------------------------------------
    def learned_model(self) -> DTMC:
        """``ML(D)`` — the chain learned from the unrepaired data."""
        return learn_dtmc(
            self.dataset.all_traces(),
            initial_state=self.initial_state,
            states=self.states,
            labels=self.labels,
            state_rewards=self.state_rewards,
        )

    def parametric_model(self):
        """``ML(D_p)`` symbolically, as a function of the repair vector."""
        if self.mode == "augment":
            weight_parameters = {
                name: f"weight_{name}"
                for name in self.dataset.droppable_groups()
            }
            return parametric_augment_mle_dtmc(
                grouped_counts=self.dataset.grouped_counts(),
                initial_state=self.initial_state,
                states=self.states,
                weight_parameters=weight_parameters,
                labels=self.labels,
                state_rewards=self.state_rewards,
            )
        drop_parameters = {
            name: f"drop_{name}" for name in self.dataset.droppable_groups()
        }
        return parametric_mle_dtmc(
            grouped_counts=self.dataset.grouped_counts(),
            initial_state=self.initial_state,
            states=self.states,
            drop_parameters=drop_parameters,
            labels=self.labels,
            state_rewards=self.state_rewards,
        )

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def repair(self, extra_starts: int = 8, seed: int = 0) -> DataRepairResult:
        """Run the full Data Repair pipeline (learn → reduce → optimise).

        Mirrors :meth:`repro.core.model_repair.ModelRepair.repair`, with
        the drop probabilities as the decision variables.
        """
        original = self.learned_model()
        if cached_check(
            original, self.formula, engine=self.engine, cache=self.cache
        ).holds:
            return DataRepairResult(
                status="already_satisfied",
                drop_probabilities={},
                repaired_model=original,
                expected_dropped=0.0,
                effort=0.0,
                verified=True,
                message="model learned from the original data already satisfies φ",
            )
        droppable = self.dataset.droppable_groups()
        if not droppable:
            return DataRepairResult(
                status="infeasible",
                drop_probabilities={},
                repaired_model=None,
                expected_dropped=0.0,
                effort=0.0,
                verified=False,
                message="no group is droppable",
            )
        parametric = get_cache(self.cache).parametric_constraint(
            self.parametric_model(), self.formula
        )
        prefix = "weight_" if self.mode == "augment" else "drop_"
        upper = self.max_augment if self.mode == "augment" else self.max_drop
        variables = [
            Variable(f"{prefix}{name}", 0.0, upper, initial=0.0)
            for name in droppable
        ]
        program = NonlinearProgram(
            variables=variables,
            objective=self.effort,
            constraints=[constraint_from_parametric(parametric)],
        )
        outcome = program.solve(extra_starts=extra_starts, seed=seed)
        drop_probabilities = {
            name: outcome.assignment[f"{prefix}{name}"] for name in droppable
        }
        if not outcome.feasible:
            return DataRepairResult(
                status="infeasible",
                drop_probabilities=drop_probabilities,
                repaired_model=None,
                expected_dropped=self.dataset.expected_dropped(drop_probabilities),
                effort=outcome.objective_value,
                verified=False,
                message=outcome.message,
                solver_stats=outcome.solver_stats,
            )
        repaired = self.parametric_model().instantiate(outcome.assignment)
        verified = cached_check(
            repaired, self.formula, engine=self.engine, cache=self.cache
        ).holds
        return DataRepairResult(
            status="repaired",
            drop_probabilities=drop_probabilities,
            repaired_model=repaired,
            expected_dropped=self.dataset.expected_dropped(drop_probabilities),
            effort=outcome.objective_value,
            verified=verified,
            message=outcome.message,
            solver_stats=outcome.solver_stats,
        )
