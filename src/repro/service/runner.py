"""Fault-tolerant process-pool batch runner.

``BatchRunner`` drives a set of :class:`~repro.service.jobs.JobSpec`
through a :class:`~concurrent.futures.ProcessPoolExecutor` and
guarantees that **every job terminates with a definite status**:

``succeeded``
    The job ran to completion on the exact path.
``degraded``
    The exact engine hit the per-job timeout and a
    :class:`CheckJob` fell back to statistical checking
    (:mod:`repro.checking.statistical`); the result carries
    ``degraded=True``.
``failed-after-retries``
    The job kept crashing / timing out / erroring past the retry
    budget.  The last error is preserved on the outcome.
``cancelled``
    The batch was cancelled before the job finished.

Resilience mechanics:

* **Per-job timeout** — enforced *inside* the worker with
  ``signal.setitimer`` (the task runs on the worker's main thread), so
  a timed-out job returns a structured result and the worker survives.
  A watchdog in the dispatcher additionally covers workers hung beyond
  the alarm (e.g. stuck in C code): the pool is torn down, its
  processes killed, and the in-flight jobs retried.
* **Crash recovery** — a dying worker (``os._exit``, OOM kill) breaks
  the whole ``ProcessPoolExecutor``; the runner detects the broken
  pool, rebuilds it, and charges every in-flight job one attempt
  (conservative — the culprit cannot be identified — but bounded).
* **Bounded retries** — exponential backoff with deterministic
  seeded jitter; ``max_retries`` exhaustion yields
  ``failed-after-retries`` rather than an exception.
* **Cancellation** — :meth:`BatchRunner.cancel` (thread-safe) drains
  the batch; unfinished jobs report ``cancelled``.
* **Shared persistent cache** — with ``store_dir`` set, every worker
  installs a :class:`~repro.checking.cache.CheckCache` backed by the
  on-disk :class:`~repro.service.store.ResultStore`, and whole-job
  results are deduplicated by content fingerprint, so re-running an
  identical batch performs zero parametric eliminations.

``max_workers=0`` runs jobs inline in the calling process (no pool) —
the sequential baseline used by the benchmarks, and the execution mode
of the HTTP server's synchronous endpoint.
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

from repro.service.faults import FaultPlan, InjectedFault
from repro.service.jobs import JobSpec, JobValidationError, job_from_dict
from repro.service.telemetry import Telemetry, solver_counters

#: Definite terminal statuses (acceptance: every job ends in one).
TERMINAL_STATUSES = (
    "succeeded",
    "degraded",
    "failed-after-retries",
    "cancelled",
)


class JobTimeout(Exception):
    """Raised inside a worker when the per-job alarm fires."""


# ----------------------------------------------------------------------
# Worker side (module-level: everything here must be picklable)
# ----------------------------------------------------------------------
def _cache_snapshot() -> Dict[str, int]:
    from repro.checking import cache as cache_module
    from repro.symbolic.compile import kernel_stats

    snapshot = dict(cache_module.GLOBAL_CACHE.stats())
    snapshot.update(kernel_stats())
    return snapshot


def _cache_delta(before: Dict[str, int]) -> Dict[str, int]:
    after = _cache_snapshot()
    return {
        "cache_hits": after.get("hits", 0) - before.get("hits", 0),
        "cache_misses": after.get("misses", 0) - before.get("misses", 0),
        "cache_evictions": after.get("evictions", 0)
        - before.get("evictions", 0),
        "backing_hits": after.get("backing_hits", 0)
        - before.get("backing_hits", 0),
        "parametric_eliminations": after.get("parametric_eliminations", 0)
        - before.get("parametric_eliminations", 0),
        "elimination_states": after.get("elimination_states", 0)
        - before.get("elimination_states", 0),
        "elimination_fill_in": after.get("elimination_fill_in", 0)
        - before.get("elimination_fill_in", 0),
        "elimination_reuse_hits": after.get("elimination_reuse_hits", 0)
        - before.get("elimination_reuse_hits", 0),
        "elimination_ms": after.get("elimination_ms", 0)
        - before.get("elimination_ms", 0),
        "kernel_compilations": after.get("compilations", 0)
        - before.get("compilations", 0),
        "kernel_evaluations": after.get("evaluations", 0)
        - before.get("evaluations", 0),
        "kernel_dispatches": after.get("dispatches", 0)
        - before.get("dispatches", 0),
    }


def _alarm_guard(seconds: Optional[float]):
    """Install a SIGALRM-based timeout; returns a restore callback.

    No-op (returns ``None`` restore) when no timeout was requested, the
    platform lacks ``SIGALRM``, or we are not on the main thread (the
    HTTP server executes inline jobs on handler threads).
    """
    if (
        seconds is None
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return None

    def on_alarm(_signum, _frame):
        raise JobTimeout(f"job exceeded {seconds}s")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))

    def restore():
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)

    return restore


def _run_job_in_worker(task: Dict) -> Dict:
    """Execute one job attempt; always returns a structured dict.

    ``task`` carries plain data only: the job's ``to_dict`` form, the
    attempt number, runner configuration, and an optional fault plan.
    Raises only via injected crashes (``os._exit``) — every other
    failure mode is folded into the returned payload.  A payload that
    cannot even be rebuilt into a spec returns a structured
    ``failure: "invalid"`` record (never retried — the payload will not
    get better) instead of ripping through the worker.
    """
    raw_job = task.get("job")
    try:
        job = job_from_dict(raw_job)
    except JobValidationError as exc:
        raw = raw_job if isinstance(raw_job, dict) else {}
        return {
            "ok": False,
            "failure": "invalid",
            "error": str(exc),
            "job_id": str(raw.get("job_id", "<unknown>")),
            "kind": str(raw.get("kind", "<unknown>")),
            "attempt": int(task.get("attempt", 0)),
            "pid": os.getpid(),
            "duration": 0.0,
        }
    attempt = int(task["attempt"])
    store_dir = task.get("store_dir")
    inline = bool(task.get("inline", False))
    started = time.monotonic()

    store = None
    if store_dir is not None:
        from repro.service.store import ResultStore, install_process_cache

        install_process_cache(
            store_dir, max_entries=task.get("cache_max_entries", 4096)
        )
        store = ResultStore(store_dir)

    before = _cache_snapshot()
    base = {
        "job_id": job.job_id,
        "kind": job.kind,
        "attempt": attempt,
        "pid": os.getpid(),
    }

    def finish(payload: Dict) -> Dict:
        payload.update(base)
        payload.setdefault("solver_iterations", 0)
        payload.setdefault("solver_function_evaluations", 0)
        payload["duration"] = time.monotonic() - started
        payload.update(_cache_delta(before))
        return payload

    # Whole-job dedup: identical content already computed (this run or a
    # previous one) is served from the store without re-execution.
    result_key = ("job-result", job.fingerprint())
    if store is not None:
        stored = store.get(result_key)
        if stored is not None:
            return finish(
                {"ok": True, "status": "succeeded", "result": stored,
                 "cached": True}
            )

    faults = task.get("faults")
    plan = FaultPlan.from_dict(faults) if faults else None

    restore = _alarm_guard(task.get("timeout"))
    try:
        if plan is not None:
            plan.apply(job.job_id, attempt, allow_crash=not inline)
        result = job.run(cache=None)
    except JobTimeout as exc:
        if task.get("fallback", True) and hasattr(job, "run_statistical"):
            try:
                degraded = job.run_statistical(seed=attempt)
            except Exception as fallback_exc:  # noqa: BLE001 — report, never raise
                return finish(
                    {"ok": False, "failure": "timeout",
                     "error": f"{exc}; statistical fallback failed: "
                              f"{fallback_exc}"}
                )
            return finish(
                {"ok": True, "status": "degraded", "result": degraded,
                 "degraded": True, "fallback": True}
            )
        return finish({"ok": False, "failure": "timeout", "error": str(exc)})
    except InjectedFault as exc:
        return finish({"ok": False, "failure": "injected", "error": str(exc)})
    except Exception as exc:  # noqa: BLE001 — workers must not raise
        return finish(
            {"ok": False, "failure": "error",
             "error": f"{type(exc).__name__}: {exc}"}
        )
    finally:
        if restore is not None:
            restore()

    if store is not None:
        store.put(result_key, result)
    return finish(
        {"ok": True, "status": "succeeded", "result": result,
         **solver_counters(result)}
    )


# ----------------------------------------------------------------------
# Outcomes
# ----------------------------------------------------------------------
class JobOutcome:
    """Terminal record for one job of a batch."""

    def __init__(
        self,
        job_id: str,
        kind: str,
        status: str,
        attempts: int,
        duration: float,
        result: Optional[Dict] = None,
        error: Optional[str] = None,
        degraded: bool = False,
        cached: bool = False,
    ):
        assert status in TERMINAL_STATUSES, status
        self.job_id = job_id
        self.kind = kind
        self.status = status
        self.attempts = attempts
        self.duration = duration
        self.result = result
        self.error = error
        self.degraded = degraded
        self.cached = cached

    @property
    def ok(self) -> bool:
        """Whether the job produced a usable result."""
        return self.status in ("succeeded", "degraded")

    def to_dict(self) -> Dict:
        """JSON-ready form (the ``repro batch`` report rows)."""
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "status": self.status,
            "attempts": self.attempts,
            "duration": self.duration,
            "result": self.result,
            "error": self.error,
            "degraded": self.degraded,
            "cached": self.cached,
        }

    def __repr__(self) -> str:
        return (
            f"JobOutcome({self.job_id!r}, {self.status!r}, "
            f"attempts={self.attempts})"
        )


class BatchReport:
    """Everything a batch run produced, in input-job order."""

    def __init__(
        self,
        outcomes: Sequence[JobOutcome],
        wall_clock: float,
        counters: Dict[str, int],
    ):
        self.outcomes = list(outcomes)
        self.wall_clock = wall_clock
        self.counters = dict(counters)

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    def outcome(self, job_id: str) -> JobOutcome:
        """The outcome for one job id."""
        for outcome in self.outcomes:
            if outcome.job_id == job_id:
                return outcome
        raise KeyError(job_id)

    def by_status(self) -> Dict[str, int]:
        """``{status: count}`` over the batch."""
        tally: Dict[str, int] = {}
        for outcome in self.outcomes:
            tally[outcome.status] = tally.get(outcome.status, 0) + 1
        return tally

    @property
    def all_ok(self) -> bool:
        """Whether every job succeeded (possibly degraded)."""
        return all(outcome.ok for outcome in self.outcomes)

    def to_dict(self) -> Dict:
        """JSON-ready form of the whole report."""
        return {
            "wall_clock": self.wall_clock,
            "statuses": self.by_status(),
            "counters": self.counters,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }

    def __repr__(self) -> str:
        return (
            f"BatchReport({self.by_status()}, "
            f"wall_clock={self.wall_clock:.3g}s)"
        )


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
class BatchRunner:
    """Run job batches on a process pool with retries and timeouts.

    Parameters
    ----------
    max_workers:
        Pool size; ``0`` executes jobs inline (sequential, no pool).
    store_dir:
        Directory of the shared persistent result store (optional).
    telemetry:
        A :class:`~repro.service.telemetry.Telemetry`; a fresh
        in-memory one is created when omitted.
    job_timeout:
        Per-job wall-clock budget in seconds (``None`` = unlimited).
    max_retries:
        Extra attempts after the first (job terminates
        ``failed-after-retries`` once exhausted).
    backoff_base / backoff_max / backoff_jitter:
        Retry delay ``min(max, base·2^attempt)·(1 + jitter·u)`` with a
        deterministic per-(job, attempt) uniform draw ``u``.
    seed:
        Seeds the backoff jitter (fault plans carry their own seed).
    faults:
        Optional :class:`~repro.service.faults.FaultPlan` shipped to
        every worker (tests only).
    statistical_fallback:
        Whether timed-out check jobs may degrade to statistical
        checking.
    watchdog_grace:
        Extra seconds past ``job_timeout`` before the dispatcher
        declares a worker hung and rebuilds the pool.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        store_dir: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
        job_timeout: Optional[float] = None,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        backoff_jitter: float = 0.5,
        seed: int = 0,
        faults: Optional[FaultPlan] = None,
        statistical_fallback: bool = True,
        watchdog_grace: float = 10.0,
        cache_max_entries: int = 4096,
    ):
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 0:
            raise ValueError("max_workers must be >= 0")
        self.max_workers = max_workers
        self.store_dir = str(store_dir) if store_dir is not None else None
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.job_timeout = job_timeout
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        self.backoff_jitter = float(backoff_jitter)
        self.seed = int(seed)
        self.faults = faults
        self.statistical_fallback = bool(statistical_fallback)
        self.watchdog_grace = float(watchdog_grace)
        self.cache_max_entries = int(cache_max_entries)
        self._cancel = threading.Event()

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def cancel(self) -> None:
        """Request cancellation (safe from any thread)."""
        self._cancel.set()

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._cancel.is_set()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _task(self, job: JobSpec, attempt: int, inline: bool) -> Dict:
        return {
            "job": job.to_dict(),
            "attempt": attempt,
            "store_dir": self.store_dir,
            "timeout": self.job_timeout,
            "faults": self.faults.to_dict() if self.faults else None,
            "fallback": self.statistical_fallback,
            "inline": inline,
            "cache_max_entries": self.cache_max_entries,
        }

    def _backoff_delay(self, job_id: str, attempt: int) -> float:
        text = f"backoff:{self.seed}:{job_id}:{attempt}"
        digest = hashlib.sha256(text.encode("utf-8")).digest()
        uniform = int.from_bytes(digest[:8], "big") / float(1 << 64)
        delay = min(self.backoff_max, self.backoff_base * (2.0 ** attempt))
        return delay * (1.0 + self.backoff_jitter * uniform)

    def _emit_attempt(self, payload: Dict) -> None:
        """Forward a worker attempt's cache/solver accounting."""
        self.telemetry.emit(
            "job_attempt",
            job_id=payload.get("job_id"),
            attempt=payload.get("attempt"),
            ok=payload.get("ok"),
            cached=payload.get("cached", False),
            duration=payload.get("duration"),
            cache_hits=payload.get("cache_hits", 0),
            cache_misses=payload.get("cache_misses", 0),
            cache_evictions=payload.get("cache_evictions", 0),
            backing_hits=payload.get("backing_hits", 0),
            parametric_eliminations=payload.get("parametric_eliminations", 0),
            elimination_states=payload.get("elimination_states", 0),
            elimination_fill_in=payload.get("elimination_fill_in", 0),
            elimination_reuse_hits=payload.get("elimination_reuse_hits", 0),
            elimination_ms=payload.get("elimination_ms", 0),
            solver_iterations=payload.get("solver_iterations", 0),
            solver_function_evaluations=payload.get(
                "solver_function_evaluations", 0
            ),
            kernel_compilations=payload.get("kernel_compilations", 0),
            kernel_evaluations=payload.get("kernel_evaluations", 0),
            kernel_dispatches=payload.get("kernel_dispatches", 0),
            robust_vi_iterations=payload.get("robust_vi_iterations", 0),
            robust_fallbacks=payload.get("robust_fallbacks", 0),
            cegis_iterations=payload.get("cegis_iterations", 0),
            cegis_constraints_added=payload.get("cegis_constraints_added", 0),
            cegis_counterexample_states=payload.get(
                "cegis_counterexample_states", 0
            ),
        )

    def _finish(
        self,
        outcomes: Dict[str, JobOutcome],
        job: JobSpec,
        payload: Dict,
        attempt: int,
    ) -> None:
        """Record a successful (possibly degraded) attempt as terminal."""
        status = payload.get("status", "succeeded")
        outcomes[job.job_id] = JobOutcome(
            job_id=job.job_id,
            kind=job.kind,
            status=status,
            attempts=attempt + 1,
            duration=float(payload.get("duration", 0.0)),
            result=payload.get("result"),
            degraded=bool(payload.get("degraded", False)),
            cached=bool(payload.get("cached", False)),
        )
        if payload.get("fallback"):
            self.telemetry.emit("job_fallback", job_id=job.job_id)
        self.telemetry.emit(
            "job_end",
            job_id=job.job_id,
            status=status,
            attempts=attempt + 1,
            duration=payload.get("duration"),
            degraded=bool(payload.get("degraded", False)),
            cached=bool(payload.get("cached", False)),
        )

    def _fail_or_retry(
        self,
        job: JobSpec,
        attempt: int,
        reason: str,
        error: str,
        outcomes: Dict[str, JobOutcome],
        waiting: List[Tuple[float, JobSpec, int]],
        duration: float = 0.0,
    ) -> None:
        """Schedule a retry, or mark the job failed-after-retries.

        ``reason == "invalid"`` fails immediately: a malformed payload
        is deterministic, so retrying would burn the whole budget to
        reach the same validation error.
        """
        if reason == "timeout":
            self.telemetry.emit("job_timeout", job_id=job.job_id, attempt=attempt)
        if reason == "invalid":
            self.telemetry.emit(
                "job_invalid", job_id=job.job_id, error=error
            )
        retryable = reason != "invalid"
        if retryable and attempt < self.max_retries and not self.cancelled:
            delay = self._backoff_delay(job.job_id, attempt)
            self.telemetry.emit(
                "job_retry",
                job_id=job.job_id,
                attempt=attempt + 1,
                delay=delay,
                reason=reason,
            )
            waiting.append((time.monotonic() + delay, job, attempt + 1))
            return
        outcomes[job.job_id] = JobOutcome(
            job_id=job.job_id,
            kind=job.kind,
            status="failed-after-retries",
            attempts=attempt + 1,
            duration=duration,
            error=error,
        )
        self.telemetry.emit(
            "job_end",
            job_id=job.job_id,
            status="failed-after-retries",
            attempts=attempt + 1,
            error=error,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[JobSpec]) -> BatchReport:
        """Run the batch to completion; never raises for job failures."""
        jobs = list(jobs)
        ids = [job.job_id for job in jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate job_id values in batch")
        started = time.monotonic()
        self.telemetry.emit(
            "batch_start",
            jobs=len(jobs),
            workers=self.max_workers,
            store=self.store_dir,
        )
        if self.max_workers == 0:
            outcomes = self._run_inline(jobs)
        else:
            outcomes = self._run_pool(jobs)
        wall_clock = time.monotonic() - started
        ordered = [
            outcomes.get(
                job.job_id,
                JobOutcome(job.job_id, job.kind, "cancelled", 0, 0.0),
            )
            for job in jobs
        ]
        report = BatchReport(ordered, wall_clock, self.telemetry.counters())
        self.telemetry.emit(
            "batch_end", wall_clock=wall_clock, statuses=report.by_status()
        )
        report.counters = self.telemetry.counters()
        return report

    def run_one(self, job: JobSpec) -> JobOutcome:
        """Run a single job inline through the full retry machinery.

        The execution path of the async job queue's worker threads: no
        batch bookkeeping (``batch_start``/``batch_end`` events are a
        batch concept), but the same attempt telemetry, bounded
        retries with backoff, store-level dedup and statistical
        fallback as a one-job batch.  Never raises for job failures —
        the returned :class:`JobOutcome` always has a terminal status.
        """
        outcomes = self._run_inline([job])
        return outcomes.get(
            job.job_id, JobOutcome(job.job_id, job.kind, "cancelled", 0, 0.0)
        )

    # -- inline ---------------------------------------------------------
    def _run_inline(self, jobs: Sequence[JobSpec]) -> Dict[str, JobOutcome]:
        outcomes: Dict[str, JobOutcome] = {}
        queue = deque((job, 0) for job in jobs)
        waiting: List[Tuple[float, JobSpec, int]] = []
        while queue or waiting:
            if self.cancelled:
                break
            if not queue:
                ready_at = min(entry[0] for entry in waiting)
                time.sleep(max(0.0, ready_at - time.monotonic()))
            now = time.monotonic()
            still_waiting = []
            for ready_at, job, attempt in waiting:
                if ready_at <= now:
                    queue.append((job, attempt))
                else:
                    still_waiting.append((ready_at, job, attempt))
            waiting = still_waiting
            if not queue:
                continue
            job, attempt = queue.popleft()
            self.telemetry.emit("job_start", job_id=job.job_id, attempt=attempt)
            payload = _run_job_in_worker(self._task(job, attempt, inline=True))
            self._emit_attempt(payload)
            if payload.get("ok"):
                self._finish(outcomes, job, payload, attempt)
            else:
                self._fail_or_retry(
                    job,
                    attempt,
                    payload.get("failure", "error"),
                    payload.get("error", ""),
                    outcomes,
                    waiting,
                    duration=float(payload.get("duration", 0.0)),
                )
        return outcomes

    # -- pool -----------------------------------------------------------
    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.max_workers)

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down without waiting on hung or dead workers."""
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.terminate()
            except Exception:  # noqa: BLE001 — already-dead workers
                pass

    def _run_pool(self, jobs: Sequence[JobSpec]) -> Dict[str, JobOutcome]:
        outcomes: Dict[str, JobOutcome] = {}
        queue = deque((job, 0) for job in jobs)
        waiting: List[Tuple[float, JobSpec, int]] = []
        in_flight: Dict[object, Tuple[JobSpec, int, float]] = {}
        pool = self._new_pool()
        try:
            while queue or waiting or in_flight:
                if self.cancelled:
                    break
                now = time.monotonic()
                # Promote backed-off jobs whose delay has elapsed.
                still_waiting = []
                for ready_at, job, attempt in waiting:
                    if ready_at <= now:
                        queue.append((job, attempt))
                    else:
                        still_waiting.append((ready_at, job, attempt))
                waiting = still_waiting
                # Keep the pool saturated (small overcommit so a worker
                # never idles waiting on the dispatcher).
                while queue and len(in_flight) < 2 * self.max_workers:
                    job, attempt = queue.popleft()
                    self.telemetry.emit(
                        "job_start", job_id=job.job_id, attempt=attempt
                    )
                    future = pool.submit(
                        _run_job_in_worker, self._task(job, attempt, inline=False)
                    )
                    in_flight[future] = (job, attempt, time.monotonic())
                if not in_flight:
                    time.sleep(0.01)
                    continue
                done, _ = wait(
                    set(in_flight), timeout=0.05, return_when=FIRST_COMPLETED
                )
                pool_broken = False
                for future in done:
                    job, attempt, _submitted = in_flight.pop(future)
                    try:
                        payload = future.result()
                    except BrokenProcessPool:
                        pool_broken = True
                        self.telemetry.emit(
                            "worker_crash", job_id=job.job_id, attempt=attempt
                        )
                        self._fail_or_retry(
                            job, attempt, "crash", "worker process died",
                            outcomes, waiting,
                        )
                        continue
                    except Exception as exc:  # noqa: BLE001 — defensive
                        self._fail_or_retry(
                            job, attempt, "error",
                            f"{type(exc).__name__}: {exc}", outcomes, waiting,
                        )
                        continue
                    self._emit_attempt(payload)
                    if payload.get("ok"):
                        self._finish(outcomes, job, payload, attempt)
                    else:
                        self._fail_or_retry(
                            job,
                            attempt,
                            payload.get("failure", "error"),
                            payload.get("error", ""),
                            outcomes,
                            waiting,
                            duration=float(payload.get("duration", 0.0)),
                        )
                if pool_broken:
                    # Every other in-flight future is doomed with the
                    # pool; charge each one attempt and start fresh.
                    for future, (job, attempt, _submitted) in list(
                        in_flight.items()
                    ):
                        self._fail_or_retry(
                            job, attempt, "crash",
                            "worker pool broke while job was in flight",
                            outcomes, waiting,
                        )
                    in_flight.clear()
                    self._kill_pool(pool)
                    pool = self._new_pool()
                    continue
                # Watchdog: a worker hung past alarm + grace cannot be
                # reclaimed individually — rebuild the pool.
                if self.job_timeout is not None:
                    deadline = self.job_timeout + self.watchdog_grace
                    hung = [
                        (future, entry)
                        for future, entry in in_flight.items()
                        if time.monotonic() - entry[2] > deadline
                        and not future.done()
                    ]
                    if hung:
                        for future, (job, attempt, _submitted) in list(
                            in_flight.items()
                        ):
                            reason = (
                                "timeout"
                                if any(future is h for h, _ in hung)
                                else "crash"
                            )
                            self._fail_or_retry(
                                job, attempt, reason,
                                "worker hung past the watchdog deadline"
                                if reason == "timeout"
                                else "pool rebuilt around a hung worker",
                                outcomes, waiting,
                            )
                        in_flight.clear()
                        self.telemetry.emit(
                            "worker_hung", count=len(hung)
                        )
                        self._kill_pool(pool)
                        pool = self._new_pool()
            if self.cancelled:
                for job, attempt in queue:
                    self._mark_cancelled(outcomes, job, attempt)
                for _ready_at, job, attempt in waiting:
                    self._mark_cancelled(outcomes, job, attempt)
                for future, (job, attempt, _submitted) in in_flight.items():
                    self._mark_cancelled(outcomes, job, attempt)
                self._kill_pool(pool)
            else:
                pool.shutdown(wait=True)
        except BaseException:
            self._kill_pool(pool)
            raise
        return outcomes

    def _mark_cancelled(
        self, outcomes: Dict[str, JobOutcome], job: JobSpec, attempt: int
    ) -> None:
        if job.job_id in outcomes:
            return
        outcomes[job.job_id] = JobOutcome(
            job_id=job.job_id,
            kind=job.kind,
            status="cancelled",
            attempts=attempt,
            duration=0.0,
        )
        self.telemetry.emit("job_end", job_id=job.job_id, status="cancelled")


def run_batch(
    jobs: Sequence[JobSpec],
    **runner_kwargs,
) -> BatchReport:
    """One-call convenience: ``BatchRunner(**kwargs).run(jobs)``."""
    return BatchRunner(**runner_kwargs).run(jobs)
