"""Bounded asynchronous job queue with backpressure and rate limiting.

The synchronous ``POST /batch`` endpoint runs every job inline in the
HTTP handler thread — fine for notebooks, hopeless under load.  This
module is the asynchronous front door the service grew instead:

:class:`JobQueue`
    A bounded in-process queue drained by a pool of worker threads,
    each owning one persistent :class:`~repro.service.runner.BatchRunner`
    (inline mode), so every dequeued job flows through the exact retry /
    timeout / store-dedup machinery that ``repro batch`` uses.  A full
    queue rejects **at the door** (:class:`QueueFull` carries a
    ``retry_after`` estimate derived from observed job durations) — the
    server never buffers unboundedly and never drops a connection.
:class:`TokenBucket` / :class:`RateLimiter`
    Classic token-bucket admission control, one bucket per client key,
    so a single flooding client cannot starve the queue for everyone.
:class:`QueuedJob`
    The per-submission record: a server-assigned ticket, queue/run
    timestamps, and the terminal :class:`~repro.service.runner.JobOutcome`.

Lifecycle: terminal records are kept in a bounded in-memory registry
*and* persisted to the content-addressed
:class:`~repro.service.store.ResultStore` (key ``("queue-outcome",
ticket)``) when a store is configured, so status polling survives
registry eviction.  :meth:`JobQueue.close` with ``drain=True`` (what
``ServiceServer.server_close`` and the SIGTERM handler call) stops
admissions, lets the workers finish every queued and in-flight job
within the timeout, and marks whatever remains ``cancelled``.

Telemetry: ``job_enqueued`` events carry ``queue_depth`` (depth after
the enqueue), ``job_dequeued`` events carry ``queue_wait`` (integer
milliseconds spent queued), and ``job_rejected`` events carry
``jobs_rejected=1`` — all three are summed counters
(:data:`repro.service.telemetry.SUMMED_FIELDS`).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.service.jobs import JobSpec
from repro.service.runner import BatchRunner, JobOutcome
from repro.service.telemetry import Telemetry

#: Statuses a queued job moves through before its terminal
#: :data:`~repro.service.runner.TERMINAL_STATUSES` outcome.
PENDING_STATUSES = ("queued", "running")


class QueueFull(RuntimeError):
    """The bounded queue cannot admit the submission right now.

    ``retry_after`` is the server's estimate (seconds, >= 1) of when
    capacity will free up, derived from the current backlog and the
    exponentially-weighted average job duration.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = max(1.0, float(retry_after))


class RateLimited(RuntimeError):
    """The client's token bucket is empty; retry after ``retry_after``s."""

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = max(1.0, float(retry_after))


class TokenBucket:
    """A token bucket refilled at ``rate`` tokens/second up to ``burst``.

    Not thread-safe on its own — :class:`RateLimiter` serialises access.

    Examples
    --------
    >>> clock = iter([0.0, 0.0, 0.0, 10.0]).__next__
    >>> bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
    >>> bucket.try_acquire(), bucket.try_acquire()  # burst of 2 admitted
    (0.0, 0.0)
    >>> bucket.try_acquire() > 0  # empty: returns the wait in seconds
    True
    >>> bucket.try_acquire()  # 10s later the bucket has refilled
    0.0
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self.tokens = float(burst)
        self.updated = clock()

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` if available; returns 0.0, else seconds to wait."""
        now = self.clock()
        self.tokens = min(
            self.burst, self.tokens + (now - self.updated) * self.rate
        )
        self.updated = now
        if self.tokens >= tokens:
            self.tokens -= tokens
            return 0.0
        return (tokens - self.tokens) / self.rate


class RateLimiter:
    """Per-client token buckets (thread-safe).

    ``check(client)`` raises :class:`RateLimited` when the client's
    bucket is empty.  Buckets are pruned once ``max_clients`` is
    exceeded — full (idle) buckets go first, so an attacker churning
    client ids cannot grow the table unboundedly.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        clock=time.monotonic,
        max_clients: int = 1024,
    ):
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, rate)
        self.clock = clock
        self.max_clients = int(max_clients)
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def check(self, client: str, tokens: float = 1.0) -> None:
        """Admit one submission for ``client`` or raise :class:`RateLimited`."""
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                self._prune_locked()
                bucket = TokenBucket(self.rate, self.burst, clock=self.clock)
                self._buckets[client] = bucket
            wait = bucket.try_acquire(tokens)
        if wait > 0:
            raise RateLimited(
                f"client {client!r} exceeded {self.rate:g} submissions/s",
                retry_after=wait,
            )

    def _prune_locked(self) -> None:
        if len(self._buckets) < self.max_clients:
            return
        # Idle clients have refilled to burst; drop them first.
        now = self.clock()
        for key in list(self._buckets):
            bucket = self._buckets[key]
            refilled = min(
                bucket.burst,
                bucket.tokens + (now - bucket.updated) * bucket.rate,
            )
            if refilled >= bucket.burst:
                del self._buckets[key]
        while len(self._buckets) >= self.max_clients:
            self._buckets.pop(next(iter(self._buckets)))


class QueuedJob:
    """One submission's lifecycle record (ticket, timing, outcome)."""

    def __init__(
        self,
        ticket: str,
        spec: JobSpec,
        submitted_at: float,
        max_retries: Optional[int] = None,
        job_timeout: Optional[float] = None,
    ):
        self.ticket = ticket
        self.spec = spec
        self.status = "queued"
        self.submitted_at = submitted_at
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.outcome: Optional[JobOutcome] = None
        self.max_retries = max_retries
        self.job_timeout = job_timeout

    @property
    def queue_wait(self) -> Optional[float]:
        """Seconds spent queued (``None`` until dequeued)."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    def to_dict(self) -> Dict:
        """JSON-ready status record (what ``GET /jobs/<ticket>`` serves)."""
        return {
            "ticket": self.ticket,
            "job_id": self.spec.job_id,
            "kind": self.spec.kind,
            "status": self.status,
            "queue_wait": self.queue_wait,
            "outcome": self.outcome.to_dict() if self.outcome else None,
        }


class JobQueue:
    """Bounded job queue drained by persistent inline-runner workers.

    Parameters
    ----------
    runner_factory:
        Zero-argument callable building a fresh
        :class:`~repro.service.runner.BatchRunner`; each worker thread
        calls it once and keeps the runner for its lifetime (warm
        process-global caches persist across jobs).
    capacity:
        Maximum number of *queued* (not yet running) jobs; submissions
        beyond it raise :class:`QueueFull`.
    workers:
        Worker-thread count (>= 1).
    telemetry:
        Shared :class:`~repro.service.telemetry.Telemetry`.
    store:
        Optional :class:`~repro.service.store.ResultStore`; terminal
        records are persisted under ``("queue-outcome", ticket)``.
    registry_limit:
        In-memory cap on retained job records; the oldest terminal
        records are evicted first (still pollable via the store).
    """

    def __init__(
        self,
        runner_factory: Callable[[], BatchRunner],
        capacity: int = 64,
        workers: int = 2,
        telemetry: Optional[Telemetry] = None,
        store=None,
        registry_limit: int = 4096,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.capacity = int(capacity)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.store = store
        self.registry_limit = int(registry_limit)
        self._runner_factory = runner_factory
        self._queue: deque = deque()
        self._jobs: "OrderedDict[str, QueuedJob]" = OrderedDict()
        self._cond = threading.Condition()
        self._closed = False
        self._counter = 0
        self._in_flight = 0
        self._submitted = 0
        self._completed = 0
        self._cancelled = 0
        self._rejected: Dict[str, int] = {}
        # EWMA of job service time, seeding the Retry-After estimate.
        self._avg_seconds = 0.5
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-queue-{i}", daemon=True
            )
            for i in range(int(workers))
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec, **overrides) -> QueuedJob:
        """Enqueue one job; returns its record or raises :class:`QueueFull`."""
        return self.submit_many([spec], **overrides)[0]

    def submit_many(
        self,
        specs: Sequence[JobSpec],
        max_retries: Optional[int] = None,
        job_timeout: Optional[float] = None,
    ) -> List[QueuedJob]:
        """Atomically enqueue ``specs`` (all admitted or none).

        Raises :class:`QueueFull` — with a backlog-derived
        ``retry_after`` — when the batch does not fit, leaving the
        queue untouched, so a client never observes a half-admitted
        submission.
        """
        specs = list(specs)
        if not specs:
            raise ValueError("nothing to enqueue")
        with self._cond:
            if self._closed:
                raise QueueFull("queue is shutting down", retry_after=1.0)
            if len(self._queue) + len(specs) > self.capacity:
                self._note_rejected_locked("queue-full", len(specs))
                raise QueueFull(
                    f"queue full ({len(self._queue)}/{self.capacity} queued, "
                    f"{self._in_flight} in flight)",
                    retry_after=self._retry_after_locked(),
                )
            now = time.monotonic()
            admitted = []
            for spec in specs:
                self._counter += 1
                ticket = f"job-{self._counter:08d}"
                record = QueuedJob(
                    ticket,
                    spec,
                    submitted_at=now,
                    max_retries=max_retries,
                    job_timeout=job_timeout,
                )
                self._queue.append(record)
                self._register_locked(record)
                self._submitted += 1
                admitted.append(record)
                self.telemetry.emit(
                    "job_enqueued",
                    ticket=ticket,
                    job_id=spec.job_id,
                    queue_depth=len(self._queue),
                )
            self._cond.notify_all()
        return admitted

    def note_rejected(self, reason: str, count: int = 1) -> None:
        """Account a rejection decided outside the queue (rate limiting)."""
        with self._cond:
            self._note_rejected_locked(reason, count)

    def _note_rejected_locked(self, reason: str, count: int) -> None:
        self._rejected[reason] = self._rejected.get(reason, 0) + count
        self.telemetry.emit(
            "job_rejected", reason=reason, jobs_rejected=count
        )

    def _retry_after_locked(self) -> float:
        backlog = len(self._queue) + self._in_flight
        workers = max(1, len(self._workers))
        estimate = (backlog / workers) * self._avg_seconds
        return min(60.0, max(1.0, estimate))

    def _register_locked(self, record: QueuedJob) -> None:
        self._jobs[record.ticket] = record
        self._evict_terminal_locked()

    def _evict_terminal_locked(self) -> None:
        # Evict the oldest *terminal* records over the limit; pending
        # records must stay addressable until they finish (their
        # terminal form lands in the store, so polling still works).
        while len(self._jobs) > self.registry_limit:
            for ticket, candidate in self._jobs.items():
                if candidate.status not in PENDING_STATUSES:
                    del self._jobs[ticket]
                    break
            else:
                break

    # ------------------------------------------------------------------
    # Polling
    # ------------------------------------------------------------------
    def snapshot(self, ticket: str) -> Optional[Dict]:
        """The status record for ``ticket`` (registry, then store)."""
        with self._cond:
            record = self._jobs.get(ticket)
            if record is not None:
                return record.to_dict()
        if self.store is not None:
            stored = self.store.get(("queue-outcome", ticket))
            if isinstance(stored, Mapping):
                return dict(stored)
        return None

    def stats(self) -> Dict:
        """Queue health: depth, in-flight, throughput and rejections."""
        with self._cond:
            return {
                "capacity": self.capacity,
                "workers": len(self._workers),
                "depth": len(self._queue),
                "in_flight": self._in_flight,
                "submitted": self._submitted,
                "completed": self._completed,
                "cancelled": self._cancelled,
                "rejected": dict(self._rejected),
                "rejected_total": sum(self._rejected.values()),
                "avg_job_seconds": round(self._avg_seconds, 6),
                "closed": self._closed,
            }

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def join(self, timeout: Optional[float] = None) -> bool:
        """Block until queued + in-flight reach zero; False on timeout."""
        deadline = (
            None if timeout is None else time.monotonic() + float(timeout)
        )
        with self._cond:
            while self._queue or self._in_flight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(remaining if remaining is not None else 0.5)
            return True

    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop admissions and shut the workers down (idempotent).

        ``drain=True`` lets the workers finish every queued and
        in-flight job before returning (bounded by ``timeout``); jobs
        still pending at the deadline — and all queued jobs when
        ``drain=False`` — are marked ``cancelled``.
        """
        with self._cond:
            if self._closed:
                drained_already = not self._queue and not self._in_flight
            else:
                drained_already = False
                if not drain:
                    self._cancel_queued_locked()
                self._closed = True
                self._cond.notify_all()
        if not drained_already and drain:
            self.join(timeout=timeout)
        with self._cond:
            self._cancel_queued_locked()
            self._cond.notify_all()
        for worker in self._workers:
            worker.join(timeout=1.0)

    def _cancel_queued_locked(self) -> None:
        while self._queue:
            record = self._queue.popleft()
            record.status = "cancelled"
            record.finished_at = time.monotonic()
            record.outcome = JobOutcome(
                record.spec.job_id, record.spec.kind, "cancelled", 0, 0.0
            )
            self._cancelled += 1
            self.telemetry.emit(
                "job_end",
                job_id=record.spec.job_id,
                ticket=record.ticket,
                status="cancelled",
            )
            self._persist(record)

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        runner = self._runner_factory()
        base_retries = runner.max_retries
        base_timeout = runner.job_timeout
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait(0.5)
                if not self._queue:
                    return  # closed and drained
                record = self._queue.popleft()
                record.status = "running"
                record.started_at = time.monotonic()
                self._in_flight += 1
            self.telemetry.emit(
                "job_dequeued",
                ticket=record.ticket,
                job_id=record.spec.job_id,
                queue_wait=int((record.queue_wait or 0.0) * 1000),
            )
            # Each worker owns its runner, so per-job override twiddling
            # is single-threaded by construction.
            runner.max_retries = (
                base_retries
                if record.max_retries is None
                else record.max_retries
            )
            runner.job_timeout = (
                base_timeout
                if record.job_timeout is None
                else record.job_timeout
            )
            try:
                outcome = runner.run_one(record.spec)
            except Exception as exc:  # noqa: BLE001 — workers must survive
                outcome = JobOutcome(
                    record.spec.job_id,
                    record.spec.kind,
                    "failed-after-retries",
                    attempts=1,
                    duration=time.monotonic() - record.started_at,
                    error=f"{type(exc).__name__}: {exc}",
                )
            with self._cond:
                record.outcome = outcome
                record.status = outcome.status
                record.finished_at = time.monotonic()
                self._in_flight -= 1
                self._completed += 1
                duration = record.finished_at - record.started_at
                self._avg_seconds += 0.2 * (duration - self._avg_seconds)
                self._evict_terminal_locked()
                self._cond.notify_all()
            self._persist(record)

    def _persist(self, record: QueuedJob) -> None:
        if self.store is not None:
            self.store.put(("queue-outcome", record.ticket), record.to_dict())
