"""Typed batch jobs with a JSON round-trip.

A *job* is one unit of decision-procedure work — check a property, or
run one of the repair flavours (model, data, reward, rate, robust) —
described entirely by plain data, so a batch is a file::

    {"jobs": [
      {"kind": "check", "job_id": "wsn-100",
       "model": {"kind": "dtmc", "model": {...}},
       "formula": "R{\\"attempts\\"}<=100 [ F \\"delivered\\" ]"},
      {"kind": "model-repair", "job_id": "wsn-40", ...}
    ]}

Each spec knows how to serialise itself (:meth:`JobSpec.to_dict`), how
to rebuild from the serialised form (:func:`job_from_dict`), how to
execute against the library (:meth:`JobSpec.run`, dispatching to the
picklable :mod:`repro.core.api` entry points), and how to fingerprint
its content (:meth:`JobSpec.fingerprint`) for the result store.

Models travel in the :func:`repro.io.save_model` payload shape (via
:func:`repro.io.json_io.model_to_payload`, which also covers CTMCs),
trace datasets as ``{"groups": [{"name", "droppable", "traces"}]}``,
feature maps as explicit state→vector tables — everything JSON,
everything picklable.  Repair jobs return the canonical
``RepairResult.to_dict()`` payload, so every repair kind shares the
``status`` / ``feasible`` / ``assignment`` / ``solver_stats`` shape.
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Type, Union

from repro.io.json_io import model_from_payload, model_to_payload
from repro.mdp.model import DTMC

#: Registry ``kind -> spec class``, filled by ``_register``.
JOB_KINDS: Dict[str, Type["JobSpec"]] = {}


class JobValidationError(ValueError):
    """A job payload that cannot be turned into a runnable spec.

    Raised by :func:`job_from_dict` for unknown kinds, missing fields
    and non-finite numbers.  Subclasses :class:`ValueError`, so the
    HTTP façade's 400 path catches it unchanged; the batch runner maps
    it to a structured ``failure: "invalid"`` record instead of letting
    it rip through a worker.
    """


def _register(cls: Type["JobSpec"]) -> Type["JobSpec"]:
    JOB_KINDS[cls.kind] = cls
    return cls


# ----------------------------------------------------------------------
# Payload helpers
# ----------------------------------------------------------------------
def dataset_to_payload(dataset) -> Dict:
    """JSON payload of a :class:`~repro.data.dataset.TraceDataset`."""
    return {
        "groups": [
            {
                "name": group.name,
                "droppable": group.droppable,
                "traces": [
                    [str(state) for state in trace.states()]
                    for trace in group.traces
                ],
            }
            for group in dataset.groups.values()
        ]
    }


def dataset_from_payload(payload: Mapping):
    """Inverse of :func:`dataset_to_payload`."""
    from repro.data.dataset import TraceDataset, TraceGroup
    from repro.mdp.trajectory import Trajectory

    return TraceDataset(
        [
            TraceGroup(
                entry["name"],
                [Trajectory.from_states(states) for states in entry["traces"]],
                droppable=entry.get("droppable", True),
            )
            for entry in payload["groups"]
        ]
    )


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------
class JobSpec:
    """Base class for batch job specifications.

    Subclasses set :attr:`kind`, implement :meth:`payload` (the
    kind-specific JSON fields), :meth:`from_payload` and :meth:`run`.
    """

    kind: str = ""

    def __init__(self, job_id: str):
        if not job_id:
            raise ValueError("job needs a non-empty job_id")
        self.job_id = str(job_id)

    # -- serialisation --------------------------------------------------
    def payload(self) -> Dict:
        raise NotImplementedError

    def to_dict(self) -> Dict:
        """JSON-ready form; inverse of :func:`job_from_dict`."""
        return {"kind": self.kind, "job_id": self.job_id, **self.payload()}

    @classmethod
    def from_payload(cls, job_id: str, payload: Mapping) -> "JobSpec":
        raise NotImplementedError

    def fingerprint(self) -> str:
        """SHA-256 of the canonical content (``job_id`` excluded).

        Two jobs asking for identical work share a fingerprint, which
        is the key under which the result store deduplicates whole-job
        results.
        """
        canonical = json.dumps(
            {"kind": self.kind, **self.payload()}, sort_keys=True
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- execution ------------------------------------------------------
    def run(self, cache=None) -> Dict:
        """Execute the job; returns a JSON-ready result dict."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.job_id!r})"


@_register
class CheckJob(JobSpec):
    """Model-check ``formula`` on a model (DTMC or MDP).

    ``smc_epsilon`` / ``smc_delta`` / ``smc_samples`` configure the
    statistical fallback the runner uses when the exact engine times
    out (DTMC only).
    """

    kind = "check"

    def __init__(
        self,
        job_id: str,
        model: Mapping,
        formula: str,
        engine: str = "sparse",
        smc_epsilon: float = 0.02,
        smc_delta: float = 0.05,
        smc_samples: int = 4000,
    ):
        super().__init__(job_id)
        self.model = dict(model)
        self.formula = str(formula)
        self.engine = engine
        self.smc_epsilon = float(smc_epsilon)
        self.smc_delta = float(smc_delta)
        self.smc_samples = int(smc_samples)

    @staticmethod
    def for_model(job_id: str, model, formula: str, **kwargs) -> "CheckJob":
        """Build from an in-memory model object."""
        return CheckJob(job_id, model_to_payload(model), formula, **kwargs)

    def payload(self) -> Dict:
        return {
            "model": self.model,
            "formula": self.formula,
            "engine": self.engine,
            "smc_epsilon": self.smc_epsilon,
            "smc_delta": self.smc_delta,
            "smc_samples": self.smc_samples,
        }

    @classmethod
    def from_payload(cls, job_id: str, payload: Mapping) -> "CheckJob":
        return cls(
            job_id,
            payload["model"],
            payload["formula"],
            engine=payload.get("engine", "sparse"),
            smc_epsilon=payload.get("smc_epsilon", 0.02),
            smc_delta=payload.get("smc_delta", 0.05),
            smc_samples=payload.get("smc_samples", 4000),
        )

    def run(self, cache=None) -> Dict:
        from repro.core.api import check_model

        result = check_model(
            model_from_payload(self.model),
            self.formula,
            engine=self.engine,
            cache=cache,
        )
        return {
            "holds": bool(result.holds),
            "value": None if result.value is None else float(result.value),
            "method": "exact",
        }

    def run_statistical(self, seed: int = 0) -> Dict:
        """The degraded path: Monte-Carlo estimate instead of exact.

        Only defined for DTMC models with a top-level ``P``/``R``
        operator (the statistical checker's domain); raises
        ``TypeError`` otherwise, which the runner treats as an ordinary
        failure.
        """
        from repro.checking.statistical import StatisticalModelChecker
        from repro.logic.parser import parse_pctl

        model = model_from_payload(self.model)
        if not isinstance(model, DTMC):
            raise TypeError("statistical fallback needs a DTMC model")
        checker = StatisticalModelChecker(model, seed=seed)
        outcome = checker.check(
            parse_pctl(self.formula),
            epsilon=self.smc_epsilon,
            delta=self.smc_delta,
            reward_samples=self.smc_samples,
        )
        return {
            "holds": bool(outcome.holds),
            "value": float(outcome.estimate),
            "method": "statistical",
            "samples": int(outcome.samples),
            "undecided_rate": float(checker.undecided_rate),
        }


@_register
class ModelRepairJob(JobSpec):
    """Edge-wise Model Repair of a chain toward ``formula``."""

    kind = "model-repair"

    def __init__(
        self,
        job_id: str,
        model: Mapping,
        formula: str,
        controllable_states: Optional[Sequence[str]] = None,
        max_perturbation: Optional[float] = None,
        cost: str = "frobenius",
        engine: str = "sparse",
        extra_starts: int = 8,
        seed: int = 0,
    ):
        super().__init__(job_id)
        self.model = dict(model)
        self.formula = str(formula)
        self.controllable_states = (
            list(controllable_states) if controllable_states is not None else None
        )
        self.max_perturbation = max_perturbation
        self.cost = cost
        self.engine = engine
        self.extra_starts = int(extra_starts)
        self.seed = int(seed)

    @staticmethod
    def for_model(job_id: str, model, formula: str, **kwargs) -> "ModelRepairJob":
        """Build from an in-memory chain."""
        return ModelRepairJob(job_id, model_to_payload(model), formula, **kwargs)

    def payload(self) -> Dict:
        return {
            "model": self.model,
            "formula": self.formula,
            "controllable_states": self.controllable_states,
            "max_perturbation": self.max_perturbation,
            "cost": self.cost,
            "engine": self.engine,
            "extra_starts": self.extra_starts,
            "seed": self.seed,
        }

    @classmethod
    def from_payload(cls, job_id: str, payload: Mapping) -> "ModelRepairJob":
        return cls(
            job_id,
            payload["model"],
            payload["formula"],
            controllable_states=payload.get("controllable_states"),
            max_perturbation=payload.get("max_perturbation"),
            cost=payload.get("cost", "frobenius"),
            engine=payload.get("engine", "sparse"),
            extra_starts=payload.get("extra_starts", 8),
            seed=payload.get("seed", 0),
        )

    def run(self, cache=None) -> Dict:
        from repro.core.api import repair_model

        result = repair_model(
            model_from_payload(self.model),
            self.formula,
            controllable_states=self.controllable_states,
            max_perturbation=self.max_perturbation,
            cost=self.cost,
            engine=self.engine,
            extra_starts=self.extra_starts,
            seed=self.seed,
            cache=cache,
        )
        return result.to_dict()


@_register
class DataRepairJob(JobSpec):
    """Data Repair: drop/augment traces until the re-learned chain meets φ."""

    kind = "data-repair"

    def __init__(
        self,
        job_id: str,
        dataset: Mapping,
        formula: str,
        initial_state: str,
        states: Optional[Sequence[str]] = None,
        labels: Optional[Mapping[str, Sequence[str]]] = None,
        state_rewards: Optional[Mapping[str, float]] = None,
        max_drop: float = 0.9,
        mode: str = "drop",
        max_augment: float = 4.0,
        engine: str = "sparse",
        extra_starts: int = 8,
        seed: int = 0,
    ):
        super().__init__(job_id)
        self.dataset = dict(dataset)
        self.formula = str(formula)
        self.initial_state = initial_state
        self.states = list(states) if states is not None else None
        self.labels = (
            {s: sorted(props) for s, props in labels.items()}
            if labels is not None
            else None
        )
        self.state_rewards = dict(state_rewards) if state_rewards else None
        self.max_drop = float(max_drop)
        self.mode = mode
        self.max_augment = float(max_augment)
        self.engine = engine
        self.extra_starts = int(extra_starts)
        self.seed = int(seed)

    @staticmethod
    def for_dataset(
        job_id: str, dataset, formula: str, initial_state: str, **kwargs
    ) -> "DataRepairJob":
        """Build from an in-memory :class:`TraceDataset`."""
        return DataRepairJob(
            job_id, dataset_to_payload(dataset), formula, initial_state, **kwargs
        )

    def payload(self) -> Dict:
        return {
            "dataset": self.dataset,
            "formula": self.formula,
            "initial_state": self.initial_state,
            "states": self.states,
            "labels": self.labels,
            "state_rewards": self.state_rewards,
            "max_drop": self.max_drop,
            "mode": self.mode,
            "max_augment": self.max_augment,
            "engine": self.engine,
            "extra_starts": self.extra_starts,
            "seed": self.seed,
        }

    @classmethod
    def from_payload(cls, job_id: str, payload: Mapping) -> "DataRepairJob":
        return cls(
            job_id,
            payload["dataset"],
            payload["formula"],
            payload["initial_state"],
            states=payload.get("states"),
            labels=payload.get("labels"),
            state_rewards=payload.get("state_rewards"),
            max_drop=payload.get("max_drop", 0.9),
            mode=payload.get("mode", "drop"),
            max_augment=payload.get("max_augment", 4.0),
            engine=payload.get("engine", "sparse"),
            extra_starts=payload.get("extra_starts", 8),
            seed=payload.get("seed", 0),
        )

    def run(self, cache=None) -> Dict:
        from repro.core.api import repair_data

        result = repair_data(
            dataset_from_payload(self.dataset),
            self.formula,
            initial_state=self.initial_state,
            states=self.states,
            labels=(
                {s: set(props) for s, props in self.labels.items()}
                if self.labels is not None
                else None
            ),
            state_rewards=self.state_rewards,
            max_drop=self.max_drop,
            mode=self.mode,
            max_augment=self.max_augment,
            engine=self.engine,
            extra_starts=self.extra_starts,
            seed=self.seed,
            cache=cache,
        )
        return result.to_dict()


@_register
class RewardRepairJob(JobSpec):
    """Q-value-constrained Reward Repair on an MDP with tabular features."""

    kind = "reward-repair"

    def __init__(
        self,
        job_id: str,
        mdp: Mapping,
        features: Mapping[str, Sequence[float]],
        theta: Sequence[float],
        constraints: Sequence[Mapping],
        discount: float = 0.95,
        delta_bound: float = 2.0,
        extra_starts: int = 6,
        seed: int = 0,
    ):
        super().__init__(job_id)
        self.mdp = dict(mdp)
        self.features = {s: [float(x) for x in row] for s, row in features.items()}
        self.theta = [float(x) for x in theta]
        self.constraints = [dict(entry) for entry in constraints]
        self.discount = float(discount)
        self.delta_bound = float(delta_bound)
        self.extra_starts = int(extra_starts)
        self.seed = int(seed)

    @staticmethod
    def for_mdp(
        job_id: str, mdp, features, theta, constraints, **kwargs
    ) -> "RewardRepairJob":
        """Build from an in-memory MDP."""
        return RewardRepairJob(
            job_id, model_to_payload(mdp), features, theta, constraints, **kwargs
        )

    def payload(self) -> Dict:
        return {
            "mdp": self.mdp,
            "features": self.features,
            "theta": self.theta,
            "constraints": self.constraints,
            "discount": self.discount,
            "delta_bound": self.delta_bound,
            "extra_starts": self.extra_starts,
            "seed": self.seed,
        }

    @classmethod
    def from_payload(cls, job_id: str, payload: Mapping) -> "RewardRepairJob":
        return cls(
            job_id,
            payload["mdp"],
            payload["features"],
            payload["theta"],
            payload["constraints"],
            discount=payload.get("discount", 0.95),
            delta_bound=payload.get("delta_bound", 2.0),
            extra_starts=payload.get("extra_starts", 6),
            seed=payload.get("seed", 0),
        )

    def run(self, cache=None) -> Dict:
        from repro.core.api import repair_reward

        result = repair_reward(
            model_from_payload(self.mdp),
            self.features,
            self.theta,
            self.constraints,
            discount=self.discount,
            delta_bound=self.delta_bound,
            extra_starts=self.extra_starts,
            seed=self.seed,
        )
        return result.to_dict()


@_register
class RateRepairJob(JobSpec):
    """CTMC rate repair: scale rates until the expected hitting time fits."""

    kind = "rate-repair"

    def __init__(
        self,
        job_id: str,
        model: Mapping,
        targets: Sequence[str],
        bound: float,
        controllable: Optional[Sequence[str]] = None,
        max_speedup: float = 2.0,
        extra_starts: int = 6,
        seed: int = 0,
    ):
        super().__init__(job_id)
        self.model = dict(model)
        self.targets = [str(t) for t in targets]
        self.bound = float(bound)
        self.controllable = (
            [str(s) for s in controllable] if controllable is not None else None
        )
        self.max_speedup = float(max_speedup)
        self.extra_starts = int(extra_starts)
        self.seed = int(seed)

    @staticmethod
    def for_model(
        job_id: str, ctmc, targets, bound: float, **kwargs
    ) -> "RateRepairJob":
        """Build from an in-memory CTMC."""
        return RateRepairJob(
            job_id, model_to_payload(ctmc), list(targets), bound, **kwargs
        )

    def payload(self) -> Dict:
        return {
            "model": self.model,
            "targets": self.targets,
            "bound": self.bound,
            "controllable": self.controllable,
            "max_speedup": self.max_speedup,
            "extra_starts": self.extra_starts,
            "seed": self.seed,
        }

    @classmethod
    def from_payload(cls, job_id: str, payload: Mapping) -> "RateRepairJob":
        return cls(
            job_id,
            payload["model"],
            payload["targets"],
            payload["bound"],
            controllable=payload.get("controllable"),
            max_speedup=payload.get("max_speedup", 2.0),
            extra_starts=payload.get("extra_starts", 6),
            seed=payload.get("seed", 0),
        )

    def run(self, cache=None) -> Dict:
        from repro.core.api import repair_rates

        result = repair_rates(
            model_from_payload(self.model),
            self.targets,
            self.bound,
            controllable=self.controllable,
            max_speedup=self.max_speedup,
            extra_starts=self.extra_starts,
            seed=self.seed,
            cache=cache,
        )
        return result.to_dict()


@_register
class RobustRepairJob(JobSpec):
    """Robust Model Repair certified over a ±``epsilon`` interval ball.

    ``vi_max_iterations`` caps the robust value iteration; a capped or
    divergent run degrades to the nominal check and the result carries
    ``robust: false`` (surfaced by the runner's ``robust_fallbacks``
    telemetry counter) instead of failing the job.
    """

    kind = "robust-repair"

    def __init__(
        self,
        job_id: str,
        model: Mapping,
        formula: str,
        epsilon: float = 0.01,
        controllable_states: Optional[Sequence[str]] = None,
        max_perturbation: Optional[float] = None,
        cost: str = "frobenius",
        engine: str = "sparse",
        max_outer_iterations: int = 5,
        vi_max_iterations: Optional[int] = None,
        extra_starts: int = 8,
        seed: int = 0,
    ):
        super().__init__(job_id)
        self.model = dict(model)
        self.formula = str(formula)
        self.epsilon = float(epsilon)
        self.controllable_states = (
            list(controllable_states) if controllable_states is not None else None
        )
        self.max_perturbation = max_perturbation
        self.cost = cost
        self.engine = engine
        self.max_outer_iterations = int(max_outer_iterations)
        self.vi_max_iterations = (
            None if vi_max_iterations is None else int(vi_max_iterations)
        )
        self.extra_starts = int(extra_starts)
        self.seed = int(seed)

    @staticmethod
    def for_model(
        job_id: str, model, formula: str, **kwargs
    ) -> "RobustRepairJob":
        """Build from an in-memory chain."""
        return RobustRepairJob(
            job_id, model_to_payload(model), formula, **kwargs
        )

    def payload(self) -> Dict:
        return {
            "model": self.model,
            "formula": self.formula,
            "epsilon": self.epsilon,
            "controllable_states": self.controllable_states,
            "max_perturbation": self.max_perturbation,
            "cost": self.cost,
            "engine": self.engine,
            "max_outer_iterations": self.max_outer_iterations,
            "vi_max_iterations": self.vi_max_iterations,
            "extra_starts": self.extra_starts,
            "seed": self.seed,
        }

    @classmethod
    def from_payload(cls, job_id: str, payload: Mapping) -> "RobustRepairJob":
        return cls(
            job_id,
            payload["model"],
            payload["formula"],
            epsilon=payload.get("epsilon", 0.01),
            controllable_states=payload.get("controllable_states"),
            max_perturbation=payload.get("max_perturbation"),
            cost=payload.get("cost", "frobenius"),
            engine=payload.get("engine", "sparse"),
            max_outer_iterations=payload.get("max_outer_iterations", 5),
            vi_max_iterations=payload.get("vi_max_iterations"),
            extra_starts=payload.get("extra_starts", 8),
            seed=payload.get("seed", 0),
        )

    def run(self, cache=None) -> Dict:
        from repro.core.api import repair_robust

        result = repair_robust(
            model_from_payload(self.model),
            self.formula,
            epsilon=self.epsilon,
            controllable_states=self.controllable_states,
            max_perturbation=self.max_perturbation,
            cost=self.cost,
            engine=self.engine,
            max_outer_iterations=self.max_outer_iterations,
            vi_max_iterations=self.vi_max_iterations,
            extra_starts=self.extra_starts,
            seed=self.seed,
            cache=cache,
        )
        return result.to_dict()


@_register
class CegisRepairJob(JobSpec):
    """Counterexample-guided Model Repair (the CEGIS loop).

    Instead of one global state elimination, the loop grows a working
    set of constraints localized to counterexample-touched subchains;
    the result's ``iterations`` / ``constraints_added`` /
    ``counterexample_states`` fields feed the runner's summed
    ``cegis_*`` telemetry counters.
    """

    kind = "cegis-repair"

    def __init__(
        self,
        job_id: str,
        model: Mapping,
        formula: str,
        controllable_states: Optional[Sequence[str]] = None,
        max_perturbation: Optional[float] = None,
        cost: str = "frobenius",
        engine: str = "sparse",
        max_iterations: int = 10,
        max_counterexample_paths: int = 10_000,
        max_expansions: int = 200_000,
        extra_starts: int = 8,
        seed: int = 0,
    ):
        super().__init__(job_id)
        self.model = dict(model)
        self.formula = str(formula)
        self.controllable_states = (
            list(controllable_states) if controllable_states is not None else None
        )
        self.max_perturbation = max_perturbation
        self.cost = cost
        self.engine = engine
        self.max_iterations = int(max_iterations)
        self.max_counterexample_paths = int(max_counterexample_paths)
        self.max_expansions = int(max_expansions)
        self.extra_starts = int(extra_starts)
        self.seed = int(seed)

    @staticmethod
    def for_model(
        job_id: str, model, formula: str, **kwargs
    ) -> "CegisRepairJob":
        """Build from an in-memory chain."""
        return CegisRepairJob(
            job_id, model_to_payload(model), formula, **kwargs
        )

    def payload(self) -> Dict:
        return {
            "model": self.model,
            "formula": self.formula,
            "controllable_states": self.controllable_states,
            "max_perturbation": self.max_perturbation,
            "cost": self.cost,
            "engine": self.engine,
            "max_iterations": self.max_iterations,
            "max_counterexample_paths": self.max_counterexample_paths,
            "max_expansions": self.max_expansions,
            "extra_starts": self.extra_starts,
            "seed": self.seed,
        }

    @classmethod
    def from_payload(cls, job_id: str, payload: Mapping) -> "CegisRepairJob":
        return cls(
            job_id,
            payload["model"],
            payload["formula"],
            controllable_states=payload.get("controllable_states"),
            max_perturbation=payload.get("max_perturbation"),
            cost=payload.get("cost", "frobenius"),
            engine=payload.get("engine", "sparse"),
            max_iterations=payload.get("max_iterations", 10),
            max_counterexample_paths=payload.get(
                "max_counterexample_paths", 10_000
            ),
            max_expansions=payload.get("max_expansions", 200_000),
            extra_starts=payload.get("extra_starts", 8),
            seed=payload.get("seed", 0),
        )

    def run(self, cache=None) -> Dict:
        from repro.core.api import repair_cegis

        result = repair_cegis(
            model_from_payload(self.model),
            self.formula,
            controllable_states=self.controllable_states,
            max_perturbation=self.max_perturbation,
            cost=self.cost,
            engine=self.engine,
            max_iterations=self.max_iterations,
            max_counterexample_paths=self.max_counterexample_paths,
            max_expansions=self.max_expansions,
            extra_starts=self.extra_starts,
            seed=self.seed,
            cache=cache,
        )
        return result.to_dict()


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------
def _ensure_finite(value, where: str) -> None:
    """Reject NaN/Infinity anywhere in a job payload.

    ``json.loads`` happily decodes the non-standard ``NaN`` /
    ``Infinity`` tokens, and a NaN bound or transition probability
    poisons every comparison downstream — fail loudly at the door.
    """
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        if not math.isfinite(value):
            raise JobValidationError(f"non-finite number at {where}")
    elif isinstance(value, Mapping):
        for key, entry in value.items():
            _ensure_finite(entry, f"{where}.{key}")
    elif isinstance(value, (list, tuple)):
        for index, entry in enumerate(value):
            _ensure_finite(entry, f"{where}[{index}]")


def job_from_dict(payload: Mapping) -> JobSpec:
    """Rebuild any registered job kind from its ``to_dict`` form.

    Malformed payloads — unknown ``kind``, missing ``job_id`` or other
    required fields, non-finite numbers — raise
    :class:`JobValidationError` rather than an arbitrary
    ``KeyError``/``TypeError`` from deep inside a spec constructor.
    """
    if not isinstance(payload, Mapping):
        raise JobValidationError(
            f"job entry must be an object, got {type(payload).__name__}"
        )
    kind = payload.get("kind")
    if kind not in JOB_KINDS:
        raise JobValidationError(
            f"unknown job kind {kind!r}; expected one of {sorted(JOB_KINDS)}"
        )
    if not payload.get("job_id"):
        raise JobValidationError(f"{kind} job is missing its job_id")
    job_id = str(payload["job_id"])
    _ensure_finite(payload, f"job {job_id!r}")
    body = {k: v for k, v in payload.items() if k not in ("kind", "job_id")}
    try:
        return JOB_KINDS[kind].from_payload(job_id, body)
    except JobValidationError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise JobValidationError(
            f"bad {kind} job {job_id!r}: {exc}"
        ) from exc


def save_jobs(jobs: Sequence[JobSpec], path: Union[str, Path]) -> None:
    """Write a batch to a JSON jobs file (``{"jobs": [...]}``)."""
    payload = {"jobs": [job.to_dict() for job in jobs]}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_jobs_payload(payload: Union[Mapping, Sequence]) -> List[JobSpec]:
    """Parse an already-decoded batch payload into job specs.

    Accepts either ``{"jobs": [...]}`` or a bare array of job dicts.
    Duplicate ``job_id`` values are rejected early — results are keyed
    by id.  This is the parsing core shared by :func:`load_jobs` and
    the HTTP ``POST /batch`` endpoint.
    """
    entries = payload["jobs"] if isinstance(payload, Mapping) else payload
    jobs = [job_from_dict(entry) for entry in entries]
    seen = set()
    for job in jobs:
        if job.job_id in seen:
            raise ValueError(f"duplicate job_id {job.job_id!r} in batch")
        seen.add(job.job_id)
    return jobs


def load_jobs(path: Union[str, Path]) -> List[JobSpec]:
    """Read a jobs file written by :func:`save_jobs` (or by hand)."""
    return load_jobs_payload(json.loads(Path(path).read_text()))


def execute(spec: JobSpec, cache=None) -> Dict:
    """Run one job spec against the library (module-level, picklable)."""
    return spec.run(cache=cache)
