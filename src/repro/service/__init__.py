"""Fault-tolerant batch repair runtime.

The paper's decision procedure (learn → check → repair → report) is a
batch workload: an experiment sweep checks and repairs many
``(model, φ)`` pairs, each dominated by parametric elimination and
multi-start NLP solves.  This package turns the one-shot library calls
into a resilient runtime:

``jobs``
    Typed job specs (check / model-, data-, reward-, rate-, robust-,
    cegis-repair) with a JSON round-trip, so batches are files;
    malformed payloads raise :class:`~repro.service.jobs.JobValidationError`
    and terminate as structured ``invalid`` records, never retried.
``runner``
    A :class:`~concurrent.futures.ProcessPoolExecutor`-backed batch
    runner with per-job timeouts, bounded retries with exponential
    backoff + jitter, cancellation, and graceful degradation to
    statistical checking.
``store``
    A content-addressed on-disk result store layered under
    :class:`~repro.checking.cache.CheckCache`, sharing parametric
    eliminations across processes and across runs.
``telemetry``
    A structured JSON-lines event log plus aggregate counters.
``faults``
    Deterministic fault injection (seeded crash/hang/error decisions)
    used by the robustness test suite.
``queue``
    A bounded asynchronous job queue (worker threads with persistent
    inline runners, token-bucket rate limiting, drain-on-shutdown)
    behind the server's ``POST /jobs`` front door.
``server``
    A localhost JSON API (stdlib ``http.server``) wrapping the runner:
    synchronous ``POST /batch`` plus the asynchronous ``POST /jobs`` /
    ``GET /jobs/<ticket>`` / ``GET /queue`` surface with backpressure
    (``503`` + ``Retry-After``) and hardened request validation.
"""

from repro.service.faults import FaultPlan, InjectedFault
from repro.service.jobs import (
    CegisRepairJob,
    CheckJob,
    DataRepairJob,
    JobSpec,
    JobValidationError,
    ModelRepairJob,
    RateRepairJob,
    RewardRepairJob,
    RobustRepairJob,
    execute,
    job_from_dict,
    load_jobs,
    load_jobs_payload,
    save_jobs,
)
from repro.service.queue import (
    JobQueue,
    QueuedJob,
    QueueFull,
    RateLimited,
    RateLimiter,
    TokenBucket,
)
from repro.service.runner import BatchReport, BatchRunner, JobOutcome, run_batch
from repro.service.store import ResultStore, open_disk_cache
from repro.service.telemetry import (
    Telemetry,
    aggregate_events,
    read_events,
    solver_counters,
)

__all__ = [
    "BatchReport",
    "BatchRunner",
    "CegisRepairJob",
    "CheckJob",
    "DataRepairJob",
    "FaultPlan",
    "InjectedFault",
    "JobOutcome",
    "JobQueue",
    "JobSpec",
    "JobValidationError",
    "ModelRepairJob",
    "QueueFull",
    "QueuedJob",
    "RateLimited",
    "RateLimiter",
    "TokenBucket",
    "RateRepairJob",
    "ResultStore",
    "RewardRepairJob",
    "RobustRepairJob",
    "Telemetry",
    "aggregate_events",
    "execute",
    "job_from_dict",
    "load_jobs",
    "load_jobs_payload",
    "open_disk_cache",
    "read_events",
    "run_batch",
    "save_jobs",
    "solver_counters",
]
