"""Structured telemetry for the batch runtime.

Every noteworthy runtime event — job start/end, retry, fallback, worker
crash, cache hit/miss deltas, NLP solver iterations — is emitted as one
JSON object on its own line (`JSON lines`), so a batch leaves behind a
machine-readable trace that ``repro batch`` can summarise and tests can
assert on.  The emitter also folds events into aggregate counters as
they happen, so a summary needs no second pass over the log.

Event shape::

    {"ts": 1722945600.123, "event": "job_end", "job_id": "wsn-40",
     "status": "succeeded", "attempts": 1, "duration": 0.41, ...}

Counter semantics: ``counts[event]`` is the number of times each event
fired; numeric fields listed in :data:`SUMMED_FIELDS` are additionally
summed across events (e.g. ``solver_iterations``,
``parametric_eliminations``), which is how the acceptance check "warm
re-run performs zero eliminations" is observed.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

#: Numeric event fields accumulated into the counters, beyond the
#: per-event-type occurrence counts.
SUMMED_FIELDS = (
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "backing_hits",
    "parametric_eliminations",
    "elimination_states",
    "elimination_fill_in",
    "elimination_reuse_hits",
    "elimination_ms",
    "solver_iterations",
    "solver_function_evaluations",
    "kernel_compilations",
    "kernel_evaluations",
    "kernel_dispatches",
    "robust_vi_iterations",
    "robust_fallbacks",
    # CEGIS repair (repro.repair.cegis): check → localize → solve
    # rounds, working-set size, and evidence states across all
    # counterexamples.
    "cegis_iterations",
    "cegis_constraints_added",
    "cegis_counterexample_states",
    # Async front door (repro.service.queue): depth observed at each
    # enqueue (average depth = queue_depth / job_enqueued), queued
    # milliseconds observed at each dequeue, and admission rejections
    # (queue full / rate limited).
    "queue_depth",
    "queue_wait",
    "jobs_rejected",
)


def solver_counters(result) -> Dict[str, int]:
    """Extract the NLP-effort counters from a job's result payload.

    Every repair kind reports the same canonical
    ``RepairResult.to_dict()`` shape, so one extraction covers them all:
    the ``solver_stats`` block (absent for checks and for
    already-satisfied repairs) yields ``solver_iterations`` and
    ``solver_function_evaluations``, ready to pass to :meth:`Telemetry.emit`.

    Robust-repair results additionally report their value-iteration
    effort (``robust_vi_iterations``) and whether the certificate
    degraded to the nominal check (``robust_fallbacks``), keeping the
    adversarial accounting separate from the NLP accounting.
    CEGIS-repair results likewise report their loop effort
    (``cegis_iterations`` / ``cegis_constraints_added`` /
    ``cegis_counterexample_states``).
    """
    stats = result.get("solver_stats") if isinstance(result, dict) else None
    stats = stats or {}
    counters = {
        "solver_iterations": int(stats.get("iterations", 0)),
        "solver_function_evaluations": int(
            stats.get("function_evaluations", 0)
        ),
    }
    if isinstance(result, dict) and result.get("flavor") == "robust":
        counters["robust_vi_iterations"] = int(
            result.get("vi_iterations") or 0
        )
        certificate = result.get("certificate")
        fallback = (
            isinstance(certificate, dict)
            and bool(certificate.get("fallback_reason"))
        )
        counters["robust_fallbacks"] = 1 if fallback else 0
    if isinstance(result, dict) and result.get("flavor") == "cegis":
        counters["cegis_iterations"] = int(result.get("iterations") or 0)
        counters["cegis_constraints_added"] = int(
            result.get("constraints_added") or 0
        )
        counters["cegis_counterexample_states"] = int(
            result.get("counterexample_states") or 0
        )
    return counters


class Telemetry:
    """Thread-safe JSON-lines event emitter with running counters.

    Parameters
    ----------
    path:
        Where to append events; ``None`` keeps events in memory only
        (they are still visible through :attr:`events` and counters).
    clock:
        Timestamp source (injectable for deterministic tests).
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        clock=time.time,
    ):
        self.path = Path(path) if path is not None else None
        self.clock = clock
        self.events: List[Dict] = []
        self._counters: Dict[str, int] = {}
        self._lock = threading.Lock()
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, event: str, **fields) -> Dict:
        """Record one event; returns the event dict that was written."""
        record = {"ts": float(self.clock()), "event": event, **fields}
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            self.events.append(record)
            self._fold(record)
            if self.path is not None:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
        return record

    def _fold(self, record: Dict) -> None:
        name = record["event"]
        self._counters[name] = self._counters.get(name, 0) + 1
        for field in SUMMED_FIELDS:
            value = record.get(field)
            if isinstance(value, (int, float)):
                self._counters[field] = self._counters.get(field, 0) + int(value)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """A snapshot of the aggregate counters."""
        with self._lock:
            return dict(self._counters)

    def summary(self) -> str:
        """A short human-readable counters report."""
        counters = self.counters()
        if not counters:
            return "telemetry: no events"
        width = max(len(name) for name in counters)
        lines = ["telemetry counters:"]
        for name in sorted(counters):
            lines.append(f"  {name:<{width}} : {counters[name]}")
        return "\n".join(lines)


def read_events(path: Union[str, Path]) -> List[Dict]:
    """Parse a JSON-lines telemetry file back into event dicts.

    Unparseable lines (e.g. a tail truncated by a crash) are skipped —
    the log must stay readable even after the failures it documents.
    """
    events: List[Dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return events


def aggregate_events(events: Iterable[Dict]) -> Dict[str, int]:
    """Fold a stream of event dicts into the counters shape.

    Matches the running counters a :class:`Telemetry` instance keeps,
    so offline analysis of a log agrees with the live summary.
    """
    folder = Telemetry(path=None)
    for record in events:
        with folder._lock:
            folder._fold(record)
    return folder.counters()
