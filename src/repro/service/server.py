"""JSON-over-HTTP front door for the batch runtime (stdlib only).

``repro serve`` exposes the batch runtime on a
:class:`http.server.ThreadingHTTPServer` with both a synchronous and an
asynchronous surface:

``GET /health``
    Liveness probe — ``{"status": "ok", "batches": <count>, "queue":
    {...}}``.
``GET /counters``
    The server-lifetime telemetry counters
    (:meth:`repro.service.telemetry.Telemetry.counters`).
``POST /batch``
    Body ``{"jobs": [...]}`` in the :mod:`repro.service.jobs` schema
    (optional validated ``max_retries`` / ``job_timeout`` overrides);
    runs the batch synchronously **inline in the handler thread** and
    returns the :meth:`~repro.service.runner.BatchReport.to_dict`
    report.  Kept for compatibility and small interactive batches.
``POST /jobs``
    The asynchronous front door: validates the same payload shape
    (``{"jobs": [...]}``, a bare job object, or ``{"job": {...}}``),
    enqueues onto the bounded :class:`~repro.service.queue.JobQueue`
    and returns ``202`` with one server-assigned ticket per job.  A
    full queue answers ``503`` with a ``Retry-After`` header (never a
    dropped connection); a client exceeding the token-bucket rate
    limit answers ``429`` with ``Retry-After``.
``GET /jobs/<ticket>``
    Status/result polling — ``queued`` / ``running`` / terminal with
    the full :class:`~repro.service.runner.JobOutcome`; terminal
    records are also persisted to the content-addressed
    :class:`~repro.service.store.ResultStore`, so polling survives
    registry eviction.
``GET /queue``
    Queue depth, in-flight count, completions and rejections.

Hardening (every failure is a structured JSON error, never an
unhandled exception in the handler thread):

* ``Content-Length`` is validated — absent/negative/non-numeric bodies
  answer ``400``, bodies over ``max_body_bytes`` answer ``413``, and
  the server only ever reads the declared (bounded) length;
* per-request ``max_retries`` / ``job_timeout`` overrides are
  validated before any runner is built (``"abc"`` answers ``400``
  instead of crashing the handler);
* shared counters are guarded by ``ServiceServer.lock`` — concurrent
  POSTs cannot lose increments;
* ``server_close`` (and the SIGTERM handler installed by
  :func:`serve`) drains queued and in-flight jobs before exit.

``build_server`` binds (port ``0`` picks a free port, for tests) and
returns the server without starting it; call ``serve_forever`` on it.
"""

from __future__ import annotations

import json
import math
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.service.jobs import load_jobs_payload
from repro.service.queue import JobQueue, QueueFull, RateLimited, RateLimiter
from repro.service.runner import BatchRunner
from repro.service.store import ResultStore
from repro.service.telemetry import Telemetry

#: Default request-body cap (8 MiB) — large enough for real model
#: payloads, small enough that a flood cannot exhaust memory.
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024


class RequestError(ValueError):
    """A request the server refuses; carries the HTTP status + code."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = int(status)
        self.code = str(code)


def validate_overrides(
    payload: Dict,
    default_max_retries: int,
    default_job_timeout: Optional[float],
) -> Tuple[int, Optional[float]]:
    """Validated per-request runner overrides, or :class:`RequestError`.

    ``max_retries`` must parse as a non-negative integer and
    ``job_timeout`` as a positive finite number (or ``null``); anything
    else — ``"abc"``, ``-1``, ``NaN`` — is a client error, answered
    with a structured 400 instead of an exception in the handler
    thread.
    """
    max_retries = payload.get("max_retries", default_max_retries)
    try:
        max_retries = int(max_retries)
    except (TypeError, ValueError):
        raise RequestError(
            400,
            "invalid-override",
            f"max_retries must be an integer, got {max_retries!r}",
        ) from None
    if max_retries < 0:
        raise RequestError(
            400, "invalid-override", "max_retries must be >= 0"
        )
    job_timeout = payload.get("job_timeout", default_job_timeout)
    if job_timeout is not None:
        try:
            job_timeout = float(job_timeout)
        except (TypeError, ValueError):
            raise RequestError(
                400,
                "invalid-override",
                f"job_timeout must be a number, got {job_timeout!r}",
            ) from None
        if not math.isfinite(job_timeout) or job_timeout <= 0:
            raise RequestError(
                400,
                "invalid-override",
                "job_timeout must be a positive finite number",
            )
    return max_retries, job_timeout


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes the endpoints described in the module docstring."""

    # Quiet by default: per-request stderr noise is telemetry's job.
    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        pass

    # -- plumbing -------------------------------------------------------
    def _send_json(
        self, status: int, payload: Dict, headers: Optional[Dict] = None
    ) -> None:
        body = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(
        self,
        status: int,
        code: str,
        message: str,
        headers: Optional[Dict] = None,
    ) -> None:
        self._send_json(
            status,
            {"error": {"code": code, "message": message}},
            headers=headers,
        )

    @property
    def _service(self) -> "ServiceServer":
        return self.server  # type: ignore[return-value]

    def _read_body(self) -> bytes:
        """The request body, with the Content-Length fully validated.

        Never trusts the header: absent, non-numeric or negative
        lengths raise a 400 (a negative length would make
        ``rfile.read`` consume until EOF and hang the handler), and
        anything over the body cap raises 413 *before* a byte is read.
        """
        raw = self.headers.get("Content-Length")
        if raw is None:
            raise RequestError(
                400, "missing-content-length", "Content-Length is required"
            )
        try:
            length = int(raw)
        except ValueError:
            raise RequestError(
                400,
                "invalid-content-length",
                f"Content-Length must be an integer, got {raw!r}",
            ) from None
        if length < 0:
            raise RequestError(
                400,
                "invalid-content-length",
                "Content-Length must be >= 0",
            )
        if length > self._service.max_body_bytes:
            raise RequestError(
                413,
                "body-too-large",
                f"body of {length} bytes exceeds the "
                f"{self._service.max_body_bytes}-byte cap",
            )
        return self.rfile.read(length)

    def _parse_payload(self) -> Dict:
        body = self._read_body()
        try:
            payload = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise RequestError(
                400, "invalid-json", f"body is not valid JSON: {exc}"
            ) from None
        if not isinstance(payload, (dict, list)):
            raise RequestError(
                400, "invalid-payload", "body must be a JSON object or array"
            )
        return payload

    def _client_key(self) -> str:
        """Rate-limit key: explicit client id header, else peer address."""
        explicit = self.headers.get("X-Client-Id")
        if explicit:
            return str(explicit)
        return str(self.client_address[0])

    # -- routes ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        if self.path == "/health":
            with self._service.lock:
                batches = self._service.batches_run
            self._send_json(
                200,
                {
                    "status": "ok",
                    "batches": batches,
                    "queue": self._service.queue.stats(),
                },
            )
        elif self.path == "/counters":
            self._send_json(200, self._service.telemetry.counters())
        elif self.path == "/queue":
            self._send_json(200, self._service.queue.stats())
        elif self.path.startswith("/jobs/"):
            ticket = self.path[len("/jobs/"):].split("?", 1)[0]
            record = self._service.queue.snapshot(ticket)
            if record is None:
                self._send_error(
                    404, "unknown-ticket", f"no job with ticket {ticket!r}"
                )
            else:
                self._send_json(200, record)
        else:
            self._send_error(
                404, "unknown-path", f"unknown path {self.path!r}"
            )

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        try:
            if self.path == "/batch":
                self._post_batch()
            elif self.path == "/jobs":
                self._post_jobs()
            else:
                self._send_error(
                    404, "unknown-path", f"unknown path {self.path!r}"
                )
        except RequestError as exc:
            self._send_error(exc.status, exc.code, str(exc))
        except (ValueError, KeyError, TypeError) as exc:
            # Job-payload validation (load_jobs_payload) errors.
            self._send_error(400, "invalid-jobs", f"bad request: {exc}")

    def _post_batch(self) -> None:
        payload = self._parse_payload()
        jobs = load_jobs_payload(payload)
        overrides = payload if isinstance(payload, dict) else {}
        max_retries, job_timeout = validate_overrides(
            overrides,
            self._service.default_max_retries,
            self._service.default_job_timeout,
        )
        runner = self._service.make_runner(max_retries, job_timeout)
        report = runner.run(jobs)
        self._service.record_batch()
        self._send_json(200, report.to_dict())

    def _post_jobs(self) -> None:
        payload = self._parse_payload()
        # Accept {"jobs": [...]}, {"job": {...}} or a bare job object.
        if isinstance(payload, dict) and "job" in payload:
            shaped: object = {"jobs": [payload["job"]], **{
                key: value
                for key, value in payload.items()
                if key in ("max_retries", "job_timeout")
            }}
        elif isinstance(payload, dict) and "kind" in payload:
            shaped = {"jobs": [payload]}
        else:
            shaped = payload
        jobs = load_jobs_payload(shaped)
        overrides = shaped if isinstance(shaped, dict) else {}
        max_retries, job_timeout = validate_overrides(
            overrides, self._service.default_max_retries,
            self._service.default_job_timeout,
        )
        limiter = self._service.rate_limiter
        if limiter is not None:
            try:
                limiter.check(self._client_key())
            except RateLimited as exc:
                self._service.queue.note_rejected("rate-limited", len(jobs))
                self._send_error(
                    429,
                    "rate-limited",
                    str(exc),
                    headers={"Retry-After": max(1, int(exc.retry_after))},
                )
                return
        try:
            admitted = self._service.queue.submit_many(
                jobs, max_retries=max_retries, job_timeout=job_timeout
            )
        except QueueFull as exc:
            self._send_error(
                503,
                "queue-full",
                str(exc),
                headers={"Retry-After": max(1, int(exc.retry_after))},
            )
            return
        self._send_json(
            202,
            {
                "accepted": [
                    {
                        "ticket": record.ticket,
                        "job_id": record.spec.job_id,
                        "status_url": f"/jobs/{record.ticket}",
                    }
                    for record in admitted
                ],
                "queue": self._service.queue.stats(),
            },
        )


class ServiceServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` carrying the service state.

    Handler threads share this object; every mutable counter on it is
    guarded by :attr:`lock` (the queue has its own internal lock with
    the same discipline).
    """

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        telemetry: Telemetry,
        store_dir: Optional[str] = None,
        default_max_retries: int = 2,
        default_job_timeout: Optional[float] = None,
        queue_size: int = 64,
        queue_workers: int = 2,
        rate_limit: Optional[float] = None,
        rate_burst: Optional[float] = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        drain_timeout: float = 30.0,
    ):
        super().__init__(address, ServiceHandler)
        self.telemetry = telemetry
        self.store_dir = store_dir
        self.default_max_retries = default_max_retries
        self.default_job_timeout = default_job_timeout
        self.max_body_bytes = int(max_body_bytes)
        self.drain_timeout = float(drain_timeout)
        self.lock = threading.Lock()
        self.batches_run = 0
        self.store = (
            ResultStore(store_dir) if store_dir is not None else None
        )
        self.queue = JobQueue(
            runner_factory=self._queue_runner,
            capacity=queue_size,
            workers=queue_workers,
            telemetry=telemetry,
            store=self.store,
        )
        self.rate_limiter = (
            RateLimiter(rate_limit, burst=rate_burst)
            if rate_limit is not None
            else None
        )
        self._closed = False

    def _queue_runner(self) -> BatchRunner:
        """A fresh inline runner for one queue worker thread."""
        return BatchRunner(
            max_workers=0,
            store_dir=self.store_dir,
            telemetry=self.telemetry,
            job_timeout=self.default_job_timeout,
            max_retries=self.default_max_retries,
        )

    def make_runner(
        self, max_retries: int, job_timeout: Optional[float]
    ) -> BatchRunner:
        """An inline runner honouring validated per-request overrides."""
        return BatchRunner(
            max_workers=0,
            store_dir=self.store_dir,
            telemetry=self.telemetry,
            job_timeout=job_timeout,
            max_retries=max_retries,
        )

    def record_batch(self) -> None:
        """Count one served batch (thread-safe)."""
        with self.lock:
            self.batches_run += 1

    def server_close(self) -> None:
        """Drain the queue, then release the socket (idempotent)."""
        with self.lock:
            already = self._closed
            self._closed = True
        if not already:
            self.queue.close(drain=True, timeout=self.drain_timeout)
        super().server_close()


def build_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    store_dir: Optional[str] = None,
    telemetry: Optional[Telemetry] = None,
    max_retries: int = 2,
    job_timeout: Optional[float] = None,
    queue_size: int = 64,
    queue_workers: int = 2,
    rate_limit: Optional[float] = None,
    rate_burst: Optional[float] = None,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    drain_timeout: float = 30.0,
) -> ServiceServer:
    """Bind the service (``port=0`` → ephemeral); caller serves/closes."""
    return ServiceServer(
        (host, port),
        telemetry=telemetry if telemetry is not None else Telemetry(),
        store_dir=store_dir,
        default_max_retries=max_retries,
        default_job_timeout=job_timeout,
        queue_size=queue_size,
        queue_workers=queue_workers,
        rate_limit=rate_limit,
        rate_burst=rate_burst,
        max_body_bytes=max_body_bytes,
        drain_timeout=drain_timeout,
    )


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    store_dir: Optional[str] = None,
    telemetry: Optional[Telemetry] = None,
    **server_kwargs,
) -> None:
    """Blocking entry point used by ``repro serve``.

    Installs a SIGTERM handler (when running on the main thread) that
    stops the accept loop; ``server_close`` then drains queued and
    in-flight jobs before the process exits.
    """
    server = build_server(
        host=host,
        port=port,
        store_dir=store_dir,
        telemetry=telemetry,
        **server_kwargs,
    )

    def on_sigterm(_signum, _frame):
        # shutdown() must not run on the serve_forever thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = None
    try:
        previous = signal.signal(signal.SIGTERM, on_sigterm)
    except ValueError:
        pass  # not on the main thread (embedded use); skip the handler
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
