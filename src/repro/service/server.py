"""Minimal JSON-over-HTTP façade for the batch runtime (stdlib only).

``repro serve`` exposes three endpoints on a
:class:`http.server.ThreadingHTTPServer`:

``GET /health``
    Liveness probe — ``{"status": "ok", "batches": <count>}``.
``GET /counters``
    The server-lifetime telemetry counters
    (:meth:`repro.service.telemetry.Telemetry.counters`).
``POST /batch``
    Body ``{"jobs": [...]}`` in the :mod:`repro.service.jobs` schema
    (optional per-request ``max_retries`` / ``job_timeout`` overrides);
    runs the batch synchronously and returns the
    :meth:`~repro.service.runner.BatchReport.to_dict` report.

Requests execute **inline** in the handler thread (``max_workers=0``) —
the server is a thin remote-procedure surface for notebooks and smoke
tests, not a scheduler; point heavy batches at ``repro batch`` and a
real pool instead.  Handler threads are not the main thread, so the
per-job alarm is skipped; rely on ``max_retries`` bounding instead.

``build_server`` binds (port ``0`` picks a free port, for tests) and
returns the server without starting it; call ``serve_forever`` on it.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.service.jobs import load_jobs_payload
from repro.service.runner import BatchRunner
from repro.service.telemetry import Telemetry


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes /health, /counters and /batch (see module docstring)."""

    # Quiet by default: per-request stderr noise is telemetry's job.
    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        pass

    # -- plumbing -------------------------------------------------------
    def _send_json(self, status: int, payload: Dict) -> None:
        body = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    @property
    def _service(self) -> "ServiceServer":
        return self.server  # type: ignore[return-value]

    # -- routes ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        if self.path == "/health":
            self._send_json(
                200, {"status": "ok", "batches": self._service.batches_run}
            )
        elif self.path == "/counters":
            self._send_json(200, self._service.telemetry.counters())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        if self.path != "/batch":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
            jobs = load_jobs_payload(payload)
        except (ValueError, KeyError, TypeError) as exc:
            self._send_json(400, {"error": f"bad batch request: {exc}"})
            return
        runner = self._service.make_runner(payload)
        report = runner.run(jobs)
        self._service.batches_run += 1
        self._send_json(200, report.to_dict())


class ServiceServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` carrying the service state."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        telemetry: Telemetry,
        store_dir: Optional[str] = None,
        default_max_retries: int = 2,
        default_job_timeout: Optional[float] = None,
    ):
        super().__init__(address, ServiceHandler)
        self.telemetry = telemetry
        self.store_dir = store_dir
        self.default_max_retries = default_max_retries
        self.default_job_timeout = default_job_timeout
        self.batches_run = 0

    def make_runner(self, request: Dict) -> BatchRunner:
        """An inline runner honouring per-request overrides."""
        overrides = request if isinstance(request, dict) else {}
        return BatchRunner(
            max_workers=0,
            store_dir=self.store_dir,
            telemetry=self.telemetry,
            job_timeout=overrides.get("job_timeout", self.default_job_timeout),
            max_retries=int(
                overrides.get("max_retries", self.default_max_retries)
            ),
        )


def build_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    store_dir: Optional[str] = None,
    telemetry: Optional[Telemetry] = None,
    max_retries: int = 2,
    job_timeout: Optional[float] = None,
) -> ServiceServer:
    """Bind the service (``port=0`` → ephemeral); caller serves/closes."""
    return ServiceServer(
        (host, port),
        telemetry=telemetry if telemetry is not None else Telemetry(),
        store_dir=store_dir,
        default_max_retries=max_retries,
        default_job_timeout=job_timeout,
    )


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    store_dir: Optional[str] = None,
    telemetry: Optional[Telemetry] = None,
) -> None:
    """Blocking entry point used by ``repro serve``."""
    server = build_server(
        host=host, port=port, store_dir=store_dir, telemetry=telemetry
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
