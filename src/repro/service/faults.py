"""Deterministic fault injection for the batch runtime.

The robustness suite needs to drive :class:`repro.service.runner.
BatchRunner` through worker crashes, per-job timeouts and transient
errors *reproducibly*.  A :class:`FaultPlan` makes the decision for
``(job_id, attempt)`` by hashing the pair with a seed — the same plan
always injects the same faults, independent of scheduling order or
worker assignment, so a failing run replays exactly.

Fault kinds:

``"crash"``
    The worker process hard-exits (``os._exit``), simulating an OOM
    kill or segfault.  The pool breaks; the runner must rebuild it and
    retry the in-flight jobs.
``"hang"``
    The worker sleeps past the per-job timeout, exercising the alarm
    path (and the statistical-checking fallback for check jobs).
``"error"``
    A transient :class:`InjectedFault` is raised, exercising bounded
    retries with backoff.

``attempts_affected`` limits injection to the first *k* attempts of a
job, so tests can script "fails once, then succeeds".
"""

from __future__ import annotations

import hashlib
import os
import time
from typing import Dict, Optional


class InjectedFault(RuntimeError):
    """A deliberately injected transient failure."""


class FaultPlan:
    """Seeded per-(job, attempt) fault decisions.

    Probabilities are cumulative slices of a uniform draw: with
    ``crash_probability=0.1, hang_probability=0.1,
    error_probability=0.1`` a job-attempt faults 30% of the time,
    split evenly across the three kinds.

    Examples
    --------
    >>> plan = FaultPlan(error_probability=1.0, attempts_affected=1)
    >>> plan.decide("job-a", attempt=0)
    'error'
    >>> plan.decide("job-a", attempt=1) is None
    True
    """

    def __init__(
        self,
        crash_probability: float = 0.0,
        hang_probability: float = 0.0,
        error_probability: float = 0.0,
        seed: int = 0,
        hang_seconds: float = 5.0,
        attempts_affected: Optional[int] = None,
    ):
        total = crash_probability + hang_probability + error_probability
        if not 0.0 <= total <= 1.0:
            raise ValueError("fault probabilities must sum to at most 1")
        self.crash_probability = float(crash_probability)
        self.hang_probability = float(hang_probability)
        self.error_probability = float(error_probability)
        self.seed = int(seed)
        self.hang_seconds = float(hang_seconds)
        self.attempts_affected = attempts_affected

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _draw(self, job_id: str, attempt: int) -> float:
        text = f"{self.seed}:{job_id}:{attempt}"
        digest = hashlib.sha256(text.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def decide(self, job_id: str, attempt: int) -> Optional[str]:
        """``"crash"`` / ``"hang"`` / ``"error"`` / ``None`` for this try."""
        if (
            self.attempts_affected is not None
            and attempt >= self.attempts_affected
        ):
            return None
        draw = self._draw(job_id, attempt)
        if draw < self.crash_probability:
            return "crash"
        if draw < self.crash_probability + self.hang_probability:
            return "hang"
        if (
            draw
            < self.crash_probability
            + self.hang_probability
            + self.error_probability
        ):
            return "error"
        return None

    def apply(self, job_id: str, attempt: int, allow_crash: bool = True) -> None:
        """Act on the decision inside a worker (no-op when none fires).

        ``allow_crash=False`` (inline execution in the caller's own
        process) downgrades a crash decision to an :class:`InjectedFault`
        so fault-injected batches can still run without a pool.
        """
        decision = self.decide(job_id, attempt)
        if decision is None:
            return
        if decision == "crash":
            if allow_crash:
                os._exit(17)
            raise InjectedFault(
                f"injected crash (inline) for {job_id!r} attempt {attempt}"
            )
        if decision == "hang":
            time.sleep(self.hang_seconds)
            return
        raise InjectedFault(
            f"injected error for {job_id!r} attempt {attempt}"
        )

    # ------------------------------------------------------------------
    # Serialisation (plans cross the process boundary with the job)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-ready form; inverse of :meth:`from_dict`."""
        return {
            "crash_probability": self.crash_probability,
            "hang_probability": self.hang_probability,
            "error_probability": self.error_probability,
            "seed": self.seed,
            "hang_seconds": self.hang_seconds,
            "attempts_affected": self.attempts_affected,
        }

    @staticmethod
    def from_dict(payload: Dict) -> "FaultPlan":
        """Rebuild a plan serialised by :meth:`to_dict`."""
        return FaultPlan(
            crash_probability=payload.get("crash_probability", 0.0),
            hang_probability=payload.get("hang_probability", 0.0),
            error_probability=payload.get("error_probability", 0.0),
            seed=payload.get("seed", 0),
            hang_seconds=payload.get("hang_seconds", 5.0),
            attempts_affected=payload.get("attempts_affected"),
        )

    def __repr__(self) -> str:
        return (
            f"FaultPlan(crash={self.crash_probability}, "
            f"hang={self.hang_probability}, error={self.error_probability}, "
            f"seed={self.seed})"
        )
