"""Content-addressed on-disk result store.

:class:`~repro.checking.cache.CheckCache` memoises checking results and
parametric closed forms *within* one process, keyed by SHA-256 content
fingerprints (:func:`repro.checking.matrix.model_fingerprint`,
:func:`repro.checking.cache.parametric_fingerprint`).  ``ResultStore``
extends the same keys to disk: values are pickled under
``<sha256(key)>.pkl`` inside a store directory, written atomically
(temp file + ``os.replace``), so any number of worker processes can
share one directory without coordination — the worst case for a racing
write is doing the same work twice, never corruption.

``open_disk_cache`` builds a ``CheckCache`` layered on a store, and
``install_process_cache`` swaps it in as the process-global cache —
the batch runner calls the latter inside every worker, which is what
makes a warm re-run of an identical batch perform **zero** parametric
eliminations across processes.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

from repro.checking.cache import CheckCache, set_global_cache


def key_digest(key: object) -> str:
    """Stable hex digest of a cache key.

    Keys are tuples of fingerprints, formula objects and engine names;
    PCTL formulas print deterministically, so ``repr`` of the tuple is a
    canonical text form.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


class ResultStore:
    """Pickle-per-key persistent store under one directory.

    Examples
    --------
    >>> import tempfile
    >>> store = ResultStore(tempfile.mkdtemp())
    >>> store.get(("parametric", "abc")) is None
    True
    >>> store.put(("parametric", "abc"), {"value": 1})
    >>> store.get(("parametric", "abc"))
    {'value': 1}
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.reads = 0
        self.read_hits = 0
        self.writes = 0

    def _path(self, key: object) -> Path:
        return self.directory / f"{key_digest(key)}.pkl"

    def get(self, key: object) -> Optional[object]:
        """The stored value, or ``None`` on miss or unreadable entry."""
        self.reads += 1
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            # Missing, truncated by a crashed writer, or pickled against
            # a different code version: all equivalent to a cache miss.
            return None
        self.read_hits += 1
        return value

    def put(self, key: object, value: object) -> None:
        """Persist ``value`` under ``key`` (atomic, last writer wins)."""
        path = self._path(key)
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PickleError, TypeError, AttributeError):
            return  # unpicklable values simply stay memory-only
        temp_name = None
        try:
            # The directory may have been removed under us (e.g. a
            # temporary store outliving its test); persistence is
            # best-effort, so recreate it and never raise.
            self.directory.mkdir(parents=True, exist_ok=True)
            handle, temp_name = tempfile.mkstemp(
                dir=str(self.directory), suffix=".tmp"
            )
            with os.fdopen(handle, "wb") as temp:
                temp.write(payload)
            os.replace(temp_name, path)
            self.writes += 1
        except OSError:
            if temp_name is not None:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass

    def __contains__(self, key: object) -> bool:
        """Whether ``get(key)`` would hit.

        Delegates to :meth:`get` so membership agrees with retrieval —
        a corrupt or version-skewed pickle on disk is *not* "present"
        (``get`` would miss it), and the read counters see the probe.
        """
        return self.get(key) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))

    def stats(self) -> Dict[str, int]:
        """Read/write counters for this handle (not directory-wide)."""
        return {
            "reads": self.reads,
            "read_hits": self.read_hits,
            "writes": self.writes,
        }

    def __repr__(self) -> str:
        return f"ResultStore({str(self.directory)!r}, entries={len(self)})"


def open_disk_cache(
    directory: Union[str, Path], max_entries: int = 4096
) -> CheckCache:
    """A :class:`CheckCache` write-through layered on a ``ResultStore``."""
    return CheckCache(max_entries=max_entries, backing=ResultStore(directory))


#: Directory of the store currently installed as the process-global
#: cache backing (``None`` when the global cache is memory-only).
_installed_directory: Optional[str] = None


def install_process_cache(
    directory: Union[str, Path], max_entries: int = 4096
) -> CheckCache:
    """Install a disk-backed cache as the process-global ``CheckCache``.

    Idempotent per directory: repeated calls (one per job landing on a
    pooled worker) keep the existing cache — and its warm memo — when it
    is already backed by the same store.
    """
    global _installed_directory
    from repro.checking import cache as cache_module

    resolved = str(Path(directory).resolve())
    if _installed_directory == resolved:
        return cache_module.GLOBAL_CACHE
    fresh = open_disk_cache(resolved, max_entries=max_entries)
    set_global_cache(fresh)
    _installed_directory = resolved
    return fresh
