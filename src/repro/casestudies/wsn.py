"""Wireless-sensor-network query routing (Section V-A).

A 3×3 grid of nodes ``n11 … n33``: row 1 holds the *station* nodes
(``n11`` talks to the base station), row 3 the *field* nodes; queries
originate at the field corner ``n33`` and must be routed peer-to-peer to
``n11``.  Each routing step the current holder picks a random neighbour
and attempts a forward; the attempt succeeds when the radio works
(probability ``forward_probability``) *and* the neighbour does not
ignore the message (its node-dependent *ignore probability*).  Every
attempt costs one reward unit, so the paper's property

    ``R{attempts} <= X [ F delivered ]``

bounds the expected number of forwarding attempts end-to-end.

Model Repair (Section V-A.1) adds two correction parameters, mirroring
the paper: ``p`` lowers the ignore probability of field/station nodes
(rows 1 and 3), ``q`` that of interior nodes (row 2).  The defaults are
calibrated so the paper's three cases reproduce:

* ``X = 100`` — already satisfied;
* ``X = 40`` — repairable with small corrections;
* ``X = 19`` — infeasible within the correction bounds.

Data Repair (Section V-A.2) works on one-step *observation* traces
(MLE factorises over transitions, so per-transition traces are an exact
decomposition of full routing traces), grouped the paper's way:
successful forwards (pinned — known reliable), failed forwards, and
failures specifically at ``n11`` and near the source at ``n32``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from repro.checking.parametric import ParametricDTMC
from repro.core.model_repair import ModelRepair
from repro.core.data_repair import DataRepair
from repro.data.dataset import TraceDataset, TraceGroup
from repro.logic.parser import parse_pctl
from repro.logic.pctl import StateFormula
from repro.mdp.model import DTMC
from repro.mdp.trajectory import Trajectory
from repro.optimize import Variable
from repro.symbolic import Polynomial

GRID_SIZE = 3
STATION_NODE = "n11"
SOURCE_NODE = "n33"

#: Calibrated defaults (see module docstring and EXPERIMENTS.md).
DEFAULT_FORWARD_PROBABILITY = 0.8
DEFAULT_IGNORE_FIELD_STATION = 0.55
DEFAULT_IGNORE_INTERIOR = 0.45
DEFAULT_MAX_CORRECTION = 0.1


def node_name(row: int, col: int) -> str:
    """``n<row><col>`` with 1-based grid coordinates.

    Multi-digit coordinates (grids larger than 9×9, used by the
    scalability bench) get an underscore separator so names stay
    unambiguous; the paper-scale names (``n11`` … ``n33``) are unchanged.
    """
    if row > 9 or col > 9:
        return f"n{row}_{col}"
    return f"n{row}{col}"


def _node_coords(node: str) -> Tuple[int, int]:
    """Inverse of :func:`node_name`."""
    body = node[1:]
    if "_" in body:
        row_text, col_text = body.split("_")
        return int(row_text), int(col_text)
    return int(body[0]), int(body[1])


def grid_nodes(size: int = GRID_SIZE) -> List[str]:
    """All node names in row-major order."""
    return [
        node_name(row, col)
        for row in range(1, size + 1)
        for col in range(1, size + 1)
    ]


def neighbours(node: str, size: int = GRID_SIZE) -> List[str]:
    """4-adjacent grid neighbours."""
    row, col = _node_coords(node)
    adjacent = []
    for d_row, d_col in ((-1, 0), (1, 0), (0, -1), (0, 1)):
        r, c = row + d_row, col + d_col
        if 1 <= r <= size and 1 <= c <= size:
            adjacent.append(node_name(r, c))
    return adjacent


def is_field_or_station(node: str, size: int = GRID_SIZE) -> bool:
    """Row 1 (station) and row ``size`` (field) nodes."""
    row, _ = _node_coords(node)
    return row == 1 or row == size


def ignore_probabilities(
    ignore_field_station: float = DEFAULT_IGNORE_FIELD_STATION,
    ignore_interior: float = DEFAULT_IGNORE_INTERIOR,
    size: int = GRID_SIZE,
) -> Dict[str, float]:
    """The node-dependent ignore probability map."""
    return {
        node: (
            ignore_field_station
            if is_field_or_station(node, size)
            else ignore_interior
        )
        for node in grid_nodes(size)
    }


def _routing_rows(
    ignore: Mapping[str, object],
    forward_probability: object,
    size: int,
):
    """Shared row construction for concrete and parametric chains.

    From holder ``u`` the message moves to neighbour ``v`` with
    probability ``(1/deg(u)) · f · (1 − ignore(v))`` and stays with the
    remaining mass; the station node is absorbing.
    """
    rows: Dict[str, Dict[str, object]] = {}
    for node in grid_nodes(size):
        if node == STATION_NODE:
            rows[node] = {node: 1.0}
            continue
        targets = neighbours(node, size)
        share = 1.0 / len(targets)
        row: Dict[str, object] = {}
        stay = 1.0
        for target in targets:
            move = share * forward_probability * (1.0 - ignore[target])
            row[target] = move
            stay = stay - move
        row[node] = stay
        rows[node] = row
    return rows


def build_wsn_chain(
    forward_probability: float = DEFAULT_FORWARD_PROBABILITY,
    ignore_field_station: float = DEFAULT_IGNORE_FIELD_STATION,
    ignore_interior: float = DEFAULT_IGNORE_INTERIOR,
    size: int = GRID_SIZE,
) -> DTMC:
    """The routing chain with the query at ``n33`` heading for ``n11``.

    Reward 1 on every non-station state (one attempt per step); the
    station node is labelled ``delivered``.
    """
    ignore = ignore_probabilities(ignore_field_station, ignore_interior, size)
    rows = _routing_rows(ignore, forward_probability, size)
    nodes = grid_nodes(size)
    return DTMC(
        states=nodes,
        transitions={s: {t: float(p) for t, p in row.items()} for s, row in rows.items()},
        initial_state=SOURCE_NODE,
        labels={STATION_NODE: {"delivered"}},
        state_rewards={n: (0.0 if n == STATION_NODE else 1.0) for n in nodes},
    )


def build_wsn_parametric(
    forward_probability: float = DEFAULT_FORWARD_PROBABILITY,
    ignore_field_station: float = DEFAULT_IGNORE_FIELD_STATION,
    ignore_interior: float = DEFAULT_IGNORE_INTERIOR,
    size: int = GRID_SIZE,
    field_station_parameter: str = "p",
    interior_parameter: str = "q",
) -> ParametricDTMC:
    """The Model Repair parametrisation of the routing chain.

    Ignore probabilities become ``base − p`` on field/station nodes and
    ``base − q`` on interior nodes — lowering an ignore probability
    raises the chance a forward attempt is accepted.
    """
    p = Polynomial.variable(field_station_parameter)
    q = Polynomial.variable(interior_parameter)
    base = ignore_probabilities(ignore_field_station, ignore_interior, size)
    ignore = {
        node: (
            Polynomial.constant(base[node])
            - (p if is_field_or_station(node, size) else q)
        )
        for node in grid_nodes(size)
    }
    rows = _routing_rows(ignore, Polynomial.constant(forward_probability), size)
    nodes = grid_nodes(size)
    return ParametricDTMC(
        states=nodes,
        transitions=rows,
        initial_state=SOURCE_NODE,
        labels={STATION_NODE: {"delivered"}},
        state_rewards={n: (0.0 if n == STATION_NODE else 1.0) for n in nodes},
    )


def attempts_property(bound: float) -> StateFormula:
    """``R{attempts} <= bound [ F delivered ]``."""
    return parse_pctl(f'R{{"attempts"}}<={bound} [ F "delivered" ]')


def model_repair_problem(
    bound: float,
    max_correction: float = DEFAULT_MAX_CORRECTION,
    forward_probability: float = DEFAULT_FORWARD_PROBABILITY,
    ignore_field_station: float = DEFAULT_IGNORE_FIELD_STATION,
    ignore_interior: float = DEFAULT_IGNORE_INTERIOR,
) -> ModelRepair:
    """The Section V-A.1 Model Repair problem for a given ``X``."""
    chain = build_wsn_chain(
        forward_probability, ignore_field_station, ignore_interior
    )
    parametric = build_wsn_parametric(
        forward_probability, ignore_field_station, ignore_interior
    )
    variables = [
        Variable("p", 0.0, max_correction, initial=0.0),
        Variable("q", 0.0, max_correction, initial=0.0),
    ]
    return ModelRepair.from_parametric(
        chain=chain,
        formula=attempts_property(bound),
        parametric_model=parametric,
        variables=variables,
    )


# ----------------------------------------------------------------------
# Monitored delivery (CEGIS scaling scenario)
# ----------------------------------------------------------------------
#: The scaling scenario swaps uniform peer-to-peer routing for
#: *directed* routing: each holder forwards to a uniformly random
#: neighbour closer to the station (up or left) and a failed forward
#: drops the message (absorbing ``lost`` node) instead of retrying.
#: The chain is then a DAG, so strongest-evidence enumeration is exact
#: and cheap.  A monitor row watches the grid one row below the
#: stations, with a single unwatched gap column: a query only counts as
#: *cleanly* delivered when it reaches ``n11`` without ever being held
#: by a monitored node, so every clean route squeezes through the gap —
#: evidence corridors stay a thin slice of the grid, which is exactly
#: the regime counterexample-guided repair exploits.
MONITOR_ROW = 2
GAP_COLUMN = 1
MONITORED_FORWARD_PROBABILITY = 0.98
MONITORED_IGNORE = 0.04
LOST_NODE = "lost"


def monitored_nodes(
    size: int = GRID_SIZE,
    monitor_row: int = MONITOR_ROW,
    gap_column: int = GAP_COLUMN,
) -> List[str]:
    """The watched nodes: row ``monitor_row`` minus the gap column."""
    return [
        node_name(monitor_row, col)
        for col in range(1, size + 1)
        if col != gap_column
    ]


def forward_neighbours(node: str, size: int = GRID_SIZE) -> List[str]:
    """The neighbours strictly closer to the station: up and left."""
    row, col = _node_coords(node)
    closer = []
    if row > 1:
        closer.append(node_name(row - 1, col))
    if col > 1:
        closer.append(node_name(row, col - 1))
    return closer


def interference_parameter(node: str) -> str:
    """The repair variable name for one node's interference knob."""
    return f"c_{node}"


def jammable(node: str) -> bool:
    """Whether a node can host an interference knob.

    Only even-parity cells are mains-powered, so only they can run a
    jammer; the station itself is never jammed.  Because every forward
    hop (up or left) flips the parity of ``row + col``, a routing path
    meets knobs on exactly every other hop — the knob count of any
    single evidence corridor grows with *half* its path length, which
    is what keeps the localized eliminations cheap while the total
    variable count still grows with the grid area.
    """
    if node == STATION_NODE:
        return False
    row, col = _node_coords(node)
    return (row + col) % 2 == 0


def jammable_nodes(size: int = GRID_SIZE) -> List[str]:
    """The nodes carrying interference knobs, in grid order."""
    return [node for node in grid_nodes(size) if jammable(node)]


def _directed_rows(ignore: Mapping[str, object], forward_probability, size):
    """Directed-routing rows: forward or drop, never retry.

    From holder ``u`` the message moves to forward neighbour ``v`` with
    probability ``(1/|fwd(u)|) · f · (1 − ignore(v))``; the remaining
    mass is dropped into the absorbing ``lost`` node.
    """
    rows: Dict[str, Dict[str, object]] = {
        STATION_NODE: {STATION_NODE: 1.0},
        LOST_NODE: {LOST_NODE: 1.0},
    }
    for node in grid_nodes(size):
        if node == STATION_NODE:
            continue
        targets = forward_neighbours(node, size)
        share = 1.0 / len(targets)
        row: Dict[str, object] = {}
        dropped = 1.0
        for target in targets:
            move = share * forward_probability * (1.0 - ignore[target])
            row[target] = move
            dropped = dropped - move
        row[LOST_NODE] = dropped
        rows[node] = row
    return rows


def _monitored_labels(size, monitor_row, gap_column) -> Dict[str, set]:
    watched = set(monitored_nodes(size, monitor_row, gap_column))
    labels: Dict[str, set] = {STATION_NODE: {"delivered"}}
    for node in grid_nodes(size):
        if node != STATION_NODE and node not in watched:
            labels[node] = {"clean"}
    return labels


def build_monitored_chain(
    size: int = GRID_SIZE,
    forward_probability: float = MONITORED_FORWARD_PROBABILITY,
    ignore: float = MONITORED_IGNORE,
    monitor_row: int = MONITOR_ROW,
    gap_column: int = GAP_COLUMN,
) -> DTMC:
    """The directed-routing chain for the monitored-delivery property.

    Labels mark ``n11`` as ``delivered`` and every other unwatched node
    as ``clean``, so

        ``P <= b [ clean U delivered ]``

    bounds the probability of a delivery that dodges every monitor.
    """
    ignore_map = {node: ignore for node in grid_nodes(size)}
    rows = _directed_rows(ignore_map, forward_probability, size)
    return DTMC(
        states=grid_nodes(size) + [LOST_NODE],
        transitions={
            s: {t: float(p) for t, p in row.items()} for s, row in rows.items()
        },
        initial_state=node_name(size, size),
        labels=_monitored_labels(size, monitor_row, gap_column),
    )


def clean_delivery_property(bound: float) -> StateFormula:
    """``P <= bound [ clean U delivered ]``."""
    return parse_pctl(f'P<={bound} [ "clean" U "delivered" ]')


def build_monitored_parametric(
    size: int = GRID_SIZE,
    forward_probability: float = MONITORED_FORWARD_PROBABILITY,
    ignore: float = MONITORED_IGNORE,
    monitor_row: int = MONITOR_ROW,
    gap_column: int = GAP_COLUMN,
) -> ParametricDTMC:
    """Per-node interference repair of the monitored-delivery chain.

    Every :func:`jammable` grid node ``v`` gets its own knob ``c_v``
    *raising* its ignore probability (jamming traffic into ``v``), so
    repair can suppress clean deliveries node by node.  One variable
    per mains-powered node means the problem dimension grows with the
    grid area (4 at the paper's 3×3, 31 at 8×8) — the regime where the
    global elimination gives out — while any *single* localized
    constraint only mentions the knobs on its evidence corridor, every
    other hop of each path (a failed forward is dropped, so no row
    mixes in the knobs of off-corridor neighbours).
    """
    ignore_map = {
        node: (
            Polynomial.constant(ignore)
            + Polynomial.variable(interference_parameter(node))
            if jammable(node)
            else Polynomial.constant(ignore)
        )
        for node in grid_nodes(size)
    }
    rows = _directed_rows(
        ignore_map, Polynomial.constant(forward_probability), size
    )
    return ParametricDTMC(
        states=grid_nodes(size) + [LOST_NODE],
        transitions=rows,
        initial_state=node_name(size, size),
        labels=_monitored_labels(size, monitor_row, gap_column),
    )


def monitored_repair_problem(
    bound: float,
    size: int = GRID_SIZE,
    max_interference: float = 0.9,
    forward_probability: float = MONITORED_FORWARD_PROBABILITY,
    ignore: float = MONITORED_IGNORE,
) -> ModelRepair:
    """Suppress clean deliveries below ``bound`` at minimum interference.

    One ``c_v ∈ [0, max_interference]`` per :func:`jammable` grid node;
    the variable count grows with the grid area (4 at the paper's 3×3,
    31 at 8×8), which is what the CEGIS scaling bench sweeps.
    """
    chain = build_monitored_chain(size, forward_probability, ignore)
    parametric = build_monitored_parametric(size, forward_probability, ignore)
    variables = [
        Variable(interference_parameter(node), 0.0, max_interference,
                 initial=0.0)
        for node in jammable_nodes(size)
    ]
    return ModelRepair.from_parametric(
        chain=chain,
        formula=clean_delivery_property(bound),
        parametric_model=parametric,
        variables=variables,
    )


# ----------------------------------------------------------------------
# Data Repair (Section V-A.2)
# ----------------------------------------------------------------------
GROUP_FORWARD_SUCCESS = "forward-success"
GROUP_FORWARD_FAIL = "forward-fail"
GROUP_IGNORE_STATION = "ignore-n11"
GROUP_IGNORE_NEAR_SOURCE = "ignore-n32"

#: Data Repair scenario calibration: a healthier network whose MLE model
#: lands slightly above the bound, so *small* drop probabilities repair
#: it (the paper's Section V-A.2 shape; its X = 19 sits one unit above
#: this grid's structural floor of 18 attempts, our bound sits a unit
#: below the learned value — see EXPERIMENTS.md).
DATA_SCENARIO_IGNORE_FIELD_STATION = 0.22
DATA_SCENARIO_IGNORE_INTERIOR = 0.18
DEFAULT_DATA_REPAIR_BOUND = 27.0


def generate_observation_dataset(
    episodes: int = 400,
    seed: int = 7,
    forward_probability: float = DEFAULT_FORWARD_PROBABILITY,
    ignore_field_station: float = DATA_SCENARIO_IGNORE_FIELD_STATION,
    ignore_interior: float = DATA_SCENARIO_IGNORE_INTERIOR,
    max_steps: int = 500,
    size: int = GRID_SIZE,
) -> TraceDataset:
    """Simulate routing episodes and emit grouped one-step observations.

    Each attempt becomes a length-2 trace (holder, outcome-state).
    Failed attempts are grouped by the *intended* target — information
    the trace collector has even though the observation itself is a
    self-loop — into the paper's three droppable pools; successful
    forwards form a pinned (reliable) group.
    """
    rng = np.random.default_rng(seed)
    ignore = ignore_probabilities(ignore_field_station, ignore_interior, size)
    buckets: Dict[str, List[Trajectory]] = {
        GROUP_FORWARD_SUCCESS: [],
        GROUP_FORWARD_FAIL: [],
        GROUP_IGNORE_STATION: [],
        GROUP_IGNORE_NEAR_SOURCE: [],
    }
    for _ in range(episodes):
        holder = SOURCE_NODE
        for _ in range(max_steps):
            if holder == STATION_NODE:
                break
            targets = neighbours(holder, size)
            target = targets[rng.integers(len(targets))]
            succeeded = rng.random() < forward_probability * (1.0 - ignore[target])
            if succeeded:
                buckets[GROUP_FORWARD_SUCCESS].append(
                    Trajectory.from_states([holder, target])
                )
                holder = target
            else:
                if target == STATION_NODE:
                    bucket = GROUP_IGNORE_STATION
                elif target == "n32":
                    bucket = GROUP_IGNORE_NEAR_SOURCE
                else:
                    bucket = GROUP_FORWARD_FAIL
                buckets[bucket].append(Trajectory.from_states([holder, holder]))
    return TraceDataset(
        [
            TraceGroup(GROUP_FORWARD_SUCCESS, buckets[GROUP_FORWARD_SUCCESS],
                       droppable=False),
            TraceGroup(GROUP_FORWARD_FAIL, buckets[GROUP_FORWARD_FAIL]),
            TraceGroup(GROUP_IGNORE_STATION, buckets[GROUP_IGNORE_STATION]),
            TraceGroup(GROUP_IGNORE_NEAR_SOURCE,
                       buckets[GROUP_IGNORE_NEAR_SOURCE]),
        ]
    )


def data_repair_problem(
    dataset: TraceDataset,
    bound: float,
    max_drop: float = 0.9,
    size: int = GRID_SIZE,
) -> DataRepair:
    """The Section V-A.2 Data Repair problem for a given ``X``."""
    nodes = grid_nodes(size)
    return DataRepair(
        dataset=dataset,
        formula=attempts_property(bound),
        initial_state=SOURCE_NODE,
        states=nodes,
        labels={STATION_NODE: {"delivered"}},
        state_rewards={n: (0.0 if n == STATION_NODE else 1.0) for n in nodes},
        max_drop=max_drop,
    )


# ----------------------------------------------------------------------
# MDP formulation (the paper models the network as an MDP; the chain
# above is the induced model under uniform-random routing)
# ----------------------------------------------------------------------
def build_wsn_mdp(
    forward_probability: float = DEFAULT_FORWARD_PROBABILITY,
    ignore_field_station: float = DEFAULT_IGNORE_FIELD_STATION,
    ignore_interior: float = DEFAULT_IGNORE_INTERIOR,
    size: int = GRID_SIZE,
):
    """The routing MDP: the holder *chooses* which neighbour to try.

    Action ``to_<node>`` attempts a forward to that neighbour; it
    succeeds with ``f · (1 − ignore(neighbour))`` and otherwise the
    message stays for another attempt.  The chain built by
    :func:`build_wsn_chain` is exactly this MDP under the
    uniform-random routing policy.
    """
    from repro.mdp.model import MDP

    ignore = ignore_probabilities(ignore_field_station, ignore_interior, size)
    nodes = grid_nodes(size)
    transitions = {}
    for node in nodes:
        if node == STATION_NODE:
            transitions[node] = {"deliver": {node: 1.0}}
            continue
        actions = {}
        for target in neighbours(node, size):
            success = forward_probability * (1.0 - ignore[target])
            actions[f"to_{target}"] = {target: success, node: 1.0 - success}
        transitions[node] = actions
    return MDP(
        states=nodes,
        transitions=transitions,
        initial_state=SOURCE_NODE,
        labels={STATION_NODE: {"delivered"}},
        state_rewards={n: (0.0 if n == STATION_NODE else 1.0) for n in nodes},
    )


def optimal_routing(
    forward_probability: float = DEFAULT_FORWARD_PROBABILITY,
    ignore_field_station: float = DEFAULT_IGNORE_FIELD_STATION,
    ignore_interior: float = DEFAULT_IGNORE_INTERIOR,
    size: int = GRID_SIZE,
):
    """Best-case routing: Rmin expected attempts and the witness policy.

    Returns ``(expected_attempts, DeterministicPolicy)`` where the
    policy greedily routes toward the station along the min-expected-
    attempts direction — the lower envelope the Model Repair cases are
    measured against (uniform routing sits well above it).
    """
    from repro.checking.mdp import MDPModelChecker
    from repro.mdp.policy import DeterministicPolicy

    mdp = build_wsn_mdp(
        forward_probability, ignore_field_station, ignore_interior, size
    )
    checker = MDPModelChecker(mdp)
    values = checker.expected_rewards(
        attempts_property(1), maximise=False
    )
    mapping = {}
    for state in mdp.states:
        best_action = None
        best_value = float("inf")
        for action in mdp.actions(state):
            total = mdp.reward(state, action) + sum(
                prob * values[target]
                for target, prob in mdp.transitions[state][action].items()
            )
            if total < best_value - 1e-12:
                best_value = total
                best_action = action
        mapping[state] = best_action
    policy = DeterministicPolicy(mapping)
    return values[mdp.initial_state], policy
