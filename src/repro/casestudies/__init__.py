"""The paper's two case studies (Section V).

``wsn``
    Query routing in a 3×3 wireless sensor network grid — Model Repair
    and Data Repair on the ``R{attempts} ≤ X [F delivered]`` property.
``car``
    Obstacle avoidance for an autonomous car (Figure 1) — Reward Repair
    on the collision-avoidance constraint ``Q(S1,1) > Q(S1,0)``.
"""

from repro.casestudies import car, wsn

__all__ = ["car", "wsn"]
