"""Obstacle-avoidance car controller (Section V-B, Figure 1).

The scenario: a car at S0 must overtake a van parked at road position 2
of the right lane (state S2 — the collision state), by changing into the
left lane and merging back behind the van, finishing the manoeuvre at S4.

Geometry (road positions 0–4, two lanes):

====== ========== ====
state  lane       pos
====== ========== ====
S0–S4  right      0–4
S5–S9  left       0–4
S2     collision  2
S4     target sink
S10    off-road / failed manoeuvre (unsafe sink)
====== ========== ====

Actions: ``0`` move forward, ``1`` change lane left, ``2`` change lane
right — lane changes preserve road position (the paper's expert goes
``S1 −1→ S6`` and ``S8 −2→ S3``).  Manoeuvre-breaking moves (changing
left from the left lane, merging right alongside or before the van,
running past S9) lead to the unsafe sink S10.  S2 is *pass-through*:
the dynamics do not know a collision is fatal — that is exactly why the
learned reward can be unsafe and needs repair.  S4 and S10 drain into a
zero-reward ``End`` state so the target reward is collected once.

Features (paper): ``φ1`` = right-lane indicator, ``φ2`` = distance to
the nearest unsafe state (Manhattan over (position, lane), normalised
by 3), ``φ3`` = target-sink indicator.  With the paper's learned weights
``θ = (0.38, 0.34, 0.53)`` the optimal policy drives S1 → S2 (unsafe);
raising the distance weight to ≈ 0.44 — the paper's repaired value —
flips S1 to the safe lane change.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.learning.irl import TabularFeatureMap
from repro.mdp.model import MDP
from repro.mdp.policy import DeterministicPolicy
from repro.mdp.trajectory import Trajectory

RIGHT_LANE = ["S0", "S1", "S2", "S3", "S4"]
LEFT_LANE = ["S5", "S6", "S7", "S8", "S9"]
COLLISION = "S2"
TARGET = "S4"
OFF_ROAD = "S10"
END = "End"

FORWARD, LEFT, RIGHT = 0, 1, 2

#: The reward weights the paper reports MaxEnt IRL learning (Sec. V-B).
PAPER_LEARNED_THETA = np.array([0.38, 0.34, 0.53])
#: The paper's repaired weights (distance weight raised 0.34 → 0.44).
PAPER_REPAIRED_THETA = np.array([0.38, 0.44, 0.53])

#: Discount used throughout the case study.
DISCOUNT = 0.9


def _position(state: str) -> Tuple[int, int]:
    """``(road position, lane)`` with right lane = 0, left lane = 1."""
    if state in RIGHT_LANE:
        return RIGHT_LANE.index(state), 0
    if state in LEFT_LANE:
        return LEFT_LANE.index(state), 1
    raise ValueError(f"state {state!r} has no road position")


def build_car_mdp() -> MDP:
    """The 12-state obstacle-avoidance MDP of Figure 1.

    Labels: ``collision`` on S2, ``unsafe`` on S2 and S10, ``target`` on
    S4, ``left``/``right`` lane markers.
    """
    transitions: Dict[str, Dict[int, Dict[str, float]]] = {}

    def deterministic(target: str) -> Dict[str, float]:
        return {target: 1.0}

    # Right lane: forward advances; left changes lane at the same
    # position (only sensible before/at the van); right runs off-road.
    transitions["S0"] = {
        FORWARD: deterministic("S1"),
        LEFT: deterministic("S5"),
        RIGHT: deterministic(OFF_ROAD),
    }
    transitions["S1"] = {
        FORWARD: deterministic("S2"),
        LEFT: deterministic("S6"),
        RIGHT: deterministic(OFF_ROAD),
    }
    transitions["S2"] = {
        FORWARD: deterministic("S3"),
        LEFT: deterministic(OFF_ROAD),
        RIGHT: deterministic(OFF_ROAD),
    }
    transitions["S3"] = {
        FORWARD: deterministic("S4"),
        LEFT: deterministic(OFF_ROAD),
        RIGHT: deterministic(OFF_ROAD),
    }
    transitions["S4"] = {FORWARD: deterministic(END)}
    # Left lane: forward advances (S9 runs out of road); merging right
    # is only safe behind the van (S8 → S3) or at the end (S9 → S4);
    # alongside or before the van it breaks the manoeuvre.
    transitions["S5"] = {
        FORWARD: deterministic("S6"),
        LEFT: deterministic(OFF_ROAD),
        RIGHT: deterministic(OFF_ROAD),
    }
    transitions["S6"] = {
        FORWARD: deterministic("S7"),
        LEFT: deterministic(OFF_ROAD),
        RIGHT: deterministic(OFF_ROAD),
    }
    transitions["S7"] = {
        FORWARD: deterministic("S8"),
        LEFT: deterministic(OFF_ROAD),
        RIGHT: deterministic(OFF_ROAD),
    }
    transitions["S8"] = {
        FORWARD: deterministic("S9"),
        LEFT: deterministic(OFF_ROAD),
        RIGHT: deterministic("S3"),
    }
    transitions["S9"] = {
        FORWARD: deterministic(OFF_ROAD),
        LEFT: deterministic(OFF_ROAD),
        RIGHT: deterministic("S4"),
    }
    transitions[OFF_ROAD] = {FORWARD: deterministic(END)}
    transitions[END] = {FORWARD: deterministic(END)}

    states = RIGHT_LANE + LEFT_LANE + [OFF_ROAD, END]
    labels = {
        COLLISION: {"collision", "unsafe"},
        OFF_ROAD: {"unsafe", "offroad"},
        TARGET: {"target"},
    }
    for state in RIGHT_LANE:
        labels.setdefault(state, set()).add("rightlane")
    for state in LEFT_LANE:
        labels.setdefault(state, set()).add("leftlane")
    return MDP(
        states=states,
        transitions=transitions,
        initial_state="S0",
        labels=labels,
    )


def distance_to_unsafe(state: str) -> float:
    """Manhattan distance (position, lane) to the nearest unsafe state."""
    if state in (COLLISION, OFF_ROAD, END):
        return 0.0
    position, lane = _position(state)
    van_position, van_lane = _position(COLLISION)
    return abs(position - van_position) + abs(lane - van_lane)


def car_features() -> TabularFeatureMap:
    """The three-feature map ``(φ1, φ2, φ3)`` of Section V-B."""
    table: Dict[str, List[float]] = {}
    mdp = build_car_mdp()
    for state in mdp.states:
        lane_indicator = 1.0 if state in RIGHT_LANE else 0.0
        distance = distance_to_unsafe(state) / 3.0
        target = 1.0 if state == TARGET else 0.0
        table[state] = [lane_indicator, distance, target]
    return TabularFeatureMap(table)


def expert_demonstration() -> Trajectory:
    """The paper's expert manoeuvre: out at S1, back in at S8."""
    return Trajectory(
        [
            ("S0", FORWARD),
            ("S1", LEFT),
            ("S6", FORWARD),
            ("S7", FORWARD),
            ("S8", RIGHT),
            ("S3", FORWARD),
            ("S4", None),
        ]
    )


def states_leading_to_unsafe(mdp: MDP, policy: DeterministicPolicy) -> List[str]:
    """Non-sink states from which the policy reaches an unsafe state.

    The paper calls the learned policy unsafe because "action 0 in state
    S1 would lead the car to state S2" — i.e. safety is judged from
    every state, not just the initial one.
    """
    unsafe = mdp.states_with_atom("unsafe")
    offenders = []
    for state in mdp.states:
        if state in unsafe or state == END:
            continue
        current = state
        for _ in range(len(mdp.states)):
            action = policy[current]
            (current,) = mdp.successors(current, action)
            if current in unsafe:
                offenders.append(state)
                break
            if current == END:
                break
    return offenders


def policy_is_safe(mdp: MDP, policy: DeterministicPolicy) -> bool:
    """True when no safe state's policy trajectory reaches S2 or S10."""
    return not states_leading_to_unsafe(mdp, policy)
