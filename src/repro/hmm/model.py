"""Tabular hidden Markov models.

A discrete HMM over named hidden states and named observation symbols:
initial distribution π, transition matrix A, emission matrix B.  All
inference runs in scaled (normalised-alpha) space, so long sequences do
not underflow, and every routine returns plain dictionaries/arrays keyed
the caller's way.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

State = Hashable
Symbol = Hashable


class HMM:
    """A hidden Markov model ``(π, A, B)`` over named states/symbols.

    Parameters
    ----------
    states:
        Hidden state identifiers.
    symbols:
        Observation symbol identifiers.
    initial:
        ``{state: probability}``; must sum to 1.
    transitions:
        ``{state: {state: probability}}``; rows must sum to 1.
    emissions:
        ``{state: {symbol: probability}}``; rows must sum to 1.

    Examples
    --------
    >>> hmm = HMM(
    ...     states=["rain", "sun"],
    ...     symbols=["umbrella", "none"],
    ...     initial={"rain": 0.5, "sun": 0.5},
    ...     transitions={"rain": {"rain": 0.7, "sun": 0.3},
    ...                  "sun": {"rain": 0.3, "sun": 0.7}},
    ...     emissions={"rain": {"umbrella": 0.9, "none": 0.1},
    ...                "sun": {"umbrella": 0.2, "none": 0.8}},
    ... )
    >>> round(hmm.log_likelihood(["umbrella", "umbrella"]), 3)
    -1.046
    """

    def __init__(
        self,
        states: Sequence[State],
        symbols: Sequence[Symbol],
        initial: Mapping[State, float],
        transitions: Mapping[State, Mapping[State, float]],
        emissions: Mapping[State, Mapping[Symbol, float]],
    ):
        self.states = list(states)
        self.symbols = list(symbols)
        self.state_index = {s: i for i, s in enumerate(self.states)}
        self.symbol_index = {o: i for i, o in enumerate(self.symbols)}
        n, m = len(self.states), len(self.symbols)
        self.pi = np.zeros(n)
        for state, probability in initial.items():
            self.pi[self.state_index[state]] = probability
        self.A = np.zeros((n, n))
        for source, row in transitions.items():
            for target, probability in row.items():
                self.A[self.state_index[source], self.state_index[target]] = (
                    probability
                )
        self.B = np.zeros((n, m))
        for state, row in emissions.items():
            for symbol, probability in row.items():
                self.B[self.state_index[state], self.symbol_index[symbol]] = (
                    probability
                )
        self._validate()

    def _validate(self) -> None:
        if not np.isclose(self.pi.sum(), 1.0):
            raise ValueError(f"initial distribution sums to {self.pi.sum()}")
        for i, state in enumerate(self.states):
            if not np.isclose(self.A[i].sum(), 1.0):
                raise ValueError(
                    f"transition row of {state!r} sums to {self.A[i].sum()}"
                )
            if not np.isclose(self.B[i].sum(), 1.0):
                raise ValueError(
                    f"emission row of {state!r} sums to {self.B[i].sum()}"
                )
        if np.any(self.pi < 0) or np.any(self.A < 0) or np.any(self.B < 0):
            raise ValueError("negative probabilities")

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _encode(self, observations: Sequence[Symbol]) -> np.ndarray:
        return np.array([self.symbol_index[o] for o in observations])

    def forward(
        self, observations: Sequence[Symbol]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Scaled forward pass: returns ``(alpha, scales)``.

        ``alpha[t]`` is the normalised filtering distribution;
        ``Σ_t log scales[t]`` is the log-likelihood.
        """
        obs = self._encode(observations)
        length = len(obs)
        alpha = np.zeros((length, len(self.states)))
        scales = np.zeros(length)
        current = self.pi * self.B[:, obs[0]]
        scales[0] = current.sum()
        if scales[0] == 0:
            raise ValueError("observation sequence has zero probability")
        alpha[0] = current / scales[0]
        for t in range(1, length):
            current = (alpha[t - 1] @ self.A) * self.B[:, obs[t]]
            scales[t] = current.sum()
            if scales[t] == 0:
                raise ValueError("observation sequence has zero probability")
            alpha[t] = current / scales[t]
        return alpha, scales

    def backward(
        self, observations: Sequence[Symbol], scales: np.ndarray
    ) -> np.ndarray:
        """Scaled backward pass matching :meth:`forward`'s scaling."""
        obs = self._encode(observations)
        length = len(obs)
        beta = np.zeros((length, len(self.states)))
        beta[length - 1] = 1.0
        for t in range(length - 2, -1, -1):
            beta[t] = (self.A @ (self.B[:, obs[t + 1]] * beta[t + 1])) / scales[
                t + 1
            ]
        return beta

    def log_likelihood(self, observations: Sequence[Symbol]) -> float:
        """``log P(observations)``."""
        _, scales = self.forward(observations)
        return float(np.log(scales).sum())

    def posteriors(
        self, observations: Sequence[Symbol]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """State and transition posteriors ``(gamma, xi)``.

        ``gamma[t, i] = P(z_t = i | x)``;
        ``xi[t, i, j] = P(z_t = i, z_{t+1} = j | x)``.
        """
        obs = self._encode(observations)
        alpha, scales = self.forward(observations)
        beta = self.backward(observations, scales)
        gamma = alpha * beta
        gamma /= gamma.sum(axis=1, keepdims=True)
        length = len(obs)
        xi = np.zeros((length - 1, len(self.states), len(self.states)))
        for t in range(length - 1):
            numerator = (
                alpha[t][:, None]
                * self.A
                * (self.B[:, obs[t + 1]] * beta[t + 1])[None, :]
            )
            xi[t] = numerator / numerator.sum()
        return gamma, xi

    def viterbi(self, observations: Sequence[Symbol]) -> List[State]:
        """The most likely hidden state path (log-space)."""
        obs = self._encode(observations)
        length = len(obs)
        with np.errstate(divide="ignore"):
            log_pi = np.log(self.pi)
            log_a = np.log(self.A)
            log_b = np.log(self.B)
        delta = log_pi + log_b[:, obs[0]]
        back = np.zeros((length, len(self.states)), dtype=int)
        for t in range(1, length):
            candidates = delta[:, None] + log_a
            back[t] = candidates.argmax(axis=0)
            delta = candidates.max(axis=0) + log_b[:, obs[t]]
        path = [int(delta.argmax())]
        for t in range(length - 1, 0, -1):
            path.append(int(back[t][path[-1]]))
        return [self.states[i] for i in reversed(path)]

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def sample(
        self,
        length: int,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ) -> Tuple[List[State], List[Symbol]]:
        """Sample a hidden path and its observations.

        Sampling is deterministic by default (``seed=0``), per the
        repo-wide seeded-sampler convention (DESIGN §2); pass ``rng`` to
        thread an existing generator through instead.
        """
        if rng is None:
            rng = np.random.default_rng(seed)
        state = int(rng.choice(len(self.states), p=self.pi))
        hidden: List[State] = []
        observed: List[Symbol] = []
        for _ in range(length):
            hidden.append(self.states[state])
            symbol = int(rng.choice(len(self.symbols), p=self.B[state]))
            observed.append(self.symbols[symbol])
            state = int(rng.choice(len(self.states), p=self.A[state]))
        return hidden, observed

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def transition_dict(self) -> Dict[State, Dict[State, float]]:
        """Transitions as nested dictionaries (for chain conversion)."""
        return {
            source: {
                target: float(self.A[i, j])
                for j, target in enumerate(self.states)
                if self.A[i, j] > 0
            }
            for i, source in enumerate(self.states)
        }

    def __repr__(self) -> str:
        return f"HMM(|S|={len(self.states)}, |O|={len(self.symbols)})"
