"""Bridging HMMs to the core repairs.

A learned HMM's hidden dynamics are a Markov chain; when a PCTL trust
property concerns the hidden process (e.g. "the machine's hidden fault
state is eventually cleared with high probability"), the chain can be
Model-Repaired like any other and the repaired transitions written back
into the HMM.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Optional

from repro.core.model_repair import ModelRepair, ModelRepairResult
from repro.hmm.model import HMM
from repro.logic.pctl import StateFormula
from repro.mdp.model import DTMC

State = Hashable


def hidden_chain(
    hmm: HMM,
    labels: Optional[Mapping[State, Iterable[str]]] = None,
    initial_state: Optional[State] = None,
    state_rewards: Optional[Mapping[State, float]] = None,
) -> DTMC:
    """The HMM's hidden-state Markov chain.

    ``initial_state`` defaults to the most likely initial hidden state
    (PCTL needs a single initial state; for a full distribution check
    each support state separately).
    """
    if initial_state is None:
        initial_state = hmm.states[int(hmm.pi.argmax())]
    return DTMC(
        states=hmm.states,
        transitions=hmm.transition_dict(),
        initial_state=initial_state,
        labels=labels,
        state_rewards=state_rewards,
    )


def repair_hidden_chain(
    hmm: HMM,
    formula: StateFormula,
    labels: Mapping[State, Iterable[str]],
    initial_state: Optional[State] = None,
    state_rewards: Optional[Mapping[State, float]] = None,
    max_perturbation: Optional[float] = None,
) -> tuple:
    """Model-Repair the hidden chain and write the result back.

    Returns ``(repaired_hmm, ModelRepairResult)``; the HMM's emissions
    and initial distribution are untouched (only ``A`` changes, mirroring
    ``Feas_MP``'s transition-only repairs).
    """
    chain = hidden_chain(
        hmm,
        labels=labels,
        initial_state=initial_state,
        state_rewards=state_rewards,
    )
    result: ModelRepairResult = ModelRepair.for_chain(
        chain, formula, max_perturbation=max_perturbation
    ).repair()
    if not result.feasible or result.repaired_model is None:
        return hmm, result
    repaired = result.repaired_model
    updated = HMM(
        states=hmm.states,
        symbols=hmm.symbols,
        initial={s: float(hmm.pi[i]) for i, s in enumerate(hmm.states)},
        transitions={
            s: dict(repaired.transitions[s]) for s in hmm.states
        },
        emissions={
            s: {
                o: float(hmm.B[i, j])
                for j, o in enumerate(hmm.symbols)
            }
            for i, s in enumerate(hmm.states)
        },
    )
    return updated, result
