"""Hidden Markov models with constraint-aware EM.

The paper's conclusion sketches the extension this package implements:
"For other probabilistic models that have hidden states (e.g., Hidden
Markov Models ...) we can incorporate the temporal constraints into the
E-step of an EM algorithm for parameter learning."

``model``
    Tabular HMMs: log-space forward/backward, posteriors, Viterbi,
    sampling, likelihood.
``learning``
    Baum-Welch EM, and *constrained* Baum-Welch where stepwise rules
    (forbidden transitions / forbidden state-observation pairs) reweight
    the E-step posterior exactly as Proposition 4 reweights trajectory
    distributions — the factorised special case that keeps
    forward-backward exact.
``repair``
    Bridges to the core repairs: the hidden chain of a learned HMM can
    be Model-Repaired against a PCTL property like any other chain.
"""

from repro.hmm.model import HMM
from repro.hmm.learning import (
    StepwiseConstraint,
    baum_welch,
    constrained_baum_welch,
    forbid_state_given_observation,
    forbid_transition,
)
from repro.hmm.repair import hidden_chain, repair_hidden_chain

__all__ = [
    "HMM",
    "baum_welch",
    "constrained_baum_welch",
    "StepwiseConstraint",
    "forbid_transition",
    "forbid_state_given_observation",
    "hidden_chain",
    "repair_hidden_chain",
]
