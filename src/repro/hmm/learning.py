"""Baum-Welch EM and its constraint-aware variant.

``constrained_baum_welch`` realises the paper's conclusion — temporal
constraints folded into the E-step.  For *stepwise* rules (forbidden
transitions, forbidden state-observation pairs) the Proposition 4
reweighting

    q(z | x) ∝ p(z | x) · exp( − Σ_t λ · [violation at step t] )

factorises over the chain, so it is implemented exactly by damping the
corresponding entries of the transition/emission potentials inside the
E-step's forward-backward — no sampling needed.  The M-step then
re-estimates (π, A, B) from the constrained posteriors, pulling the
learned model toward the constraint surface.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.hmm.model import HMM

State = Hashable
Symbol = Hashable

_SMOOTHING = 1e-9


class StepwiseConstraint(NamedTuple):
    """A factorisable rule for constrained EM.

    ``transition_penalty(source, target) -> float`` and
    ``emission_penalty(state, symbol) -> float`` return the λ·violations
    exponent for one step (0 when the step is fine).  Use the
    constructors :func:`forbid_transition` /
    :func:`forbid_state_given_observation`.
    """

    transition_penalty: Callable[[State, State], float]
    emission_penalty: Callable[[State, Symbol], float]
    name: str = "stepwise-constraint"


def forbid_transition(
    source: State, target: State, weight: float = 10.0
) -> StepwiseConstraint:
    """Penalise hidden paths using the transition ``source -> target``."""
    return StepwiseConstraint(
        transition_penalty=lambda s, t: weight if (s, t) == (source, target) else 0.0,
        emission_penalty=lambda _s, _o: 0.0,
        name=f"forbid({source}->{target})",
    )


def forbid_state_given_observation(
    state: State, symbol: Symbol, weight: float = 10.0
) -> StepwiseConstraint:
    """Penalise explaining observation ``symbol`` with hidden ``state``."""
    return StepwiseConstraint(
        transition_penalty=lambda _s, _t: 0.0,
        emission_penalty=lambda s, o: weight if (s, o) == (state, symbol) else 0.0,
        name=f"forbid({state}|{symbol})",
    )


def _random_hmm(
    states: Sequence[State],
    symbols: Sequence[Symbol],
    rng: np.random.Generator,
) -> HMM:
    n, m = len(states), len(symbols)

    def dirichlet_rows(rows: int, cols: int) -> np.ndarray:
        return rng.dirichlet(np.ones(cols), size=rows)

    pi = rng.dirichlet(np.ones(n))
    a = dirichlet_rows(n, n)
    b = dirichlet_rows(n, m)
    return HMM(
        states=states,
        symbols=symbols,
        initial={s: pi[i] for i, s in enumerate(states)},
        transitions={
            s: {t: a[i, j] for j, t in enumerate(states)}
            for i, s in enumerate(states)
        },
        emissions={
            s: {o: b[i, j] for j, o in enumerate(symbols)}
            for i, s in enumerate(states)
        },
    )


def _penalty_matrices(
    hmm: HMM, constraints: Sequence[StepwiseConstraint]
) -> Tuple[np.ndarray, np.ndarray]:
    """Damping factors exp(-Σ penalties) for A and B."""
    n, m = len(hmm.states), len(hmm.symbols)
    a_damp = np.ones((n, n))
    b_damp = np.ones((n, m))
    for constraint in constraints:
        for i, source in enumerate(hmm.states):
            for j, target in enumerate(hmm.states):
                penalty = constraint.transition_penalty(source, target)
                if penalty:
                    a_damp[i, j] *= np.exp(-penalty)
            for k, symbol in enumerate(hmm.symbols):
                penalty = constraint.emission_penalty(source, symbol)
                if penalty:
                    b_damp[i, k] *= np.exp(-penalty)
    return a_damp, b_damp


def _e_step(
    hmm: HMM,
    sequences: Sequence[Sequence[Symbol]],
    a_damp: Optional[np.ndarray],
    b_damp: Optional[np.ndarray],
):
    """Accumulate (constrained) expected counts over all sequences."""
    if a_damp is not None or b_damp is not None:
        # Run forward-backward in the damped (unnormalised) potential
        # model; the per-step rescaling keeps it numerically stable and
        # the posteriors are exactly the Proposition 4 projection.
        tilted = HMM.__new__(HMM)
        tilted.states = hmm.states
        tilted.symbols = hmm.symbols
        tilted.state_index = hmm.state_index
        tilted.symbol_index = hmm.symbol_index
        tilted.pi = hmm.pi
        tilted.A = hmm.A * (a_damp if a_damp is not None else 1.0)
        tilted.B = hmm.B * (b_damp if b_damp is not None else 1.0)
        model = tilted
    else:
        model = hmm
    n, m = len(hmm.states), len(hmm.symbols)
    pi_counts = np.zeros(n)
    a_counts = np.zeros((n, n))
    b_counts = np.zeros((n, m))
    total_log_likelihood = 0.0
    for sequence in sequences:
        gamma, xi = model.posteriors(sequence)
        _, scales = model.forward(sequence)
        total_log_likelihood += float(np.log(scales).sum())
        pi_counts += gamma[0]
        a_counts += xi.sum(axis=0)
        obs = [hmm.symbol_index[o] for o in sequence]
        for t, symbol in enumerate(obs):
            b_counts[:, symbol] += gamma[t]
    return pi_counts, a_counts, b_counts, total_log_likelihood


def _m_step(
    hmm: HMM,
    pi_counts: np.ndarray,
    a_counts: np.ndarray,
    b_counts: np.ndarray,
) -> HMM:
    pi = pi_counts + _SMOOTHING
    pi /= pi.sum()
    a = a_counts + _SMOOTHING
    a /= a.sum(axis=1, keepdims=True)
    b = b_counts + _SMOOTHING
    b /= b.sum(axis=1, keepdims=True)
    return HMM(
        states=hmm.states,
        symbols=hmm.symbols,
        initial={s: pi[i] for i, s in enumerate(hmm.states)},
        transitions={
            s: {t: a[i, j] for j, t in enumerate(hmm.states)}
            for i, s in enumerate(hmm.states)
        },
        emissions={
            s: {o: b[i, j] for j, o in enumerate(hmm.symbols)}
            for i, s in enumerate(hmm.states)
        },
    )


def baum_welch(
    sequences: Sequence[Sequence[Symbol]],
    states: Sequence[State],
    symbols: Optional[Sequence[Symbol]] = None,
    iterations: int = 50,
    tolerance: float = 1e-6,
    seed: int = 0,
    initial_model: Optional[HMM] = None,
) -> Tuple[HMM, List[float]]:
    """Plain EM; returns ``(model, log-likelihood trace)``."""
    return constrained_baum_welch(
        sequences,
        states,
        constraints=(),
        symbols=symbols,
        iterations=iterations,
        tolerance=tolerance,
        seed=seed,
        initial_model=initial_model,
    )


def constrained_baum_welch(
    sequences: Sequence[Sequence[Symbol]],
    states: Sequence[State],
    constraints: Sequence[StepwiseConstraint],
    symbols: Optional[Sequence[Symbol]] = None,
    iterations: int = 50,
    tolerance: float = 1e-6,
    seed: int = 0,
    initial_model: Optional[HMM] = None,
) -> Tuple[HMM, List[float]]:
    """EM with the constraint-projected E-step (paper's HMM extension).

    Returns ``(model, log-likelihood trace)``; the trace records the
    *unconstrained* data log-likelihood of each iterate so callers can
    see the likelihood/constraint trade-off.
    """
    if symbols is None:
        seen = []
        for sequence in sequences:
            for symbol in sequence:
                if symbol not in seen:
                    seen.append(symbol)
        symbols = seen
    rng = np.random.default_rng(seed)
    model = initial_model or _random_hmm(states, symbols, rng)
    a_damp = b_damp = None
    if constraints:
        a_damp, b_damp = _penalty_matrices(model, constraints)
    trace: List[float] = []
    previous = -np.inf
    for _ in range(iterations):
        pi_counts, a_counts, b_counts, _ = _e_step(
            model, sequences, a_damp, b_damp
        )
        model = _m_step(model, pi_counts, a_counts, b_counts)
        likelihood = sum(model.log_likelihood(seq) for seq in sequences)
        trace.append(likelihood)
        if abs(likelihood - previous) < tolerance:
            break
        previous = likelihood
    return model, trace
