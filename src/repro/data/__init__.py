"""Trace datasets for learning and Data Repair.

A :class:`TraceDataset` partitions observed trajectories into named
*groups* (the unit of repair: Data Repair assigns one drop probability
per group, matching the paper's "2 trace types" in Section V-A.2).
"""

from repro.data.dataset import TraceDataset, TraceGroup

__all__ = ["TraceDataset", "TraceGroup"]
