"""Grouped trace datasets.

Data Repair (Definition 3) perturbs a dataset by dropping points.  The
paper's WSN case study groups traces by type (successful forwards,
failed forwards, ignore traces at particular nodes) and assigns one drop
probability per type; :class:`TraceDataset` is that structure.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence

from repro.learning.mle import count_transitions
from repro.mdp.trajectory import Trajectory

State = Hashable


class TraceGroup:
    """A named group of traces sharing one repair decision.

    Parameters
    ----------
    name:
        Group identifier.
    traces:
        The trajectories in the group.
    droppable:
        Whether Data Repair may drop (part of) this group.  The paper's
        "we want to keep certain data points because we know they are
        reliable" corresponds to ``droppable=False``.
    """

    def __init__(
        self, name: str, traces: Sequence[Trajectory], droppable: bool = True
    ):
        if not name:
            raise ValueError("trace group needs a name")
        self.name = name
        self.traces: List[Trajectory] = list(traces)
        self.droppable = bool(droppable)

    def __len__(self) -> int:
        return len(self.traces)

    def transition_counts(self) -> Dict[State, Dict[State, int]]:
        """Transition counts contributed by this group."""
        return count_transitions(self.traces)

    def __repr__(self) -> str:
        return (
            f"TraceGroup({self.name!r}, n={len(self.traces)}, "
            f"droppable={self.droppable})"
        )


class TraceDataset:
    """A dataset of traces partitioned into groups.

    Examples
    --------
    >>> from repro.mdp import Trajectory
    >>> good = TraceGroup("good", [Trajectory.from_states(["a", "b"])])
    >>> dataset = TraceDataset([good])
    >>> dataset.total_traces()
    1
    """

    def __init__(self, groups: Iterable[TraceGroup]):
        self.groups: Dict[str, TraceGroup] = {}
        for group in groups:
            if group.name in self.groups:
                raise ValueError(f"duplicate group {group.name!r}")
            self.groups[group.name] = group

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def group(self, name: str) -> TraceGroup:
        """Look up one group by name."""
        return self.groups[name]

    def group_names(self) -> List[str]:
        """All group names in insertion order."""
        return list(self.groups)

    def droppable_groups(self) -> List[str]:
        """Names of groups Data Repair may touch."""
        return [name for name, group in self.groups.items() if group.droppable]

    def all_traces(self) -> List[Trajectory]:
        """Every trace in every group."""
        traces: List[Trajectory] = []
        for group in self.groups.values():
            traces.extend(group.traces)
        return traces

    def total_traces(self) -> int:
        """Total number of traces."""
        return sum(len(group) for group in self.groups.values())

    def grouped_counts(self) -> Dict[str, Dict[State, Dict[State, int]]]:
        """Per-group transition counts (input to the parametric MLE)."""
        return {
            name: group.transition_counts() for name, group in self.groups.items()
        }

    def states(self) -> List[State]:
        """All states occurring in any trace, sorted by repr."""
        seen = set()
        for trace in self.all_traces():
            seen.update(trace.states())
        return sorted(seen, key=str)

    # ------------------------------------------------------------------
    # Perturbation
    # ------------------------------------------------------------------
    def expected_dropped(self, drop_probabilities: Mapping[str, float]) -> float:
        """Expected number of dropped traces under per-group drop probs."""
        return sum(
            drop_probabilities.get(name, 0.0) * len(group)
            for name, group in self.groups.items()
        )

    def subsampled(
        self,
        drop_probabilities: Mapping[str, float],
        seed: Optional[int] = None,
    ) -> "TraceDataset":
        """Materialise a repaired dataset by Bernoulli-dropping traces."""
        import numpy as np

        rng = np.random.default_rng(seed)
        repaired = []
        for name, group in self.groups.items():
            drop = drop_probabilities.get(name, 0.0)
            kept = [t for t in group.traces if rng.random() >= drop]
            repaired.append(TraceGroup(name, kept, droppable=group.droppable))
        return TraceDataset(repaired)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}:{len(group)}" for name, group in self.groups.items()
        )
        return f"TraceDataset({inner})"
