"""Command-line entry points.

Subcommands::

    repro check <model.json> "<pctl formula>" [--engine E] [--seed N]
    repro model-repair <model.json> "<pctl formula>" [--max-perturbation D]
    repro robust-repair <model.json> "<pctl formula>" [--epsilon E]
    repro cegis-repair <model.json> "<pctl formula>" [--max-iterations N]
    repro rate-repair <ctmc.json> --targets A,B --bound T [--max-speedup S]
    repro counterexample <model.json> "<pctl formula>" [--max-paths N]
    repro export-prism <model.json> [-o out.pm]
    repro corpus list [--json]
    repro corpus generate --family F [--size N] [--seed S] [--json]
    repro batch <jobs.json> [--workers N] [--store DIR] [--telemetry LOG]
    repro serve [--port P] [--store DIR]
    repro wsn-demo [--bound X]
    repro car-demo

``check`` and ``model-repair`` operate on JSON models written by
:func:`repro.io.save_model`; the demo commands run the paper's case
studies end-to-end and print a short report.  ``batch`` drives a jobs
file (see :mod:`repro.service.jobs`) through the fault-tolerant
process-pool runner, and ``serve`` exposes the same runtime over a
localhost JSON API.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.core import check_model
    from repro.io import load_model
    from repro.logic import parse_pctl

    np.random.seed(args.seed)
    model = load_model(args.model)
    formula = parse_pctl(args.formula)
    result = check_model(model, formula, engine=args.engine)
    verdict = "satisfied" if result.holds else "violated"
    print(f"{args.formula}: {verdict}")
    if result.value is not None:
        print(f"value at initial state: {result.value:.6g}")
    return 0 if result.holds else 1


def _cmd_model_repair(args: argparse.Namespace) -> int:
    from repro.core import ModelRepair
    from repro.io import load_model, save_model
    from repro.logic import parse_pctl
    from repro.mdp import DTMC

    model = load_model(args.model)
    if not isinstance(model, DTMC):
        print("model-repair operates on DTMC models", file=sys.stderr)
        return 2
    np.random.seed(args.seed)
    repair = ModelRepair.for_chain(
        model,
        parse_pctl(args.formula),
        max_perturbation=args.max_perturbation,
        engine=args.engine,
    )
    result = repair.repair(seed=args.seed)
    if args.json:
        import json

        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0 if result.feasible else 1
    print(f"status: {result.status}")
    if result.status == "repaired":
        print(f"cost g(Z) = {result.objective_value:.6g}")
        print(f"epsilon (Prop. 1 bound) = {result.epsilon:.6g}")
        nonzero = {
            k: round(v, 6) for k, v in result.assignment.items() if abs(v) > 1e-9
        }
        print(f"perturbation: {nonzero}")
        if args.output:
            save_model(result.repaired_model, args.output)
            print(f"repaired model written to {args.output}")
    return 0 if result.feasible else 1


def _cmd_robust_repair(args: argparse.Namespace) -> int:
    from repro.core import repair_robust
    from repro.io import load_model, save_model
    from repro.mdp import DTMC

    model = load_model(args.model)
    if not isinstance(model, DTMC):
        print("robust-repair operates on DTMC models", file=sys.stderr)
        return 2
    np.random.seed(args.seed)
    result = repair_robust(
        model,
        args.formula,
        epsilon=args.epsilon,
        max_perturbation=args.max_perturbation,
        engine=args.engine,
        seed=args.seed,
    )
    if args.json:
        import json

        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0 if result.feasible and result.robust else 1
    print(f"status: {result.status}")
    print(f"robust: {result.robust} (epsilon = {result.epsilon:.6g})")
    certificate = result.certificate
    if certificate is not None:
        if certificate.margin is not None:
            print(f"worst-case margin: {certificate.margin:.6g}")
        if certificate.fallback_reason:
            print(
                "certificate degraded to the nominal check "
                f"({certificate.fallback_reason})"
            )
    if result.status == "repaired":
        print(f"cost g(Z) = {result.objective_value:.6g}")
        nonzero = {
            k: round(v, 6) for k, v in result.assignment.items() if abs(v) > 1e-9
        }
        print(f"perturbation: {nonzero}")
        print(f"outer tightening rounds: {result.outer_iterations}")
        if args.output and result.repaired_model is not None:
            save_model(result.repaired_model, args.output)
            print(f"repaired model written to {args.output}")
    print(f"message: {result.message}")
    return 0 if result.feasible and result.robust else 1


def _cmd_cegis_repair(args: argparse.Namespace) -> int:
    from repro.core import repair_cegis
    from repro.io import load_model, save_model
    from repro.mdp import DTMC

    model = load_model(args.model)
    if not isinstance(model, DTMC):
        print("cegis-repair operates on DTMC models", file=sys.stderr)
        return 2
    np.random.seed(args.seed)
    result = repair_cegis(
        model,
        args.formula,
        max_perturbation=args.max_perturbation,
        engine=args.engine,
        max_iterations=args.max_iterations,
        seed=args.seed,
    )
    if args.json:
        import json

        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0 if result.feasible else 1
    print(f"status: {result.status}")
    print(
        f"iterations: {result.iterations} "
        f"(constraints={result.constraints_added}, "
        f"fallbacks={result.fallbacks})"
    )
    if result.status == "repaired":
        print(f"cost g(Z) = {result.objective_value:.6g}")
        print(f"verified: {result.verified}")
        nonzero = {
            k: round(v, 6) for k, v in result.assignment.items() if abs(v) > 1e-9
        }
        print(f"perturbation: {nonzero}")
        if args.output and result.repaired_model is not None:
            save_model(result.repaired_model, args.output)
            print(f"repaired model written to {args.output}")
    print(f"message: {result.message}")
    return 0 if result.feasible else 1


def _cmd_rate_repair(args: argparse.Namespace) -> int:
    from repro.core import repair_rates
    from repro.ctmc import CTMC
    from repro.io import load_model, save_model

    model = load_model(args.model)
    if not isinstance(model, CTMC):
        print("rate-repair operates on CTMC models", file=sys.stderr)
        return 2
    np.random.seed(args.seed)
    targets = [t for t in args.targets.split(",") if t]
    if not targets:
        print("--targets needs at least one state", file=sys.stderr)
        return 2
    result = repair_rates(
        model,
        targets,
        args.bound,
        max_speedup=args.max_speedup,
        seed=args.seed,
    )
    if args.json:
        import json

        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0 if result.feasible else 1
    print(f"status: {result.status}")
    print(f"expected time = {result.expected_time:.6g} (bound {args.bound:.6g})")
    if result.status == "repaired":
        nonzero = {
            k: round(v, 6)
            for k, v in result.scales.items()
            if abs(v - 1.0) > 1e-9
        }
        print(f"rate scales: {nonzero}")
        if args.output:
            save_model(result.repaired_ctmc, args.output)
            print(f"repaired CTMC written to {args.output}")
    return 0 if result.feasible else 1


def _cmd_counterexample(args: argparse.Namespace) -> int:
    from repro.checking import DTMCModelChecker, counterexample
    from repro.io import load_model
    from repro.logic import parse_pctl
    from repro.logic.pctl import ProbabilisticOperator
    from repro.mdp import DTMC

    model = load_model(args.model)
    if not isinstance(model, DTMC):
        print("counterexample operates on DTMC models", file=sys.stderr)
        return 2
    np.random.seed(args.seed)
    formula = parse_pctl(args.formula)
    if not isinstance(formula, ProbabilisticOperator):
        print("counterexample needs a P<=b / P<b formula", file=sys.stderr)
        return 2
    check = DTMCModelChecker(model, engine=args.engine).check(formula)
    if check.holds:
        if args.json:
            import json

            print(json.dumps({"holds": True, "counterexample": None}))
        else:
            print("property holds; no counterexample exists")
        return 0
    evidence = counterexample(model, formula, max_paths=args.max_paths)
    if args.json:
        import json

        payload = {
            "holds": False,
            "value": check.value,
            "counterexample": evidence.to_dict(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1
    print(
        f"violated: probability {check.value:.6g} exceeds bound "
        f"{formula.bound:.6g}"
    )
    print(
        f"evidence ({len(evidence)} paths, mass "
        f"{evidence.total_probability:.6g}, complete={evidence.complete}):"
    )
    for path, probability in zip(evidence.paths, evidence.probabilities):
        rendered = " -> ".join(str(state) for state in path)
        print(f"  {probability:.6g}  {rendered}")
    return 1


def _cmd_export_prism(args: argparse.Namespace) -> int:
    from repro.io import dtmc_to_prism, load_model, mdp_to_prism
    from repro.mdp import DTMC

    model = load_model(args.model)
    text = dtmc_to_prism(model) if isinstance(model, DTMC) else mdp_to_prism(model)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    import json

    from repro.corpus import FAMILIES, get_family

    if args.corpus_command == "list":
        entries = [FAMILIES[name].describe() for name in sorted(FAMILIES)]
        if args.json:
            print(json.dumps(entries, indent=2, sort_keys=True))
        else:
            for entry in entries:
                sizes = ", ".join(str(s) for s in entry["sizes"])
                print(
                    f"{entry['name']:<8s} {entry['kind']:<11s} "
                    f"sizes [{sizes}]  {entry['description']}"
                )
        return 0
    try:
        family = get_family(args.family)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    size = args.size if args.size is not None else family.sizes[0]
    try:
        source = family.prism_source(size, seed=args.seed)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.json:
        model = family.model(size, seed=args.seed)
        payload = {
            "family": family.name,
            "size": int(size),
            "seed": int(args.seed),
            "states": model.num_states,
            "variables": family.variable_count(size, seed=args.seed),
            "prism": source,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(source)
        print(f"written to {args.output}")
    else:
        print(source)
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    import json

    from repro.service import BatchRunner, Telemetry, load_jobs

    jobs = load_jobs(args.jobs)
    telemetry = Telemetry(path=args.telemetry)
    runner = BatchRunner(
        max_workers=args.workers,
        store_dir=args.store,
        telemetry=telemetry,
        job_timeout=args.timeout,
        max_retries=args.max_retries,
        seed=args.seed,
    )
    report = runner.run(jobs)
    for outcome in report:
        mark = {"succeeded": "ok", "degraded": "ok~"}.get(outcome.status, "FAIL")
        detail = f" [{outcome.error}]" if outcome.error else ""
        print(
            f"{mark:<5} {outcome.job_id:<24} {outcome.status:<20} "
            f"attempts={outcome.attempts} "
            f"{'cached ' if outcome.cached else ''}{detail}"
        )
    statuses = report.by_status()
    print(
        f"batch: {len(report)} jobs in {report.wall_clock:.2f}s "
        f"({', '.join(f'{k}={v}' for k, v in sorted(statuses.items()))})"
    )
    print(telemetry.summary())
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True, default=str)
        print(f"report written to {args.output}")
    return 0 if report.all_ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.service.server import build_server
    from repro.service.telemetry import Telemetry

    server = build_server(
        host=args.host,
        port=args.port,
        store_dir=args.store,
        telemetry=Telemetry(path=args.telemetry),
        queue_size=args.queue_size,
        queue_workers=args.queue_workers,
        rate_limit=args.rate_limit,
        drain_timeout=args.drain_timeout,
    )

    def on_sigterm(_signum, _frame):
        # shutdown() must not run on the serve_forever thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, on_sigterm)
    except ValueError:
        pass  # not on the main thread
    host, port = server.server_address[:2]
    print(f"repro service listening on http://{host}:{port}")
    print(
        "endpoints: GET /health, GET /counters, GET /queue, "
        "GET /jobs/<ticket>, POST /batch (sync), POST /jobs (async)"
    )
    print(
        f"queue: capacity={args.queue_size} workers={args.queue_workers} "
        f"rate_limit={args.rate_limit or 'off'}"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        print("draining queue...")
        server.server_close()
    return 0


def _cmd_wsn_demo(args: argparse.Namespace) -> int:
    from repro.casestudies import wsn

    print(f"WSN query routing: R{{attempts}} <= {args.bound} [ F delivered ]")
    result = wsn.model_repair_problem(args.bound).repair()
    print(f"status: {result.status}")
    if result.status == "repaired":
        print(
            "corrections: "
            + ", ".join(f"{k}={v:.4f}" for k, v in result.assignment.items())
        )
        print(f"epsilon = {result.epsilon:.4f}, verified = {result.verified}")
    return 0


def _cmd_car_demo(_args: argparse.Namespace) -> int:
    from repro.casestudies import car
    from repro.core import QValueConstraint, RewardRepair

    mdp = car.build_car_mdp()
    repair = RewardRepair(mdp, car.car_features(), discount=car.DISCOUNT)
    learned_policy = repair.optimal_policy(car.PAPER_LEARNED_THETA)
    print(f"learned theta  : {np.round(car.PAPER_LEARNED_THETA, 3)}")
    print(f"action at S1   : {learned_policy['S1']} (0 = drive into the van)")
    print(
        "unsafe from    : "
        f"{car.states_leading_to_unsafe(mdp, learned_policy)}"
    )
    result = repair.q_constrained(
        car.PAPER_LEARNED_THETA,
        [QValueConstraint("S1", car.LEFT, car.FORWARD)],
    )
    print(f"repaired theta : {np.round(result.theta_after, 3)}")
    print(f"action at S1   : {result.policy_after['S1']} (1 = change lane)")
    print(f"policy safe    : {car.policy_is_safe(mdp, result.policy_after)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Trusted Machine Learning for MDPs: "
        "model, data and reward repair under PCTL constraints.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared checking knobs: engine selection and reproducibility seed.
    engine_opts = argparse.ArgumentParser(add_help=False)
    engine_opts.add_argument(
        "--engine",
        choices=("sparse", "dense"),
        default="sparse",
        help="linear-algebra backend for model checking (default: sparse)",
    )
    engine_opts.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for randomized components (NLP multi-starts, sampling)",
    )

    check = sub.add_parser(
        "check", parents=[engine_opts], help="model-check a PCTL formula"
    )
    check.add_argument("model", help="JSON model file (see repro.io.save_model)")
    check.add_argument("formula", help='PCTL text, e.g. \'P>=0.9 [ F "goal" ]\'')
    check.set_defaults(func=_cmd_check)

    repair = sub.add_parser(
        "model-repair",
        parents=[engine_opts],
        help="repair a chain toward a formula",
    )
    repair.add_argument("model")
    repair.add_argument("formula")
    repair.add_argument("--max-perturbation", type=float, default=None)
    repair.add_argument("-o", "--output", default=None)
    repair.add_argument(
        "--json",
        action="store_true",
        help="print the canonical RepairResult.to_dict() payload",
    )
    repair.set_defaults(func=_cmd_model_repair)

    robust = sub.add_parser(
        "robust-repair",
        parents=[engine_opts],
        help="repair a chain with an interval-robust certificate",
    )
    robust.add_argument("model")
    robust.add_argument("formula")
    robust.add_argument(
        "--epsilon",
        type=float,
        default=0.01,
        help="half-width of the interval ball the certificate quantifies "
        "over (default: 0.01)",
    )
    robust.add_argument("--max-perturbation", type=float, default=None)
    robust.add_argument("-o", "--output", default=None)
    robust.add_argument(
        "--json",
        action="store_true",
        help="print the canonical RepairResult.to_dict() payload",
    )
    robust.set_defaults(func=_cmd_robust_repair)

    cegis = sub.add_parser(
        "cegis-repair",
        parents=[engine_opts],
        help="counterexample-guided repair (localized constraints)",
    )
    cegis.add_argument("model")
    cegis.add_argument("formula")
    cegis.add_argument(
        "--max-iterations",
        type=int,
        default=10,
        help="bound on check → localize → solve rounds (default: 10)",
    )
    cegis.add_argument("--max-perturbation", type=float, default=None)
    cegis.add_argument("-o", "--output", default=None)
    cegis.add_argument(
        "--json",
        action="store_true",
        help="print the canonical RepairResult.to_dict() payload",
    )
    cegis.set_defaults(func=_cmd_cegis_repair)

    rate = sub.add_parser(
        "rate-repair",
        parents=[engine_opts],
        help="scale CTMC rates to meet an expected-time bound",
    )
    rate.add_argument("model", help="JSON CTMC file (see repro.io.save_model)")
    rate.add_argument(
        "--targets",
        required=True,
        help="comma-separated target states for the hitting time",
    )
    rate.add_argument(
        "--bound",
        type=float,
        required=True,
        help="upper bound on the expected time to the targets",
    )
    rate.add_argument("--max-speedup", type=float, default=2.0)
    rate.add_argument("-o", "--output", default=None)
    rate.add_argument(
        "--json",
        action="store_true",
        help="print the canonical RepairResult.to_dict() payload",
    )
    rate.set_defaults(func=_cmd_rate_repair)

    cx = sub.add_parser(
        "counterexample",
        parents=[engine_opts],
        help="evidence paths for a violated P<=b reachability bound",
    )
    cx.add_argument("model")
    cx.add_argument("formula")
    cx.add_argument("--max-paths", type=int, default=25)
    cx.add_argument(
        "--json",
        action="store_true",
        help="print the verdict and Counterexample.to_dict() payload",
    )
    cx.set_defaults(func=_cmd_counterexample)

    batch = sub.add_parser(
        "batch",
        help="run a JSON jobs file through the fault-tolerant batch runner",
    )
    batch.add_argument("jobs", help="jobs file (see repro.service.jobs)")
    batch.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (0 = inline; default: CPU count)",
    )
    batch.add_argument(
        "--store", default=None, help="persistent result-store directory"
    )
    batch.add_argument(
        "--telemetry", default=None, help="JSON-lines telemetry log path"
    )
    batch.add_argument(
        "--timeout", type=float, default=None, help="per-job timeout (seconds)"
    )
    batch.add_argument("--max-retries", type=int, default=2)
    batch.add_argument("--seed", type=int, default=0)
    batch.add_argument(
        "-o", "--output", default=None, help="write the full JSON report here"
    )
    batch.set_defaults(func=_cmd_batch)

    serve = sub.add_parser(
        "serve", help="serve the batch runtime over a localhost JSON API"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument("--store", default=None)
    serve.add_argument("--telemetry", default=None)
    serve.add_argument(
        "--queue-size",
        type=int,
        default=64,
        help="bounded async queue capacity; a full queue answers 503 "
        "with Retry-After (default 64)",
    )
    serve.add_argument(
        "--queue-workers",
        type=int,
        default=2,
        help="worker threads draining the async queue (default 2)",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        help="per-client POST /jobs submissions per second "
        "(token bucket; default unlimited)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds to let queued/in-flight jobs finish on shutdown "
        "(default 30)",
    )
    serve.set_defaults(func=_cmd_serve)

    export = sub.add_parser("export-prism", help="export a model to PRISM syntax")
    export.add_argument("model")
    export.add_argument("-o", "--output", default=None)
    export.set_defaults(func=_cmd_export_prism)

    corpus = sub.add_parser(
        "corpus", help="the PRISM scenario corpus (list / generate)"
    )
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)
    corpus_list = corpus_sub.add_parser(
        "list", help="list the benchmark families and their sizes"
    )
    corpus_list.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    corpus_list.set_defaults(func=_cmd_corpus)
    corpus_generate = corpus_sub.add_parser(
        "generate", help="emit one family member as PRISM source"
    )
    corpus_generate.add_argument(
        "--family", required=True, help="family name (see 'corpus list')"
    )
    corpus_generate.add_argument(
        "--size", type=int, default=None,
        help="family size parameter (default: the family's smallest)",
    )
    corpus_generate.add_argument(
        "--seed", type=int, default=0,
        help="generator seed (only the seeded families vary with it)",
    )
    corpus_generate.add_argument("-o", "--output", default=None)
    corpus_generate.add_argument(
        "--json", action="store_true",
        help="wrap the PRISM source in a JSON summary payload",
    )
    corpus_generate.set_defaults(func=_cmd_corpus)

    wsn_demo = sub.add_parser("wsn-demo", help="run the WSN model-repair case study")
    wsn_demo.add_argument("--bound", type=float, default=40.0)
    wsn_demo.set_defaults(func=_cmd_wsn_demo)

    car_demo = sub.add_parser("car-demo", help="run the car reward-repair case study")
    car_demo.set_defaults(func=_cmd_car_demo)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
