"""The PRISM scenario corpus: named benchmark families at several sizes.

Every family renders a DTMC to PRISM source with
:func:`repro.io.prism.dtmc_to_prism` and loads the *canonical* corpus
model back through :func:`repro.io.prism_parser.parse_prism` — the
corpus is therefore exactly the set of models a user could hand this
library as ``.prism`` files, and every benchmark number is measured on
the imported representation (states ``s0 … sN``), not on a privileged
in-memory one.

Each family supplies, per ``(size, seed)``:

* ``prism_source`` — the model as PRISM text;
* ``model`` — the parsed :class:`~repro.mdp.model.DTMC`;
* ``formula`` — a PCTL requirement *calibrated against the model's
  baseline value* so the repair is non-trivial (not already satisfied:
  the bound demands a fixed relative improvement over the unrepaired
  model);
* ``repair`` — a :class:`~repro.core.model_repair.ModelRepair` with a
  bounded controllable-state set, keeping the NLP in the 2–8 variable
  dispatch-bound regime the stacked kernels target.

Families
--------
``grid``     slip-gridworld reachability (P ≥ b [F goal])
``network``  the paper's WSN routing grid (R ≤ b [F delivered])
``refuel``   birth–death fuel tank with dry-out (P ≤ b [F empty])
``drone``    altitude corridor with crash floor (P ≥ b [F target])
``random``   seeded random chains from :mod:`repro.corpus.generators`
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.checking.cache import cached_check
from repro.core.model_repair import ModelRepair
from repro.io.prism import dtmc_to_prism
from repro.io.prism_parser import parse_prism
from repro.logic.pctl import (
    AtomicProposition,
    Eventually,
    ProbabilisticOperator,
    RewardOperator,
    StateFormula,
)
from repro.mdp.model import DTMC

from repro.corpus.generators import random_dtmc

#: Default perturbation box for corpus repairs: generous enough that the
#: calibrated bounds are typically reachable, small enough that the
#: problems stay in the paper's "small perturbation" regime.
DEFAULT_MAX_PERTURBATION = 0.2


class CorpusFamily:
    """One benchmark family: a sized, seeded model plus its requirement.

    Parameters
    ----------
    build:
        ``(size, seed) -> DTMC`` over arbitrary state names; the family
        renders it to PRISM and parses it back, so the canonical corpus
        model always carries the importer's ``s0 … sN`` state names.
    goal_atom / direction:
        The reachability target and whether the requirement lower-bounds
        (``">="``) or upper-bounds (``"<="``) the checked value.
    reward:
        Calibrate against an expected-reward probe (``R ⋈ b [F goal]``)
        instead of a probability probe.
    improvement:
        Relative improvement the calibrated bound demands over the
        baseline: for ``">="`` the bound closes this fraction of the gap
        to certainty, for ``"<="`` it shaves this fraction off the
        baseline value.
    controllable:
        ``(model, size) -> state list`` choosing the rows the repair may
        perturb (bounded, to stay in the dispatch-bound regime).
    """

    def __init__(
        self,
        name: str,
        description: str,
        sizes: Sequence[int],
        build: Callable[[int, int], DTMC],
        goal_atom: str,
        direction: str,
        controllable: Callable[[DTMC, int], List[str]],
        reward: bool = False,
        improvement: float = 0.05,
        max_perturbation: float = DEFAULT_MAX_PERTURBATION,
        seeded: bool = False,
    ):
        self.name = name
        self.description = description
        self.sizes = tuple(int(s) for s in sizes)
        self._build = build
        self.goal_atom = goal_atom
        self.direction = direction
        self._controllable = controllable
        self.reward = reward
        self.improvement = float(improvement)
        self.max_perturbation = float(max_perturbation)
        #: Whether ``seed`` changes the model (only the random family).
        self.seeded = seeded

    # ------------------------------------------------------------------
    # Model surface
    # ------------------------------------------------------------------
    def prism_source(self, size: int, seed: int = 0) -> str:
        """The family member as PRISM source text."""
        self._check_size(size)
        return dtmc_to_prism(self._build(size, seed), module_name=self.name)

    def model(self, size: int, seed: int = 0) -> DTMC:
        """The canonical corpus model: PRISM-rendered, then re-parsed."""
        return parse_prism(self.prism_source(size, seed))

    def baseline_value(self, size: int, seed: int = 0, cache=None) -> float:
        """The checked value of the unrepaired model (memoised)."""
        model = self.model(size, seed)
        return float(cached_check(model, self._probe(), cache=cache).value)

    def formula(self, size: int, seed: int = 0, cache=None) -> StateFormula:
        """The calibrated requirement for this ``(size, seed)``.

        The bound demands :attr:`improvement` relative improvement over
        the unrepaired baseline, so the repair NLP always actually runs
        (an uncalibrated fixed bound degenerates into
        ``already_satisfied`` at most sizes).
        """
        baseline = self.baseline_value(size, seed, cache=cache)
        if self.direction == ">=":
            bound = baseline + self.improvement * (1.0 - baseline)
        else:
            bound = baseline * (1.0 - self.improvement)
        path = Eventually(AtomicProposition(self.goal_atom))
        if self.reward:
            return RewardOperator(self.direction, bound, path)
        return ProbabilisticOperator(
            self.direction, min(max(bound, 0.0), 1.0), path
        )

    def repair(self, size: int, seed: int = 0, cache=None) -> ModelRepair:
        """The family's Model Repair problem at ``(size, seed)``."""
        model = self.model(size, seed)
        return ModelRepair.for_chain(
            model,
            self.formula(size, seed, cache=cache),
            controllable_states=self._controllable(model, size),
            max_perturbation=self.max_perturbation,
            engine="sparse",
        )

    def describe(self, size: Optional[int] = None) -> Dict[str, object]:
        """A JSON-friendly summary (CLI ``repro corpus list`` payload)."""
        info: Dict[str, object] = {
            "name": self.name,
            "description": self.description,
            "sizes": list(self.sizes),
            "goal": self.goal_atom,
            "direction": self.direction,
            "kind": "reward" if self.reward else "probability",
            "seeded": self.seeded,
        }
        if size is not None:
            model = self.model(size)
            info["size"] = int(size)
            info["states"] = model.num_states
            info["variables"] = self.variable_count(size)
        return info

    def variable_count(self, size: int, seed: int = 0) -> int:
        """Number of NLP decision variables at this size."""
        model = self.model(size, seed)
        return sum(
            len(model.transitions[state]) - 1
            for state in self._controllable(model, size)
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _probe(self) -> StateFormula:
        path = Eventually(AtomicProposition(self.goal_atom))
        if self.reward:
            return RewardOperator("<=", float("inf"), path)
        return ProbabilisticOperator(">=", 0.0, path)

    def _check_size(self, size: int) -> None:
        if int(size) < min(self.sizes):
            raise ValueError(
                f"family {self.name!r}: size {size} below the smallest "
                f"supported size {min(self.sizes)}"
            )

    def __repr__(self) -> str:
        return f"CorpusFamily({self.name!r}, sizes={list(self.sizes)})"


# ----------------------------------------------------------------------
# grid: slip-gridworld reachability
# ----------------------------------------------------------------------
def _grid_chain(size: int, seed: int = 0) -> DTMC:
    """An s×s gridworld walked corner to corner with slip and traps.

    From cell ``(r, c)`` the walker moves right or down (uniformly over
    the available directions) with probability ``1 − slip − drop``,
    slips back to the start with ``slip`` and falls into an absorbing
    trap with ``drop``.  The goal corner is absorbing and labelled.
    """
    slip, drop = 0.08, 0.02
    cells = [(r, c) for r in range(size) for c in range(size)]
    goal = (size - 1, size - 1)
    transitions = {}
    for cell in cells:
        r, c = cell
        if cell == goal:
            transitions[cell] = {cell: 1.0}
            continue
        moves = []
        if r + 1 < size:
            moves.append((r + 1, c))
        if c + 1 < size:
            moves.append((r, c + 1))
        row: Dict[object, float] = {}
        advance = (1.0 - slip - drop) / len(moves)
        for target in moves:
            row[target] = row.get(target, 0.0) + advance
        row[(0, 0)] = row.get((0, 0), 0.0) + slip
        row["trap"] = drop
        transitions[cell] = row
    transitions["trap"] = {"trap": 1.0}
    return DTMC(
        states=cells + ["trap"],
        transitions=transitions,
        initial_state=(0, 0),
        labels={goal: {"goal"}, "trap": {"trap"}},
        state_rewards={s: (0.0 if s in (goal, "trap") else 1.0)
                       for s in cells + ["trap"]},
    )


def _grid_controllable(model: DTMC, size: int) -> List[str]:
    # The start cell and its two forward neighbours: 2 successors each
    # near the corner, so 4–6 variables across sizes.
    return ["s0", "s1", f"s{size}"]


# ----------------------------------------------------------------------
# network: the paper's WSN routing grid
# ----------------------------------------------------------------------
def _network_chain(size: int, seed: int = 0) -> DTMC:
    from repro.casestudies import wsn

    return wsn.build_wsn_chain(size=size)


def _network_controllable(model: DTMC, size: int) -> List[str]:
    # The query source corner and one interior relay: the source is the
    # last state in the row-major grid ordering, the relay sits one row
    # and one column in.
    source = model.num_states - 1
    relay = (size - 2) * size + (size - 2)
    return [f"s{source}", f"s{relay}"]


# ----------------------------------------------------------------------
# refuel: birth–death fuel tank
# ----------------------------------------------------------------------
def _refuel_chain(size: int, seed: int = 0) -> DTMC:
    """Fuel levels ``0 … size``; consume, hold, or jump to full.

    Level 0 is the absorbing labelled ``empty`` dry-out; reaching the
    full tank (absorbing, labelled ``full``) completes the mission.
    Mid-tank levels host a refuel pump with a small activation
    probability, so survival hinges on a handful of pump rows — exactly
    the rows the repair controls.
    """
    consume, pump = 0.25, 0.1
    levels = list(range(size + 1))
    pumps = {level for level in levels if level % 4 == 2}
    transitions = {}
    for level in levels:
        if level in (0, size):
            transitions[level] = {level: 1.0}
            continue
        row = {level - 1: consume}
        stay = 1.0 - consume
        if level in pumps:
            row[size] = pump
            stay -= pump
        row[level] = row.get(level, 0.0) + stay
        transitions[level] = row
    return DTMC(
        states=levels,
        transitions=transitions,
        initial_state=size // 2,
        labels={0: {"empty"}, size: {"full"}},
        state_rewards={level: (0.0 if level in (0, size) else 1.0)
                       for level in levels},
    )


def _refuel_controllable(model: DTMC, size: int) -> List[str]:
    # The two lowest pump rows (levels 2 and 6): 3 successors each.
    pumps = [level for level in range(1, size) if level % 4 == 2]
    return [f"s{level}" for level in pumps[:2]]


# ----------------------------------------------------------------------
# drone: altitude corridor with a crash floor
# ----------------------------------------------------------------------
def _drone_chain(size: int, seed: int = 0) -> DTMC:
    """Altitudes ``0 … size``: wind pushes down, thrust pushes up.

    Altitude 0 is the absorbing ``crash`` floor, altitude ``size`` the
    absorbing ``target`` ceiling; interior altitudes climb with
    probability ``up``, sink with ``down`` (stronger near the ground —
    turbulence), and hold otherwise.
    """
    levels = list(range(size + 1))
    transitions = {}
    for level in levels:
        if level in (0, size):
            transitions[level] = {level: 1.0}
            continue
        turbulence = 0.1 if level <= max(2, size // 4) else 0.0
        up, down = 0.3, 0.2 + turbulence
        transitions[level] = {
            level - 1: down,
            level + 1: up,
            level: round(1.0 - up - down, 12),
        }
    start = max(1, size // 3)
    return DTMC(
        states=levels,
        transitions=transitions,
        initial_state=start,
        labels={0: {"crash"}, size: {"target"}},
        state_rewards={level: (0.0 if level in (0, size) else 1.0)
                       for level in levels},
    )


def _drone_controllable(model: DTMC, size: int) -> List[str]:
    # The turbulent band just above the floor: start altitude and its
    # neighbour, 3 successors each → 4 variables.
    start = max(1, size // 3)
    return [f"s{start}", f"s{start + 1}"]


# ----------------------------------------------------------------------
# random: seeded generator chains
# ----------------------------------------------------------------------
def _random_chain(size: int, seed: int = 0) -> DTMC:
    return random_dtmc(states=size, seed=seed)


def _random_controllable(model: DTMC, size: int) -> List[str]:
    # The initial state plus the two branchiest early states.
    ranked = sorted(
        (s for s in model.states[: max(3, size // 4)]),
        key=lambda s: -len(model.transitions[s]),
    )
    chosen = {model.states[0], *ranked[:2]}
    return sorted(chosen, key=lambda s: int(s[1:]))


FAMILIES: Dict[str, CorpusFamily] = {
    family.name: family
    for family in (
        CorpusFamily(
            name="grid",
            description="slip-gridworld corner-to-corner reachability",
            sizes=(3, 4, 5, 6),
            build=_grid_chain,
            goal_atom="goal",
            direction=">=",
            controllable=_grid_controllable,
        ),
        CorpusFamily(
            name="network",
            description="WSN routing grid, expected delivery attempts",
            sizes=(3, 4, 5),
            build=_network_chain,
            goal_atom="delivered",
            direction="<=",
            reward=True,
            controllable=_network_controllable,
        ),
        CorpusFamily(
            name="refuel",
            description="birth-death fuel tank, dry-out probability",
            sizes=(8, 12, 16, 20),
            build=_refuel_chain,
            goal_atom="empty",
            direction="<=",
            improvement=0.1,
            controllable=_refuel_controllable,
        ),
        CorpusFamily(
            name="drone",
            description="altitude corridor with a crash floor",
            sizes=(8, 12, 16, 20),
            build=_drone_chain,
            goal_atom="target",
            direction=">=",
            controllable=_drone_controllable,
        ),
        CorpusFamily(
            name="random",
            description="seeded random chains (repro.corpus.generators)",
            sizes=(12, 16, 24, 32),
            build=_random_chain,
            goal_atom="goal",
            direction=">=",
            controllable=_random_controllable,
            seeded=True,
        ),
    )
}


def get_family(name: str) -> CorpusFamily:
    """Look up a family by name (raises ``KeyError`` with the options)."""
    try:
        return FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown corpus family {name!r}; "
            f"available: {', '.join(sorted(FAMILIES))}"
        ) from None


def family_names() -> List[str]:
    """The corpus family names, sorted."""
    return sorted(FAMILIES)
