"""Seeded random model generators for the scenario corpus.

Fuzz-style benchmark inputs: structurally random DTMCs/MDPs whose shape
is fully determined by ``(states, seed)``, so every corpus point is
reproducible bit-for-bit.  Rows are drawn from a Dirichlet over a small
random successor set, with a guaranteed forward edge so the ``goal``
state stays reachable from everywhere (no degenerate benchmark points
where the repair problem is vacuous).
"""

from __future__ import annotations

import numpy as np

from repro.mdp.model import DTMC, MDP


def _random_row(rng, source: int, states: int, branching: int):
    """Successor indices + probabilities for one state.

    Always includes one strictly-forward edge (towards the goal, the
    last index) so reachability never collapses; the remaining targets
    are drawn anywhere, which produces the loops and backward edges that
    make the reachability function genuinely rational in the repair
    parameters.
    """
    forward = int(rng.integers(source + 1, states))
    others = rng.choice(states, size=min(branching - 1, states - 1), replace=False)
    targets = sorted({forward, *(int(t) for t in others)})
    weights = rng.dirichlet(np.ones(len(targets)) * 2.0)
    # Round to a short decimal so the PRISM rendering (%.12g) round-trips
    # exactly; the largest edge absorbs the rounding slack (it is always
    # big enough to stay positive).
    probs = [round(float(w), 6) for w in weights]
    slack = round(1.0 - sum(probs), 6)
    probs[int(np.argmax(probs))] = round(
        probs[int(np.argmax(probs))] + slack, 6
    )
    return {t: p for t, p in zip(targets, probs) if p > 0.0}


def random_dtmc(states: int = 20, seed: int = 0, branching: int = 3) -> DTMC:
    """A seeded random chain with absorbing ``goal`` and ``trap`` states.

    State ``states−1`` is the labelled ``goal``, state ``states−2`` the
    labelled ``trap``; both absorb.  Every other state carries reward 1
    (so both ``P ⋈ b [F goal]`` and ``R ⋈ b [F goal]`` probes are
    meaningful) and branches over ``branching`` random successors.
    """
    if states < 3:
        raise ValueError("random_dtmc needs at least 3 states")
    rng = np.random.default_rng(seed)
    goal, trap = states - 1, states - 2
    transitions = {}
    for source in range(states):
        if source in (goal, trap):
            transitions[source] = {source: 1.0}
        else:
            transitions[source] = _random_row(rng, source, states, branching)
    return DTMC(
        states=list(range(states)),
        transitions=transitions,
        initial_state=0,
        labels={goal: {"goal"}, trap: {"trap"}},
        state_rewards={
            s: (0.0 if s in (goal, trap) else 1.0) for s in range(states)
        },
    )


def random_mdp(
    states: int = 20, actions: int = 2, seed: int = 0, branching: int = 3
) -> MDP:
    """A seeded random MDP; same shape as :func:`random_dtmc` per action."""
    if states < 3:
        raise ValueError("random_mdp needs at least 3 states")
    rng = np.random.default_rng(seed)
    goal, trap = states - 1, states - 2
    transitions = {}
    for source in range(states):
        if source in (goal, trap):
            transitions[source] = {"stay": {source: 1.0}}
        else:
            transitions[source] = {
                f"a{k}": _random_row(rng, source, states, branching)
                for k in range(actions)
            }
    return MDP(
        states=list(range(states)),
        transitions=transitions,
        initial_state=0,
        labels={goal: {"goal"}, trap: {"trap"}},
        state_rewards={
            s: (0.0 if s in (goal, trap) else 1.0) for s in range(states)
        },
    )
