"""The PRISM scenario corpus.

Named benchmark families (grid / network / refuel / drone / random) at
several sizes, each rendered to PRISM text and re-imported through
:mod:`repro.io.prism_parser`, plus the seeded random model generators.
``benchmarks/bench_scalability_matrix.py`` runs the repair engine over
this corpus so every speed PR reports against the same matrix; the CLI
exposes it as ``repro corpus``.
"""

from repro.corpus.families import (
    FAMILIES,
    CorpusFamily,
    family_names,
    get_family,
)
from repro.corpus.generators import random_dtmc, random_mdp

__all__ = [
    "FAMILIES",
    "CorpusFamily",
    "family_names",
    "get_family",
    "random_dtmc",
    "random_mdp",
]
