"""One result vocabulary for every repair flavour.

The paper's Propositions 1–4 all end the same way: a status
(already satisfied / repaired / infeasible), the solved parameter
assignment, the objective at that point, whether the repaired artifact
was re-verified concretely, and the NLP solver's accounting.
:class:`RepairResult` owns those shared fields once; the flavour
subclasses (:class:`~repro.core.model_repair.ModelRepairResult`,
:class:`~repro.core.data_repair.DataRepairResult`,
:class:`~repro.core.reward_repair.RewardRepairResult`,
:class:`~repro.ctmc.repair.RateRepairResult`) only add their
domain-specific attributes and payload fields.

``to_dict()`` is the canonical JSON form used by the service layer
(:mod:`repro.service.jobs`) and the CLI's ``--json`` output;
``from_dict()`` rehydrates the right subclass via the ``flavor`` tag
without the caller importing the flavour module first.
"""

from __future__ import annotations

import importlib
from typing import Dict, Mapping, Optional

#: ``flavor`` tag → defining module, so :meth:`RepairResult.from_dict`
#: can lazily import the subclass for a serialized payload.  (The
#: subclasses live in their flavour modules — not here — to keep
#: ``repro.repair`` import-light and cycle-free.)
_FLAVOR_MODULES = {
    "model": "repro.core.model_repair",
    "data": "repro.core.data_repair",
    "reward": "repro.core.reward_repair",
    "rate": "repro.ctmc.repair",
    "robust": "repro.repair.robust",
    "cegis": "repro.repair.cegis",
}

#: Filled by ``__init_subclass__`` as flavour modules are imported.
_REGISTRY: Dict[str, type] = {}


class RepairResult:
    """Base outcome of one ``RepairProblem → solve → verify`` run.

    Attributes
    ----------
    status:
        ``"already_satisfied"``, ``"repaired"`` or ``"infeasible"``.
    assignment:
        Solved values of the repair parameters (the flavour decides what
        a parameter means: edge perturbation, drop probability, reward
        delta, rate scale).
    objective_value:
        The repair cost at the solution.
    verified:
        Whether the repaired artifact was re-checked concretely and
        found to satisfy the requirement.
    message:
        Human-readable driver/solver summary.
    solver_stats:
        Aggregate NLP accounting (iterations, function evaluations,
        converged starts) from :class:`repro.optimize.NonlinearProgram`;
        empty when no solve ran.
    """

    #: Serialisation tag; subclasses override with a unique name.
    flavor = "generic"

    def __init__(
        self,
        status: str,
        assignment: Optional[Mapping[str, float]] = None,
        objective_value: float = 0.0,
        verified: bool = False,
        message: str = "",
        solver_stats: Optional[Mapping[str, int]] = None,
    ):
        self.status = status
        self.assignment = dict(assignment or {})
        self.objective_value = objective_value
        self.verified = verified
        self.message = message
        self.solver_stats = dict(solver_stats or {})

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        tag = cls.__dict__.get("flavor")
        if tag:
            _REGISTRY[tag] = cls

    @property
    def feasible(self) -> bool:
        """True unless the repair problem was infeasible."""
        return self.status != "infeasible"

    # ------------------------------------------------------------------
    # Canonical serialisation
    # ------------------------------------------------------------------
    def extra_payload(self) -> Dict:
        """Flavour-specific JSON fields merged into :meth:`to_dict`."""
        return {}

    def to_dict(self) -> Dict:
        """The canonical JSON-ready form (shared fields + flavour extras)."""
        return {
            "flavor": self.flavor,
            "status": self.status,
            "feasible": bool(self.feasible),
            "assignment": {
                str(name): float(value)
                for name, value in self.assignment.items()
            },
            "objective_value": float(self.objective_value),
            "verified": bool(self.verified),
            "message": str(self.message),
            "solver_stats": {
                str(name): int(value)
                for name, value in self.solver_stats.items()
            },
            **self.extra_payload(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RepairResult":
        """Rebuild the right subclass from a :meth:`to_dict` payload."""
        tag = payload.get("flavor", "generic")
        if tag == "generic":
            return RepairResult._from_payload(payload)
        if tag not in _REGISTRY and tag in _FLAVOR_MODULES:
            importlib.import_module(_FLAVOR_MODULES[tag])
        if tag not in _REGISTRY:
            raise ValueError(f"unknown repair result flavor {tag!r}")
        return _REGISTRY[tag]._from_payload(payload)

    @classmethod
    def _from_payload(cls, payload: Mapping) -> "RepairResult":
        return RepairResult(
            status=payload["status"],
            assignment=payload.get("assignment", {}),
            objective_value=payload.get("objective_value", 0.0),
            verified=payload.get("verified", False),
            message=payload.get("message", ""),
            solver_stats=payload.get("solver_stats", {}),
        )

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def _repr_extra(self) -> str:
        """Flavour-specific ``key=value`` tail for :meth:`__repr__`."""
        return ""

    def __repr__(self) -> str:
        extra = self._repr_extra()
        return (
            f"{type(self).__name__}(status={self.status!r}, "
            f"objective={self.objective_value:.6g}, "
            f"verified={self.verified}"
            + (f", {extra}" if extra else "")
            + ")"
        )

    def describe(self) -> str:
        """One-line summary used for pipeline stage details."""
        return f"status={self.status}, objective={self.objective_value:.6g}"
