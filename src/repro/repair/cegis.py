"""Counterexample-guided inductive repair (the sixth flavour).

Every other repair materializes *one* global constraint by eliminating
the full parametric chain — fine at the paper's 17-variable WSN
instances, hopeless at hundreds of variables, where elimination cost
dominates the solve.  Following "Model Repair Revamped" (Češka, Dehnert,
Jansen, Junges, Katoen), :class:`CegisRepair` never builds the global
constraint up front.  Instead it grows a working set of *local*
constraints driven by counterexamples:

1. **concrete check** — model-check the current candidate's concrete
   chain with the sparse engine (memoised);
2. **localize** — on violation, extract a smallest counterexample
   (:mod:`repro.checking.counterexample`) and eliminate only the
   evidence-touched subchain via
   :func:`repro.checking.parametric.restricted_constraint` — a
   sub-stochastic truncation whose constraint is a *relaxation* of the
   full one (sound: it never cuts off true repairs, and its
   infeasibility implies the full problem's);
3. **re-solve** — add the local constraint to the working set and run
   the shared :func:`~repro.repair.engine.solve_repair` NLP over it;
4. **tighten** — when the candidate still violates the *full* formula
   and the last elimination was already expensive (past
   ``tighten_after_seconds``), steer the newest local constraint's
   bound onto the boundary proportionally to the observed overshoot
   (cheap re-solves, no new elimination) instead of paying an even
   costlier elimination over a wider corridor;
5. **iterate** — the engine's own concrete re-verification decides
   termination; otherwise the violating artifact seeds the next
   counterexample.

Progress is guaranteed per iteration: a localized constraint is only
accepted when it *cuts off* the current candidate (its margin there is
negative — always true for a complete counterexample, whose evidence
mass already exceeds the bound inside the truncation); when evidence
cannot be localized (budget-cut search, unsupported direction such as
``G`` or lower bounds, parametric rewards) the loop degrades to the
global elimination for that iteration and records the fallback — never
a silent wrong answer.

See ``docs/cegis_repair.md`` for the soundness argument and scaling
numbers.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Set

from repro.checking.cache import cached_check, get_cache
from repro.checking.counterexample import counterexample, strongest_evidence_paths
from repro.checking.parametric import (
    EliminationSnapshot,
    ParametricConstraint,
    label_satisfaction_set,
    restricted_constraint,
)
from repro.logic.pctl import ProbabilisticOperator, RewardOperator, Until
from repro.mdp.model import DTMC
from repro.repair.engine import solve_repair
from repro.repair.problem import ParametricSpec
from repro.repair.results import RepairResult

#: Default bound on check → localize → solve rounds.
DEFAULT_MAX_ITERATIONS = 10
#: Default path cap handed to the counterexample searches.
DEFAULT_MAX_COUNTEREXAMPLE_PATHS = 10_000
#: Default prefix-expansion budget for the counterexample searches.
DEFAULT_MAX_EXPANSIONS = 200_000
#: Default bound on inner bound-tightening re-solves per iteration.
DEFAULT_MAX_TIGHTENINGS = 6
#: Elimination wall-clock past which the loop stops widening the
#: corridor and steers the newest constraint's bound instead.  Below
#: it, corridor growth is cheap and converges to the *exact* global
#: optimum; past it, each further elimination multiplies the cost, so
#: the loop trades a bounded objective overshoot for termination.
DEFAULT_TIGHTEN_AFTER_SECONDS = 3.0
#: Relative interior margin the tightening loop steers the full value
#: to — just inside the bound, so the concrete re-verification passes
#: while the objective stays within float noise of the true optimum.
_TIGHTEN_TARGET_GAP = 2e-5
#: A verified candidate within this relative gap of the bound is "at
#: the boundary" — no further relax-back rounds are worth a solve.
_TIGHTEN_ACCEPT_GAP = 1e-4
#: Tightened bounds never drop below this fraction of the formula
#: bound; past it the response is clearly not proportional.
_TIGHTEN_FLOOR = 1e-3
#: Evidence-count schedule for reward localization: start here and
#: multiply per growth round until the truncation's value at the
#: candidate exceeds the bound (or the paths run out).
_REWARD_EVIDENCE_START = 8
_REWARD_EVIDENCE_GROWTH = 4


class CegisIteration:
    """One check → localize → solve round of the CEGIS loop."""

    def __init__(
        self,
        index: int,
        kind: str,
        counterexample_paths: int = 0,
        counterexample_states: int = 0,
        restriction_size: int = 0,
        evidence_mass: float = 0.0,
        evidence_complete: bool = False,
        fallback_reason: Optional[str] = None,
        localize_seconds: float = 0.0,
        solve_seconds: float = 0.0,
        tightenings: int = 0,
        status: str = "",
        elimination_states: int = 0,
        elimination_ms: int = 0,
        elimination_resumed: bool = False,
    ):
        self.index = int(index)
        #: ``"localized"`` or ``"global"`` (the fallback).
        self.kind = str(kind)
        self.counterexample_paths = int(counterexample_paths)
        self.counterexample_states = int(counterexample_states)
        self.restriction_size = int(restriction_size)
        self.evidence_mass = float(evidence_mass)
        self.evidence_complete = bool(evidence_complete)
        self.fallback_reason = fallback_reason
        self.localize_seconds = float(localize_seconds)
        self.solve_seconds = float(solve_seconds)
        #: Inner bound-tightening re-solves run inside this iteration.
        self.tightenings = int(tightenings)
        self.status = str(status)
        #: States eliminated / wall-clock spent localizing this round,
        #: and whether the round reused a prior corridor elimination
        #: (exact cache hit or snapshot resume) instead of starting from
        #: scratch.
        self.elimination_states = int(elimination_states)
        self.elimination_ms = int(elimination_ms)
        self.elimination_resumed = bool(elimination_resumed)

    def to_dict(self) -> Dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "counterexample_paths": self.counterexample_paths,
            "counterexample_states": self.counterexample_states,
            "restriction_size": self.restriction_size,
            "evidence_mass": self.evidence_mass,
            "evidence_complete": self.evidence_complete,
            "fallback_reason": self.fallback_reason,
            "localize_seconds": self.localize_seconds,
            "solve_seconds": self.solve_seconds,
            "tightenings": self.tightenings,
            "status": self.status,
            "elimination_states": self.elimination_states,
            "elimination_ms": self.elimination_ms,
            "elimination_resumed": self.elimination_resumed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CegisIteration":
        return cls(
            index=payload["index"],
            kind=payload["kind"],
            counterexample_paths=payload.get("counterexample_paths", 0),
            counterexample_states=payload.get("counterexample_states", 0),
            restriction_size=payload.get("restriction_size", 0),
            evidence_mass=payload.get("evidence_mass", 0.0),
            evidence_complete=payload.get("evidence_complete", False),
            fallback_reason=payload.get("fallback_reason"),
            localize_seconds=payload.get("localize_seconds", 0.0),
            solve_seconds=payload.get("solve_seconds", 0.0),
            tightenings=payload.get("tightenings", 0),
            status=payload.get("status", ""),
            elimination_states=payload.get("elimination_states", 0),
            elimination_ms=payload.get("elimination_ms", 0),
            elimination_resumed=payload.get("elimination_resumed", False),
        )

    def __repr__(self) -> str:
        return (
            f"CegisIteration({self.index}, kind={self.kind!r}, "
            f"paths={self.counterexample_paths}, "
            f"restriction={self.restriction_size})"
        )


class CegisRepairResult(RepairResult):
    """Outcome of a counterexample-guided repair.

    Carries the shared :class:`~repro.repair.RepairResult` fields plus:

    Attributes
    ----------
    iterations:
        Check → localize → solve rounds actually run.
    constraints_added:
        Size of the final working constraint set.
    counterexample_states:
        Total evidence states across all counterexamples (the summed
        telemetry counter).
    fallbacks:
        Iterations that degraded to the global elimination.
    iteration_log:
        The per-iteration :class:`CegisIteration` records (diagnostics
        and timings).
    repaired_model:
        The repaired chain (the original when already satisfied,
        ``None`` when infeasible).
    perturbation_bound:
        Proposition 1's ε-bisimulation bound from the wrapped flavour
        (0 when it defines none).
    """

    flavor = "cegis"

    def __init__(
        self,
        status: str,
        assignment: Optional[Mapping[str, float]] = None,
        objective_value: float = 0.0,
        verified: bool = False,
        iterations: int = 0,
        constraints_added: int = 0,
        counterexample_states: int = 0,
        fallbacks: int = 0,
        iteration_log: Optional[List[CegisIteration]] = None,
        repaired_model: Optional[DTMC] = None,
        perturbation_bound: float = 0.0,
        message: str = "",
        solver_stats: Optional[Mapping[str, int]] = None,
    ):
        super().__init__(
            status=status,
            assignment=assignment,
            objective_value=objective_value,
            verified=verified,
            message=message,
            solver_stats=solver_stats,
        )
        self.iterations = int(iterations)
        self.constraints_added = int(constraints_added)
        self.counterexample_states = int(counterexample_states)
        self.fallbacks = int(fallbacks)
        self.iteration_log = list(iteration_log or [])
        self.repaired_model = repaired_model
        self.perturbation_bound = float(perturbation_bound)

    def extra_payload(self) -> Dict:
        from repro.io.json_io import model_to_payload

        return {
            "iterations": self.iterations,
            "constraints_added": self.constraints_added,
            "counterexample_states": self.counterexample_states,
            "fallbacks": self.fallbacks,
            "iteration_log": [record.to_dict() for record in self.iteration_log],
            "perturbation_bound": self.perturbation_bound,
            "repaired_model": (
                None
                if self.repaired_model is None
                else model_to_payload(self.repaired_model)
            ),
        }

    @classmethod
    def _from_payload(cls, payload: Mapping) -> "CegisRepairResult":
        from repro.io.json_io import model_from_payload

        repaired = payload.get("repaired_model")
        return cls(
            status=payload["status"],
            assignment=payload.get("assignment", {}),
            objective_value=payload.get("objective_value", 0.0),
            verified=payload.get("verified", False),
            iterations=payload.get("iterations", 0),
            constraints_added=payload.get("constraints_added", 0),
            counterexample_states=payload.get("counterexample_states", 0),
            fallbacks=payload.get("fallbacks", 0),
            iteration_log=[
                CegisIteration.from_dict(record)
                for record in payload.get("iteration_log", [])
            ],
            repaired_model=(
                None if repaired is None else model_from_payload(repaired)
            ),
            perturbation_bound=payload.get("perturbation_bound", 0.0),
            message=payload.get("message", ""),
            solver_stats=payload.get("solver_stats", {}),
        )

    def _repr_extra(self) -> str:
        return (
            f"iterations={self.iterations}, "
            f"constraints={self.constraints_added}"
        )

    def describe(self) -> str:
        return (
            f"status={self.status}, iterations={self.iterations}, "
            f"constraints={self.constraints_added}, "
            f"fallbacks={self.fallbacks}"
        )


class _Localization:
    """What one localization round produced."""

    def __init__(
        self,
        constraint,
        kind: str,
        paths: int = 0,
        states: int = 0,
        mass: float = 0.0,
        complete: bool = False,
        fallback_reason: Optional[str] = None,
        snapshot: Optional[EliminationSnapshot] = None,
    ):
        self.constraint = constraint
        self.kind = kind
        self.paths = paths
        self.states = states
        self.mass = mass
        self.complete = complete
        self.fallback_reason = fallback_reason
        #: The corridor's partial elimination, for the next (wider) round.
        self.snapshot = snapshot


class CegisRepair:
    """Counterexample-guided repair over any single-spec builder.

    ``base`` is any flavour builder exposing ``.formula`` and
    ``.problem()`` whose single parametric side condition should be
    localized instead of globally eliminated — in this codebase
    :class:`~repro.core.model_repair.ModelRepair` and
    :class:`~repro.core.data_repair.DataRepair`.

    Examples
    --------
    >>> from repro.casestudies import wsn
    >>> cegis = CegisRepair(wsn.model_repair_problem(40))
    >>> result = cegis.repair()  # doctest: +SKIP
    """

    def __init__(
        self,
        base,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        max_counterexample_paths: int = DEFAULT_MAX_COUNTEREXAMPLE_PATHS,
        max_expansions: int = DEFAULT_MAX_EXPANSIONS,
        max_tightenings: int = DEFAULT_MAX_TIGHTENINGS,
        tighten_after_seconds: float = DEFAULT_TIGHTEN_AFTER_SECONDS,
        incremental: bool = True,
        order: str = "min-degree",
    ):
        if max_iterations < 1:
            raise ValueError("need at least one CEGIS iteration")
        if not hasattr(base, "problem") or getattr(base, "formula", None) is None:
            raise TypeError(
                "CegisRepair wraps a builder with .problem() and .formula "
                "(e.g. ModelRepair or DataRepair)"
            )
        self.base = base
        self.max_iterations = int(max_iterations)
        self.max_counterexample_paths = int(max_counterexample_paths)
        self.max_expansions = int(max_expansions)
        self.max_tightenings = int(max_tightenings)
        self.tighten_after_seconds = float(tighten_after_seconds)
        #: Resume each round's corridor elimination from the previous
        #: round's :class:`~repro.checking.parametric.EliminationSnapshot`
        #: (``False`` re-eliminates every corridor from scratch — kept
        #: for benchmarking the incremental path against its baseline).
        self.incremental = bool(incremental)
        #: Elimination order for the corridor reductions.
        self.order = str(order)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def for_chain(
        chain: DTMC,
        formula,
        controllable_states=None,
        max_perturbation: Optional[float] = None,
        cost="frobenius",
        engine: str = "sparse",
        **cegis_options,
    ) -> "CegisRepair":
        """Edge-wise CEGIS model repair (mirrors ``ModelRepair.for_chain``)."""
        from repro.core.model_repair import ModelRepair

        base = ModelRepair.for_chain(
            chain,
            formula,
            controllable_states=controllable_states,
            max_perturbation=max_perturbation,
            cost=cost,
            engine=engine,
        )
        return CegisRepair(base, **cegis_options)

    # ------------------------------------------------------------------
    # Localization
    # ------------------------------------------------------------------
    def _global_fallback(self, spec, cache, reason: str) -> _Localization:
        return _Localization(
            constraint=spec.reduced(cache),
            kind="global",
            fallback_reason=reason,
        )

    def _localize(
        self,
        spec: ParametricSpec,
        formula,
        violating: DTMC,
        candidate: Mapping[str, float],
        restriction: Set,
        cache,
        snapshot: Optional[EliminationSnapshot] = None,
    ) -> _Localization:
        """A working-set constraint that cuts off ``candidate``.

        Grows ``restriction`` (in place, monotone across iterations)
        with the evidence-touched states and eliminates only that
        subchain — resuming from ``snapshot`` (the previous round's
        partial elimination) so the wider corridor only pays for its
        newly admitted states.  Falls back to the global elimination —
        annotated, never silent — when the evidence cannot be localized.
        """
        model = spec.resolve_model()
        if isinstance(formula, ProbabilisticOperator):
            return self._localize_probability(
                spec, model, formula, violating, candidate, restriction,
                cache, snapshot,
            )
        if isinstance(formula, RewardOperator):
            return self._localize_reward(
                spec, model, formula, violating, candidate, restriction,
                cache, snapshot,
            )
        return self._global_fallback(spec, cache, "unsupported-formula")

    def _localize_probability(
        self, spec, model, formula, violating, candidate, restriction, cache,
        snapshot=None,
    ) -> _Localization:
        try:
            evidence = counterexample(
                violating,
                formula,
                max_paths=self.max_counterexample_paths,
                max_expansions=self.max_expansions,
            )
        except ValueError:
            # Lower bounds / bounded until / G: no finite-path evidence.
            return self._global_fallback(spec, cache, "unsupported-direction")
        if not evidence.complete:
            return self._global_fallback(spec, cache, "evidence-budget")
        restriction |= evidence.touched_states()
        if len(restriction) >= len(model.states):
            # The evidence corridor covers the whole chain: the
            # "restricted" elimination would be the full one — reuse
            # the shared (cached) global constraint instead.
            return self._global_fallback(spec, cache, "restriction-covers-model")
        try:
            constraint, snapshot = restricted_constraint(
                model,
                formula,
                restriction,
                cache=cache,
                order=self.order,
                snapshot=snapshot,
                with_snapshot=True,
            )
        except (ValueError, TypeError):
            return self._global_fallback(spec, cache, "unsupported-direction")
        if constraint.fast_margin(candidate) >= 0.0:
            # Cannot happen for a complete counterexample up to float
            # rounding; refuse to add a constraint that would stall.
            return self._global_fallback(spec, cache, "no-cut")
        return _Localization(
            constraint=constraint,
            kind="localized",
            paths=len(evidence),
            states=len(evidence.touched_states()),
            mass=evidence.total_probability,
            complete=True,
            snapshot=snapshot,
        )

    def _localize_reward(
        self, spec, model, formula, violating, candidate, restriction, cache,
        snapshot=None,
    ) -> _Localization:
        if formula.comparison not in ("<", "<="):
            return self._global_fallback(spec, cache, "unsupported-direction")
        targets = set(
            label_satisfaction_set(
                violating.states, violating.labels, formula.path.right
            )
        )
        count = _REWARD_EVIDENCE_START
        evidence = None
        previous_size = -1
        while count <= self.max_counterexample_paths:
            evidence = strongest_evidence_paths(
                violating,
                targets,
                count=count,
                max_expansions=self.max_expansions,
            )
            restriction |= {
                state for path, _ in evidence for state in path
            }
            if len(restriction) >= len(model.states):
                # The evidence corridor covers the whole chain — the
                # "restricted" elimination would be the full one; reuse
                # the shared (cached) global constraint instead.
                return self._global_fallback(
                    spec, cache, "restriction-covers-model"
                )
            if len(restriction) == previous_size:
                # More paths added no new states: re-eliminating the
                # same truncation cannot change the margin verdict.
                if evidence.complete and len(evidence) < count:
                    break
                count *= _REWARD_EVIDENCE_GROWTH
                continue
            previous_size = len(restriction)
            try:
                constraint, snapshot = restricted_constraint(
                    model,
                    formula,
                    restriction,
                    cache=cache,
                    order=self.order,
                    snapshot=snapshot,
                    with_snapshot=True,
                )
            except (ValueError, TypeError):
                return self._global_fallback(spec, cache, "unsupported-reward")
            if constraint.fast_margin(candidate) < 0.0:
                # The truncation already accumulates more reward than the
                # bound at the candidate: the local constraint cuts it off.
                return _Localization(
                    constraint=constraint,
                    kind="localized",
                    paths=len(evidence),
                    states=len(restriction),
                    mass=evidence.total_probability,
                    complete=evidence.complete,
                    snapshot=snapshot,
                )
            if evidence.complete and len(evidence) < count:
                # Every until-satisfying path is already in the
                # restriction, yet the truncated reward stays under the
                # bound — the gap lives in the escaping mass.
                break
            count *= _REWARD_EVIDENCE_GROWTH
        return self._global_fallback(spec, cache, "evidence-budget")

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def _working_problem(self, working):
        """A fresh copy of the base problem solving the working set only."""
        problem = self.base.problem()
        problem.parametric = list(working)
        # The concrete pre-check already ran (and failed); the engine's
        # short-circuit must not consult the original again.
        problem.check = lambda: False
        return problem

    def _tighten(
        self,
        formula,
        engine: str,
        cache,
        working,
        record: CegisIteration,
        outcome,
        solver_totals: Dict[str, int],
        extra_starts: int,
        seed: int,
    ):
        """Steer the newest local constraint's bound onto the boundary.

        The working-set constraints are *relaxations*, so a candidate
        can satisfy them all while the full formula still fails — the
        truncation's escaped mass is unaccounted for.  The loop normally
        answers with a wider corridor, which converges to the exact
        global optimum; once an elimination has cost more than
        ``tighten_after_seconds``, the next one would cost a multiple of
        that, so instead this tightens the newest constraint's bound
        proportionally to the observed overshoot ``β ← β · target/value``
        and re-solves (cheap — no new elimination).  The full value
        responds near-proportionally to the corridor bound, so one or
        two re-solves land the candidate just inside the bound;
        over-tightened (verified but deep-interior) candidates are
        relaxed back toward the boundary the same way.  The price is a
        bounded objective overshoot: the corridor constraint concentrates
        the repair on corridor parameters, whereas the true optimum
        spreads it — the verified candidate is feasible but a few
        percent above the global optimum at worst.

        Tightened constraints are **not** relaxations, so an infeasible
        tightened solve proves nothing — the loop reverts and falls
        through to the outer corridor-widening; ``infeasible`` is only
        ever reported from a solve over the untightened working set.
        """
        bound = getattr(formula, "bound", None)
        comparison = getattr(formula, "comparison", "")
        if bound is None or comparison not in ("<", "<="):
            return outcome
        bound = float(bound)
        if bound <= 0.0:
            return outcome
        target = bound * (1.0 - _TIGHTEN_TARGET_GAP)
        floor = bound * _TIGHTEN_FLOOR
        base_constraint = working[-1]
        beta = float(base_constraint.bound)
        # Bracket the verified/unverified boundary in corridor-bound
        # space: ``beta_hi`` is the tightest bound whose solve still
        # failed full verification, ``beta_lo`` the loosest bound whose
        # solve verified.  The proportional update ``β · target/value``
        # is the first guess (the full value responds near-proportionally
        # to the corridor bound while the solver stays in one basin), but
        # multi-start re-solves can hop basins, making value(β)
        # discontinuous — guesses falling outside the bracket are
        # replaced by its midpoint, so the loop converges onto the
        # cheapest verified candidate instead of chasing a broken
        # proportionality.
        beta_hi = beta
        beta_lo = None
        best = None
        current = outcome

        def resolve(next_beta: float, shift: int):
            tightened = list(working)
            tightened[-1] = ParametricConstraint(
                base_constraint.function, base_constraint.comparison, next_beta
            )
            started = time.perf_counter()
            attempt = solve_repair(
                self._working_problem(tightened),
                extra_starts=extra_starts,
                seed=seed + shift,
            )
            record.solve_seconds += time.perf_counter() - started
            record.tightenings += 1
            for key, count in attempt.solver_stats.items():
                solver_totals[key] = solver_totals.get(key, 0) + int(count)
            return attempt

        while record.tightenings < self.max_tightenings:
            artifact = current.artifact
            if not isinstance(artifact, DTMC):
                break
            value = cached_check(
                artifact, formula, engine=engine, cache=cache
            ).value
            if value is None or value <= 0.0:
                break
            if current.verified:
                if best is None or current.objective_value < best.objective_value:
                    best = current
                if value >= bound * (1.0 - _TIGHTEN_ACCEPT_GAP):
                    break
                beta_lo = beta if beta_lo is None else max(beta_lo, beta)
            else:
                beta_hi = min(beta_hi, beta)
            next_beta = beta * (target / value)
            if beta_lo is not None and not (beta_lo < next_beta < beta_hi):
                if beta_hi - beta_lo <= abs(beta_hi) * 1e-9:
                    break  # bracket exhausted — the boundary is resolved
                next_beta = 0.5 * (beta_lo + beta_hi)
            if next_beta < floor or abs(next_beta - beta) <= abs(beta) * 1e-12:
                break
            beta = next_beta
            attempt = resolve(beta, 0)
            if (
                attempt.status == "repaired"
                and not attempt.verified
                and record.tightenings < self.max_tightenings
            ):
                # When the working problem has symmetric optima (the
                # corridor polynomial often is symmetric in its
                # parameters while the full chain is not), the solver's
                # tie-break decides which equal-cost candidate comes
                # back — and only some of them verify.  One re-solve
                # with a shifted start pool breaks the tie the other
                # way; accept it only at equal-or-better cost.
                nudge = resolve(beta, 1)
                if (
                    nudge.status == "repaired"
                    and nudge.verified
                    and nudge.objective_value
                    <= attempt.objective_value * (1.0 + 1e-9) + 1e-12
                ):
                    attempt = nudge
            if attempt.status != "repaired":
                break
            current = attempt
        if best is not None and (
            not current.verified
            or best.objective_value < current.objective_value
        ):
            current = best
        record.status = current.status
        return current

    def repair(self, extra_starts: int = 8, seed: int = 0) -> CegisRepairResult:
        """Run the check → localize → solve loop to a verdict."""
        base_problem = self.base.problem()
        specs = [
            entry
            for entry in base_problem.parametric
            if isinstance(entry, ParametricSpec)
        ]
        if len(specs) != 1:
            raise TypeError(
                "CegisRepair localizes exactly one parametric side "
                f"condition; the base problem has {len(specs)}"
            )
        spec = specs[0]
        formula = spec.formula
        cache = base_problem.cache
        engine = getattr(base_problem, "engine", "sparse") or "sparse"
        if base_problem.run_check():
            return CegisRepairResult(
                status="already_satisfied",
                assignment=base_problem.initial_assignment(),
                objective_value=0.0,
                verified=True,
                repaired_model=(
                    base_problem.original
                    if isinstance(base_problem.original, DTMC)
                    else None
                ),
                message=base_problem.already_satisfied_message,
            )
        if not base_problem.variables:
            return CegisRepairResult(
                status="infeasible",
                assignment={},
                message=base_problem.no_variable_message,
            )

        candidate = base_problem.initial_assignment()
        violating = (
            base_problem.original
            if isinstance(base_problem.original, DTMC)
            else base_problem.run_instantiate(candidate)
        )
        if not isinstance(violating, DTMC):
            raise TypeError(
                "CegisRepair needs a concrete DTMC to extract "
                "counterexamples from (original or instantiate hook)"
            )

        working: List = []
        records: List[CegisIteration] = []
        restriction: Set = set()
        solver_totals: Dict[str, int] = {}
        total_states = 0
        fallbacks = 0
        last_outcome = None
        snapshot: Optional[EliminationSnapshot] = None
        cache_obj = get_cache(cache)
        for index in range(1, self.max_iterations + 1):
            started = time.perf_counter()
            stats_before = cache_obj.stats()
            localization = self._localize(
                spec,
                formula,
                violating,
                candidate,
                restriction,
                cache,
                snapshot if self.incremental else None,
            )
            stats_after = cache_obj.stats()
            localize_seconds = time.perf_counter() - started
            if self.incremental and localization.snapshot is not None:
                snapshot = localization.snapshot
            elimination_deltas = {
                key: stats_after.get(key, 0) - stats_before.get(key, 0)
                for key in (
                    "elimination_states",
                    "elimination_fill_in",
                    "elimination_reuse_hits",
                    "elimination_ms",
                )
            }
            for key, delta in elimination_deltas.items():
                if delta:
                    solver_totals[key] = solver_totals.get(key, 0) + int(delta)
            working.append(localization.constraint)
            total_states += localization.states
            if localization.kind == "global":
                fallbacks += 1
            started = time.perf_counter()
            outcome = solve_repair(
                self._working_problem(working),
                extra_starts=extra_starts,
                seed=seed,
            )
            solve_seconds = time.perf_counter() - started
            last_outcome = outcome
            for key, value in outcome.solver_stats.items():
                solver_totals[key] = solver_totals.get(key, 0) + int(value)
            records.append(
                CegisIteration(
                    index=index,
                    kind=localization.kind,
                    counterexample_paths=localization.paths,
                    counterexample_states=localization.states,
                    restriction_size=len(restriction),
                    evidence_mass=localization.mass,
                    evidence_complete=localization.complete,
                    fallback_reason=localization.fallback_reason,
                    localize_seconds=localize_seconds,
                    solve_seconds=solve_seconds,
                    status=outcome.status,
                    elimination_states=elimination_deltas["elimination_states"],
                    elimination_ms=elimination_deltas["elimination_ms"],
                    elimination_resumed=(
                        elimination_deltas["elimination_reuse_hits"] > 0
                    ),
                )
            )
            if (
                outcome.status == "repaired"
                and not outcome.verified
                and isinstance(outcome.artifact, DTMC)
                and localize_seconds >= self.tighten_after_seconds
            ):
                outcome = self._tighten(
                    formula,
                    engine,
                    cache,
                    working,
                    records[-1],
                    outcome,
                    solver_totals,
                    extra_starts,
                    seed,
                )
                last_outcome = outcome
            if outcome.status == "infeasible":
                # The working set is a relaxation of the full problem:
                # its infeasibility is a proof of the full problem's.
                return CegisRepairResult(
                    status="infeasible",
                    assignment=outcome.assignment,
                    objective_value=outcome.objective_value,
                    verified=False,
                    iterations=index,
                    constraints_added=len(working),
                    counterexample_states=total_states,
                    fallbacks=fallbacks,
                    iteration_log=records,
                    message=outcome.message,
                    solver_stats=solver_totals,
                )
            candidate = outcome.assignment
            if outcome.verified:
                # The engine re-checked the concrete artifact against the
                # *full* formula — the CEGIS termination certificate.
                localized = len(working) - fallbacks
                return CegisRepairResult(
                    status="repaired",
                    assignment=outcome.assignment,
                    objective_value=outcome.objective_value,
                    verified=True,
                    iterations=index,
                    constraints_added=len(working),
                    counterexample_states=total_states,
                    fallbacks=fallbacks,
                    iteration_log=records,
                    repaired_model=(
                        outcome.artifact
                        if isinstance(outcome.artifact, DTMC)
                        else None
                    ),
                    perturbation_bound=outcome.epsilon,
                    message=(
                        f"cegis verified after {index} iteration(s): "
                        f"{localized} localized + {fallbacks} global "
                        "constraint(s)"
                    ),
                    solver_stats=solver_totals,
                )
            if not isinstance(outcome.artifact, DTMC):
                # Nothing concrete to extract the next counterexample
                # from — surface the engine outcome, annotated.
                return CegisRepairResult(
                    status=outcome.status,
                    assignment=outcome.assignment,
                    objective_value=outcome.objective_value,
                    verified=outcome.verified,
                    iterations=index,
                    constraints_added=len(working),
                    counterexample_states=total_states,
                    fallbacks=fallbacks,
                    iteration_log=records,
                    perturbation_bound=outcome.epsilon,
                    message=outcome.message or "no artifact to localize",
                    solver_stats=solver_totals,
                )
            violating = outcome.artifact

        # Budget exhausted: honest partial answer, never a silent pass.
        return CegisRepairResult(
            status="repaired",
            assignment=last_outcome.assignment,
            objective_value=last_outcome.objective_value,
            verified=False,
            iterations=self.max_iterations,
            constraints_added=len(working),
            counterexample_states=total_states,
            fallbacks=fallbacks,
            iteration_log=records,
            repaired_model=(
                last_outcome.artifact
                if isinstance(last_outcome.artifact, DTMC)
                else None
            ),
            perturbation_bound=last_outcome.epsilon,
            message=(
                f"candidate still violates the property after "
                f"{self.max_iterations} iteration(s)"
            ),
            solver_stats=solver_totals,
        )
