"""The single repair driver.

Every repair flavour used to re-implement the same five steps; they now
live here exactly once:

1. **already-satisfied short-circuit** — concrete pre-check of the
   original artifact (memoised);
2. **cached parametric elimination** — each
   :class:`~repro.repair.problem.ParametricSpec` reduces to a rational
   constraint through the :class:`~repro.checking.cache.CheckCache`;
3. **multi-start NLP solve** — :class:`repro.optimize.NonlinearProgram`
   over the problem's variables, cost and constraints;
4. **concrete re-verification** — instantiate the artifact at the
   solution and re-check it exactly;
5. **ε-bound computation** — the flavour's post-repair bound
   (Proposition 1's ε-bisimulation for Model Repair).

The driver returns a neutral :class:`EngineOutcome`; flavour builders
wrap it into their public result classes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.checking.cache import get_cache
from repro.optimize import NonlinearProgram

from repro.repair.problem import RepairProblem

_ELIMINATION_STAT_KEYS = (
    "elimination_states",
    "elimination_fill_in",
    "elimination_reuse_hits",
    "elimination_ms",
)


def _elimination_deltas(before: Dict[str, int], after: Dict[str, int]):
    """Nonzero elimination-counter movement between two cache snapshots."""
    return {
        key: int(after.get(key, 0) - before.get(key, 0))
        for key in _ELIMINATION_STAT_KEYS
        if after.get(key, 0) != before.get(key, 0)
    }


class EngineOutcome:
    """What :func:`solve_repair` hands back to the flavour builders."""

    def __init__(
        self,
        status: str,
        assignment: Dict[str, float],
        objective_value: float,
        artifact=None,
        epsilon: float = 0.0,
        verified: bool = False,
        message: str = "",
        solver_stats: Optional[Dict[str, int]] = None,
    ):
        self.status = status
        self.assignment = dict(assignment)
        self.objective_value = objective_value
        self.artifact = artifact
        self.epsilon = epsilon
        self.verified = verified
        self.message = message
        self.solver_stats = dict(solver_stats or {})

    def __repr__(self) -> str:
        return (
            f"EngineOutcome(status={self.status!r}, "
            f"objective={self.objective_value:.6g}, "
            f"verified={self.verified})"
        )


def solve_repair(
    problem: RepairProblem,
    extra_starts: int = 8,
    seed: int = 0,
    fused: bool = True,
) -> EngineOutcome:
    """Run the full repair pipeline on a declarative problem.

    With ``fused=True`` (default) the NLP solve reads every parametric
    constraint through one CheckCache-memoized
    :class:`~repro.symbolic.compile.StackedConstraintKernel` (warm store
    = zero compilations) and auto-selects thread parallelism;
    ``fused=False`` reproduces the pre-fusion per-constraint dispatch
    path, kept for benchmarking and as a behavioural reference.
    """
    cache = get_cache(problem.cache)
    stats_before = cache.stats()
    if problem.run_check():
        return EngineOutcome(
            status="already_satisfied",
            assignment=problem.initial_assignment(),
            objective_value=0.0,
            artifact=problem.original,
            epsilon=0.0,
            verified=True,
            message=problem.already_satisfied_message,
        )
    if not problem.variables:
        return EngineOutcome(
            status="infeasible",
            assignment={},
            objective_value=0.0,
            message=problem.no_variable_message,
        )
    program = NonlinearProgram(
        variables=problem.variables,
        objective=problem.cost,
        objective_gradient=problem.cost_gradient,
        constraints=problem.solver_constraints(),
    )
    solved = program.solve(
        extra_starts=extra_starts,
        seed=seed,
        stacked=problem.stacked_kernel() if fused else False,
        parallel=None if fused else True,
    )
    if not solved.feasible:
        artifact = (
            problem.run_instantiate(solved.assignment)
            if problem.instantiate_when_infeasible
            else None
        )
        stats = dict(solved.solver_stats)
        stats.update(_elimination_deltas(stats_before, cache.stats()))
        return EngineOutcome(
            status="infeasible",
            assignment=solved.assignment,
            objective_value=solved.objective_value,
            artifact=artifact,
            message=solved.message,
            solver_stats=stats,
        )
    artifact = problem.run_instantiate(solved.assignment)
    stats = dict(solved.solver_stats)
    stats.update(_elimination_deltas(stats_before, cache.stats()))
    return EngineOutcome(
        status="repaired",
        assignment=solved.assignment,
        objective_value=solved.objective_value,
        artifact=artifact,
        epsilon=problem.run_epsilon(artifact),
        verified=problem.run_verify(artifact),
        message=solved.message,
        solver_stats=stats,
    )
