"""The shared repair core (Propositions 1–4, once).

Model, Data, Reward and CTMC rate repair are all instances of one
scheme: parametric model checking turns ``M_Z |= φ`` into rational
constraints, which feed a minimal-cost nonlinear program whose solution
is instantiated and concretely re-verified.  This package owns that
scheme; the flavour modules reduce to thin problem-builders:

:class:`RepairProblem` / :class:`ParametricSpec`
    The declarative shape: variables, parametric/rational constraints,
    pluggable cost, margin handling, flavour hooks.
:func:`solve_repair` / :class:`EngineOutcome`
    The single driver: already-satisfied short-circuit → cached
    parametric elimination → multi-start NLP solve → concrete
    re-verification → ε-bound computation.
:class:`RepairResult`
    The result base every flavour's result class subclasses, with the
    canonical ``to_dict()``/``from_dict()`` JSON form used by the
    service layer and the CLI.

See ``docs/repair_engine.md`` for the architecture and how to add a
new repair variant.
"""

from repro.repair.engine import EngineOutcome, solve_repair
from repro.repair.problem import (
    DEFAULT_SAFETY_MARGIN,
    ParametricSpec,
    RepairProblem,
)
from repro.repair.results import RepairResult

__all__ = [
    "DEFAULT_SAFETY_MARGIN",
    "EngineOutcome",
    "ParametricSpec",
    "RepairProblem",
    "RepairResult",
    "solve_repair",
]
