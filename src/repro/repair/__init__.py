"""The shared repair core (Propositions 1–4, once).

Model, Data, Reward and CTMC rate repair are all instances of one
scheme: parametric model checking turns ``M_Z |= φ`` into rational
constraints, which feed a minimal-cost nonlinear program whose solution
is instantiated and concretely re-verified.  This package owns that
scheme; the flavour modules reduce to thin problem-builders:

:class:`RepairProblem` / :class:`ParametricSpec`
    The declarative shape: variables, parametric/rational constraints,
    pluggable cost, margin handling, flavour hooks.
:func:`solve_repair` / :class:`EngineOutcome`
    The single driver: already-satisfied short-circuit → cached
    parametric elimination → multi-start NLP solve → concrete
    re-verification → ε-bound computation.
:class:`RepairResult`
    The result base every flavour's result class subclasses, with the
    canonical ``to_dict()``/``from_dict()`` JSON form used by the
    service layer and the CLI.
:class:`RobustRepair` / :class:`RobustRepairResult` /
:class:`RobustCertificate` / :func:`robust_verify`
    The interval-uncertainty flavour (:mod:`repro.repair.robust`):
    wraps any model/data-repair builder so the repaired model is
    certified against every chain in a ±ε interval ball, with graceful
    degradation to the nominal check on non-convergence.
:class:`CegisRepair` / :class:`CegisRepairResult`
    The counterexample-guided flavour (:mod:`repro.repair.cegis`):
    grows a working set of localized constraints from smallest
    counterexamples instead of eliminating the full parametric chain,
    scaling repair past the global-elimination wall.

See ``docs/repair_engine.md`` for the architecture and how to add a
new repair variant; ``docs/robust_repair.md`` for the robust flavour;
``docs/cegis_repair.md`` for the CEGIS loop.
"""

from repro.repair.engine import EngineOutcome, solve_repair
from repro.repair.problem import (
    DEFAULT_SAFETY_MARGIN,
    ParametricSpec,
    RepairProblem,
)
from repro.repair.results import RepairResult
from repro.repair.robust import (
    RobustCertificate,
    RobustRepair,
    RobustRepairResult,
    robust_verify,
)
from repro.repair.cegis import (
    CegisIteration,
    CegisRepair,
    CegisRepairResult,
)

__all__ = [
    "DEFAULT_SAFETY_MARGIN",
    "CegisIteration",
    "CegisRepair",
    "CegisRepairResult",
    "EngineOutcome",
    "ParametricSpec",
    "RepairProblem",
    "RepairResult",
    "RobustCertificate",
    "RobustRepair",
    "RobustRepairResult",
    "robust_verify",
    "solve_repair",
]
